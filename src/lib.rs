//! RCMP: recomputation-based failure resilience for big data analytics.
//!
//! A from-scratch Rust reproduction of *"RCMP: Enabling Efficient
//! Recomputation Based Failure Resilience for Big Data Analytics"*
//! (Dinu & Ng, IPDPS 2014), including the MapReduce engine and DFS
//! substrate it runs on, the RCMP middleware (lineage, cascading
//! recomputation planning, reducer splitting, hybrid replication), a
//! discrete-event cluster simulator that regenerates the paper's
//! figures at paper scale, and the evaluation workloads.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`model`] — shared types (ids, records, configs, partitioners);
//! * [`dfs`] — the HDFS-like replicated, partitioned block store;
//! * [`engine`] — the real multi-threaded MapReduce engine;
//! * [`exec`] — wave-executor backends (per-slot OS threads, or the
//!   cooperative async reactor that runs thousands of simulated slots
//!   on a bounded worker pool);
//! * [`policy`] — the shared scheduling/recomputation policy kernel
//!   (wave assignment, hot-spot mitigation, [`policy::RecomputePlan`])
//!   that both the engine and the simulator execute;
//! * [`core`] — RCMP itself: planner, strategies, driver;
//! * [`obs`] — causal span tracing, metrics, and trace analyzers
//!   (slot occupancy, hot-spot skew, recomputation critical path);
//! * [`serve`] — the multi-tenant job service: admission control,
//!   fair-share (DRR) scheduling, per-tenant execution sessions and
//!   observability over one shared cluster;
//! * [`sim`] — the discrete-event cluster simulator;
//! * [`workloads`] — the paper's 7-job I/O-intensive chain;
//! * [`traces`] — failure-trace synthesis and CDF analysis (Fig. 2).
//!
//! # Quickstart
//!
//! ```
//! use rcmp::core::{ChainDriver, Strategy};
//! use rcmp::engine::Cluster;
//! use rcmp::model::ClusterConfig;
//! use rcmp::workloads::{generate_input, ChainBuilder, DataGenConfig};
//!
//! let cluster = Cluster::new(ClusterConfig::small_test(4));
//! generate_input(cluster.dfs(), &DataGenConfig::test("input", 4, 20_000)).unwrap();
//! let chain = ChainBuilder::new(3, 4).build();
//! let driver = ChainDriver::new(&cluster, Strategy::rcmp_split(3));
//! let outcome = driver.run(&chain.jobs).unwrap();
//! assert_eq!(outcome.jobs_started, 3); // no failures: 3 runs
//! ```

pub use rcmp_core as core;
pub use rcmp_dfs as dfs;
pub use rcmp_engine as engine;
pub use rcmp_exec as exec;
pub use rcmp_model as model;
pub use rcmp_obs as obs;
pub use rcmp_policy as policy;
pub use rcmp_serve as serve;
pub use rcmp_sim as sim;
pub use rcmp_traces as traces;
pub use rcmp_workloads as workloads;
