//! MD5 (RFC 1321), implemented from scratch.
//!
//! The paper's workload computes an MD5 hash of every record value as a
//! correctness check. No cryptographic crate is in the approved
//! dependency set, so the digest is implemented here; it is used for
//! integrity checking, not security.

use std::sync::OnceLock;

/// Per-round left-rotate amounts.
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// K[i] = floor(|sin(i + 1)| * 2^32), per RFC 1321.
fn k_table() -> &'static [u32; 64] {
    static K: OnceLock<[u32; 64]> = OnceLock::new();
    K.get_or_init(|| {
        let mut k = [0u32; 64];
        for (i, v) in k.iter_mut().enumerate() {
            *v = (((i as f64 + 1.0).sin().abs()) * 4294967296.0) as u32;
        }
        k
    })
}

/// Computes the MD5 digest of `data`.
pub fn md5(data: &[u8]) -> [u8; 16] {
    let mut a0: u32 = 0x6745_2301;
    let mut b0: u32 = 0xefcd_ab89;
    let mut c0: u32 = 0x98ba_dcfe;
    let mut d0: u32 = 0x1032_5476;
    let k = k_table();

    // Padding: 0x80, zeros, 64-bit little-endian bit length.
    let bit_len = (data.len() as u64).wrapping_mul(8);
    let mut msg = Vec::with_capacity(data.len() + 72);
    msg.extend_from_slice(data);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_le_bytes());

    for chunk in msg.chunks_exact(64) {
        let mut m = [0u32; 16];
        for (i, w) in m.iter_mut().enumerate() {
            *w = u32::from_le_bytes(chunk[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let (mut a, mut b, mut c, mut d) = (a0, b0, c0, d0);
        for i in 0..64 {
            let (f, g) = match i / 16 {
                0 => ((b & c) | (!b & d), i),
                1 => ((d & b) | (!d & c), (5 * i + 1) % 16),
                2 => (b ^ c ^ d, (3 * i + 5) % 16),
                _ => (c ^ (b | !d), (7 * i) % 16),
            };
            let tmp = d;
            d = c;
            c = b;
            b = b.wrapping_add(
                a.wrapping_add(f)
                    .wrapping_add(k[i])
                    .wrapping_add(m[g])
                    .rotate_left(S[i]),
            );
            a = tmp;
        }
        a0 = a0.wrapping_add(a);
        b0 = b0.wrapping_add(b);
        c0 = c0.wrapping_add(c);
        d0 = d0.wrapping_add(d);
    }

    let mut out = [0u8; 16];
    out[0..4].copy_from_slice(&a0.to_le_bytes());
    out[4..8].copy_from_slice(&b0.to_le_bytes());
    out[8..12].copy_from_slice(&c0.to_le_bytes());
    out[12..16].copy_from_slice(&d0.to_le_bytes());
    out
}

/// First 8 bytes of the MD5 digest as a little-endian u64 — a compact
/// per-record fingerprint for the workload's correctness accounting.
pub fn md5_u64(data: &[u8]) -> u64 {
    u64::from_le_bytes(md5(data)[0..8].try_into().unwrap())
}

/// Hex rendering of a digest (for tests and reports).
pub fn to_hex(digest: &[u8; 16]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&str, &str)] = &[
            ("", "d41d8cd98f00b204e9800998ecf8427e"),
            ("a", "0cc175b9c0f1b6a831c399e269772661"),
            ("abc", "900150983cd24fb0d6963f7d28e17f72"),
            ("message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                "abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                "12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, expect) in cases {
            assert_eq!(&to_hex(&md5(input.as_bytes())), expect, "md5({input:?})");
        }
    }

    #[test]
    fn padding_boundaries() {
        // Lengths around the 56-byte padding boundary and 64-byte block
        // boundary must all round-trip through the padding logic.
        for len in [55, 56, 57, 63, 64, 65, 119, 120, 128] {
            let data = vec![0xabu8; len];
            let d1 = md5(&data);
            let d2 = md5(&data);
            assert_eq!(d1, d2);
            // Flipping one byte changes the digest.
            let mut other = data.clone();
            other[len / 2] ^= 1;
            assert_ne!(md5(&other), d1, "len {len}");
        }
    }

    #[test]
    fn md5_u64_is_prefix() {
        let d = md5(b"hello");
        assert_eq!(
            md5_u64(b"hello"),
            u64::from_le_bytes(d[0..8].try_into().unwrap())
        );
    }
}
