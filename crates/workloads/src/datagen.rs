//! Deterministic random input generation.
//!
//! The paper uses "randomly generated, triple replicated, binary input
//! data" (§V-A), spread evenly so every node has local data. This
//! generator writes one input partition per node (writer-local first
//! replica), with record-aligned blocks so each block is a valid mapper
//! split.

use crate::chain::value_of;
use bytes::Bytes;
use rcmp_dfs::{Dfs, PlacementPolicy};
use rcmp_model::rng::derive_indexed;
use rcmp_model::{ByteSize, NodeId, PartitionId, Record, RecordWriter, Result};

/// Input generation parameters.
#[derive(Clone, Debug)]
pub struct DataGenConfig {
    /// DFS path of the generated file.
    pub path: String,
    /// Number of partitions (one per node keeps data local everywhere).
    pub partitions: u32,
    /// Bytes of payload per partition (approximate: whole records).
    pub bytes_per_partition: ByteSize,
    /// Value size per record (the paper's records are binary blobs;
    /// 100 B values keep record counts high enough to partition well).
    pub value_size: usize,
    /// Replication factor of the input (3 in the paper).
    pub replication: u32,
    /// Seed for the deterministic record stream.
    pub seed: u64,
}

impl DataGenConfig {
    /// A small deterministic config for tests.
    pub fn test(path: &str, partitions: u32, bytes_per_partition: u64) -> Self {
        Self {
            path: path.to_string(),
            partitions,
            bytes_per_partition: ByteSize::bytes(bytes_per_partition),
            value_size: 100,
            replication: 3,
            seed: 0x9eed,
        }
    }
}

/// Generates the input file. Partition `i` is written by node
/// `i % nodes`, so with `partitions == nodes` every node holds (the
/// first replica of) its own share — the even spread that makes initial
/// mapper accesses balanced (§IV-B2).
pub fn generate_input(dfs: &Dfs, cfg: &DataGenConfig) -> Result<()> {
    let nodes = dfs.live_nodes();
    if nodes.is_empty() {
        return Err(rcmp_model::Error::Config("no live nodes".into()));
    }
    dfs.create_file(&cfg.path, cfg.replication, cfg.partitions)?;
    let block_size = dfs.config().block_size.as_u64() as usize;
    let record_size = 12 + cfg.value_size;
    if record_size > block_size {
        return Err(rcmp_model::Error::Config(format!(
            "value size {} does not fit a block of {}",
            cfg.value_size,
            dfs.config().block_size
        )));
    }
    for p in 0..cfg.partitions {
        let writer = nodes[p as usize % nodes.len()];
        let records = cfg.bytes_per_partition.as_u64() as usize / record_size;
        let mut chunks: Vec<Bytes> = Vec::new();
        let mut w = RecordWriter::new();
        for r in 0..records.max(1) {
            let rec_seed = derive_indexed(cfg.seed, "datagen", (p as u64) << 32 | r as u64);
            // Deterministic pseudo-random key and value derived from the
            // seed — regeneration reproduces the exact same input.
            let key = rcmp_model::partition::mix64(rec_seed);
            let value = value_of(rec_seed ^ 0x5eed, cfg.value_size);
            let rec = Record::new(key, value);
            if w.byte_len() + rec.encoded_len() > block_size {
                let full = std::mem::take(&mut w);
                chunks.push(full.finish());
            }
            w.push(&rec);
        }
        if !w.is_empty() {
            chunks.push(w.finish());
        }
        dfs.write_partition_chunks(
            &cfg.path,
            PartitionId(p),
            chunks,
            writer,
            PlacementPolicy::WriterLocal,
        )?;
    }
    Ok(())
}

/// Total records a config will generate (for test assertions).
pub fn expected_records(cfg: &DataGenConfig) -> u64 {
    let record_size = (12 + cfg.value_size) as u64;
    let per_partition = (cfg.bytes_per_partition.as_u64() / record_size).max(1);
    per_partition * cfg.partitions as u64
}

/// Reads the whole generated file back as records (test helper).
pub fn read_all_records(dfs: &Dfs, path: &str, reader: NodeId) -> Result<Vec<Record>> {
    let meta = dfs.file_meta(path)?;
    let mut out = Vec::new();
    for p in &meta.partitions {
        let data = dfs.read_partition(path, p.id, reader)?;
        out.extend(rcmp_model::RecordReader::decode_all(data)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_dfs::DfsConfig;

    fn dfs(nodes: u32, block: u64) -> Dfs {
        Dfs::new(DfsConfig::new(nodes, ByteSize::bytes(block)))
    }

    #[test]
    fn generates_expected_volume() {
        let d = dfs(4, 4096);
        let cfg = DataGenConfig::test("input", 4, 10_000);
        generate_input(&d, &cfg).unwrap();
        let recs = read_all_records(&d, "input", NodeId(0)).unwrap();
        assert_eq!(recs.len() as u64, expected_records(&cfg));
        for r in &recs {
            assert_eq!(r.value.len(), 100);
        }
    }

    #[test]
    fn deterministic_across_calls() {
        let cfg = DataGenConfig::test("input", 2, 5_000);
        let d1 = dfs(3, 4096);
        let d2 = dfs(3, 4096);
        generate_input(&d1, &cfg).unwrap();
        generate_input(&d2, &cfg).unwrap();
        let r1 = read_all_records(&d1, "input", NodeId(0)).unwrap();
        let r2 = read_all_records(&d2, "input", NodeId(0)).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn partitions_are_writer_local() {
        let d = dfs(3, 4096);
        let cfg = DataGenConfig {
            replication: 1,
            ..DataGenConfig::test("input", 3, 5_000)
        };
        generate_input(&d, &cfg).unwrap();
        let meta = d.file_meta("input").unwrap();
        for (i, p) in meta.partitions.iter().enumerate() {
            for b in p.blocks() {
                assert_eq!(b.replicas[0], NodeId(i as u32));
            }
        }
    }

    #[test]
    fn keys_are_spread() {
        let d = dfs(3, 4096);
        let cfg = DataGenConfig::test("input", 2, 50_000);
        generate_input(&d, &cfg).unwrap();
        let recs = read_all_records(&d, "input", NodeId(0)).unwrap();
        // With random u64 keys, halves of the keyspace are roughly even.
        let high = recs.iter().filter(|r| r.key > u64::MAX / 2).count();
        let frac = high as f64 / recs.len() as f64;
        assert!((frac - 0.5).abs() < 0.15, "key skew: {frac}");
    }

    #[test]
    fn oversized_value_rejected() {
        let d = dfs(2, 64);
        let cfg = DataGenConfig {
            value_size: 100,
            ..DataGenConfig::test("input", 1, 1000)
        };
        assert!(generate_input(&d, &cfg).is_err());
    }
}
