//! Order-independent digests of record multisets.
//!
//! Two runs of a chain — one failure-free, one with failures and
//! recomputation — must produce the *same multiset* of output records.
//! [`OutputDigest`] summarizes a record multiset with commutative
//! aggregates (XOR of per-record MD5s, byte sums, counts), so two
//! digests are equal iff the multisets are equal (up to the collision
//! resistance of MD5-XOR, ample for integrity checking). This is the
//! engine-level analogue of the paper's per-record MD5 + byte-sum
//! correctness computations.

use crate::md5::md5_u64;
use bytes::Bytes;
use rcmp_model::Record;

/// Commutative digest of a multiset of records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OutputDigest {
    /// Number of records.
    pub count: u64,
    /// XOR of `md5(key || value)` per record. XOR alone would let a
    /// duplicated+dropped pair cancel; combined with `count` and the
    /// sums below, accidental cancellation is implausible.
    pub md5_xor: u64,
    /// Wrapping sum of `md5(key || value)` per record (catches
    /// XOR-cancelling duplicate pairs).
    pub md5_sum: u64,
    /// Wrapping sum of all value bytes (the paper's byte-sum check).
    pub byte_sum: u64,
    /// Total value bytes.
    pub value_bytes: u64,
}

impl OutputDigest {
    /// Folds one record in.
    pub fn add_record(&mut self, rec: &Record) {
        let mut buf = Vec::with_capacity(8 + rec.value.len());
        buf.extend_from_slice(&rec.key.to_le_bytes());
        buf.extend_from_slice(&rec.value);
        let h = md5_u64(&buf);
        self.count += 1;
        self.md5_xor ^= h;
        self.md5_sum = self.md5_sum.wrapping_add(h);
        self.byte_sum = self
            .byte_sum
            .wrapping_add(rec.value.iter().map(|&b| b as u64).sum::<u64>());
        self.value_bytes += rec.value.len() as u64;
    }

    /// Digest of an iterator of records.
    pub fn of_records<'a>(records: impl IntoIterator<Item = &'a Record>) -> Self {
        let mut d = Self::default();
        for r in records {
            d.add_record(r);
        }
        d
    }

    /// Digest of an encoded record stream.
    pub fn of_encoded(data: Bytes) -> rcmp_model::Result<Self> {
        let mut d = Self::default();
        for rec in rcmp_model::RecordReader::new(data) {
            d.add_record(&rec?);
        }
        Ok(d)
    }

    /// Merges another digest (digests of disjoint partitions combine to
    /// the digest of the union).
    pub fn merge(&mut self, other: &OutputDigest) {
        self.count += other.count;
        self.md5_xor ^= other.md5_xor;
        self.md5_sum = self.md5_sum.wrapping_add(other.md5_sum);
        self.byte_sum = self.byte_sum.wrapping_add(other.byte_sum);
        self.value_bytes += other.value_bytes;
    }
}

/// Digest of a whole DFS file (all partitions merged). The per-partition
/// digests are also returned, enabling partition-level comparisons
/// (recomputed partitions must match their originals exactly).
///
/// Partitions are digested in parallel (rayon): MD5 over every record
/// is the expensive part of golden-output validation, and partitions
/// are independent.
pub fn digest_file(
    dfs: &rcmp_dfs::Dfs,
    path: &str,
    reader: rcmp_model::NodeId,
) -> rcmp_model::Result<(OutputDigest, Vec<OutputDigest>)> {
    use rayon::prelude::*;
    let meta = dfs.file_meta(path)?;
    let per_partition: Vec<OutputDigest> = meta
        .partitions
        .par_iter()
        .map(|p| {
            let data = dfs.read_partition(path, p.id, reader)?;
            OutputDigest::of_encoded(data)
        })
        .collect::<rcmp_model::Result<Vec<_>>>()?;
    let mut total = OutputDigest::default();
    for d in &per_partition {
        total.merge(d);
    }
    Ok((total, per_partition))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(k: u64, v: &[u8]) -> Record {
        Record::new(k, v.to_vec())
    }

    #[test]
    fn order_independent() {
        let a = OutputDigest::of_records(&[rec(1, b"x"), rec(2, b"y"), rec(3, b"z")]);
        let b = OutputDigest::of_records(&[rec(3, b"z"), rec(1, b"x"), rec(2, b"y")]);
        assert_eq!(a, b);
    }

    #[test]
    fn detects_missing_and_duplicate() {
        let full = OutputDigest::of_records(&[rec(1, b"x"), rec(2, b"y")]);
        let missing = OutputDigest::of_records(&[rec(1, b"x")]);
        let duped = OutputDigest::of_records(&[rec(1, b"x"), rec(2, b"y"), rec(2, b"y")]);
        assert_ne!(full, missing);
        assert_ne!(full, duped);
    }

    #[test]
    fn detects_xor_cancelling_pair() {
        // Duplicating one record and dropping another XORs to the same
        // value only if their hashes match; but even a double-duplicate
        // (XOR cancels) is caught by count and md5_sum.
        let base = OutputDigest::of_records(&[rec(1, b"x")]);
        let doubled = OutputDigest::of_records(&[rec(1, b"x"), rec(1, b"x"), rec(1, b"x")]);
        assert_eq!(base.md5_xor, doubled.md5_xor, "XOR alone is blind here");
        assert_ne!(base, doubled, "full digest catches it");
    }

    #[test]
    fn merge_equals_union() {
        let mut left = OutputDigest::of_records(&[rec(1, b"x")]);
        let right = OutputDigest::of_records(&[rec(2, b"y")]);
        left.merge(&right);
        assert_eq!(
            left,
            OutputDigest::of_records(&[rec(1, b"x"), rec(2, b"y")])
        );
    }

    #[test]
    fn encoded_roundtrip() {
        let recs = vec![rec(1, b"ab"), rec(2, b"cd")];
        let mut w = rcmp_model::RecordWriter::new();
        for r in &recs {
            w.push(r);
        }
        let d = OutputDigest::of_encoded(w.finish()).unwrap();
        assert_eq!(d, OutputDigest::of_records(&recs));
        assert_eq!(d.value_bytes, 4);
        assert_eq!(d.count, 2);
    }
}
