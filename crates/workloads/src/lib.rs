//! The paper's evaluation workload (§V-A).
//!
//! "We built a custom 7-job, I/O-intensive, chain computation. Each
//! mapper and reducer, for every input record, performs two computations
//! which help us check correctness. One is based on the MD5 hash of a
//! record's value while the other is based on the sum of all bytes in a
//! record value. In addition, each mapper randomizes the key of each
//! record to ensure load balancing […] Our job has a ratio of
//! input/shuffle/output size of 1/1/1."
//!
//! This crate reproduces that workload exactly:
//!
//! * [`md5`] — an MD5 implementation written from scratch (no external
//!   crypto crates are in the approved dependency set);
//! * [`checksum`] — order-independent aggregates over record multisets
//!   (MD5-XOR + byte-sum + counts) used as the golden-output equivalence
//!   check in every failure experiment;
//! * [`datagen`] — deterministic random binary input, written to the DFS
//!   triple-replicated like the paper's job input;
//! * [`chain`] — the n-job chain builder with the paper's map/reduce
//!   UDFs. Key "randomization" is derived from record *content* so UDFs
//!   stay deterministic — a hard requirement for recomputation-based
//!   resilience (recomputed tasks must regenerate identical data).

pub mod agg;
pub mod chain;
pub mod checksum;
pub mod datagen;
pub mod md5;

pub use agg::{AggBuilder, AggCombiner, AggMapper, AggReducer, AggValue};
pub use chain::{ChainBuilder, ChainSpec};
pub use checksum::OutputDigest;
pub use datagen::{generate_input, DataGenConfig};
