//! An aggregation workload exercising the map-side combiner.
//!
//! The chain workload's reducer *re-emits* values, so combining buys it
//! nothing. This module is the complementary shape — a per-key
//! count/byte-sum aggregation over a deliberately small key space, so
//! each mapper produces many records per key and a combiner collapses
//! them to one partial aggregate per (mapper, key) pair before the
//! shuffle. Because the partial aggregate has the exact same record
//! format as a raw mapper emission, the reducer's merge is oblivious to
//! whether combining ran: final output is byte-identical with the
//! combiner on or off, which is what the differential tests assert.

use bytes::Bytes;
use rcmp_dfs::PlacementPolicy;
use rcmp_engine::udf::{Combiner, Emit, Mapper, Reducer};
use rcmp_engine::JobSpec;
use rcmp_model::partition::mix64;
use rcmp_model::{JobId, Record};
use std::sync::Arc;

/// One partial (or final) aggregate: a record count and a byte sum.
///
/// Encoded as `count (8B LE) | sum (8B LE)` — the value format shared
/// by mapper emissions, combiner output and reducer output, which is
/// what makes the combiner's merge indistinguishable from the
/// reducer's.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AggValue {
    /// Input records folded into this aggregate.
    pub count: u64,
    /// Sum of all value bytes folded into this aggregate.
    pub sum: u64,
}

impl AggValue {
    /// Encodes to the 16-byte wire form.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(16);
        out.extend_from_slice(&self.count.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
        Bytes::from(out)
    }

    /// Decodes the 16-byte wire form; panics on malformed input (the
    /// workload only ever feeds itself).
    pub fn decode(v: &Bytes) -> Self {
        assert_eq!(v.len(), 16, "malformed aggregate value");
        Self {
            count: u64::from_le_bytes(v[..8].try_into().expect("8 bytes")),
            sum: u64::from_le_bytes(v[8..].try_into().expect("8 bytes")),
        }
    }

    /// Folds partial aggregates together (associative + commutative).
    pub fn merge(values: &[Bytes]) -> Self {
        let mut acc = Self::default();
        for v in values {
            let part = Self::decode(v);
            acc.count = acc.count.wrapping_add(part.count);
            acc.sum = acc.sum.wrapping_add(part.sum);
        }
        acc
    }
}

/// Maps each input record to `(content_key % keys, AggValue{1, byte_sum})`.
pub struct AggMapper {
    /// Size of the aggregation key space. Small relative to the input
    /// record count ⇒ heavy per-key duplication ⇒ large combiner wins.
    pub keys: u64,
    /// Salt so distinct jobs group differently.
    pub salt: u64,
}

impl Mapper for AggMapper {
    fn map(&self, record: Record, emit: Emit<'_>) {
        let sum: u64 = record.value.iter().map(|&b| b as u64).sum();
        // Group key is a function of record content only: recomputed
        // mappers must regenerate identical output.
        let key = mix64(record.key ^ sum ^ self.salt) % self.keys.max(1);
        emit(Record::new(key, AggValue { count: 1, sum }.encode()));
    }
}

/// Folds one key's partial aggregates into a single partial aggregate.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggCombiner;

impl Combiner for AggCombiner {
    fn combine(&self, key: u64, values: &[Bytes], emit: Emit<'_>) {
        emit(Record::new(key, AggValue::merge(values).encode()));
    }
}

/// Emits the final aggregate per key — the same merge the combiner
/// runs, so pre-combined and raw streams reduce identically.
#[derive(Clone, Copy, Debug, Default)]
pub struct AggReducer;

impl Reducer for AggReducer {
    fn reduce(&self, key: u64, values: &[Bytes], emit: Emit<'_>) {
        emit(Record::new(key, AggValue::merge(values).encode()));
    }
}

/// Builder for one aggregation job.
#[derive(Clone, Debug)]
pub struct AggBuilder {
    pub num_reducers: u32,
    /// Aggregation key-space size (see [`AggMapper::keys`]).
    pub keys: u64,
    pub output_replication: u32,
    pub placement: PlacementPolicy,
    pub splittable: bool,
    /// Whether to install [`AggCombiner`] on the job.
    pub combine: bool,
    pub input_path: String,
    pub output_path: String,
}

impl AggBuilder {
    /// An aggregation job over `input` with a `keys`-sized key space.
    pub fn new(num_reducers: u32, keys: u64) -> Self {
        Self {
            num_reducers,
            keys,
            output_replication: 1,
            placement: PlacementPolicy::WriterLocal,
            splittable: true,
            combine: true,
            input_path: "input".to_string(),
            output_path: "agg-out".to_string(),
        }
    }

    /// Toggles the map-side combiner (on by default).
    pub fn combine(mut self, yes: bool) -> Self {
        self.combine = yes;
        self
    }

    /// Builds the [`JobSpec`].
    pub fn build(&self) -> JobSpec {
        JobSpec {
            job: JobId(1),
            input: self.input_path.clone(),
            output: self.output_path.clone(),
            num_reducers: self.num_reducers,
            output_replication: self.output_replication,
            placement: self.placement,
            mapper: Arc::new(AggMapper {
                keys: self.keys,
                salt: 0xa66_0001,
            }),
            reducer: Arc::new(AggReducer),
            combiner: self
                .combine
                .then(|| Arc::new(AggCombiner) as Arc<dyn Combiner>),
            splittable: self.splittable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::value_of;

    #[test]
    fn value_roundtrip_and_merge() {
        let a = AggValue { count: 3, sum: 99 };
        assert_eq!(AggValue::decode(&a.encode()), a);
        let merged = AggValue::merge(&[
            AggValue { count: 1, sum: 10 }.encode(),
            AggValue { count: 2, sum: 5 }.encode(),
        ]);
        assert_eq!(merged, AggValue { count: 3, sum: 15 });
    }

    #[test]
    fn mapper_confines_keys_and_counts_one() {
        let m = AggMapper { keys: 16, salt: 1 };
        for i in 0..100u64 {
            let mut out = Vec::new();
            m.map(Record::new(i, value_of(i, 32)), &mut |r| out.push(r));
            assert_eq!(out.len(), 1);
            assert!(out[0].key < 16);
            assert_eq!(AggValue::decode(&out[0].value).count, 1);
        }
    }

    #[test]
    fn combiner_then_reduce_matches_raw_reduce() {
        // The central invariant: reduce(combine(xs) ++ combine(ys)) ==
        // reduce(xs ++ ys), for any split of a key's values.
        let values: Vec<Bytes> = (0..10u64)
            .map(|i| AggValue { count: 1, sum: i }.encode())
            .collect();
        let reduce = |vals: &[Bytes]| {
            let mut out = Vec::new();
            AggReducer.reduce(7, vals, &mut |r| out.push(r));
            out
        };
        let combine = |vals: &[Bytes]| {
            let mut out = Vec::new();
            AggCombiner.combine(7, vals, &mut |r| out.push(r));
            out.into_iter().map(|r| r.value).collect::<Vec<_>>()
        };
        let mut pre = combine(&values[..4]);
        pre.extend(combine(&values[4..]));
        assert_eq!(reduce(&pre), reduce(&values));
    }

    #[test]
    fn builder_wires_combiner() {
        assert!(AggBuilder::new(4, 8).build().combiner.is_some());
        assert!(AggBuilder::new(4, 8)
            .combine(false)
            .build()
            .combiner
            .is_none());
    }
}
