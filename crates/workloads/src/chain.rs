//! The n-job chain computation (the paper's 7-job workload).
//!
//! Every job reads the previous job's output ("out/<j-1>") and writes
//! "out/<j>"; job 1 reads the generated input. UDFs do the paper's
//! per-record work — MD5 of the value and sum of value bytes — and the
//! mapper scatters keys for load balance. All "randomness" is a
//! deterministic function of record content, because recomputed tasks
//! must regenerate byte-identical data.

use crate::md5::md5_u64;
use bytes::Bytes;
use rcmp_dfs::PlacementPolicy;
use rcmp_engine::udf::{Combiner, Emit, Mapper, Reducer};
use rcmp_engine::JobSpec;
use rcmp_model::partition::mix64;
use rcmp_model::{JobId, Record};
use std::sync::Arc;

/// Deterministic pseudo-random bytes for a seed (shared with datagen).
pub fn value_of(seed: u64, len: usize) -> Bytes {
    let mut out = Vec::with_capacity(len);
    let mut s = seed;
    while out.len() < len {
        s = mix64(s.wrapping_add(0x9e37_79b9_7f4a_7c15));
        let w = s.to_le_bytes();
        let take = (len - out.len()).min(8);
        out.extend_from_slice(&w[..take]);
    }
    Bytes::from(out)
}

/// Deterministically resizes a value to `new_len` by cycling its bytes
/// (ratio knobs for input:shuffle:output experiments; identity when the
/// length is unchanged).
pub fn resize_value(v: &Bytes, new_len: usize) -> Bytes {
    if new_len == v.len() {
        return v.clone();
    }
    if v.is_empty() {
        return Bytes::from(vec![0u8; new_len]);
    }
    let mut out = Vec::with_capacity(new_len);
    while out.len() < new_len {
        let take = (new_len - out.len()).min(v.len());
        out.extend_from_slice(&v[..take]);
    }
    Bytes::from(out)
}

/// The chain's map UDF: per record, MD5 + byte-sum "work", key
/// scattering, optional value resize (map output ratio).
pub struct ChainMapper {
    /// Salt so each job scatters keys differently.
    salt: u64,
    /// Output bytes per input byte (1.0 = the paper's 1:1).
    ratio: f64,
}

impl Mapper for ChainMapper {
    fn map(&self, record: Record, emit: Emit<'_>) {
        // The paper's correctness computations.
        let digest = md5_u64(&record.value);
        let byte_sum: u64 = record.value.iter().map(|&b| b as u64).sum();
        // Deterministic key scatter: a function of record content only.
        let new_key = mix64(record.key ^ digest ^ byte_sum ^ self.salt);
        let new_len = ((record.value.len() as f64) * self.ratio).round() as usize;
        let value = resize_value(&record.value, new_len);
        emit(Record::new(new_key, value));
    }
}

/// The chain's reduce UDF: re-emits each value under its key after the
/// same MD5 + byte-sum work, optionally resized (output ratio).
pub struct ChainReducer {
    ratio: f64,
}

impl Reducer for ChainReducer {
    fn reduce(&self, key: u64, values: &[Bytes], emit: Emit<'_>) {
        for v in values {
            let _digest = md5_u64(v);
            let _sum: u64 = v.iter().map(|&b| b as u64).sum();
            let new_len = ((v.len() as f64) * self.ratio).round() as usize;
            emit(Record::new(key, resize_value(v, new_len)));
        }
    }
}

/// Builder for an n-job chain.
#[derive(Clone)]
pub struct ChainBuilder {
    pub jobs: u32,
    pub num_reducers: u32,
    pub output_replication: u32,
    pub placement: PlacementPolicy,
    pub splittable: bool,
    /// Shuffle bytes per input byte (the paper's ratio middle term).
    pub map_ratio: f64,
    /// Output bytes per shuffle byte (the paper's ratio last term).
    pub reduce_ratio: f64,
    pub input_path: String,
    /// DFS namespace prefix for the chain's outputs: job `j` writes
    /// `"<prefix>out/<j>"`. Empty by default (the classic `"out/<j>"`
    /// layout); concurrent chains — e.g. per-tenant submissions on the
    /// job service — set a distinct prefix (like `"t3/c0/"`) so their
    /// output files never collide. The prefix does not feed any UDF
    /// salt, so digests stay invariant across namespaces.
    pub output_prefix: String,
    /// Base added to each job's [`JobId`] (job `j` gets
    /// `JobId(job_base + j)`). Map-output store entries are keyed by
    /// `JobId`, so concurrent chains need disjoint id ranges; the
    /// mapper salt uses the *local* index `j`, keeping digests
    /// identical for any base.
    pub job_base: u32,
    /// Optional map-side combiner applied to every job of the chain.
    /// The chain's reducer re-emits values rather than aggregating
    /// them, so the default is `None`; aggregation workloads (see
    /// `crate::agg`) opt in.
    pub combiner: Option<Arc<dyn Combiner>>,
}

impl std::fmt::Debug for ChainBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChainBuilder")
            .field("jobs", &self.jobs)
            .field("num_reducers", &self.num_reducers)
            .field("output_replication", &self.output_replication)
            .field("splittable", &self.splittable)
            .field("combiner", &self.combiner.is_some())
            .finish_non_exhaustive()
    }
}

impl ChainBuilder {
    /// The paper's default: 7 jobs, 1/1/1 ratios.
    pub fn new(jobs: u32, num_reducers: u32) -> Self {
        Self {
            jobs,
            num_reducers,
            output_replication: 1,
            placement: PlacementPolicy::WriterLocal,
            splittable: true,
            map_ratio: 1.0,
            reduce_ratio: 1.0,
            input_path: "input".to_string(),
            output_prefix: String::new(),
            job_base: 0,
            combiner: None,
        }
    }

    pub fn replication(mut self, factor: u32) -> Self {
        self.output_replication = factor;
        self
    }

    pub fn ratios(mut self, map_ratio: f64, reduce_ratio: f64) -> Self {
        self.map_ratio = map_ratio;
        self.reduce_ratio = reduce_ratio;
        self
    }

    pub fn splittable(mut self, yes: bool) -> Self {
        self.splittable = yes;
        self
    }

    /// Installs a map-side combiner on every job of the chain.
    pub fn combiner(mut self, c: Arc<dyn Combiner>) -> Self {
        self.combiner = Some(c);
        self
    }

    /// Reads the generated input from `path` instead of `"input"`.
    pub fn input(mut self, path: impl Into<String>) -> Self {
        self.input_path = path.into();
        self
    }

    /// Namespaces the chain for concurrent execution: outputs land
    /// under `"<prefix>out/<j>"` and job ids start at `base + 1`. Use a
    /// distinct `(prefix, base)` per in-flight chain so DFS paths and
    /// map-output store keys never collide across chains. Digests are
    /// unaffected: the mapper salt depends only on the local job index.
    pub fn namespace(mut self, prefix: impl Into<String>, base: u32) -> Self {
        self.output_prefix = prefix.into();
        self.job_base = base;
        self
    }

    pub fn build(&self) -> ChainSpec {
        assert!(self.jobs >= 1);
        let jobs = (1..=self.jobs)
            .map(|j| {
                let input = if j == 1 {
                    self.input_path.clone()
                } else {
                    prefixed_output_path(&self.output_prefix, j - 1)
                };
                JobSpec {
                    job: JobId(self.job_base + j),
                    input,
                    output: prefixed_output_path(&self.output_prefix, j),
                    num_reducers: self.num_reducers,
                    output_replication: self.output_replication,
                    placement: self.placement,
                    mapper: Arc::new(ChainMapper {
                        salt: 0xc4a1_0000 + j as u64,
                        ratio: self.map_ratio,
                    }),
                    reducer: Arc::new(ChainReducer {
                        ratio: self.reduce_ratio,
                    }),
                    combiner: self.combiner.clone(),
                    splittable: self.splittable,
                }
            })
            .collect();
        ChainSpec { jobs }
    }
}

/// DFS path of job `j`'s output.
pub fn output_path(j: u32) -> String {
    format!("out/{j}")
}

/// DFS path of job `j`'s output under a chain namespace prefix.
fn prefixed_output_path(prefix: &str, j: u32) -> String {
    format!("{prefix}out/{j}")
}

/// A built chain: `jobs[0]` is job 1.
#[derive(Clone, Debug)]
pub struct ChainSpec {
    pub jobs: Vec<JobSpec>,
}

impl ChainSpec {
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Spec of job `j` (1-based *local* chain position; equals
    /// [`JobId`] when the chain is unnamespaced, i.e. `job_base == 0`).
    pub fn job(&self, j: u32) -> &JobSpec {
        &self.jobs[(j - 1) as usize]
    }

    /// DFS path of the final output.
    pub fn final_output(&self) -> &str {
        &self.jobs.last().expect("non-empty chain").output
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_of_deterministic_and_sized() {
        assert_eq!(value_of(1, 10), value_of(1, 10));
        assert_ne!(value_of(1, 10), value_of(2, 10));
        assert_eq!(value_of(3, 13).len(), 13);
        assert_eq!(value_of(3, 0).len(), 0);
    }

    #[test]
    fn resize_identity_and_cycling() {
        let v = Bytes::from_static(b"abcd");
        assert_eq!(resize_value(&v, 4), v);
        assert_eq!(resize_value(&v, 2), Bytes::from_static(b"ab"));
        assert_eq!(resize_value(&v, 10), Bytes::from_static(b"abcdabcdab"));
        assert_eq!(resize_value(&Bytes::new(), 3).len(), 3);
    }

    #[test]
    fn mapper_is_deterministic_and_conserves_bytes() {
        let m = ChainMapper {
            salt: 7,
            ratio: 1.0,
        };
        let rec = Record::new(42, value_of(9, 50));
        let mut out1 = Vec::new();
        m.map(rec.clone(), &mut |r| out1.push(r));
        let mut out2 = Vec::new();
        m.map(rec.clone(), &mut |r| out2.push(r));
        assert_eq!(out1, out2);
        assert_eq!(out1.len(), 1);
        assert_eq!(out1[0].value, rec.value, "1:1 ratio keeps the value");
        assert_ne!(out1[0].key, rec.key, "key is scattered");
    }

    #[test]
    fn mapper_ratio_changes_volume() {
        let m = ChainMapper {
            salt: 7,
            ratio: 2.0,
        };
        let mut out = Vec::new();
        m.map(Record::new(1, value_of(1, 40)), &mut |r| out.push(r));
        assert_eq!(out[0].value.len(), 80);
    }

    #[test]
    fn reducer_emits_every_value() {
        let r = ChainReducer { ratio: 1.0 };
        let values = vec![value_of(1, 10), value_of(2, 10)];
        let mut out = Vec::new();
        r.reduce(5, &values, &mut |rec| out.push(rec));
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|rec| rec.key == 5));
    }

    #[test]
    fn chain_wiring() {
        let chain = ChainBuilder::new(7, 10).build();
        assert_eq!(chain.len(), 7);
        assert_eq!(chain.job(1).input, "input");
        assert_eq!(chain.job(1).output, "out/1");
        assert_eq!(chain.job(7).input, "out/6");
        assert_eq!(chain.final_output(), "out/7");
        for spec in &chain.jobs {
            assert_eq!(spec.num_reducers, 10);
            assert_eq!(spec.output_replication, 1);
        }
    }

    #[test]
    fn builder_knobs() {
        let chain = ChainBuilder::new(2, 4)
            .replication(3)
            .splittable(false)
            .ratios(2.0, 0.5)
            .build();
        assert_eq!(chain.job(1).output_replication, 3);
        assert!(!chain.job(2).splittable);
    }

    #[test]
    fn namespaced_chain_keeps_udfs_but_moves_paths_and_ids() {
        let plain = ChainBuilder::new(3, 4).build();
        let ns = ChainBuilder::new(3, 4)
            .input("t2/input")
            .namespace("t2/c5/", 300)
            .build();
        assert_eq!(ns.job(1).input, "t2/input");
        assert_eq!(ns.job(1).output, "t2/c5/out/1");
        assert_eq!(ns.job(3).input, "t2/c5/out/2");
        assert_eq!(ns.final_output(), "t2/c5/out/3");
        assert_eq!(ns.job(2).job, JobId(302));
        // Same local index → same mapper behaviour: digests can't
        // depend on the namespace.
        let rec = Record::new(1, value_of(1, 20));
        for j in 1..=3 {
            let mut a = Vec::new();
            plain.job(j).mapper.map(rec.clone(), &mut |r| a.push(r));
            let mut b = Vec::new();
            ns.job(j).mapper.map(rec.clone(), &mut |r| b.push(r));
            assert_eq!(a, b, "job {j} mapper diverged under namespacing");
        }
    }

    #[test]
    fn different_jobs_scatter_differently() {
        let chain = ChainBuilder::new(2, 4).build();
        let rec = Record::new(1, value_of(1, 20));
        let mut k1 = Vec::new();
        chain
            .job(1)
            .mapper
            .map(rec.clone(), &mut |r| k1.push(r.key));
        let mut k2 = Vec::new();
        chain
            .job(2)
            .mapper
            .map(rec.clone(), &mut |r| k2.push(r.key));
        assert_ne!(k1, k2, "per-job salt must differ");
    }
}
