//! End-to-end engine tests: real jobs over real data.

use rcmp_engine::{
    Cluster, JobRun, JobTracker, NoFailures, RecomputeInstructions, ScriptedInjector, TriggerPoint,
};
use rcmp_model::{ClusterConfig, Error, NodeId, PartitionId, SlotConfig};
use rcmp_workloads::checksum::digest_file;
use rcmp_workloads::{generate_input, ChainBuilder, DataGenConfig, OutputDigest};
use std::sync::Arc;

fn test_cluster(nodes: u32) -> Cluster {
    let cfg = ClusterConfig {
        nodes,
        slots: SlotConfig::ONE_ONE,
        block_size: rcmp_model::ByteSize::kib(4),
        failure_detection_secs: 30.0,
        max_recovery_attempts: 100,
        executor: rcmp_model::ExecutorConfig::default(),
        shuffle: Default::default(),
        retry: Default::default(),
        placement: Default::default(),
        chain_cache: Default::default(),
        seed: 42,
    };
    Cluster::new(cfg)
}

fn gen_input(cluster: &Cluster, partitions: u32, bytes_per_partition: u64) {
    let cfg = DataGenConfig {
        replication: 3.min(cluster.config().nodes),
        ..DataGenConfig::test("input", partitions, bytes_per_partition)
    };
    generate_input(cluster.dfs(), &cfg).unwrap();
}

fn live_reader(cluster: &Cluster) -> NodeId {
    cluster.live_nodes()[0]
}

#[test]
fn single_job_runs_and_conserves_volume() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 20_000);
    let chain = ChainBuilder::new(1, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();

    assert_eq!(report.reduce_tasks_run, 4);
    assert!(report.map_tasks_run > 0);
    assert_eq!(report.map_tasks_reused, 0);
    assert!(report.losses.is_empty());

    let (in_digest, _) = digest_file(cluster.dfs(), "input", live_reader(&cluster)).unwrap();
    let (out_digest, _) = digest_file(cluster.dfs(), "out/1", live_reader(&cluster)).unwrap();
    // 1:1:1 ratios conserve record count and value bytes.
    assert_eq!(out_digest.count, in_digest.count);
    assert_eq!(out_digest.value_bytes, in_digest.value_bytes);
    // Shuffle volume equals map output (all mapper output is consumed).
    assert!(report.io.shuffle_total() > 0);
    assert_eq!(
        report.io.output_written,
        out_digest.value_bytes + 12 * out_digest.count
    );
}

#[test]
fn chain_of_three_jobs_produces_complete_output() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 20_000);
    let chain = ChainBuilder::new(3, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    for (i, spec) in chain.jobs.iter().enumerate() {
        tracker
            .run(&JobRun::full(spec.clone()), (i + 1) as u64)
            .unwrap();
    }
    let (final_digest, _) = digest_file(cluster.dfs(), "out/3", live_reader(&cluster)).unwrap();
    let (in_digest, _) = digest_file(cluster.dfs(), "input", live_reader(&cluster)).unwrap();
    assert_eq!(final_digest.count, in_digest.count);
    assert_eq!(final_digest.value_bytes, in_digest.value_bytes);
}

/// The golden-output property: a failure absorbed by replication yields
/// exactly the same output as a failure-free run.
#[test]
fn replicated_job_survives_node_kill_with_identical_output() {
    // Failure-free reference.
    let reference = {
        let cluster = test_cluster(4);
        gen_input(&cluster, 4, 30_000);
        let chain = ChainBuilder::new(1, 4).replication(2).build();
        let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
        tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
        digest_file(cluster.dfs(), "out/1", live_reader(&cluster))
            .unwrap()
            .0
    };

    // Same workload, node killed after the first map wave.
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 30_000);
    let chain = ChainBuilder::new(1, 4).replication(2).build();
    let injector = Arc::new(ScriptedInjector::single(
        1,
        TriggerPoint::AfterMapWave(0),
        NodeId(2),
    ));
    let tracker = JobTracker::new(&cluster, injector.clone());
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    assert!(injector.unfired().is_empty(), "kill must have fired");
    assert_eq!(report.losses.len(), 1);

    let digest = digest_file(cluster.dfs(), "out/1", live_reader(&cluster))
        .unwrap()
        .0;
    assert_eq!(digest, reference, "failure must not change the output");
}

/// Without input replication, losing a node mid-job is unrecoverable:
/// the tracker reports which input partitions are gone (the RCMP
/// middleware's recovery trigger).
#[test]
fn unreplicated_input_loss_cancels_job() {
    let cluster = test_cluster(4);
    let cfg = DataGenConfig {
        replication: 1,
        ..DataGenConfig::test("input", 4, 30_000)
    };
    generate_input(cluster.dfs(), &cfg).unwrap();
    let chain = ChainBuilder::new(1, 4).build();
    let injector = Arc::new(ScriptedInjector::single(
        1,
        TriggerPoint::AfterMapWave(0),
        NodeId(1),
    ));
    let tracker = JobTracker::new(&cluster, injector);
    let err = tracker
        .run(&JobRun::full(chain.job(1).clone()), 1)
        .unwrap_err();
    match err {
        Error::JobInputLost {
            job,
            lost_partitions,
        } => {
            assert_eq!(job.raw(), 1);
            assert!(!lost_partitions.is_empty());
        }
        other => panic!("expected JobInputLost, got {other}"),
    }
}

/// Recompute mode re-executes only the tagged partition's reducer and
/// reuses every persisted map output (no mappers re-run), and the
/// regenerated partition is byte-equivalent to the original.
#[test]
fn recompute_single_partition_reuses_map_outputs() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 30_000);
    let chain = ChainBuilder::new(1, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();

    let (_, before_parts) = digest_file(cluster.dfs(), "out/1", live_reader(&cluster)).unwrap();

    // Simulate the partition being damaged, then recompute it.
    let instructions = RecomputeInstructions::new([PartitionId(2)], None);
    let report = tracker
        .run(&JobRun::recompute(chain.job(1).clone(), instructions), 2)
        .unwrap();
    assert_eq!(report.map_tasks_run, 0, "all map outputs reused");
    assert!(report.map_tasks_reused > 0);
    assert_eq!(report.reduce_tasks_run, 1);

    let (_, after_parts) = digest_file(cluster.dfs(), "out/1", live_reader(&cluster)).unwrap();
    assert_eq!(before_parts, after_parts, "recomputed partition identical");
}

/// Splitting a recomputed reducer preserves the partition's record
/// multiset while spreading its bytes over several nodes.
#[test]
fn split_recompute_preserves_partition_contents() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 40_000);
    let chain = ChainBuilder::new(1, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let (_, before_parts) = digest_file(cluster.dfs(), "out/1", live_reader(&cluster)).unwrap();

    let instructions = RecomputeInstructions::new([PartitionId(1)], Some(3));
    let report = tracker
        .run(&JobRun::recompute(chain.job(1).clone(), instructions), 2)
        .unwrap();
    assert_eq!(report.reduce_tasks_run, 3, "three splits ran");

    let (_, after_parts) = digest_file(cluster.dfs(), "out/1", live_reader(&cluster)).unwrap();
    assert_eq!(before_parts, after_parts);

    // The partition's segments now come from 3 writers.
    let meta = cluster.dfs().file_meta("out/1").unwrap();
    assert_eq!(meta.partitions[1].segments.len(), 3);
}

/// Splitting an unsplittable job is refused.
#[test]
fn unsplittable_job_rejects_split() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 10_000);
    let chain = ChainBuilder::new(1, 4).splittable(false).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let err = tracker
        .run(
            &JobRun::recompute(
                chain.job(1).clone(),
                RecomputeInstructions::new([PartitionId(0)], Some(2)),
            ),
            2,
        )
        .unwrap_err();
    assert!(matches!(err, Error::UnsplittableJob(_)));
}

/// The Fig.-5 scenario, engine-level: after an upstream partition is
/// regenerated by *split* reducers, the downstream job's persisted map
/// outputs for that partition are invalidated by the fingerprint check —
/// forcing unsafe reuse instead produces duplicated/missing keys.
#[test]
fn fig5_fingerprints_invalidate_stale_map_outputs() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 40_000);
    let chain = ChainBuilder::new(2, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    tracker.run(&JobRun::full(chain.job(2).clone()), 2).unwrap();
    let (good, _) = digest_file(cluster.dfs(), "out/2", live_reader(&cluster)).unwrap();

    // Regenerate out/1 partition 0 with splitting: same records, but
    // block boundaries (and thus fingerprints) change.
    tracker
        .run(
            &JobRun::recompute(
                chain.job(1).clone(),
                RecomputeInstructions::new([PartitionId(0)], Some(2)),
            ),
            3,
        )
        .unwrap();

    // Correct behaviour: recompute job 2's partition 0 with the safe
    // fingerprint rule. Mappers reading the regenerated partition re-run.
    let report = tracker
        .run(
            &JobRun::recompute(
                chain.job(2).clone(),
                RecomputeInstructions::new([PartitionId(0)], None),
            ),
            4,
        )
        .unwrap();
    assert!(
        report.map_tasks_run > 0,
        "stale fingerprints must force mapper re-runs"
    );
    let (after, _) = digest_file(cluster.dfs(), "out/2", live_reader(&cluster)).unwrap();
    assert_eq!(after, good, "safe reuse keeps the output correct");

    // Now the buggy behaviour the paper warns about. Fig. 5 needs a
    // *mix*: one mapper re-run against the regenerated (re-partitioned)
    // blocks while a sibling's stale output is reused — reusing *all*
    // stale outputs would be accidentally correct because the partition
    // holds the same record multiset. Regenerate out/1 partition 1 with
    // splitting, drop one of job 2's map outputs over that partition
    // (M1's loss in the figure), then recompute job 2's partition 1
    // while unsafely reusing the remaining stale outputs (M2 reused).
    tracker
        .run(
            &JobRun::recompute(
                chain.job(1).clone(),
                RecomputeInstructions::new([PartitionId(1)], Some(2)),
            ),
            5,
        )
        .unwrap();
    let store = cluster.map_outputs();
    let stale_keys: Vec<_> = store
        .keys_for_job(rcmp_model::JobId(2))
        .into_iter()
        .filter(|k| k.pid == PartitionId(1))
        .collect();
    assert!(stale_keys.len() >= 2, "need at least two mappers to mix");
    assert!(store.remove(&stale_keys[0]));

    let mut unsafe_instr = RecomputeInstructions::new([PartitionId(1)], None);
    unsafe_instr.unsafe_ignore_fingerprints = true;
    let report = tracker
        .run(&JobRun::recompute(chain.job(2).clone(), unsafe_instr), 6)
        .unwrap();
    assert!(
        report.map_tasks_run >= 1,
        "the dropped mapper re-runs on the regenerated blocks"
    );
    assert!(report.map_tasks_reused > 0, "stale siblings were reused");
    let (bad, _) = digest_file(cluster.dfs(), "out/2", live_reader(&cluster)).unwrap();
    assert_ne!(
        bad, good,
        "Fig. 5: mixing re-run and stale map outputs corrupts the job output"
    );
}

/// Map outputs persist across jobs and are dropped with their node.
#[test]
fn map_outputs_persist_and_die_with_node() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 20_000);
    let chain = ChainBuilder::new(1, 4).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    let total = cluster.map_outputs().len();
    assert!(total > 0);
    cluster.fail_node(NodeId(0));
    assert!(cluster.map_outputs().len() < total);
}

/// Hadoop baseline semantics: persist_map_outputs = false clears the
/// store at job end.
#[test]
fn hadoop_mode_discards_map_outputs() {
    let cluster = test_cluster(4);
    gen_input(&cluster, 4, 20_000);
    let chain = ChainBuilder::new(1, 4).replication(2).build();
    let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
    let mut run = JobRun::full(chain.job(1).clone());
    run.persist_map_outputs = false;
    tracker.run(&run, 1).unwrap();
    assert!(cluster.map_outputs().is_empty());
}

/// Double kill during one replicated job still completes with correct
/// output (REPL-3 survives two failures).
#[test]
fn repl3_survives_double_failure() {
    let reference = {
        let cluster = test_cluster(5);
        gen_input(&cluster, 5, 30_000);
        let chain = ChainBuilder::new(1, 5).replication(3).build();
        let tracker = JobTracker::new(&cluster, Arc::new(NoFailures));
        tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
        digest_file(cluster.dfs(), "out/1", live_reader(&cluster))
            .unwrap()
            .0
    };

    let cluster = test_cluster(5);
    gen_input(&cluster, 5, 30_000);
    let chain = ChainBuilder::new(1, 5).replication(3).build();
    let injector = Arc::new(ScriptedInjector::new([
        rcmp_engine::failure::Trigger {
            seq: 1,
            point: TriggerPoint::AfterMapWave(0),
            node: NodeId(1),
        },
        rcmp_engine::failure::Trigger {
            seq: 1,
            point: TriggerPoint::AfterReduceWave(0),
            node: NodeId(3),
        },
    ]));
    let tracker = JobTracker::new(&cluster, injector);
    let report = tracker.run(&JobRun::full(chain.job(1).clone()), 1).unwrap();
    assert_eq!(report.losses.len(), 2);
    let digest = digest_file(cluster.dfs(), "out/1", live_reader(&cluster))
        .unwrap()
        .0;
    assert_eq!(digest, reference);
}

/// Sanity for digests: two distinct inputs give distinct outputs.
#[test]
fn digests_distinguish_different_inputs() {
    let d1 = {
        let cluster = test_cluster(3);
        let cfg = DataGenConfig {
            seed: 1,
            ..DataGenConfig::test("input", 3, 10_000)
        };
        generate_input(cluster.dfs(), &cfg).unwrap();
        digest_file(cluster.dfs(), "input", NodeId(0)).unwrap().0
    };
    let d2 = {
        let cluster = test_cluster(3);
        let cfg = DataGenConfig {
            seed: 2,
            ..DataGenConfig::test("input", 3, 10_000)
        };
        generate_input(cluster.dfs(), &cfg).unwrap();
        digest_file(cluster.dfs(), "input", NodeId(0)).unwrap().0
    };
    assert_ne!(d1, d2);
    assert_ne!(OutputDigest::default(), d1);
}
