//! Deterministic randomness helpers.
//!
//! Every stochastic choice in the workspace (data generation, replica
//! placement, failure injection, key randomization) flows from an
//! explicit seed so that experiments and tests are reproducible bit for
//! bit. This module centralizes seed derivation so that two subsystems
//! never accidentally share a stream.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::partition::mix64;

/// Derives a child seed from a parent seed and a domain label.
///
/// The label keeps streams for different purposes independent even when
/// they share the experiment-level seed.
pub fn derive_seed(parent: u64, label: &str) -> u64 {
    let mut h = parent ^ 0x51_7c_c1_b7_27_22_0a_95;
    for &b in label.as_bytes() {
        h = mix64(h ^ b as u64);
    }
    mix64(h)
}

/// A fast deterministic RNG for the given seed and domain label.
pub fn rng_for(parent: u64, label: &str) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(parent, label))
}

/// Derives a per-index seed (e.g. one stream per mapper).
pub fn derive_indexed(parent: u64, label: &str, index: u64) -> u64 {
    mix64(derive_seed(parent, label) ^ mix64(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn labels_separate_streams() {
        assert_ne!(derive_seed(1, "datagen"), derive_seed(1, "placement"));
        assert_ne!(derive_seed(1, "a"), derive_seed(2, "a"));
    }

    #[test]
    fn deterministic_rng() {
        let a: u64 = rng_for(7, "x").gen();
        let b: u64 = rng_for(7, "x").gen();
        assert_eq!(a, b);
    }

    #[test]
    fn indexed_seeds_distinct() {
        let s: Vec<u64> = (0..100).map(|i| derive_indexed(3, "map", i)).collect();
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), s.len());
    }
}
