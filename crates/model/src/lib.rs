//! Shared domain types for the RCMP reproduction.
//!
//! This crate defines the vocabulary used by every other crate in the
//! workspace: identifiers for nodes, jobs, tasks, partitions and blocks;
//! the key-value [`record`] representation and its binary codec; cluster
//! and job [`config`]; the hash [`partition`]er (including the
//! second-level *split* partitioner used by RCMP's reducer splitting);
//! byte-size [`units`]; deterministic [`rng`] helpers; and the common
//! [`error`] type.
//!
//! Nothing in this crate is RCMP-specific policy — it is the neutral
//! substrate shared by the real execution engine (`rcmp-engine`), the
//! discrete-event simulator (`rcmp-sim`) and the recomputation planner
//! (`rcmp-core`).

pub mod config;
pub mod error;
pub mod hash;
pub mod ids;
pub mod partition;
pub mod record;
pub mod rng;
pub mod units;

pub use config::{
    ChainCacheConfig, ClusterConfig, ExecutorConfig, ExecutorKind, PlacementKernel, RetryPolicy,
    ServeConfig, ShuffleConfig, SlotConfig,
};
pub use error::{Error, Result};
pub use ids::{
    BlockId, JobId, MapTaskId, NodeId, PartitionId, ReduceTaskId, SplitId, TaskId, TenantId,
};
pub use partition::{HashPartitioner, Partitioner, SplitPartitioner};
pub use record::{Record, RecordReader, RecordWriter};
pub use units::ByteSize;
