//! Cluster-level configuration shared by the engine and the simulator.

use crate::error::{Error, Result};
use crate::units::ByteSize;
use serde::{Deserialize, Serialize};

/// Mapper/reducer slots per node ("SLOTS X-Y" in the paper's figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotConfig {
    /// Concurrent mapper tasks per node.
    pub map: u32,
    /// Concurrent reducer tasks per node.
    pub reduce: u32,
}

impl SlotConfig {
    pub const fn new(map: u32, reduce: u32) -> Self {
        Self { map, reduce }
    }

    /// The paper's "SLOTS 1-1".
    pub const ONE_ONE: SlotConfig = SlotConfig::new(1, 1);
    /// The paper's "SLOTS 2-2".
    pub const TWO_TWO: SlotConfig = SlotConfig::new(2, 2);
}

impl Default for SlotConfig {
    fn default() -> Self {
        SlotConfig::ONE_ONE
    }
}

/// Static description of a collocated cluster (every node both computes
/// and stores, §II).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute/storage nodes.
    pub nodes: u32,
    /// Slots per node.
    pub slots: SlotConfig,
    /// DFS block size (the paper uses 256 MB).
    pub block_size: ByteSize,
    /// Seconds after a node stops heart-beating before it is declared
    /// dead (the paper configures 30 s for both Hadoop and RCMP).
    pub failure_detection_secs: f64,
    /// Seed for all placement/scheduling randomness.
    pub seed: u64,
    /// Upper bound on recovery rounds the middleware attempts before
    /// surfacing [`Error::RecoveryExhausted`]: caps chain restarts,
    /// job-cancellation/recovery cycles and nested-failure replanning,
    /// so a permanently-failing scenario ends in a typed error instead
    /// of a livelock.
    pub max_recovery_attempts: u32,
}

impl ClusterConfig {
    /// A small default suitable for tests: 4 nodes, slots 1-1, 1 MiB blocks.
    pub fn small_test(nodes: u32) -> Self {
        Self {
            nodes,
            slots: SlotConfig::ONE_ONE,
            block_size: ByteSize::mib(1),
            failure_detection_secs: 30.0,
            seed: 0xc0ffee,
            max_recovery_attempts: 100,
        }
    }

    /// STIC-like config from the paper: 10 nodes, 256 MB blocks.
    pub fn stic(slots: SlotConfig) -> Self {
        Self {
            nodes: 10,
            slots,
            block_size: ByteSize::mib(256),
            failure_detection_secs: 30.0,
            seed: 0x57_1c,
            max_recovery_attempts: 100,
        }
    }

    /// DCO-like config from the paper: 60 nodes, 256 MB blocks.
    pub fn dco() -> Self {
        Self {
            nodes: 60,
            slots: SlotConfig::ONE_ONE,
            block_size: ByteSize::mib(256),
            failure_detection_secs: 30.0,
            seed: 0xdc0,
            max_recovery_attempts: 100,
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::Config("cluster needs at least one node".into()));
        }
        if self.slots.map == 0 || self.slots.reduce == 0 {
            return Err(Error::Config("slots per node must be positive".into()));
        }
        if self.block_size.is_zero() {
            return Err(Error::Config("block size must be positive".into()));
        }
        if self.failure_detection_secs <= 0.0 || self.failure_detection_secs.is_nan() {
            return Err(Error::Config(
                "failure detection timeout must be positive".into(),
            ));
        }
        if self.max_recovery_attempts == 0 {
            return Err(Error::Config(
                "max recovery attempts must be at least 1".into(),
            ));
        }
        Ok(())
    }

    /// Total mapper slots across the cluster.
    pub fn total_map_slots(&self) -> u32 {
        self.nodes * self.slots.map
    }

    /// Total reducer slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.nodes * self.slots.reduce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let stic = ClusterConfig::stic(SlotConfig::ONE_ONE);
        assert_eq!(stic.nodes, 10);
        assert_eq!(stic.block_size, ByteSize::mib(256));
        let dco = ClusterConfig::dco();
        assert_eq!(dco.nodes, 60);
        assert!(stic.validate().is_ok());
        assert!(dco.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut c = ClusterConfig::small_test(0);
        assert!(c.validate().is_err());
        c.nodes = 2;
        c.slots = SlotConfig::new(0, 1);
        assert!(c.validate().is_err());
        c.slots = SlotConfig::ONE_ONE;
        c.block_size = ByteSize::ZERO;
        assert!(c.validate().is_err());
        c.block_size = ByteSize::mib(1);
        c.failure_detection_secs = 0.0;
        assert!(c.validate().is_err());
        c.failure_detection_secs = 30.0;
        c.max_recovery_attempts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn slot_totals() {
        let c = ClusterConfig {
            nodes: 10,
            slots: SlotConfig::TWO_TWO,
            ..ClusterConfig::small_test(10)
        };
        assert_eq!(c.total_map_slots(), 20);
        assert_eq!(c.total_reduce_slots(), 20);
    }
}
