//! Cluster-level configuration shared by the engine and the simulator.

use crate::error::{Error, Result};
use crate::rng::derive_indexed;
use crate::units::ByteSize;
use serde::{Deserialize, Serialize};

/// Mapper/reducer slots per node ("SLOTS X-Y" in the paper's figures).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotConfig {
    /// Concurrent mapper tasks per node.
    pub map: u32,
    /// Concurrent reducer tasks per node.
    pub reduce: u32,
}

impl SlotConfig {
    pub const fn new(map: u32, reduce: u32) -> Self {
        Self { map, reduce }
    }

    /// The paper's "SLOTS 1-1".
    pub const ONE_ONE: SlotConfig = SlotConfig::new(1, 1);
    /// The paper's "SLOTS 2-2".
    pub const TWO_TWO: SlotConfig = SlotConfig::new(2, 2);
}

impl Default for SlotConfig {
    fn default() -> Self {
        SlotConfig::ONE_ONE
    }
}

/// Which wave-executor backend runs a job's slot tasks.
///
/// Both backends execute the *same* schedules — wave assignment is
/// decided by the shared policy kernel before any task starts — so the
/// choice trades OS resources against fidelity to Hadoop's
/// process-per-slot model, not correctness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExecutorKind {
    /// One OS thread per occupied slot per wave (Hadoop 1.0.3's
    /// TaskTracker model, and this repo's original behaviour).
    #[default]
    Threaded,
    /// A hand-rolled cooperative reactor: a bounded worker pool
    /// multiplexes every logical slot task of the wave, so thousands of
    /// simulated slots fit in one process with at most
    /// [`ExecutorConfig::workers`] OS threads.
    Async,
}

/// Wave-executor backend selection, threaded through [`ClusterConfig`]
/// so the engine, the chaos harness and the figure runner all pick a
/// backend in one place.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecutorConfig {
    /// Backend to execute waves with.
    pub backend: ExecutorKind,
    /// Worker OS threads for [`ExecutorKind::Async`]; `0` means
    /// auto-size to the machine's available parallelism. Ignored by
    /// [`ExecutorKind::Threaded`].
    pub workers: u32,
    /// Cooperatively cancel the rest of a wave once one of its tasks
    /// hits a fatal (node-death-shaped) failure, so a poisoned wave
    /// drains early instead of running every remaining slot task.
    ///
    /// Off by default: with cancellation on, *which* tasks of a
    /// poisoned wave completed depends on worker timing, so wave counts
    /// (and therefore randomized fault schedules keyed to wave-indexed
    /// trigger points) stop being a pure function of the seed.
    pub cancel_on_fatal: bool,
}

impl Default for ExecutorConfig {
    fn default() -> Self {
        Self {
            backend: ExecutorKind::Threaded,
            workers: 0,
            cancel_on_fatal: false,
        }
    }
}

impl ExecutorConfig {
    /// The async backend with auto-sized workers.
    pub fn async_auto() -> Self {
        Self {
            backend: ExecutorKind::Async,
            ..Self::default()
        }
    }

    /// The async backend with a fixed worker count.
    pub fn async_workers(workers: u32) -> Self {
        Self {
            backend: ExecutorKind::Async,
            workers,
            ..Self::default()
        }
    }

    /// Enables [`ExecutorConfig::cancel_on_fatal`].
    pub fn with_cancel_on_fatal(mut self) -> Self {
        self.cancel_on_fatal = true;
        self
    }

    /// Backend override from the `RCMP_EXECUTOR` environment variable
    /// (`threaded`, `async`, or `async:<workers>`), falling back to the
    /// default when unset or unparseable. Lets whole test binaries be
    /// re-run under the other backend (the CI executor matrix) without
    /// touching each construction site.
    pub fn from_env_or_default() -> Self {
        match std::env::var("RCMP_EXECUTOR") {
            Ok(v) => Self::parse(&v).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }

    /// Parses a backend spec (`threaded` | `async` | `async:<workers>`).
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("threaded") {
            return Some(Self::default());
        }
        if spec.eq_ignore_ascii_case("async") {
            return Some(Self::async_auto());
        }
        let rest = spec
            .strip_prefix("async:")
            .or_else(|| spec.strip_prefix("ASYNC:"))?;
        rest.parse::<u32>().ok().map(Self::async_workers)
    }
}

/// Which placement kernel assigns tasks to nodes.
///
/// All kernels run the same wave arithmetic (§II) and produce
/// schedules byte-identical between the engine and the simulator; they
/// differ only in *which* pending task a node claims (and, for
/// [`PlacementKernel::CapacityWeighted`], how many).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementKernel {
    /// Hadoop's slot-pull: primary-local first, then any local replica,
    /// then steal the oldest pending task (the historical behaviour).
    #[default]
    Default,
    /// Like `Default`, but the steal fallback prefers a task with a
    /// replica anywhere in the claimer's *rack* before going truly
    /// remote (HDFS-style rack locality, §III-A).
    RackAware,
    /// Delay scheduling: a node with no local task skips its claim for
    /// up to `rounds` claim rounds, waiting for a local one to surface,
    /// before falling back to stealing.
    Delay {
        /// Claim rounds a node waits for a local task before stealing.
        rounds: u32,
    },
    /// Heterogeneous slot-pull: each node claims tasks (and packs
    /// waves) in proportion to its capacity weight from the membership
    /// record, so big nodes pull more work per round.
    CapacityWeighted,
    /// Partition-stable chain placement (M3R-style): a node first claims
    /// the map tasks whose input partition it holds in the inter-job
    /// [`ChainCacheConfig`] cache from the previous job, then falls back
    /// to the `Default` locality chain. With no cached affinity
    /// information it behaves exactly like `Default`.
    Stable,
}

impl PlacementKernel {
    /// Kernel override from the `RCMP_PLACEMENT` environment variable
    /// (`default`, `rack`, `delay:<rounds>`, or `capacity`), falling
    /// back to the default when unset or unparseable. Lets whole test
    /// binaries be re-run under another kernel (the CI placement
    /// matrix) without touching each construction site.
    pub fn from_env_or_default() -> Self {
        match std::env::var("RCMP_PLACEMENT") {
            Ok(v) => Self::parse(&v).unwrap_or_default(),
            Err(_) => Self::default(),
        }
    }

    /// Parses a kernel spec (`default` | `rack` | `delay:<rounds>` |
    /// `capacity` | `stable`).
    pub fn parse(spec: &str) -> Option<Self> {
        let spec = spec.trim();
        if spec.eq_ignore_ascii_case("default") {
            return Some(Self::Default);
        }
        if spec.eq_ignore_ascii_case("rack") {
            return Some(Self::RackAware);
        }
        if spec.eq_ignore_ascii_case("capacity") {
            return Some(Self::CapacityWeighted);
        }
        if spec.eq_ignore_ascii_case("stable") {
            return Some(Self::Stable);
        }
        let rest = spec
            .strip_prefix("delay:")
            .or_else(|| spec.strip_prefix("DELAY:"))?;
        rest.parse::<u32>()
            .ok()
            .map(|rounds| Self::Delay { rounds })
    }

    /// Short label for figure tables and CI logs.
    pub fn label(&self) -> String {
        match self {
            Self::Default => "default".into(),
            Self::RackAware => "rack".into(),
            Self::Delay { rounds } => format!("delay:{rounds}"),
            Self::CapacityWeighted => "capacity".into(),
            Self::Stable => "stable".into(),
        }
    }
}

/// Memory-budgeted inter-job block cache (the M3R-style fast path over
/// RCMP's persisted lineage): job *i*'s reducer outputs stay resident in
/// node memory so job *i+1*'s mappers read them without a DFS
/// round-trip, while every block is still written through to the DFS
/// (checksummed, replicated) so recomputation lineage is untouched.
///
/// The cache is a pure read-through overlay: turning it on or off never
/// changes job output bytes, only where the fault-free read comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChainCacheConfig {
    /// Whether the inter-job cache is active. Disabled by default: every
    /// read goes to the DFS exactly as before this option existed.
    pub enabled: bool,
    /// Total bytes of reducer output the cache may keep resident across
    /// the cluster. Partitions that don't fit are spilled through to the
    /// DFS only (they were persisted anyway); a budget smaller than one
    /// partition degrades to pure spill-through, i.e. today's behaviour.
    pub budget: ByteSize,
}

impl Default for ChainCacheConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            budget: ByteSize::ZERO,
        }
    }
}

impl ChainCacheConfig {
    /// An enabled cache with the given byte budget.
    pub fn enabled(budget: ByteSize) -> Self {
        Self {
            enabled: true,
            budget,
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.enabled && self.budget.is_zero() {
            return Err(Error::Config(
                "chain cache budget must be positive when enabled".into(),
            ));
        }
        Ok(())
    }
}

/// Shuffle data-path tuning: streaming merge vs the legacy sort-all
/// oracle, merge fan-in, and block-store sharding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShuffleConfig {
    /// Use the k-way streaming merge over indexed, pre-sorted map
    /// buckets. When `false` the reducer falls back to the legacy
    /// collect-all-then-sort path, kept as the differential-testing
    /// oracle (both produce byte-identical output).
    pub streaming: bool,
    /// Maximum merge fan-in: when a reducer has more sorted runs than
    /// this, the smallest runs are coalesced pairwise first so the heap
    /// never holds more than `max_merge_width` cursors.
    pub max_merge_width: u32,
    /// Shards per node block store (keyed by `BlockId` hash). `1`
    /// degenerates to the old single-lock store and is kept as the
    /// accounting oracle for the sharded path.
    pub store_shards: u32,
}

impl Default for ShuffleConfig {
    fn default() -> Self {
        Self {
            streaming: true,
            max_merge_width: 64,
            store_shards: 8,
        }
    }
}

impl ShuffleConfig {
    /// The legacy collect-all-then-sort path with a single-lock store.
    pub fn legacy() -> Self {
        Self {
            streaming: false,
            store_shards: 1,
            ..Self::default()
        }
    }
}

/// Retry budgets and seeded exponential backoff for the engine's
/// recovery paths (and the simulator's model of them).
///
/// The budgets replace the tracker's historical flat constants; the
/// backoff replaces immediate lockstep retries, which under a chaos
/// storm made every failing fetch hammer the flaky path at the same
/// instant (the retry-herd hazard). Delays use *full jitter*: attempt
/// `a` sleeps a uniform value in `[0, min(max, base·2^(a−1))]` ms.
///
/// The jitter is a pure function of `(site_seed, attempt)` — no RNG
/// state, no wall clock — so two retry sites with distinct seeds get
/// distinct schedules while a replay of the same seed reproduces every
/// delay exactly, keeping chaos replays under `async:1` byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Transient shuffle failures absorbed per reduce-task execution
    /// before the attempt is abandoned and the task rescheduled.
    pub shuffle_attempts: u32,
    /// Times a single reduce task may come back retryable before the
    /// job gives up with a typed `RecoveryExhausted` error.
    pub task_retries: u32,
    /// Backoff ceiling for the first retry, milliseconds.
    pub base_backoff_ms: u64,
    /// Hard cap on any single backoff delay, milliseconds.
    pub max_backoff_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            shuffle_attempts: 4,
            task_retries: 8,
            base_backoff_ms: 2,
            max_backoff_ms: 16,
        }
    }
}

impl RetryPolicy {
    /// Disables backoff delays (budgets still apply) — the historical
    /// immediate-retry behaviour, kept for tests that count retries
    /// without wanting to sleep.
    pub fn no_backoff() -> Self {
        Self {
            base_backoff_ms: 0,
            max_backoff_ms: 0,
            ..Self::default()
        }
    }

    /// Full-jitter delay before retry `attempt` (1-based) at the retry
    /// site identified by `site_seed`: uniform in `[0, min(max_backoff,
    /// base_backoff · 2^(attempt−1))]`, deterministically derived.
    pub fn backoff_ms(&self, site_seed: u64, attempt: u32) -> u64 {
        if self.base_backoff_ms == 0 || self.max_backoff_ms == 0 {
            return 0;
        }
        let exp = attempt.saturating_sub(1).min(16);
        let ceiling = self
            .base_backoff_ms
            .saturating_mul(1u64 << exp)
            .min(self.max_backoff_ms);
        derive_indexed(site_seed, "retry-backoff", u64::from(attempt)) % (ceiling + 1)
    }

    /// The whole backoff schedule a site would follow over its attempt
    /// budget (diagnostics and lockstep-regression tests).
    pub fn schedule(&self, site_seed: u64, attempts: u32) -> Vec<u64> {
        (1..=attempts)
            .map(|a| self.backoff_ms(site_seed, a))
            .collect()
    }

    /// Sanity-checks the policy.
    pub fn validate(&self) -> Result<()> {
        if self.shuffle_attempts == 0 {
            return Err(Error::Config("shuffle attempts must be at least 1".into()));
        }
        if self.task_retries == 0 {
            return Err(Error::Config("task retries must be at least 1".into()));
        }
        if self.max_backoff_ms < self.base_backoff_ms {
            return Err(Error::Config(
                "max backoff must be at least the base backoff".into(),
            ));
        }
        Ok(())
    }
}

/// Configuration of the multi-tenant job service (`rcmp-serve`): the
/// long-lived serving layer that admits a stream of chain submissions
/// from many tenants and multiplexes them onto one shared cluster.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeConfig {
    /// Bounded submission-queue depth *per tenant*. A submission that
    /// would exceed it is refused with `Error::AdmissionRejected`
    /// (typed backpressure) instead of queueing unboundedly.
    pub queue_depth: u32,
    /// Chains allowed in flight concurrently across all tenants (the
    /// service's session slots).
    pub max_concurrent_chains: u32,
    /// Global wave-executor worker budget shared by every in-flight
    /// chain session: a new session leases up to
    /// [`ServeConfig::workers_per_chain`] workers from what remains.
    pub worker_budget: u32,
    /// Reactor workers requested per chain session (the lease is capped
    /// by what the global budget has left, never below 1).
    pub workers_per_chain: u32,
    /// Deficit round-robin quantum (cost units credited per tenant
    /// weight per arbitration round). Chain cost is its job count, so
    /// the default lets a weight-1 tenant win a short chain each round.
    pub quantum: u64,
    /// Seed for admission-rejection backoff hints.
    pub seed: u64,
    /// Backoff shape for admission retry-after hints (reuses the
    /// engine's seeded full-jitter convention).
    pub retry: RetryPolicy,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_depth: 8,
            max_concurrent_chains: 4,
            worker_budget: 8,
            workers_per_chain: 2,
            quantum: 4,
            seed: 0x5e7e,
            retry: RetryPolicy::default(),
        }
    }
}

impl ServeConfig {
    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.queue_depth == 0 {
            return Err(Error::Config("serve queue depth must be at least 1".into()));
        }
        if self.max_concurrent_chains == 0 {
            return Err(Error::Config(
                "serve needs at least one concurrent chain slot".into(),
            ));
        }
        if self.worker_budget == 0 {
            return Err(Error::Config("serve worker budget must be positive".into()));
        }
        if self.workers_per_chain == 0 {
            return Err(Error::Config(
                "serve workers per chain must be positive".into(),
            ));
        }
        if self.quantum == 0 {
            return Err(Error::Config("serve quantum must be positive".into()));
        }
        self.retry.validate()?;
        Ok(())
    }
}

/// Static description of a collocated cluster (every node both computes
/// and stores, §II).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of compute/storage nodes.
    pub nodes: u32,
    /// Slots per node.
    pub slots: SlotConfig,
    /// DFS block size (the paper uses 256 MB).
    pub block_size: ByteSize,
    /// Seconds after a node stops heart-beating before it is declared
    /// dead (the paper configures 30 s for both Hadoop and RCMP).
    pub failure_detection_secs: f64,
    /// Seed for all placement/scheduling randomness.
    pub seed: u64,
    /// Upper bound on recovery rounds the middleware attempts before
    /// surfacing [`Error::RecoveryExhausted`]: caps chain restarts,
    /// job-cancellation/recovery cycles and nested-failure replanning,
    /// so a permanently-failing scenario ends in a typed error instead
    /// of a livelock.
    pub max_recovery_attempts: u32,
    /// Which wave-executor backend the engine runs slot tasks on.
    #[serde(default)]
    pub executor: ExecutorConfig,
    /// Shuffle data-path tuning (streaming merge, fan-in, store shards).
    #[serde(default)]
    pub shuffle: ShuffleConfig,
    /// Retry budgets and seeded backoff for recovery paths.
    #[serde(default)]
    pub retry: RetryPolicy,
    /// Which placement kernel the scheduler assigns waves with.
    #[serde(default)]
    pub placement: PlacementKernel,
    /// Memory-budgeted inter-job block cache (disabled by default).
    #[serde(default)]
    pub chain_cache: ChainCacheConfig,
}

impl ClusterConfig {
    /// A small default suitable for tests: 4 nodes, slots 1-1, 1 MiB blocks.
    pub fn small_test(nodes: u32) -> Self {
        Self {
            nodes,
            slots: SlotConfig::ONE_ONE,
            block_size: ByteSize::mib(1),
            failure_detection_secs: 30.0,
            seed: 0xc0ffee,
            max_recovery_attempts: 100,
            executor: ExecutorConfig::default(),
            shuffle: ShuffleConfig::default(),
            retry: RetryPolicy::default(),
            placement: PlacementKernel::default(),
            chain_cache: ChainCacheConfig::default(),
        }
    }

    /// STIC-like config from the paper: 10 nodes, 256 MB blocks.
    pub fn stic(slots: SlotConfig) -> Self {
        Self {
            nodes: 10,
            slots,
            block_size: ByteSize::mib(256),
            failure_detection_secs: 30.0,
            seed: 0x57_1c,
            max_recovery_attempts: 100,
            executor: ExecutorConfig::default(),
            shuffle: ShuffleConfig::default(),
            retry: RetryPolicy::default(),
            placement: PlacementKernel::default(),
            chain_cache: ChainCacheConfig::default(),
        }
    }

    /// DCO-like config from the paper: 60 nodes, 256 MB blocks.
    pub fn dco() -> Self {
        Self {
            nodes: 60,
            slots: SlotConfig::ONE_ONE,
            block_size: ByteSize::mib(256),
            failure_detection_secs: 30.0,
            seed: 0xdc0,
            max_recovery_attempts: 100,
            executor: ExecutorConfig::default(),
            shuffle: ShuffleConfig::default(),
            retry: RetryPolicy::default(),
            placement: PlacementKernel::default(),
            chain_cache: ChainCacheConfig::default(),
        }
    }

    /// Sanity-checks the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.nodes == 0 {
            return Err(Error::Config("cluster needs at least one node".into()));
        }
        if self.slots.map == 0 || self.slots.reduce == 0 {
            return Err(Error::Config("slots per node must be positive".into()));
        }
        if self.block_size.is_zero() {
            return Err(Error::Config("block size must be positive".into()));
        }
        if self.failure_detection_secs <= 0.0 || self.failure_detection_secs.is_nan() {
            return Err(Error::Config(
                "failure detection timeout must be positive".into(),
            ));
        }
        if self.max_recovery_attempts == 0 {
            return Err(Error::Config(
                "max recovery attempts must be at least 1".into(),
            ));
        }
        if self.shuffle.max_merge_width < 2 {
            return Err(Error::Config("merge width must be at least 2".into()));
        }
        if self.shuffle.store_shards == 0 {
            return Err(Error::Config("store shards must be at least 1".into()));
        }
        self.retry.validate()?;
        self.chain_cache.validate()?;
        Ok(())
    }

    /// Total mapper slots across the cluster.
    pub fn total_map_slots(&self) -> u32 {
        self.nodes * self.slots.map
    }

    /// Total reducer slots across the cluster.
    pub fn total_reduce_slots(&self) -> u32 {
        self.nodes * self.slots.reduce
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let stic = ClusterConfig::stic(SlotConfig::ONE_ONE);
        assert_eq!(stic.nodes, 10);
        assert_eq!(stic.block_size, ByteSize::mib(256));
        let dco = ClusterConfig::dco();
        assert_eq!(dco.nodes, 60);
        assert!(stic.validate().is_ok());
        assert!(dco.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut c = ClusterConfig::small_test(0);
        assert!(c.validate().is_err());
        c.nodes = 2;
        c.slots = SlotConfig::new(0, 1);
        assert!(c.validate().is_err());
        c.slots = SlotConfig::ONE_ONE;
        c.block_size = ByteSize::ZERO;
        assert!(c.validate().is_err());
        c.block_size = ByteSize::mib(1);
        c.failure_detection_secs = 0.0;
        assert!(c.validate().is_err());
        c.failure_detection_secs = 30.0;
        c.max_recovery_attempts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn executor_spec_parsing() {
        assert_eq!(
            ExecutorConfig::parse("threaded"),
            Some(ExecutorConfig::default())
        );
        assert_eq!(
            ExecutorConfig::parse("async"),
            Some(ExecutorConfig::async_auto())
        );
        assert_eq!(
            ExecutorConfig::parse("async:4"),
            Some(ExecutorConfig::async_workers(4))
        );
        assert_eq!(ExecutorConfig::parse("async:lots"), None);
        assert_eq!(ExecutorConfig::parse("fibers"), None);
    }

    #[test]
    fn executor_defaults_to_threaded() {
        let cfg = ClusterConfig::small_test(4);
        assert_eq!(cfg.executor.backend, ExecutorKind::Threaded);
        assert_eq!(cfg.executor.workers, 0);
        assert!(!cfg.executor.cancel_on_fatal);
        assert_eq!(
            ExecutorConfig::async_workers(8).with_cancel_on_fatal(),
            ExecutorConfig {
                backend: ExecutorKind::Async,
                workers: 8,
                cancel_on_fatal: true,
            }
        );
    }

    #[test]
    fn backoff_is_deterministic_capped_and_site_distinct() {
        let r = RetryPolicy::default();
        // Same (site, attempt) always yields the same delay.
        assert_eq!(r.backoff_ms(42, 1), r.backoff_ms(42, 1));
        assert_eq!(r.schedule(42, 4), r.schedule(42, 4));
        // Every delay respects the per-attempt ceiling and the hard cap.
        for attempt in 1..=32 {
            let ceiling = r
                .base_backoff_ms
                .saturating_mul(1u64 << (attempt - 1).min(16))
                .min(r.max_backoff_ms);
            assert!(r.backoff_ms(7, attempt) <= ceiling);
        }
        // Distinct sites get distinct schedules (no retry herd).
        let schedules: Vec<_> = (0..8u64).map(|s| r.schedule(s, 6)).collect();
        let mut uniq = schedules.clone();
        uniq.sort();
        uniq.dedup();
        assert!(uniq.len() > 1, "all sites backed off in lockstep");
        // Zero base or cap disables delays entirely.
        assert_eq!(RetryPolicy::no_backoff().backoff_ms(42, 5), 0);
    }

    #[test]
    fn retry_validation() {
        assert!(RetryPolicy::default().validate().is_ok());
        let r = RetryPolicy {
            shuffle_attempts: 0,
            ..Default::default()
        };
        assert!(r.validate().is_err());
        let r = RetryPolicy {
            task_retries: 0,
            ..Default::default()
        };
        assert!(r.validate().is_err());
        let r = RetryPolicy {
            max_backoff_ms: RetryPolicy::default().base_backoff_ms - 1,
            ..Default::default()
        };
        assert!(r.validate().is_err());
        let mut c = ClusterConfig::small_test(4);
        c.retry.shuffle_attempts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn placement_spec_parsing() {
        assert_eq!(
            PlacementKernel::parse("default"),
            Some(PlacementKernel::Default)
        );
        assert_eq!(
            PlacementKernel::parse("rack"),
            Some(PlacementKernel::RackAware)
        );
        assert_eq!(
            PlacementKernel::parse("delay:3"),
            Some(PlacementKernel::Delay { rounds: 3 })
        );
        assert_eq!(
            PlacementKernel::parse("capacity"),
            Some(PlacementKernel::CapacityWeighted)
        );
        assert_eq!(
            PlacementKernel::parse("stable"),
            Some(PlacementKernel::Stable)
        );
        assert_eq!(PlacementKernel::Stable.label(), "stable");
        assert_eq!(PlacementKernel::parse("delay:soon"), None);
        assert_eq!(PlacementKernel::parse("anywhere"), None);
        assert_eq!(PlacementKernel::Delay { rounds: 3 }.label(), "delay:3");
        assert_eq!(
            ClusterConfig::small_test(2).placement,
            PlacementKernel::Default
        );
    }

    #[test]
    fn chain_cache_validation() {
        assert!(ChainCacheConfig::default().validate().is_ok());
        assert!(!ChainCacheConfig::default().enabled);
        assert!(ChainCacheConfig::enabled(ByteSize::mib(8)).validate().is_ok());
        assert!(ChainCacheConfig::enabled(ByteSize::ZERO).validate().is_err());
        let mut c = ClusterConfig::small_test(4);
        c.chain_cache = ChainCacheConfig::enabled(ByteSize::ZERO);
        assert!(c.validate().is_err());
    }

    #[test]
    fn slot_totals() {
        let c = ClusterConfig {
            nodes: 10,
            slots: SlotConfig::TWO_TWO,
            ..ClusterConfig::small_test(10)
        };
        assert_eq!(c.total_map_slots(), 20);
        assert_eq!(c.total_reduce_slots(), 20);
    }
}
