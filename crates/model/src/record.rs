//! Key-value records and their binary codec.
//!
//! The paper's workload uses binary records with randomized integer
//! keys. A [`Record`] is a `u64` key plus an opaque byte value. The
//! on-"disk" format (DFS blocks, persisted map outputs, shuffle
//! payloads) is a flat stream of `key (8B LE) | value_len (4B LE) |
//! value`, written by [`RecordWriter`] and decoded by [`RecordReader`]
//! without copying values out of the backing buffer (`Bytes::slice`).

use crate::error::{Error, Result};
use bytes::{BufMut, Bytes, BytesMut};

/// One key-value pair.
#[derive(Clone, PartialEq, Eq, Debug, Hash, PartialOrd, Ord)]
pub struct Record {
    pub key: u64,
    pub value: Bytes,
}

impl Record {
    pub fn new(key: u64, value: impl Into<Bytes>) -> Self {
        Self {
            key,
            value: value.into(),
        }
    }

    /// Encoded size of this record in bytes (header + value).
    pub fn encoded_len(&self) -> usize {
        8 + 4 + self.value.len()
    }

    /// Encodes this record directly into `buf` (the single encode
    /// implementation — every writer path funnels through here so a
    /// record is serialized exactly once on its way to a block).
    pub fn encode_into(&self, buf: &mut BytesMut) {
        buf.reserve(self.encoded_len());
        buf.put_u64_le(self.key);
        buf.put_u32_le(self.value.len() as u32);
        buf.put_slice(&self.value);
    }
}

/// Appends records to a growable buffer in the flat binary format.
#[derive(Default)]
pub struct RecordWriter {
    buf: BytesMut,
    count: usize,
}

impl RecordWriter {
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the buffer for roughly `bytes` of payload.
    pub fn with_capacity(bytes: usize) -> Self {
        Self {
            buf: BytesMut::with_capacity(bytes),
            count: 0,
        }
    }

    pub fn push(&mut self, rec: &Record) {
        rec.encode_into(&mut self.buf);
        self.count += 1;
    }

    /// Number of records written so far.
    pub fn len(&self) -> usize {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Bytes written so far.
    pub fn byte_len(&self) -> usize {
        self.buf.len()
    }

    /// Freezes the buffer into an immutable byte block.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// Iterates over the records of an encoded byte block.
///
/// Values are zero-copy slices of the input. Any truncation or a length
/// field running past the end of the buffer yields `Err(Codec)` once and
/// then the iterator fuses.
pub struct RecordReader {
    data: Bytes,
    pos: usize,
    failed: bool,
}

impl RecordReader {
    pub fn new(data: Bytes) -> Self {
        Self {
            data,
            pos: 0,
            failed: false,
        }
    }

    /// Decodes the whole block into a vector, failing on any corruption.
    pub fn decode_all(data: Bytes) -> Result<Vec<Record>> {
        RecordReader::new(data).collect()
    }
}

impl Iterator for RecordReader {
    type Item = Result<Record>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.pos >= self.data.len() {
            return None;
        }
        let remaining = self.data.len() - self.pos;
        if remaining < 12 {
            self.failed = true;
            return Some(Err(Error::Codec(format!(
                "truncated record header: {remaining} bytes left at offset {}",
                self.pos
            ))));
        }
        let key = u64::from_le_bytes(self.data[self.pos..self.pos + 8].try_into().unwrap());
        let len =
            u32::from_le_bytes(self.data[self.pos + 8..self.pos + 12].try_into().unwrap()) as usize;
        let start = self.pos + 12;
        if start + len > self.data.len() {
            self.failed = true;
            return Some(Err(Error::Codec(format!(
                "record value overruns block: need {len} bytes at offset {start}, block is {}",
                self.data.len()
            ))));
        }
        self.pos = start + len;
        Some(Ok(Record {
            key,
            value: self.data.slice(start..start + len),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Record> {
        vec![
            Record::new(1, &b"alpha"[..]),
            Record::new(u64::MAX, &b""[..]),
            Record::new(42, vec![0u8; 100]),
        ]
    }

    #[test]
    fn roundtrip() {
        let recs = sample();
        let mut w = RecordWriter::new();
        for r in &recs {
            w.push(r);
        }
        assert_eq!(w.len(), 3);
        let total: usize = recs.iter().map(Record::encoded_len).sum();
        assert_eq!(w.byte_len(), total);
        let got = RecordReader::decode_all(w.finish()).unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn empty_block() {
        let got = RecordReader::decode_all(Bytes::new()).unwrap();
        assert!(got.is_empty());
        assert!(RecordWriter::new().is_empty());
    }

    #[test]
    fn truncated_header_errors() {
        let mut w = RecordWriter::new();
        w.push(&Record::new(7, &b"xyz"[..]));
        let full = w.finish();
        let cut = full.slice(0..full.len() - 10); // cut into next header? no: cut into value+..
        let res = RecordReader::decode_all(cut);
        assert!(matches!(res, Err(Error::Codec(_))));
    }

    #[test]
    fn overrunning_value_errors() {
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u32_le(100); // claims 100 bytes, provides 2
        buf.put_slice(b"ab");
        let res = RecordReader::decode_all(buf.freeze());
        assert!(matches!(res, Err(Error::Codec(_))));
    }

    #[test]
    fn reader_fuses_after_error() {
        let mut buf = BytesMut::new();
        buf.put_slice(&[0u8; 5]); // garbage shorter than a header
        let mut rd = RecordReader::new(buf.freeze());
        assert!(rd.next().unwrap().is_err());
        assert!(rd.next().is_none());
    }

    #[test]
    fn zero_copy_values() {
        let mut w = RecordWriter::new();
        w.push(&Record::new(9, vec![7u8; 64]));
        let block = w.finish();
        let rec = RecordReader::new(block.clone()).next().unwrap().unwrap();
        // The value must alias the block's storage (zero copy).
        let block_range = block.as_ptr() as usize..block.as_ptr() as usize + block.len();
        assert!(block_range.contains(&(rec.value.as_ptr() as usize)));
    }
}
