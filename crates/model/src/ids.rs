//! Strongly-typed identifiers.
//!
//! Every entity that crosses a crate boundary gets a newtype id so that
//! a mapper index can never be confused with a node index or a reducer
//! partition. All ids are small `Copy` integers; collections key on them
//! with the standard hasher (ids are dense, so hashing is never hot
//! enough to matter — see the workspace perf notes).

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal, $repr:ty) => {
        $(#[$meta])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(pub $repr);

        impl $name {
            /// Returns the raw integer value.
            #[inline]
            pub fn raw(self) -> $repr {
                self.0
            }

            /// Returns the id as a `usize` index (for dense vectors).
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<$repr> for $name {
            #[inline]
            fn from(v: $repr) -> Self {
                Self(v)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }
    };
}

id_type!(
    /// A compute/storage node in the (collocated) cluster.
    NodeId,
    "n",
    u32
);
id_type!(
    /// A logical job in a multi-job computation. This is the *position in
    /// the chain/DAG* (stable across recomputations), not the paper's
    /// "next available integer" run counter — runs are counted separately
    /// by the middleware.
    JobId,
    "j",
    u32
);
id_type!(
    /// A reducer output partition within one job's output file. The paper
    /// assumes job output files are divided into one partition per
    /// reducer so lost key-value pairs can be traced to the reducer that
    /// produced them (§IV).
    PartitionId,
    "p",
    u32
);
id_type!(
    /// A split of a recomputed reducer (RCMP's finer scheduling
    /// granularity, §IV-B1). `SplitId(i)` of `k` handles the keys with
    /// `hash2(key) % k == i`.
    SplitId,
    "s",
    u32
);
id_type!(
    /// A block of a DFS file (unit of replication and of mapper input).
    BlockId,
    "b",
    u64
);
id_type!(
    /// A tenant of the multi-tenant job service (`rcmp-serve`). Every
    /// admitted chain belongs to exactly one tenant; the id scopes
    /// fair-share accounting, quota enforcement, span attribution and
    /// per-tenant observability.
    TenantId,
    "t",
    u32
);

/// Identifies one mapper task: the `index`-th input block of `job`.
///
/// Mapper identity is stable across recomputations: recomputing job `j`
/// re-runs a *subset* of the same mapper ids, which is what lets RCMP
/// reuse persisted map outputs from the initial run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MapTaskId {
    pub job: JobId,
    pub index: u32,
}

impl MapTaskId {
    pub fn new(job: JobId, index: u32) -> Self {
        Self { job, index }
    }
}

impl fmt::Display for MapTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/M{}", self.job, self.index)
    }
}

impl fmt::Debug for MapTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Identifies one reducer task: the reducer producing `partition` of
/// `job`'s output, optionally one *split* of it during a recomputation
/// run (`split = Some((id, of))` means split `id` out of `of`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ReduceTaskId {
    pub job: JobId,
    pub partition: PartitionId,
    /// `None` for a whole (unsplit) reducer; `Some((i, k))` for split `i`
    /// of `k` during recomputation.
    pub split: Option<(SplitId, u32)>,
}

impl ReduceTaskId {
    /// A whole (unsplit) reducer.
    pub fn whole(job: JobId, partition: PartitionId) -> Self {
        Self {
            job,
            partition,
            split: None,
        }
    }

    /// Split `i` of `k` of the reducer for `partition`.
    pub fn split(job: JobId, partition: PartitionId, i: SplitId, of: u32) -> Self {
        debug_assert!(i.raw() < of, "split index out of range");
        Self {
            job,
            partition,
            split: Some((i, of)),
        }
    }

    /// True if this task is a split of a reducer rather than a whole one.
    pub fn is_split(&self) -> bool {
        self.split.is_some()
    }
}

impl fmt::Display for ReduceTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.split {
            None => write!(f, "{}/R{}", self.job, self.partition.raw()),
            Some((i, k)) => write!(
                f,
                "{}/R{}.{}of{}",
                self.job,
                self.partition.raw(),
                i.raw(),
                k
            ),
        }
    }
}

impl fmt::Debug for ReduceTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Either kind of task (for schedulers, metrics and failure reports).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub enum TaskId {
    Map(MapTaskId),
    Reduce(ReduceTaskId),
}

impl TaskId {
    pub fn job(&self) -> JobId {
        match self {
            TaskId::Map(m) => m.job,
            TaskId::Reduce(r) => r.job,
        }
    }

    pub fn is_map(&self) -> bool {
        matches!(self, TaskId::Map(_))
    }
}

impl From<MapTaskId> for TaskId {
    fn from(m: MapTaskId) -> Self {
        TaskId::Map(m)
    }
}

impl From<ReduceTaskId> for TaskId {
    fn from(r: ReduceTaskId) -> Self {
        TaskId::Reduce(r)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskId::Map(m) => write!(f, "{m}"),
            TaskId::Reduce(r) => write!(f, "{r}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(3).to_string(), "n3");
        assert_eq!(JobId(1).to_string(), "j1");
        assert_eq!(MapTaskId::new(JobId(2), 7).to_string(), "j2/M7");
        assert_eq!(
            ReduceTaskId::whole(JobId(2), PartitionId(4)).to_string(),
            "j2/R4"
        );
        assert_eq!(
            ReduceTaskId::split(JobId(2), PartitionId(4), SplitId(1), 8).to_string(),
            "j2/R4.1of8"
        );
    }

    #[test]
    fn index_roundtrip() {
        let n = NodeId::from(42u32);
        assert_eq!(n.index(), 42);
        assert_eq!(n.raw(), 42);
    }

    #[test]
    fn task_id_job_accessor() {
        let m: TaskId = MapTaskId::new(JobId(5), 0).into();
        let r: TaskId = ReduceTaskId::whole(JobId(6), PartitionId(0)).into();
        assert_eq!(m.job(), JobId(5));
        assert_eq!(r.job(), JobId(6));
        assert!(m.is_map());
        assert!(!r.is_map());
    }

    #[test]
    fn split_predicate() {
        assert!(!ReduceTaskId::whole(JobId(0), PartitionId(0)).is_split());
        assert!(ReduceTaskId::split(JobId(0), PartitionId(0), SplitId(0), 2).is_split());
    }

    #[test]
    fn ordering_is_by_fields() {
        let a = ReduceTaskId::whole(JobId(1), PartitionId(0));
        let b = ReduceTaskId::whole(JobId(1), PartitionId(1));
        let c = ReduceTaskId::whole(JobId(2), PartitionId(0));
        assert!(a < b && b < c);
    }
}
