//! Hash partitioning, including RCMP's second-level split partitioner.
//!
//! A job's reducers are chosen by `hash1(key) % num_reducers`
//! ([`HashPartitioner`]). During a recomputation run, RCMP may *split*
//! a recomputed reducer `k` ways: split `i` handles the keys of that
//! reducer with `hash2(key) % k == i` ([`SplitPartitioner`]). The two
//! hash functions must be distinct: if `hash2 == hash1`, all keys of
//! reducer `r` in an `N`-reducer job satisfy `hash1(key) % N == r`, and
//! for split counts sharing factors with `N` the second-level modulus
//! would distribute them pathologically. We use two differently-seeded
//! finalizers of the same 64-bit mixer.
//!
//! The Fig.-5 correctness subtlety lives here too: a *persisted* map
//! output is bucketed with the first-level partitioner only. When a
//! reducer is split, the map-side buckets feeding it must be produced
//! with the second-level partitioner as well — so persisted map outputs
//! for split reducers cannot be reused. The planner enforces this; this
//! module provides the primitive both sides agree on.

use crate::ids::{PartitionId, SplitId};

/// Mixes a 64-bit key (SplitMix64 finalizer). Good avalanche, cheap,
/// deterministic across platforms — exactly what a partitioner needs.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Something that maps a record key to a bucket in `0..buckets()`.
pub trait Partitioner: Send + Sync {
    fn buckets(&self) -> u32;
    fn bucket_of(&self, key: u64) -> u32;
}

/// First-level partitioner: key → reducer partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HashPartitioner {
    num_partitions: u32,
}

impl HashPartitioner {
    pub fn new(num_partitions: u32) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        Self { num_partitions }
    }

    /// The reducer partition responsible for `key`.
    #[inline]
    pub fn partition_of(&self, key: u64) -> PartitionId {
        PartitionId((mix64(key) % self.num_partitions as u64) as u32)
    }
}

impl Partitioner for HashPartitioner {
    fn buckets(&self) -> u32 {
        self.num_partitions
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> u32 {
        self.partition_of(key).raw()
    }
}

/// Seed offsetting the split-level hash from the partition-level hash.
const SPLIT_SEED: u64 = 0xa076_1d64_78bd_642f;

/// Second-level partitioner: key → split of one (recomputed) reducer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SplitPartitioner {
    num_splits: u32,
}

impl SplitPartitioner {
    pub fn new(num_splits: u32) -> Self {
        assert!(num_splits > 0, "need at least one split");
        Self { num_splits }
    }

    /// The split responsible for `key` among the splits of its reducer.
    ///
    /// All values of one key land in the same split, preserving reduce
    /// semantics (§IV-B1: "each split still is responsible for all the
    /// values belonging to one key").
    #[inline]
    pub fn split_of(&self, key: u64) -> SplitId {
        SplitId((mix64(key ^ SPLIT_SEED) % self.num_splits as u64) as u32)
    }
}

impl Partitioner for SplitPartitioner {
    fn buckets(&self) -> u32 {
        self.num_splits
    }

    #[inline]
    fn bucket_of(&self, key: u64) -> u32 {
        self.split_of(key).raw()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn partition_in_range() {
        let p = HashPartitioner::new(10);
        for k in 0..10_000u64 {
            assert!(p.partition_of(k).raw() < 10);
        }
    }

    #[test]
    fn split_in_range() {
        let s = SplitPartitioner::new(8);
        for k in 0..10_000u64 {
            assert!(s.split_of(k).raw() < 8);
        }
    }

    #[test]
    fn single_bucket_is_total() {
        let p = HashPartitioner::new(1);
        let s = SplitPartitioner::new(1);
        for k in [0, 1, u64::MAX, 12345] {
            assert_eq!(p.partition_of(k), PartitionId(0));
            assert_eq!(s.split_of(k), SplitId(0));
        }
    }

    #[test]
    fn partitions_reasonably_balanced() {
        let p = HashPartitioner::new(16);
        let mut counts = [0u32; 16];
        for k in 0..160_000u64 {
            counts[p.partition_of(k).index()] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // Within 5% of perfect balance for sequential keys.
        assert!(max - min < 10_000 / 2, "imbalance {min}..{max}");
    }

    /// The crux of Fig. 5: the split-level hash must not be degenerate
    /// on the key set of one first-level partition.
    #[test]
    fn split_hash_independent_of_partition_hash() {
        let p = HashPartitioner::new(10);
        let s = SplitPartitioner::new(2);
        // Keys all belonging to partition 3 of 10.
        let keys: Vec<u64> = (0..1_000_000u64)
            .filter(|&k| p.partition_of(k) == PartitionId(3))
            .take(10_000)
            .collect();
        let ones = keys
            .iter()
            .filter(|&&k| s.split_of(k) == SplitId(1))
            .count();
        let frac = ones as f64 / keys.len() as f64;
        assert!(
            (frac - 0.5).abs() < 0.05,
            "split hash correlated with partition hash: {frac}"
        );
    }

    #[test]
    fn deterministic() {
        let p = HashPartitioner::new(7);
        let s = SplitPartitioner::new(3);
        assert_eq!(p.partition_of(99), p.partition_of(99));
        assert_eq!(s.split_of(99), s.split_of(99));
    }

    proptest! {
        #[test]
        fn prop_partition_in_range(key in any::<u64>(), n in 1u32..100) {
            let p = HashPartitioner::new(n);
            prop_assert!(p.partition_of(key).raw() < n);
        }

        #[test]
        fn prop_split_stable_for_key(key in any::<u64>(), k in 1u32..64) {
            let s = SplitPartitioner::new(k);
            prop_assert_eq!(s.split_of(key), s.split_of(key));
        }

        /// Union of split buckets over all splits covers every key exactly once.
        #[test]
        fn prop_splits_partition_the_keyspace(key in any::<u64>(), k in 1u32..64) {
            let s = SplitPartitioner::new(k);
            let owner = s.split_of(key);
            let owners = (0..k).filter(|&i| s.split_of(key) == SplitId(i)).count();
            prop_assert_eq!(owners, 1);
            prop_assert!(owner.raw() < k);
        }
    }
}
