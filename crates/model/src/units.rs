//! Byte-size arithmetic.
//!
//! The evaluation deals in block sizes (256 MB), per-node inputs
//! (4 GB / 20 GB) and cluster totals (40 GB / 1.2 TB). [`ByteSize`]
//! keeps those quantities typed and readable in configs and reports.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct ByteSize(pub u64);

pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * KIB;
pub const GIB: u64 = 1024 * MIB;
pub const TIB: u64 = 1024 * GIB;

impl ByteSize {
    pub const ZERO: ByteSize = ByteSize(0);

    pub const fn bytes(n: u64) -> Self {
        Self(n)
    }
    pub const fn kib(n: u64) -> Self {
        Self(n * KIB)
    }
    pub const fn mib(n: u64) -> Self {
        Self(n * MIB)
    }
    pub const fn gib(n: u64) -> Self {
        Self(n * GIB)
    }
    pub const fn tib(n: u64) -> Self {
        Self(n * TIB)
    }

    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Bytes as `f64` (for bandwidth/time arithmetic in the simulator).
    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    /// Number of whole blocks of `block` needed to hold `self`
    /// (ceiling division). Zero bytes take zero blocks.
    pub fn blocks_of(self, block: ByteSize) -> u64 {
        assert!(block.0 > 0, "block size must be positive");
        self.0.div_ceil(block.0)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: Self) -> Self {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: Self) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: Self) -> Self {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> Self {
        ByteSize(self.0 * rhs)
    }
}

impl Div<u64> for ByteSize {
    type Output = ByteSize;
    fn div(self, rhs: u64) -> Self {
        ByteSize(self.0 / rhs)
    }
}

impl Div<ByteSize> for ByteSize {
    type Output = f64;
    fn div(self, rhs: ByteSize) -> f64 {
        self.0 as f64 / rhs.0 as f64
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ByteSize::ZERO, Add::add)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= TIB && b.is_multiple_of(GIB) {
            write!(f, "{:.1}TiB", b as f64 / TIB as f64)
        } else if b >= GIB {
            write!(f, "{:.1}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.1}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.1}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl fmt::Debug for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale() {
        assert_eq!(ByteSize::kib(1).as_u64(), 1024);
        assert_eq!(ByteSize::mib(1).as_u64(), 1024 * 1024);
        assert_eq!(ByteSize::gib(2), ByteSize::mib(2048));
        assert_eq!(ByteSize::tib(1), ByteSize::gib(1024));
    }

    #[test]
    fn blocks_of_rounds_up() {
        let blk = ByteSize::mib(256);
        assert_eq!(ByteSize::gib(4).blocks_of(blk), 16); // STIC: 16 mappers/node
        assert_eq!(ByteSize::gib(20).blocks_of(blk), 80); // DCO: ~80 mappers/node
        assert_eq!(ByteSize::bytes(1).blocks_of(blk), 1);
        assert_eq!(ByteSize::ZERO.blocks_of(blk), 0);
    }

    #[test]
    fn arithmetic() {
        let a = ByteSize::mib(100);
        let b = ByteSize::mib(28);
        assert_eq!(a + b, ByteSize::mib(128));
        assert_eq!(a - b, ByteSize::mib(72));
        assert_eq!(a * 2, ByteSize::mib(200));
        assert_eq!(a / 4, ByteSize::mib(25));
        assert!((a / b - 100.0 / 28.0).abs() < 1e-12);
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
    }

    #[test]
    fn sum_iterator() {
        let total: ByteSize = (0..4).map(|_| ByteSize::mib(10)).sum();
        assert_eq!(total, ByteSize::mib(40));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(ByteSize::bytes(5).to_string(), "5B");
        assert_eq!(ByteSize::kib(3).to_string(), "3.0KiB");
        assert_eq!(ByteSize::mib(256).to_string(), "256.0MiB");
        assert_eq!(ByteSize::gib(40).to_string(), "40.0GiB");
        assert_eq!(
            (ByteSize::tib(1) + ByteSize::gib(205)).to_string(),
            "1.2TiB"
        );
    }
}
