//! The workspace-wide error type.
//!
//! One flat enum keeps error plumbing simple across the DFS, engine and
//! planner crates; variants carry enough context to render a useful
//! message without borrowing.

use crate::ids::{JobId, NodeId, PartitionId, TaskId, TenantId};
use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors surfaced by the DFS, the engine and the RCMP middleware.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// A DFS path does not exist in the namespace.
    FileNotFound(String),
    /// A DFS path already exists and overwrite was not requested.
    FileExists(String),
    /// All replicas of a block (or a whole partition) are gone.
    DataLoss {
        path: String,
        partition: Option<PartitionId>,
    },
    /// A node id is unknown or the node is dead.
    NodeUnavailable(NodeId),
    /// Every node in the cluster is dead: there is nowhere to place a
    /// task. Surfaced by the scheduling kernel instead of aborting, so
    /// a fully-failed cluster escalates through normal error plumbing.
    NoLiveNodes,
    /// Not enough live nodes to place the requested number of replicas.
    InsufficientReplicaTargets { wanted: usize, alive: usize },
    /// A task failed (node death mid-task, or a UDF error).
    TaskFailed { task: TaskId, reason: String },
    /// A job cannot continue: some of its input was irreversibly lost.
    /// Carries what the middleware needs to plan recovery.
    JobInputLost {
        job: JobId,
        lost_partitions: Vec<PartitionId>,
    },
    /// The whole job failed for a non-recoverable reason.
    JobFailed { job: JobId, reason: String },
    /// Recovery gave up: the configured retry/replanning budget
    /// (`ClusterConfig::max_recovery_attempts`, or the engine's per-task
    /// retry budget) was exhausted without converging. Surfaced instead
    /// of looping forever on a permanently-failing scenario.
    RecoveryExhausted {
        job: JobId,
        attempts: u32,
        reason: String,
    },
    /// The job service refused a chain submission: the tenant's bounded
    /// submission queue is full (or the tenant is unknown). Carries a
    /// seeded-backoff retry hint so rejected clients don't hammer the
    /// admission path in lockstep (the PR 6 retry-herd convention).
    AdmissionRejected {
        tenant: TenantId,
        /// Suggested wait before resubmitting, milliseconds.
        retry_after_ms: u64,
    },
    /// The wave executor shut down before running a task to completion:
    /// a worker observed a poisoned wave (panicked task or fatal-fault
    /// cancellation) and abandoned the remaining slot tasks.
    ExecutorShutdown { reason: String },
    /// A job was cancelled by the middleware (e.g. to start recovery).
    JobCancelled(JobId),
    /// The user asked to split a reducer of a job marked unsplittable
    /// (e.g. the paper's top-k example, §IV-B1).
    UnsplittableJob(JobId),
    /// Malformed record stream (codec error).
    Codec(String),
    /// Invalid configuration (zero nodes, zero slots, …).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::FileNotFound(p) => write!(f, "file not found: {p}"),
            Error::FileExists(p) => write!(f, "file already exists: {p}"),
            Error::DataLoss { path, partition } => match partition {
                Some(pt) => write!(f, "irreversible data loss: {path} partition {pt}"),
                None => write!(f, "irreversible data loss: {path}"),
            },
            Error::NodeUnavailable(n) => write!(f, "node unavailable: {n}"),
            Error::NoLiveNodes => write!(f, "no live nodes to schedule on"),
            Error::InsufficientReplicaTargets { wanted, alive } => {
                write!(f, "cannot place {wanted} replicas: only {alive} live nodes")
            }
            Error::TaskFailed { task, reason } => write!(f, "task {task} failed: {reason}"),
            Error::JobInputLost {
                job,
                lost_partitions,
            } => write!(
                f,
                "job {job} input lost ({} partitions)",
                lost_partitions.len()
            ),
            Error::JobFailed { job, reason } => write!(f, "job {job} failed: {reason}"),
            Error::RecoveryExhausted {
                job,
                attempts,
                reason,
            } => write!(
                f,
                "recovery exhausted for job {job} after {attempts} attempts: {reason}"
            ),
            Error::AdmissionRejected {
                tenant,
                retry_after_ms,
            } => write!(
                f,
                "admission rejected for tenant {tenant}: queue full, retry after {retry_after_ms} ms"
            ),
            Error::ExecutorShutdown { reason } => {
                write!(f, "executor shut down: {reason}")
            }
            Error::JobCancelled(j) => write!(f, "job {j} cancelled"),
            Error::UnsplittableJob(j) => write!(f, "job {j} does not allow reducer splitting"),
            Error::Codec(m) => write!(f, "record codec error: {m}"),
            Error::Config(m) => write!(f, "invalid configuration: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::MapTaskId;

    #[test]
    fn display_messages() {
        assert_eq!(
            Error::FileNotFound("out/1".into()).to_string(),
            "file not found: out/1"
        );
        assert_eq!(
            Error::NodeUnavailable(NodeId(2)).to_string(),
            "node unavailable: n2"
        );
        assert_eq!(
            Error::NoLiveNodes.to_string(),
            "no live nodes to schedule on"
        );
        let e = Error::TaskFailed {
            task: MapTaskId::new(JobId(1), 3).into(),
            reason: "node died".into(),
        };
        assert_eq!(e.to_string(), "task j1/M3 failed: node died");
    }

    #[test]
    fn recovery_exhausted_message() {
        let e = Error::RecoveryExhausted {
            job: JobId(3),
            attempts: 8,
            reason: "reduce task kept failing".into(),
        };
        assert_eq!(
            e.to_string(),
            "recovery exhausted for job j3 after 8 attempts: reduce task kept failing"
        );
    }

    #[test]
    fn admission_rejected_message() {
        let e = Error::AdmissionRejected {
            tenant: TenantId(3),
            retry_after_ms: 12,
        };
        assert_eq!(
            e.to_string(),
            "admission rejected for tenant t3: queue full, retry after 12 ms"
        );
    }

    #[test]
    fn executor_shutdown_message() {
        let e = Error::ExecutorShutdown {
            reason: "wave cancelled after fatal fault".into(),
        };
        assert_eq!(
            e.to_string(),
            "executor shut down: wave cancelled after fatal fault"
        );
    }

    #[test]
    fn data_loss_with_partition() {
        let e = Error::DataLoss {
            path: "out/2".into(),
            partition: Some(PartitionId(5)),
        };
        assert!(e.to_string().contains("partition p5"));
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&Error::JobCancelled(JobId(1)));
    }
}
