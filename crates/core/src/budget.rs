//! Storage-budget enforcement for persisted outputs.
//!
//! RCMP "effectively trad[es] off storage space for recomputation
//! speed-up" (§IV-A) and notes that "in storage-constrained
//! environments, RCMP may need to more aggressively reclaim storage
//! space even in-between replications" (§IV-C). This module implements
//! that: when the persisted map outputs exceed a byte budget, evict at
//! wave granularity (the paper's sketched policy) until back under.
//!
//! Eviction order: oldest jobs first, their last waves first. Rationale:
//! a failure's cascade reaches old jobs only through long chains of
//! invalidated mappers, so old persisted outputs deliver the least
//! expected speed-up per byte; within a job, evicting whole waves means
//! recovery pays whole extra map waves rather than straggler tasks.

use crate::dag::JobGraph;
use crate::reclaim::evict_last_waves;
use rcmp_engine::Cluster;
use rcmp_model::Result;

/// A byte budget over persisted map outputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StorageBudget {
    /// Maximum persisted map-output payload bytes.
    pub max_persisted_bytes: u64,
}

/// What an enforcement pass evicted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvictionStats {
    pub entries_evicted: usize,
    pub bytes_before: u64,
    pub bytes_after: u64,
}

/// Evicts persisted map outputs (oldest job first, last waves first)
/// until the store fits the budget. `tasks_per_wave` is the cluster's
/// concurrent mapper capacity (nodes × map slots).
pub fn enforce_budget(
    cluster: &Cluster,
    graph: &JobGraph,
    budget: StorageBudget,
    tasks_per_wave: usize,
) -> Result<EvictionStats> {
    let store = cluster.map_outputs();
    let mut stats = EvictionStats {
        bytes_before: store.total_bytes(),
        ..EvictionStats::default()
    };
    stats.bytes_after = stats.bytes_before;
    if stats.bytes_before <= budget.max_persisted_bytes {
        return Ok(stats);
    }
    let order = graph.submission_order()?;
    'outer: for job in order {
        // Wave by wave from this job until it is empty or we fit.
        loop {
            if store.total_bytes() <= budget.max_persisted_bytes {
                break 'outer;
            }
            let evicted = evict_last_waves(cluster, job, tasks_per_wave.max(1), 1);
            stats.entries_evicted += evicted;
            if evicted == 0 {
                break; // job exhausted, move to the next
            }
        }
    }
    stats.bytes_after = store.total_bytes();
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_dfs::PlacementPolicy;
    use rcmp_engine::{IdentityMapper, IdentityReducer, JobSpec, MapInputKey};
    use rcmp_model::{ClusterConfig, JobId, NodeId, PartitionId, ReduceTaskId};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn spec(job: u32, input: &str, output: &str) -> JobSpec {
        JobSpec {
            job: JobId(job),
            input: input.into(),
            output: output.into(),
            num_reducers: 1,
            output_replication: 1,
            placement: PlacementPolicy::WriterLocal,
            mapper: Arc::new(IdentityMapper),
            reducer: Arc::new(IdentityReducer),
            combiner: None,
            splittable: true,
        }
    }

    fn graph() -> JobGraph {
        JobGraph::new([spec(1, "input", "out/1"), spec(2, "out/1", "out/2")]).unwrap()
    }

    fn fill(cluster: &Cluster, job: u32, entries: u32, bytes_each: usize) {
        for idx in 0..entries {
            let mut buckets = HashMap::new();
            buckets.insert(
                ReduceTaskId::whole(JobId(job), PartitionId(0)),
                bytes::Bytes::from(vec![0u8; bytes_each]),
            );
            cluster.map_outputs().insert(
                MapInputKey::new(JobId(job), PartitionId(0), idx),
                NodeId(0),
                0,
                buckets,
            );
        }
    }

    #[test]
    fn under_budget_is_a_no_op() {
        let cluster = Cluster::new(ClusterConfig::small_test(2));
        fill(&cluster, 1, 4, 100);
        let stats = enforce_budget(
            &cluster,
            &graph(),
            StorageBudget {
                max_persisted_bytes: 10_000,
            },
            2,
        )
        .unwrap();
        assert_eq!(stats.entries_evicted, 0);
        assert_eq!(cluster.map_outputs().len(), 4);
    }

    #[test]
    fn evicts_oldest_job_waves_first() {
        let cluster = Cluster::new(ClusterConfig::small_test(2));
        fill(&cluster, 1, 6, 100); // oldest job: 600 bytes
        fill(&cluster, 2, 6, 100); // newest job: 600 bytes
        let stats = enforce_budget(
            &cluster,
            &graph(),
            StorageBudget {
                max_persisted_bytes: 800,
            },
            2, // waves of 2 entries
        )
        .unwrap();
        assert!(stats.entries_evicted >= 4);
        assert!(cluster.map_outputs().total_bytes() <= 800);
        // Job 2's outputs survive; job 1 was drained first.
        assert_eq!(cluster.map_outputs().keys_for_job(JobId(2)).len(), 6);
        assert!(cluster.map_outputs().keys_for_job(JobId(1)).len() <= 2);
    }

    #[test]
    fn drains_multiple_jobs_when_needed() {
        let cluster = Cluster::new(ClusterConfig::small_test(2));
        fill(&cluster, 1, 4, 100);
        fill(&cluster, 2, 4, 100);
        let stats = enforce_budget(
            &cluster,
            &graph(),
            StorageBudget {
                max_persisted_bytes: 100,
            },
            4,
        )
        .unwrap();
        assert!(cluster.map_outputs().total_bytes() <= 100);
        assert_eq!(stats.bytes_before, 800);
        assert!(stats.bytes_after <= 100);
    }

    #[test]
    fn eviction_only_slows_recovery_never_breaks_it() {
        // End-to-end: run a chain, evict EVERYTHING, then recover from a
        // failure — the planner simply re-runs more mappers.
        use crate::driver::ChainDriver;
        use crate::strategy::Strategy;
        use rcmp_engine::{ScriptedInjector, TriggerPoint};

        let cluster = Cluster::new(ClusterConfig::small_test(4));
        cluster.dfs().create_file("input", 3, 4).unwrap();
        for p in 0..4u32 {
            let mut w = rcmp_model::RecordWriter::new();
            for i in 0..50u64 {
                w.push(&rcmp_model::Record::new(
                    rcmp_model::partition::mix64(p as u64 * 100 + i),
                    vec![p as u8; 20],
                ));
            }
            cluster
                .dfs()
                .write_partition_chunks(
                    "input",
                    PartitionId(p),
                    vec![w.finish()],
                    NodeId(p % 4),
                    PlacementPolicy::WriterLocal,
                )
                .unwrap();
        }
        let specs = vec![spec(1, "input", "out/1"), spec(2, "out/1", "out/2")];
        let g = JobGraph::new(specs.iter().cloned()).unwrap();
        let injector = Arc::new(ScriptedInjector::single(
            2,
            TriggerPoint::JobStart,
            NodeId(1),
        ));
        // Run job 1, evict all persisted outputs, then let the failure
        // at job 2 force recovery with an empty store.
        let tracker = rcmp_engine::JobTracker::new(&cluster, injector.clone());
        tracker
            .run(&rcmp_engine::JobRun::full(specs[0].clone()), 1)
            .unwrap();
        enforce_budget(
            &cluster,
            &g,
            StorageBudget {
                max_persisted_bytes: 0,
            },
            4,
        )
        .unwrap();
        assert_eq!(cluster.map_outputs().total_bytes(), 0);

        let outcome = ChainDriver::new(&cluster, Strategy::rcmp_no_split())
            .with_injector(injector)
            .run(&specs)
            .unwrap();
        // Recovery happened (if the kill broke job 2's input) or the
        // chain just completed; either way the final file is complete.
        assert!(cluster.dfs().file_meta("out/2").unwrap().is_complete());
        let _ = outcome;
    }
}
