//! The middleware driver: runs a multi-job computation under a strategy.
//!
//! This is the paper's "middleware program" (§IV-A): it submits jobs in
//! dependency order, watches for irreversible data loss, cancels broken
//! jobs, plans and executes cascading recomputation (RCMP), restarts the
//! chain (OPTIMISTIC / exhausted replication), and places replication
//! points (hybrid). Nested failures — new losses during recovery — are
//! handled by replanning from current cluster state, exactly as §IV-A
//! describes ("If a new failure occurs while RCMP is recovering from a
//! previous one, RCMP's behavior remains unchanged").

use crate::dag::JobGraph;
use crate::dynamic::{AdaptationStep, AdaptivePolicy, FaultObserver};
use crate::events::{ChainEvent, EventLog};
use crate::planner::plan_recovery;
use crate::reclaim::reclaim_before;
use crate::strategy::{HotspotMitigation, SplitPolicy, Strategy};
use rcmp_engine::{
    Cluster, FailureInjector, JobReport, JobRun, JobSpec, JobTracker, NoFailures,
    RecomputeInstructions, RunMode,
};
use rcmp_model::rng::derive_indexed;
use rcmp_model::{Error, JobId, Result};
use rcmp_obs::{BlackboxDump, EventCode, Gauge, PhaseBreakdown, PhaseKind, SpanKind};
use std::sync::Arc;

/// How a cancelled job is re-run once its input is restored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestartMode {
    /// Re-run the whole job, discarding partial results — the paper's
    /// implementation ("for simplicity, for the job during which the
    /// failure occurs, RCMP currently discards the partial results").
    Discard,
    /// Resume: re-run only the lost/unfinished partitions, reusing the
    /// job's surviving persisted map outputs — the improvement the paper
    /// describes as the ideal behaviour (§V-A).
    ResumePartial,
}

/// Result of driving a chain to completion.
#[derive(Debug, Default)]
pub struct ChainOutcome {
    /// Every job run executed, in submission order (including
    /// recomputations and restarts).
    pub runs: Vec<JobReport>,
    pub events: EventLog,
    /// Total job runs started — the paper's job numbering (§V-A: a
    /// 7-job chain with a late failure starts 14 jobs).
    pub jobs_started: u64,
    /// Whole-chain restarts (OPTIMISTIC, exhausted replication).
    pub restarts: u32,
    /// The adaptive policy's decision after each completed chain job
    /// (empty unless the strategy is [`Strategy::AdaptiveHybrid`]).
    pub adaptation: Vec<AdaptationStep>,
    /// Whole-chain phase time-budget (the Fig.-7-style decomposition),
    /// snapshotted from the cluster profiler when the chain completes.
    pub phases: PhaseBreakdown,
    /// Per-run phase deltas: `(seq, what that run added to the
    /// budget)`, in submission order, successful runs only.
    pub job_phases: Vec<(u64, PhaseBreakdown)>,
}

impl ChainOutcome {
    /// Sum of mapper tasks actually executed across all runs.
    pub fn total_map_tasks(&self) -> usize {
        self.runs.iter().map(|r| r.map_tasks_run).sum()
    }

    /// Sum of reduce tasks actually executed across all runs.
    pub fn total_reduce_tasks(&self) -> usize {
        self.runs.iter().map(|r| r.reduce_tasks_run).sum()
    }

    /// Aggregated I/O over all runs.
    pub fn total_io(&self) -> rcmp_engine::IoBytes {
        self.runs.iter().map(|r| r.io).sum()
    }
}

/// Drives one multi-job computation on a cluster.
pub struct ChainDriver<'a> {
    cluster: &'a Cluster,
    injector: Arc<dyn FailureInjector>,
    strategy: Strategy,
    restart_mode: RestartMode,
    /// Chain key for post-mortems: blackbox dumps are parked on the
    /// cluster (and written to `RCMP_BLACKBOX_DIR`) under this label so
    /// concurrent chains never clobber each other's dumps.
    chain_label: String,
    /// Tenant attribution for the job service: stamped on every
    /// `JobRun` span this chain produces.
    tenant: Option<rcmp_model::TenantId>,
    /// Per-chain wave-executor session override (leased from the job
    /// service's global worker budget). `None` uses the cluster's
    /// shared backend.
    executor: Option<Arc<rcmp_exec::BackendExecutor>>,
    /// Pre-resolved adaptation gauges: [`Self::publish_adaptation`]
    /// runs once per completed chain job, potentially with a wave in
    /// flight elsewhere, so it must never resolve by name.
    g_failure_rate: Gauge,
    g_k_current: Gauge,
}

/// Feeds observed faults into the closed-loop estimator, when the
/// strategy runs one.
fn observe_faults(adaptive: &mut Option<AdaptivePolicy>, faults: u32) {
    if faults > 0 {
        if let Some(policy) = adaptive.as_mut() {
            policy.record_fault(faults);
        }
    }
}

impl<'a> ChainDriver<'a> {
    pub fn new(cluster: &'a Cluster, strategy: Strategy) -> Self {
        let metrics = cluster.metrics();
        Self {
            cluster,
            injector: Arc::new(NoFailures),
            strategy,
            restart_mode: RestartMode::Discard,
            chain_label: "chain".to_string(),
            tenant: None,
            executor: None,
            g_failure_rate: metrics.gauge("policy.failure_rate_est"),
            g_k_current: metrics.gauge("policy.k_current"),
        }
    }

    pub fn with_injector(mut self, injector: Arc<dyn FailureInjector>) -> Self {
        self.injector = injector;
        self
    }

    pub fn with_restart_mode(mut self, mode: RestartMode) -> Self {
        self.restart_mode = mode;
        self
    }

    /// Keys this chain's post-mortem dumps (cluster slot and the
    /// `RCMP_BLACKBOX_DIR` file name). The label must be filesystem-safe;
    /// path separators are replaced with `-` when writing the file.
    pub fn with_chain_label(mut self, label: impl Into<String>) -> Self {
        self.chain_label = label.into();
        self
    }

    /// Attributes every job run of this chain to a tenant (job-service
    /// chains): the tag lands on `JobRun` spans for per-tenant analysis.
    pub fn with_tenant(mut self, tenant: rcmp_model::TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Runs this chain's waves on a dedicated executor session instead
    /// of the cluster's shared backend (the job service leases one per
    /// admitted chain from its global worker budget).
    pub fn with_executor(mut self, executor: Arc<rcmp_exec::BackendExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// Runs the computation to completion.
    ///
    /// Every typed-error exit captures a post-mortem [`BlackboxDump`]
    /// first — the most recent flight-recorder events, the causal
    /// fault → loss → plan → recompute lineage, a metric snapshot and
    /// the phase time-budget — and parks it on the cluster for
    /// [`Cluster::take_blackbox`] under this driver's chain label. Set
    /// `RCMP_BLACKBOX_DIR` to also write the dump as
    /// `rcmp-blackbox-<label>.json` in that directory, so concurrent
    /// chains' dumps never overwrite each other.
    pub fn run(&self, specs: &[JobSpec]) -> Result<ChainOutcome> {
        self.run_chain(specs).inspect_err(|e| {
            let dump = BlackboxDump::capture(
                e.to_string(),
                self.cluster.recorder(),
                &self.cluster.tracer().snapshot(),
                self.cluster.metrics().snapshot(),
                self.cluster.profiler().snapshot(),
            );
            if let Ok(dir) = std::env::var("RCMP_BLACKBOX_DIR") {
                // Best-effort: a failed dump write must not mask the
                // chain error itself.
                let file = format!(
                    "rcmp-blackbox-{}.json",
                    self.chain_label.replace(['/', '\\'], "-")
                );
                let _ = std::fs::write(std::path::Path::new(&dir).join(file), dump.to_json());
            }
            self.cluster.store_blackbox(&self.chain_label, dump);
        })
    }

    fn run_chain(&self, specs: &[JobSpec]) -> Result<ChainOutcome> {
        let graph = JobGraph::new(specs.iter().cloned())?;
        let order = graph.submission_order()?;
        let mut tracker = JobTracker::new(self.cluster, self.injector.clone());
        if let Some(t) = self.tenant {
            tracker = tracker.with_tenant(t);
        }
        if let Some(e) = &self.executor {
            tracker = tracker.with_executor(e.clone());
        }
        let mut outcome = ChainOutcome {
            events: EventLog::with_tracer(self.cluster.tracer().clone()),
            ..ChainOutcome::default()
        };
        let replication = self.strategy.output_replication();
        let persist = self.strategy.persists_outputs();

        let max_attempts = self.cluster.config().max_recovery_attempts;
        // The closed loop (§IV-C future work): survives chain restarts
        // so the failure-intensity estimate keeps everything observed.
        let mut adaptive: Option<AdaptivePolicy> = match self.strategy {
            Strategy::AdaptiveHybrid { adapt, .. } => Some(AdaptivePolicy::new(adapt)),
            _ => None,
        };
        let mut attempts = 0u32;
        'chain: loop {
            attempts += 1;
            if attempts > max_attempts {
                return Err(Error::RecoveryExhausted {
                    job: *order.last().expect("non-empty chain"),
                    attempts,
                    reason: "too many chain restarts".into(),
                });
            }
            let mut idx = 0usize;
            let mut resume_job: Option<JobId> = None;
            let mut jobs_since_point = 0u32;
            // Bounds the cancel → recover → retry-same-job cycle: a
            // scenario where recovery keeps "succeeding" but the job
            // keeps losing its input again must end in a typed error,
            // not a livelock.
            let mut job_recoveries = 0u32;
            while idx < order.len() {
                let job = order[idx];
                let mut spec = graph.spec(job).expect("job in graph").clone();
                spec.output_replication = replication;

                outcome.jobs_started += 1;
                let seq = outcome.jobs_started;
                let run = self.build_run(&spec, resume_job == Some(job), persist)?;
                outcome.events.push(ChainEvent::JobStarted {
                    seq,
                    job,
                    recompute: run.mode.is_recompute(),
                });
                resume_job = None;

                let live_before = self.cluster.live_nodes();
                let phases_before = self.cluster.profiler().snapshot();
                match tracker.run(&run, seq) {
                    Ok(report) => {
                        outcome.job_phases.push((
                            seq,
                            self.cluster.profiler().snapshot().delta(&phases_before),
                        ));
                        let faults = self.record_losses(seq, &report, &mut outcome);
                        observe_faults(&mut adaptive, faults);
                        outcome.events.push(ChainEvent::JobCompleted {
                            seq,
                            job,
                            map_tasks_run: report.map_tasks_run,
                            map_tasks_reused: report.map_tasks_reused,
                            reduce_tasks_run: report.reduce_tasks_run,
                        });
                        outcome.runs.push(report);
                        self.maybe_replicate(
                            &graph,
                            &order,
                            idx,
                            seq,
                            &mut jobs_since_point,
                            &mut adaptive,
                            &mut outcome,
                        )?;
                        idx += 1;
                    }
                    Err(Error::JobInputLost { .. }) => {
                        let faults =
                            self.record_losses_by_diff(seq, &live_before, &graph, &mut outcome);
                        observe_faults(&mut adaptive, faults);
                        outcome.events.push(ChainEvent::JobCancelled { seq, job });
                        job_recoveries += 1;
                        if job_recoveries > max_attempts {
                            return Err(Error::RecoveryExhausted {
                                job,
                                attempts: job_recoveries,
                                reason: "job kept losing its input after recovery".into(),
                            });
                        }
                        // Seeded full-jitter backoff before another
                        // cancel → recover → retry cycle of the same
                        // job, so repeated cycles don't hammer a flaky
                        // path in lockstep.
                        let retry = self.cluster.config().retry;
                        let delay = retry.backoff_ms(
                            derive_indexed(
                                self.cluster.config().seed,
                                "chain-backoff",
                                u64::from(job.0),
                            ),
                            job_recoveries,
                        );
                        if delay > 0 {
                            std::thread::sleep(std::time::Duration::from_millis(delay));
                        }
                        match self.strategy {
                            Strategy::Optimistic | Strategy::Replication { .. } => {
                                // OPTIMISTIC discards everything and
                                // restarts; exhausted replication has no
                                // choice but the same (§V-B "More
                                // failures").
                                self.wipe_outputs(&graph, &order)?;
                                outcome.restarts += 1;
                                outcome.events.push(ChainEvent::ChainRestarted);
                                continue 'chain;
                            }
                            Strategy::Rcmp { split, hotspot } => {
                                self.recover(
                                    &tracker,
                                    &graph,
                                    job,
                                    split,
                                    hotspot,
                                    persist,
                                    &mut adaptive,
                                    &mut outcome,
                                )?;
                                resume_job = Some(job);
                            }
                            Strategy::Hybrid { split, .. }
                            | Strategy::DynamicHybrid { split, .. }
                            | Strategy::AdaptiveHybrid { split, .. } => {
                                self.recover(
                                    &tracker,
                                    &graph,
                                    job,
                                    split,
                                    HotspotMitigation::SplitReducers,
                                    persist,
                                    &mut adaptive,
                                    &mut outcome,
                                )?;
                                resume_job = Some(job);
                            }
                        }
                        // retry same idx
                    }
                    Err(e) => return Err(e),
                }
            }
            // A strict injector surfaces scripted triggers that never
            // fired — a scenario that silently tested nothing.
            if let Err(msg) = self.injector.finish() {
                return Err(Error::Config(format!("failure injector: {msg}")));
            }
            outcome.phases = self.cluster.profiler().snapshot();
            return Ok(outcome);
        }
    }

    /// Builds the submission for a (re)run of a job at the head of the
    /// chain loop.
    fn build_run(&self, spec: &JobSpec, retry: bool, persist: bool) -> Result<JobRun> {
        if retry {
            // A retried job re-derives its output from the DFS ground
            // truth. Drop any chain-cached partitions of the previous
            // attempt up front — the hash guard on cache reads would
            // catch stale bytes anyway, but a cancelled run's failure
            // may have raced the per-hook invalidations, and the resume
            // decision below must not be able to observe cache state
            // that DFS metadata no longer backs.
            if let Some(cache) = self.cluster.dfs().chain_cache() {
                cache.invalidate_file(&spec.output);
            }
        }
        let mode = if retry
            && self.restart_mode == RestartMode::ResumePartial
            && self.cluster.dfs().file_exists(&spec.output)
        {
            // Resume: only the partitions that are lost or were never
            // written, reusing surviving persisted map outputs.
            let meta = self.cluster.dfs().file_meta(&spec.output)?;
            let partitions: Vec<_> = meta
                .partitions
                .iter()
                .filter(|p| p.is_lost() || !p.is_written())
                .map(|p| p.id)
                .collect();
            if partitions.is_empty() {
                // Everything survived; nothing to do, but Full would
                // wipe it. Run a no-op recompute of zero partitions.
                RunMode::Recompute(RecomputeInstructions::empty())
            } else {
                RunMode::Recompute(RecomputeInstructions::new(partitions, None))
            }
        } else {
            RunMode::Full
        };
        Ok(JobRun {
            spec: spec.clone(),
            mode,
            persist_map_outputs: persist,
        })
    }

    /// Returns the number of loss records observed (one per failed
    /// node), which is what feeds the adaptive estimator.
    fn record_losses(&self, seq: u64, report: &JobReport, outcome: &mut ChainOutcome) -> u32 {
        for loss in &report.losses {
            outcome.events.push(ChainEvent::LossObserved {
                seq,
                node: loss.node,
                lost_partitions: loss.lost_partition_count(),
            });
        }
        report.losses.len() as u32
    }

    /// A cancelled run's report (and its loss records) is consumed by
    /// the error path, so losses behind a cancellation are recovered by
    /// diffing node liveness around the run. `lost_partitions` reports
    /// the *currently* lost partitions across the computation's files.
    fn record_losses_by_diff(
        &self,
        seq: u64,
        live_before: &[rcmp_model::NodeId],
        graph: &JobGraph,
        outcome: &mut ChainOutcome,
    ) -> u32 {
        let lost_now: usize = graph
            .jobs()
            .filter_map(|(_, spec)| self.cluster.dfs().file_meta(&spec.output).ok())
            .map(|m| m.lost_partitions().len())
            .sum();
        let mut observed = 0u32;
        for &node in live_before {
            if !self.cluster.is_alive(node) {
                outcome.events.push(ChainEvent::LossObserved {
                    seq,
                    node: Some(node),
                    lost_partitions: lost_now,
                });
                observed += 1;
            }
        }
        observed
    }

    /// Hybrid replication points: static modulus (§IV-C), the dynamic
    /// expected-cost policy, or the closed-loop adaptive policy (§IV-C
    /// future work).
    #[allow(clippy::too_many_arguments)]
    fn maybe_replicate(
        &self,
        graph: &JobGraph,
        order: &[JobId],
        idx: usize,
        seq: u64,
        jobs_since_point: &mut u32,
        adaptive: &mut Option<AdaptivePolicy>,
        outcome: &mut ChainOutcome,
    ) -> Result<()> {
        let (factor, reclaim, due) = match self.strategy {
            Strategy::Hybrid {
                every_k,
                factor,
                reclaim,
                ..
            } => {
                let position = idx as u32 + 1;
                (
                    factor,
                    reclaim,
                    every_k != 0 && position.is_multiple_of(every_k),
                )
            }
            Strategy::DynamicHybrid {
                factor,
                policy,
                reclaim,
                ..
            } => {
                *jobs_since_point += 1;
                (factor, reclaim, policy.should_replicate(*jobs_since_point))
            }
            Strategy::AdaptiveHybrid {
                factor, reclaim, ..
            } => {
                let policy = adaptive.as_mut().expect("AdaptiveHybrid carries a policy");
                let due = policy.job_completed();
                let step = *policy
                    .trajectory()
                    .last()
                    .expect("job_completed records a step");
                outcome.adaptation.push(step);
                self.publish_adaptation(seq, &step);
                (factor, reclaim, due)
            }
            _ => return Ok(()),
        };
        if !due {
            return Ok(());
        }
        *jobs_since_point = 0;
        let job = order[idx];
        let spec = graph.spec(job).expect("job in graph");
        self.cluster.dfs().replicate_file(&spec.output, factor)?;
        outcome
            .events
            .push(ChainEvent::ReplicationPoint { job, factor });
        if reclaim {
            let stats = reclaim_before(self.cluster, graph, job)?;
            outcome.events.push(ChainEvent::StorageReclaimed {
                files_deleted: stats.files_deleted,
                map_entries_dropped: stats.map_entries_dropped,
            });
        }
        Ok(())
    }

    /// Publishes one adaptive decision to the observability layer:
    /// gauges for dashboards, and an `AdaptationPoint` instant span
    /// whose `cause` is the fault lineage that moved the estimate.
    fn publish_adaptation(&self, seq: u64, step: &AdaptationStep) {
        let rate_ppm = (step.rate * 1e6).round();
        self.g_failure_rate.set(rate_ppm as i64);
        // `0` encodes "never replicate" — a real interval is ≥ 1.
        self.g_k_current.set(step.interval.map_or(0, i64::from));
        if step.switched {
            self.cluster.recorder().record(
                EventCode::CadenceSwitched,
                None,
                seq,
                u64::from(step.interval.unwrap_or(0)),
            );
        }
        let tracer = self.cluster.tracer();
        tracer.instant(
            SpanKind::AdaptationPoint {
                seq,
                rate_ppm: rate_ppm as u64,
                interval: step.interval,
                switched: step.switched,
            },
            None,
            tracer.current_cause(),
            None,
        );
    }

    /// Executes cascading recomputation until `target`'s input is whole,
    /// replanning after nested failures.
    #[allow(clippy::too_many_arguments)]
    fn recover(
        &self,
        tracker: &JobTracker<'_>,
        graph: &JobGraph,
        target: JobId,
        split: SplitPolicy,
        hotspot: HotspotMitigation,
        persist: bool,
        adaptive: &mut Option<AdaptivePolicy>,
        outcome: &mut ChainOutcome,
    ) -> Result<()> {
        let max_attempts = self.cluster.config().max_recovery_attempts;
        for _attempt in 0..max_attempts {
            let plan = {
                let _timer = self.cluster.profiler().span(PhaseKind::RecoveryPlanning);
                plan_recovery(self.cluster, graph, target, split, hotspot)?
            };
            self.cluster.recorder().record(
                EventCode::RecoveryPlanned,
                None,
                plan.steps.len() as u64,
                plan.partition_count() as u64,
            );
            outcome.events.push(ChainEvent::RecoveryPlanned {
                target,
                steps: plan.steps.len(),
                partitions: plan.partition_count(),
            });
            if plan.is_empty() {
                return Ok(());
            }
            let mut nested = false;
            for step in plan.steps {
                let mut spec = graph.spec(step.job).expect("job in graph").clone();
                spec.output_replication = 1;
                outcome.jobs_started += 1;
                let seq = outcome.jobs_started;
                outcome.events.push(ChainEvent::JobStarted {
                    seq,
                    job: step.job,
                    recompute: true,
                });
                let run = JobRun {
                    spec,
                    mode: RunMode::Recompute(step.instructions),
                    persist_map_outputs: persist,
                };
                self.cluster.recorder().record(
                    EventCode::RecomputeStarted,
                    None,
                    seq,
                    u64::from(step.job.0),
                );
                let live_before = self.cluster.live_nodes();
                let phases_before = self.cluster.profiler().snapshot();
                match tracker.run(&run, seq) {
                    Ok(report) => {
                        outcome.job_phases.push((
                            seq,
                            self.cluster.profiler().snapshot().delta(&phases_before),
                        ));
                        let had_losses = !report.losses.is_empty();
                        let faults = self.record_losses(seq, &report, outcome);
                        observe_faults(adaptive, faults);
                        outcome.events.push(ChainEvent::JobCompleted {
                            seq,
                            job: step.job,
                            map_tasks_run: report.map_tasks_run,
                            map_tasks_reused: report.map_tasks_reused,
                            reduce_tasks_run: report.reduce_tasks_run,
                        });
                        outcome.runs.push(report);
                        if had_losses {
                            // A nested failure may have invalidated the
                            // rest of the plan: replan from state.
                            nested = true;
                            break;
                        }
                    }
                    Err(Error::JobInputLost { .. }) => {
                        let faults = self.record_losses_by_diff(seq, &live_before, graph, outcome);
                        observe_faults(adaptive, faults);
                        outcome
                            .events
                            .push(ChainEvent::JobCancelled { seq, job: step.job });
                        nested = true;
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            if !nested {
                return Ok(());
            }
        }
        Err(Error::RecoveryExhausted {
            job: target,
            attempts: max_attempts,
            reason: "nested-failure recovery did not converge".into(),
        })
    }

    /// OPTIMISTIC restart: drop every produced output and persisted map
    /// output; the chain starts over from the (replicated) input.
    fn wipe_outputs(&self, graph: &JobGraph, order: &[JobId]) -> Result<()> {
        for &job in order {
            let spec = graph.spec(job).expect("job in graph");
            if self.cluster.dfs().file_exists(&spec.output) {
                self.cluster.dfs().delete_file(&spec.output)?;
            }
            self.cluster.map_outputs().clear_job(job);
        }
        Ok(())
    }
}
