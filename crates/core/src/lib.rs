//! RCMP: recomputation-based failure resilience for multi-job MapReduce.
//!
//! This crate is the paper's contribution, layered as *policy* over the
//! execution engine's mechanisms:
//!
//! * [`dag`] — the middleware's job-dependency graph: which job produces
//!   which file, who consumes it (§IV-A's "middleware program uses the
//!   dependencies to decide the order of job submission");
//! * [`planner`] — on irreversible data loss, walks the dependency graph
//!   backwards and emits the **minimum** recomputation plan: for each
//!   affected job, exactly the reducer partitions to regenerate, in
//!   dependency order (Fig. 1), accounting for persisted map outputs and
//!   for the Fig.-5 invalidation that reducer splitting causes;
//! * [`strategy`] — the failure-resilience strategies the evaluation
//!   compares: RCMP (with/without splitting), Hadoop-style replication
//!   (REPL-2/REPL-3), OPTIMISTIC, and the hybrid of §IV-C;
//! * [`driver`] — runs a job chain under a strategy, reacting to
//!   failures: cancelling broken jobs, executing recovery plans
//!   (including nested failures during recovery), replicating every
//!   k-th output in hybrid mode;
//! * [`reclaim`] — storage reclamation at replication points and the
//!   wave-granularity eviction the paper sketches as future work;
//! * [`events`] — a structured event log of everything the middleware
//!   does, for tests and reports.

pub mod budget;
pub mod dag;
pub mod driver;
pub mod dynamic;
pub mod events;
pub mod planner;
pub mod reclaim;
pub mod strategy;

pub use budget::{enforce_budget, StorageBudget};
pub use dag::JobGraph;
pub use driver::{ChainDriver, ChainOutcome};
pub use dynamic::{
    AdaptConfig, AdaptationStep, AdaptivePolicy, DynamicPolicy, FailureIntensityEstimator,
    FaultObserver,
};
pub use events::{ChainEvent, EventLog};
pub use planner::{plan_recovery, RecoveryPlan, RecoveryStep};
pub use strategy::{HotspotMitigation, SplitPolicy, Strategy};
