//! Storage reclamation (§IV-C).
//!
//! RCMP trades storage for recomputation speed; hybrid mode's
//! replication points bound how far cascades revert, which makes the
//! state behind a point dead weight: once `out(k)` is replicated, no
//! recovery ever needs `out(j)` for `j < k`, nor any persisted map
//! output of a job at or before `k`. [`reclaim_before`] frees both.
//!
//! [`evict_last_waves`] implements the eviction policy the paper lists
//! as future work ("deleting persisted outputs at the granularity of
//! waves"): under storage pressure, drop a job's map outputs wave by
//! wave — recomputing a whole dropped wave costs one extra map wave on
//! recovery, so later waves (recomputed last) go first.

use crate::dag::JobGraph;
use rcmp_engine::Cluster;
use rcmp_model::{JobId, Result};

/// What a reclamation pass freed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReclaimStats {
    pub files_deleted: usize,
    pub map_entries_dropped: usize,
}

/// Frees recovery state made obsolete by a replication point at
/// `replicated` (whose output was just raised to factor ≥ 2):
///
/// * deletes the output files of all jobs strictly before `replicated`
///   in submission order (already consumed, never needed again);
/// * drops the persisted map outputs of `replicated` and everything
///   before it (their reducer outputs are replicated or deleted).
pub fn reclaim_before(
    cluster: &Cluster,
    graph: &JobGraph,
    replicated: JobId,
) -> Result<ReclaimStats> {
    let order = graph.submission_order()?;
    let pos = order
        .iter()
        .position(|&j| j == replicated)
        .ok_or_else(|| rcmp_model::Error::Config(format!("unknown job {replicated}")))?;
    let mut stats = ReclaimStats::default();
    for (i, &job) in order.iter().enumerate() {
        if i > pos {
            break;
        }
        stats.map_entries_dropped += cluster.map_outputs().clear_job(job);
        if i < pos {
            if let Some(spec) = graph.spec(job) {
                if cluster.dfs().file_exists(&spec.output) {
                    cluster.dfs().delete_file(&spec.output)?;
                    stats.files_deleted += 1;
                }
            }
        }
    }
    Ok(stats)
}

/// Evicts the persisted map outputs of `job`'s last `waves` waves,
/// assuming `tasks_per_wave` mappers ran per wave (cluster map slots ×
/// nodes at the time). Returns how many entries were dropped.
///
/// Eviction order is descending block position: the outputs produced in
/// the last waves are dropped first, matching the paper's sketched
/// wave-granularity policy.
pub fn evict_last_waves(
    cluster: &Cluster,
    job: JobId,
    tasks_per_wave: usize,
    waves: usize,
) -> usize {
    let store = cluster.map_outputs();
    let mut keys = store.keys_for_job(job);
    // keys_for_job returns sorted ascending (pid, block_idx); evict from
    // the tail.
    let to_drop = (tasks_per_wave * waves).min(keys.len());
    let mut dropped = 0;
    for key in keys.drain(keys.len() - to_drop..) {
        if store.remove(&key) {
            dropped += 1;
        }
    }
    dropped
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_dfs::PlacementPolicy;
    use rcmp_engine::{IdentityMapper, IdentityReducer, JobSpec, MapInputKey};
    use rcmp_model::{ClusterConfig, NodeId, PartitionId};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn spec(job: u32, input: &str, output: &str) -> JobSpec {
        JobSpec {
            job: JobId(job),
            input: input.into(),
            output: output.into(),
            num_reducers: 1,
            output_replication: 1,
            placement: PlacementPolicy::WriterLocal,
            mapper: Arc::new(IdentityMapper),
            reducer: Arc::new(IdentityReducer),
            combiner: None,
            splittable: true,
        }
    }

    fn put_map_output(cluster: &Cluster, job: u32, idx: u32) {
        cluster.map_outputs().insert(
            MapInputKey::new(JobId(job), PartitionId(0), idx),
            NodeId(0),
            0,
            HashMap::new(),
        );
    }

    #[test]
    fn reclaim_frees_old_files_and_entries() {
        let cluster = Cluster::new(ClusterConfig::small_test(3));
        let g = JobGraph::new([
            spec(1, "input", "out/1"),
            spec(2, "out/1", "out/2"),
            spec(3, "out/2", "out/3"),
        ])
        .unwrap();
        for j in 1..=3 {
            cluster
                .dfs()
                .create_file(&format!("out/{j}"), 1, 1)
                .unwrap();
            cluster
                .dfs()
                .write_partition_segment(
                    &format!("out/{j}"),
                    PartitionId(0),
                    bytes::Bytes::from(vec![j as u8; 50]),
                    NodeId(0),
                    PlacementPolicy::WriterLocal,
                )
                .unwrap();
            put_map_output(&cluster, j, 0);
        }

        let stats = reclaim_before(&cluster, &g, JobId(2)).unwrap();
        assert_eq!(stats.files_deleted, 1, "out/1 deleted");
        assert_eq!(stats.map_entries_dropped, 2, "jobs 1 and 2 cleared");
        assert!(!cluster.dfs().file_exists("out/1"));
        assert!(
            cluster.dfs().file_exists("out/2"),
            "the replicated file stays"
        );
        assert!(cluster.dfs().file_exists("out/3"));
        assert_eq!(cluster.map_outputs().keys_for_job(JobId(3)).len(), 1);
    }

    #[test]
    fn evict_drops_tail_waves() {
        let cluster = Cluster::new(ClusterConfig::small_test(2));
        for idx in 0..10 {
            put_map_output(&cluster, 1, idx);
        }
        let dropped = evict_last_waves(&cluster, JobId(1), 2, 2);
        assert_eq!(dropped, 4);
        let left = cluster.map_outputs().keys_for_job(JobId(1));
        assert_eq!(left.len(), 6);
        // The survivors are the *first* waves.
        assert!(left.iter().all(|k| k.block_idx < 6));
    }

    #[test]
    fn evict_caps_at_available() {
        let cluster = Cluster::new(ClusterConfig::small_test(2));
        put_map_output(&cluster, 1, 0);
        assert_eq!(evict_last_waves(&cluster, JobId(1), 4, 10), 1);
        assert_eq!(evict_last_waves(&cluster, JobId(1), 4, 10), 0);
    }
}
