//! The middleware's job-dependency graph.
//!
//! The user submits a multi-job computation with explicit dependencies;
//! the middleware submits each job only after its producers completed
//! (§IV-A). The graph also answers the two questions recovery planning
//! needs: *which job produced this file* and *which jobs consume it*.

use rcmp_engine::JobSpec;
use rcmp_model::{Error, JobId, Result};
use std::collections::BTreeMap;

/// Dependency graph over a set of job specs, derived from their
/// input/output file paths.
#[derive(Clone, Debug, Default)]
pub struct JobGraph {
    specs: BTreeMap<JobId, JobSpec>,
    /// file path → producing job.
    producer: BTreeMap<String, JobId>,
    /// file path → consuming jobs.
    consumers: BTreeMap<String, Vec<JobId>>,
}

impl JobGraph {
    /// Builds the graph from specs. Paths define the edges: job B
    /// depends on job A iff B's input is A's output.
    pub fn new(specs: impl IntoIterator<Item = JobSpec>) -> Result<Self> {
        let mut g = JobGraph::default();
        for spec in specs {
            if g.producer.contains_key(&spec.output) {
                return Err(Error::Config(format!("two jobs produce {}", spec.output)));
            }
            g.producer.insert(spec.output.clone(), spec.job);
            g.consumers
                .entry(spec.input.clone())
                .or_default()
                .push(spec.job);
            if g.specs.insert(spec.job, spec).is_some() {
                return Err(Error::Config("duplicate job id".into()));
            }
        }
        Ok(g)
    }

    pub fn spec(&self, job: JobId) -> Option<&JobSpec> {
        self.specs.get(&job)
    }

    /// The job producing `file`, if any (external inputs have none).
    pub fn producer_of(&self, file: &str) -> Option<JobId> {
        self.producer.get(file).copied()
    }

    /// Jobs consuming `file`.
    pub fn consumers_of(&self, file: &str) -> &[JobId] {
        self.consumers.get(file).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The jobs `job` directly depends on.
    pub fn dependencies(&self, job: JobId) -> Vec<JobId> {
        self.specs
            .get(&job)
            .and_then(|s| self.producer_of(&s.input))
            .into_iter()
            .collect()
    }

    /// Topological submission order (dependencies first). Errors on
    /// cycles.
    pub fn submission_order(&self) -> Result<Vec<JobId>> {
        let mut order = Vec::with_capacity(self.specs.len());
        let mut state: BTreeMap<JobId, u8> = BTreeMap::new(); // 0 new, 1 visiting, 2 done
        fn visit(
            g: &JobGraph,
            j: JobId,
            state: &mut BTreeMap<JobId, u8>,
            order: &mut Vec<JobId>,
        ) -> Result<()> {
            match state.get(&j).copied().unwrap_or(0) {
                2 => return Ok(()),
                1 => return Err(Error::Config(format!("dependency cycle at {j}"))),
                _ => {}
            }
            state.insert(j, 1);
            for d in g.dependencies(j) {
                visit(g, d, state, order)?;
            }
            state.insert(j, 2);
            order.push(j);
            Ok(())
        }
        for &j in self.specs.keys() {
            visit(self, j, &mut state, &mut order)?;
        }
        Ok(order)
    }

    pub fn jobs(&self) -> impl Iterator<Item = (&JobId, &JobSpec)> {
        self.specs.iter()
    }

    pub fn len(&self) -> usize {
        self.specs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_dfs::PlacementPolicy;
    use rcmp_engine::{IdentityMapper, IdentityReducer};
    use std::sync::Arc;

    fn spec(job: u32, input: &str, output: &str) -> JobSpec {
        JobSpec {
            job: JobId(job),
            input: input.into(),
            output: output.into(),
            num_reducers: 2,
            output_replication: 1,
            placement: PlacementPolicy::WriterLocal,
            mapper: Arc::new(IdentityMapper),
            reducer: Arc::new(IdentityReducer),
            combiner: None,
            splittable: true,
        }
    }

    #[test]
    fn chain_graph() {
        let g = JobGraph::new([
            spec(1, "input", "out/1"),
            spec(2, "out/1", "out/2"),
            spec(3, "out/2", "out/3"),
        ])
        .unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.producer_of("out/2"), Some(JobId(2)));
        assert_eq!(g.producer_of("input"), None);
        assert_eq!(g.consumers_of("out/1"), &[JobId(2)]);
        assert_eq!(g.dependencies(JobId(3)), vec![JobId(2)]);
        assert!(g.dependencies(JobId(1)).is_empty());
        assert_eq!(
            g.submission_order().unwrap(),
            vec![JobId(1), JobId(2), JobId(3)]
        );
    }

    #[test]
    fn fan_out_graph() {
        // Two consumers of one file (a DAG beyond the paper's chain).
        let g = JobGraph::new([
            spec(1, "input", "shared"),
            spec(2, "shared", "out/a"),
            spec(3, "shared", "out/b"),
        ])
        .unwrap();
        assert_eq!(g.consumers_of("shared"), &[JobId(2), JobId(3)]);
        let order = g.submission_order().unwrap();
        assert_eq!(order[0], JobId(1));
    }

    #[test]
    fn duplicate_output_rejected() {
        let err = JobGraph::new([spec(1, "input", "same"), spec(2, "x", "same")]);
        assert!(err.is_err());
    }

    #[test]
    fn cycle_rejected() {
        let g = JobGraph::new([spec(1, "a", "b"), spec(2, "b", "a")]).unwrap();
        assert!(g.submission_order().is_err());
    }
}
