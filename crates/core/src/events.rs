//! Structured event log of middleware activity.
//!
//! The log is the middleware's durable record; when built with
//! [`EventLog::with_tracer`] every pushed event is *also* mirrored into
//! the cluster's span tracer, so recovery planning shows up in the same
//! causal trace as the engine's job/wave/task spans. In particular a
//! `RecoveryPlanned` event becomes a `RecoveryPlan` span whose cause is
//! the loss that triggered it, and which in turn becomes the cause of
//! the recomputation runs it submits.

use rcmp_model::{JobId, NodeId};
use rcmp_obs::{SpanKind, Tracer};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Everything the middleware does while driving a multi-job computation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainEvent {
    /// A job run was submitted (`seq` is the paper's global run number).
    JobStarted {
        seq: u64,
        job: JobId,
        recompute: bool,
    },
    JobCompleted {
        seq: u64,
        job: JobId,
        map_tasks_run: usize,
        map_tasks_reused: usize,
        reduce_tasks_run: usize,
    },
    /// A node death caused irreversible loss during run `seq`.
    LossObserved {
        seq: u64,
        node: Option<NodeId>,
        lost_partitions: usize,
    },
    /// The running job could not continue; recovery begins.
    JobCancelled { seq: u64, job: JobId },
    RecoveryPlanned {
        target: JobId,
        steps: usize,
        partitions: usize,
    },
    /// Hybrid mode replicated a job's output (§IV-C).
    ReplicationPoint { job: JobId, factor: u32 },
    /// Storage reclaimed behind a replication point.
    StorageReclaimed {
        files_deleted: usize,
        map_entries_dropped: usize,
    },
    /// OPTIMISTIC (or exhausted replication) restarted the whole chain.
    ChainRestarted,
}

/// Append-only event log, optionally mirroring into a span tracer.
#[derive(Clone, Default)]
pub struct EventLog {
    events: Vec<ChainEvent>,
    tracer: Option<Arc<Tracer>>,
}

impl EventLog {
    /// A log that mirrors every pushed event into `tracer` (see the
    /// module docs for the span mapping).
    pub fn with_tracer(tracer: Arc<Tracer>) -> Self {
        Self {
            events: Vec::new(),
            tracer: Some(tracer),
        }
    }

    pub fn push(&mut self, e: ChainEvent) {
        if let Some(tracer) = &self.tracer {
            Self::mirror(tracer, &e);
        }
        self.events.push(e);
    }

    /// Mirrors one event into the tracer. `RecoveryPlanned` gets its own
    /// span kind and participates in the causal chain (loss → plan →
    /// recompute runs); everything else becomes a generic instant.
    fn mirror(tracer: &Tracer, e: &ChainEvent) {
        match e {
            ChainEvent::RecoveryPlanned {
                target,
                steps,
                partitions,
            } => {
                let cause = tracer.current_cause();
                let id = tracer.instant(
                    SpanKind::RecoveryPlan {
                        target: *target,
                        steps: *steps as u32,
                        partitions: *partitions as u32,
                    },
                    None,
                    cause,
                    None,
                );
                tracer.mark_cause(id);
            }
            other => {
                let (seq, label) = match other {
                    ChainEvent::JobStarted {
                        seq,
                        job,
                        recompute,
                    } => {
                        let tag = if *recompute { " recompute" } else { "" };
                        (*seq, format!("job_started {job}{tag}"))
                    }
                    ChainEvent::JobCompleted { seq, job, .. } => {
                        (*seq, format!("job_completed {job}"))
                    }
                    ChainEvent::LossObserved {
                        seq,
                        lost_partitions,
                        ..
                    } => (*seq, format!("loss_observed {lost_partitions} partitions")),
                    ChainEvent::JobCancelled { seq, job } => (*seq, format!("job_cancelled {job}")),
                    ChainEvent::ReplicationPoint { job, factor } => {
                        (0, format!("replication_point {job} x{factor}"))
                    }
                    ChainEvent::StorageReclaimed { files_deleted, .. } => {
                        (0, format!("storage_reclaimed {files_deleted} files"))
                    }
                    ChainEvent::ChainRestarted => (0, "chain_restarted".to_string()),
                    ChainEvent::RecoveryPlanned { .. } => unreachable!("handled above"),
                };
                tracer.instant(SpanKind::Event { seq, label }, None, None, None);
            }
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = &ChainEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recomputation runs submitted.
    pub fn recompute_runs(&self) -> usize {
        self.iter()
            .filter(|e| {
                matches!(
                    e,
                    ChainEvent::JobStarted {
                        recompute: true,
                        ..
                    }
                )
            })
            .count()
    }

    /// Number of chain restarts.
    pub fn restarts(&self) -> usize {
        self.iter()
            .filter(|e| matches!(e, ChainEvent::ChainRestarted))
            .count()
    }

    /// Number of loss events observed.
    pub fn losses(&self) -> usize {
        self.iter()
            .filter(|e| matches!(e, ChainEvent::LossObserved { .. }))
            .count()
    }

    /// Every event that names `job` — starts, completions, cancellations
    /// and recovery plans targeting it.
    pub fn events_for_job(&self, job: JobId) -> impl Iterator<Item = &ChainEvent> {
        self.iter().filter(move |e| match e {
            ChainEvent::JobStarted { job: j, .. }
            | ChainEvent::JobCompleted { job: j, .. }
            | ChainEvent::JobCancelled { job: j, .. }
            | ChainEvent::RecoveryPlanned { target: j, .. }
            | ChainEvent::ReplicationPoint { job: j, .. } => *j == job,
            _ => false,
        })
    }

    /// Recovery plans in order: `(target, steps, partitions)`.
    pub fn recoveries(&self) -> impl Iterator<Item = (JobId, usize, usize)> + '_ {
        self.iter().filter_map(|e| match e {
            ChainEvent::RecoveryPlanned {
                target,
                steps,
                partitions,
            } => Some((*target, *steps, *partitions)),
            _ => None,
        })
    }

    /// The highest run sequence number any event carries — i.e. how many
    /// job runs the chain started (the paper's job numbering).
    pub fn last_seq(&self) -> Option<u64> {
        self.iter()
            .filter_map(|e| match e {
                ChainEvent::JobStarted { seq, .. }
                | ChainEvent::JobCompleted { seq, .. }
                | ChainEvent::LossObserved { seq, .. }
                | ChainEvent::JobCancelled { seq, .. } => Some(*seq),
                _ => None,
            })
            .max()
    }
}

// Manual impls: the `tracer` handle is runtime plumbing, not log
// content — equality, debug output and serialization all ignore it
// (and the vendored serde derive couldn't skip a field anyway).
impl PartialEq for EventLog {
    fn eq(&self, other: &Self) -> bool {
        self.events == other.events
    }
}
impl Eq for EventLog {}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("events", &self.events)
            .finish()
    }
}

impl Serialize for EventLog {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![("events".to_string(), self.events.to_value())])
    }
}
impl Deserialize for EventLog {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut log = EventLog::default();
        assert!(log.is_empty());
        log.push(ChainEvent::JobStarted {
            seq: 1,
            job: JobId(1),
            recompute: false,
        });
        log.push(ChainEvent::JobStarted {
            seq: 2,
            job: JobId(1),
            recompute: true,
        });
        log.push(ChainEvent::ChainRestarted);
        log.push(ChainEvent::LossObserved {
            seq: 2,
            node: Some(NodeId(1)),
            lost_partitions: 3,
        });
        assert_eq!(log.len(), 4);
        assert_eq!(log.recompute_runs(), 1);
        assert_eq!(log.restarts(), 1);
        assert_eq!(log.losses(), 1);
    }
}
