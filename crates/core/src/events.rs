//! Structured event log of middleware activity.

use rcmp_model::{JobId, NodeId};
use serde::{Deserialize, Serialize};

/// Everything the middleware does while driving a multi-job computation.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChainEvent {
    /// A job run was submitted (`seq` is the paper's global run number).
    JobStarted {
        seq: u64,
        job: JobId,
        recompute: bool,
    },
    JobCompleted {
        seq: u64,
        job: JobId,
        map_tasks_run: usize,
        map_tasks_reused: usize,
        reduce_tasks_run: usize,
    },
    /// A node death caused irreversible loss during run `seq`.
    LossObserved {
        seq: u64,
        node: Option<NodeId>,
        lost_partitions: usize,
    },
    /// The running job could not continue; recovery begins.
    JobCancelled { seq: u64, job: JobId },
    RecoveryPlanned {
        target: JobId,
        steps: usize,
        partitions: usize,
    },
    /// Hybrid mode replicated a job's output (§IV-C).
    ReplicationPoint { job: JobId, factor: u32 },
    /// Storage reclaimed behind a replication point.
    StorageReclaimed {
        files_deleted: usize,
        map_entries_dropped: usize,
    },
    /// OPTIMISTIC (or exhausted replication) restarted the whole chain.
    ChainRestarted,
}

/// Append-only event log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventLog {
    events: Vec<ChainEvent>,
}

impl EventLog {
    pub fn push(&mut self, e: ChainEvent) {
        self.events.push(e);
    }

    pub fn iter(&self) -> impl Iterator<Item = &ChainEvent> {
        self.events.iter()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of recomputation runs submitted.
    pub fn recompute_runs(&self) -> usize {
        self.iter()
            .filter(|e| matches!(e, ChainEvent::JobStarted { recompute: true, .. }))
            .count()
    }

    /// Number of chain restarts.
    pub fn restarts(&self) -> usize {
        self.iter()
            .filter(|e| matches!(e, ChainEvent::ChainRestarted))
            .count()
    }

    /// Number of loss events observed.
    pub fn losses(&self) -> usize {
        self.iter()
            .filter(|e| matches!(e, ChainEvent::LossObserved { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters() {
        let mut log = EventLog::default();
        assert!(log.is_empty());
        log.push(ChainEvent::JobStarted {
            seq: 1,
            job: JobId(1),
            recompute: false,
        });
        log.push(ChainEvent::JobStarted {
            seq: 2,
            job: JobId(1),
            recompute: true,
        });
        log.push(ChainEvent::ChainRestarted);
        log.push(ChainEvent::LossObserved {
            seq: 2,
            node: Some(NodeId(1)),
            lost_partitions: 3,
        });
        assert_eq!(log.len(), 4);
        assert_eq!(log.recompute_runs(), 1);
        assert_eq!(log.restarts(), 1);
        assert_eq!(log.losses(), 1);
    }
}
