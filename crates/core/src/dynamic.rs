//! Dynamic replication-point placement (§IV-C future work).
//!
//! "As future work we are considering a dynamic approach that
//! intelligently chooses between replication and recomputation using
//! job and environment-related information." This module implements
//! that approach as an expected-cost threshold.
//!
//! Replicating job `j`'s output costs `(factor − 1) × bytes` of extra
//! I/O, paid with certainty. *Not* replicating exposes the jobs since
//! the last replication point: if a data-loss failure arrives during a
//! job run (probability `p`, calibratable from failure traces —
//! `rcmp-traces` reproduces the paper's ~12–17% failure *days*), the
//! cascade recomputes ≈ `d × recompute_fraction` jobs' worth of work,
//! where `d` is the distance to the last point and the fraction is the
//! ~1/N a single failure costs per job (§IV-B).
//!
//! Setting the two expected costs equal yields a break-even distance:
//! place a replication point whenever the un-replicated suffix reaches
//! it. The closed form makes the paper's qualitative argument
//! quantitative: at moderate cluster sizes failure probabilities are so
//! low that the break-even distance is enormous — continuous
//! replication is unwarranted (§III-A) — while failure-heavy
//! environments shrink the interval toward REPL-k behaviour.

use serde::{Deserialize, Serialize};

/// Cost-model parameters for dynamic replication points.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicPolicy {
    /// Probability that a data-loss failure strikes during one job run.
    pub failure_prob_per_job: f64,
    /// Extra replicas a replication point writes (factor − 1).
    pub extra_replicas: u32,
    /// Cost of writing one replica byte relative to recomputing one
    /// byte of lineage (≈ 1.0 when replication and recomputation move
    /// bytes through the same disks).
    pub replication_byte_cost: f64,
    /// Fraction of a job a single failure forces to recompute
    /// (≈ 1/N with balanced data, §IV-B).
    pub recompute_fraction: f64,
}

impl DynamicPolicy {
    /// A policy calibrated from a failure-day fraction (Fig. 2 style)
    /// and the expected number of job runs per day.
    pub fn from_trace_stats(
        failure_day_fraction: f64,
        jobs_per_day: f64,
        nodes: u32,
        extra_replicas: u32,
    ) -> Self {
        Self {
            failure_prob_per_job: (failure_day_fraction / jobs_per_day.max(1.0)).min(1.0),
            extra_replicas,
            replication_byte_cost: 1.0,
            recompute_fraction: 1.0 / nodes.max(1) as f64,
        }
    }

    /// Break-even distance: the number of un-replicated jobs at which
    /// the expected recomputation exposure equals the certain cost of
    /// one replication point. `None` means "never replicate" (the
    /// exposure can never reach the cost — e.g. failures impossible).
    pub fn break_even_interval(&self) -> Option<u32> {
        let exposure_per_job = self.failure_prob_per_job * self.recompute_fraction;
        if exposure_per_job <= 0.0 {
            return None;
        }
        let cost = self.extra_replicas as f64 * self.replication_byte_cost;
        let d = (cost / exposure_per_job).ceil();
        if d.is_finite() && d < u32::MAX as f64 {
            Some((d as u32).max(1))
        } else {
            None
        }
    }

    /// Should a replication point be placed after `jobs_since_point`
    /// un-replicated jobs?
    pub fn should_replicate(&self, jobs_since_point: u32) -> bool {
        match self.break_even_interval() {
            Some(k) => jobs_since_point >= k,
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(p: f64, nodes: u32) -> DynamicPolicy {
        DynamicPolicy {
            failure_prob_per_job: p,
            extra_replicas: 1,
            replication_byte_cost: 1.0,
            recompute_fraction: 1.0 / nodes as f64,
        }
    }

    #[test]
    fn rare_failures_mean_huge_intervals() {
        // The paper's moderate-cluster regime: failures days apart.
        let p = DynamicPolicy::from_trace_stats(0.17, 100.0, 10, 1);
        let k = p.break_even_interval().unwrap();
        assert!(
            k > 1000,
            "rare failures → replication points essentially never: {k}"
        );
        assert!(!p.should_replicate(100));
    }

    #[test]
    fn failure_heavy_environments_replicate_often() {
        // A failure nearly every job: behave like frequent checkpoints.
        let p = policy(0.5, 10);
        let k = p.break_even_interval().unwrap();
        assert!(k <= 20, "heavy failures → short interval, got {k}");
        assert!(p.should_replicate(k));
        assert!(!p.should_replicate(k - 1));
    }

    #[test]
    fn interval_monotone_in_failure_probability() {
        let mut last = u32::MAX;
        for p in [0.01, 0.05, 0.2, 0.8] {
            let k = policy(p, 10).break_even_interval().unwrap();
            assert!(k <= last, "higher failure prob → shorter interval");
            last = k;
        }
    }

    #[test]
    fn interval_grows_with_cluster_size() {
        // Bigger clusters lose a smaller fraction per failure, so the
        // exposure per job shrinks and points spread out.
        let small = policy(0.1, 10).break_even_interval().unwrap();
        let large = policy(0.1, 100).break_even_interval().unwrap();
        assert!(large > small);
    }

    #[test]
    fn zero_probability_never_replicates() {
        let p = policy(0.0, 10);
        assert_eq!(p.break_even_interval(), None);
        assert!(!p.should_replicate(u32::MAX));
    }

    #[test]
    fn higher_factor_costs_more() {
        let f1 = DynamicPolicy {
            extra_replicas: 1,
            ..policy(0.3, 10)
        };
        let f2 = DynamicPolicy {
            extra_replicas: 2,
            ..policy(0.3, 10)
        };
        assert!(f2.break_even_interval().unwrap() >= f1.break_even_interval().unwrap());
    }
}
