//! Dynamic replication-point placement (§IV-C future work).
//!
//! "As future work we are considering a dynamic approach that
//! intelligently chooses between replication and recomputation using
//! job and environment-related information." The expected-cost
//! threshold implementing that approach — and its closed-loop successor
//! that learns the failure intensity online — live in the shared policy
//! kernel (`rcmp_policy::adapt`) so the engine and the simulator derive
//! replication cadences from literally the same code; this module
//! re-exports them under their historical `rcmp-core` paths.

pub use rcmp_policy::adapt::{
    expected_chain_time, optimal_interval, AdaptConfig, AdaptationStep, AdaptivePolicy,
    DynamicPolicy, FailureIntensityEstimator, FaultObserver,
};
