//! The failure-resilience strategies compared in the evaluation (§V-A).

use crate::dynamic::DynamicPolicy;
use serde::{Deserialize, Serialize};

/// How many ways to split recomputed reducers (§IV-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// No splitting — the paper's "RCMP NO-SPLIT".
    None,
    /// Split every recomputed reducer `k` ways (the paper uses 8 on
    /// STIC, 59 on DCO).
    Fixed(u32),
    /// Split by the number of surviving nodes at plan time, so every
    /// survivor gets reducer work (the paper's "N−1" rule of Fig. 11).
    Survivors,
}

impl SplitPolicy {
    /// Resolves the split factor given the current survivor count.
    /// Returns `None` when no splitting should be instructed.
    pub fn factor(&self, survivors: usize) -> Option<u32> {
        match self {
            SplitPolicy::None => None,
            SplitPolicy::Fixed(k) if *k <= 1 => None,
            SplitPolicy::Fixed(k) => Some(*k),
            SplitPolicy::Survivors => {
                let k = survivors as u32;
                (k > 1).then_some(k)
            }
        }
    }
}

/// How recomputation runs mitigate the hot-spots of §IV-B2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotspotMitigation {
    /// No mitigation: recomputed reducers write locally, the following
    /// job's mappers converge on that node.
    None,
    /// Reducer splitting (the paper's choice): splitting spreads the
    /// reducer output implicitly. Selected by using a [`SplitPolicy`]
    /// other than `None`.
    SplitReducers,
    /// The alternative the paper analyzes and rejects: unsplit
    /// recomputed reducers scatter their output blocks over many nodes.
    /// Balances the next map phase but not the reduce/shuffle work.
    SpreadOutput,
}

/// A failure-resilience strategy for a multi-job computation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// RCMP: replication factor 1, persisted task outputs, cascading
    /// minimum recomputation on data loss.
    Rcmp {
        split: SplitPolicy,
        hotspot: HotspotMitigation,
    },
    /// Hadoop with data replication: every job output written `factor`
    /// times; resubmissions (never needed unless more than `factor − 1`
    /// failures hit) re-execute entire jobs.
    Replication { factor: u32 },
    /// Assumes failures never happen: factor 1, nothing persisted;
    /// on any data loss the whole computation restarts from job 1.
    Optimistic,
    /// RCMP plus a replication point every `every_k` jobs (§IV-C):
    /// cascades stop at the last replicated output, and storage for
    /// older persisted outputs can be reclaimed.
    Hybrid {
        split: SplitPolicy,
        every_k: u32,
        factor: u32,
        /// Reclaim persisted outputs behind each replication point.
        reclaim: bool,
    },
    /// The paper's §IV-C future work: hybrid with replication points
    /// placed by an expected-cost model instead of a static modulus.
    DynamicHybrid {
        split: SplitPolicy,
        factor: u32,
        policy: DynamicPolicy,
        reclaim: bool,
    },
}

impl Strategy {
    /// The paper's RCMP SPLIT with a fixed ratio.
    pub fn rcmp_split(k: u32) -> Self {
        Strategy::Rcmp {
            split: SplitPolicy::Fixed(k),
            hotspot: HotspotMitigation::SplitReducers,
        }
    }

    /// The paper's RCMP NO-SPLIT.
    pub fn rcmp_no_split() -> Self {
        Strategy::Rcmp {
            split: SplitPolicy::None,
            hotspot: HotspotMitigation::None,
        }
    }

    /// Replication factor each job's output is written with.
    pub fn output_replication(&self) -> u32 {
        match self {
            Strategy::Replication { factor } => *factor,
            _ => 1,
        }
    }

    /// Whether task outputs persist across jobs.
    pub fn persists_outputs(&self) -> bool {
        matches!(
            self,
            Strategy::Rcmp { .. } | Strategy::Hybrid { .. } | Strategy::DynamicHybrid { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_policy_resolution() {
        assert_eq!(SplitPolicy::None.factor(9), None);
        assert_eq!(SplitPolicy::Fixed(8).factor(9), Some(8));
        assert_eq!(SplitPolicy::Fixed(1).factor(9), None);
        assert_eq!(SplitPolicy::Survivors.factor(9), Some(9));
        assert_eq!(SplitPolicy::Survivors.factor(1), None);
    }

    #[test]
    fn strategy_properties() {
        assert_eq!(Strategy::Replication { factor: 3 }.output_replication(), 3);
        assert_eq!(Strategy::rcmp_split(8).output_replication(), 1);
        assert!(Strategy::rcmp_no_split().persists_outputs());
        assert!(!Strategy::Optimistic.persists_outputs());
        assert!(!Strategy::Replication { factor: 2 }.persists_outputs());
        assert!(Strategy::Hybrid {
            split: SplitPolicy::None,
            every_k: 5,
            factor: 2,
            reclaim: true
        }
        .persists_outputs());
        assert!(Strategy::DynamicHybrid {
            split: SplitPolicy::None,
            factor: 2,
            policy: DynamicPolicy::from_trace_stats(0.17, 10.0, 10, 1),
            reclaim: false,
        }
        .persists_outputs());
    }
}
