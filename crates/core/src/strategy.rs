//! The failure-resilience strategies compared in the evaluation (§V-A).
//!
//! The per-run decision types ([`SplitPolicy`], [`HotspotMitigation`])
//! live in the shared policy kernel (`rcmp-policy`) so the middleware
//! and the chain simulator resolve them identically; this module keeps
//! the strategy *menu* the evaluation compares.

use crate::dynamic::{AdaptConfig, DynamicPolicy};
use serde::{Deserialize, Serialize};

pub use rcmp_policy::{HotspotMitigation, SplitPolicy};

/// A failure-resilience strategy for a multi-job computation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// RCMP: replication factor 1, persisted task outputs, cascading
    /// minimum recomputation on data loss.
    Rcmp {
        split: SplitPolicy,
        hotspot: HotspotMitigation,
    },
    /// Hadoop with data replication: every job output written `factor`
    /// times; resubmissions (never needed unless more than `factor − 1`
    /// failures hit) re-execute entire jobs.
    Replication { factor: u32 },
    /// Assumes failures never happen: factor 1, nothing persisted;
    /// on any data loss the whole computation restarts from job 1.
    Optimistic,
    /// RCMP plus a replication point every `every_k` jobs (§IV-C):
    /// cascades stop at the last replicated output, and storage for
    /// older persisted outputs can be reclaimed.
    Hybrid {
        split: SplitPolicy,
        every_k: u32,
        factor: u32,
        /// Reclaim persisted outputs behind each replication point.
        reclaim: bool,
    },
    /// The paper's §IV-C future work: hybrid with replication points
    /// placed by an expected-cost model instead of a static modulus.
    DynamicHybrid {
        split: SplitPolicy,
        factor: u32,
        policy: DynamicPolicy,
        reclaim: bool,
    },
    /// The closed loop: hybrid whose replication interval is re-derived
    /// after every job from an online failure-intensity estimate fed by
    /// the faults the chain actually observes (`rcmp_policy::adapt`),
    /// instead of a frozen prior.
    AdaptiveHybrid {
        split: SplitPolicy,
        factor: u32,
        adapt: AdaptConfig,
        reclaim: bool,
    },
}

impl Strategy {
    /// The paper's RCMP SPLIT with a fixed ratio.
    pub fn rcmp_split(k: u32) -> Self {
        Strategy::Rcmp {
            split: SplitPolicy::Fixed(k),
            hotspot: HotspotMitigation::SplitReducers,
        }
    }

    /// The paper's RCMP NO-SPLIT.
    pub fn rcmp_no_split() -> Self {
        Strategy::Rcmp {
            split: SplitPolicy::None,
            hotspot: HotspotMitigation::None,
        }
    }

    /// Replication factor each job's output is written with.
    pub fn output_replication(&self) -> u32 {
        match self {
            Strategy::Replication { factor } => *factor,
            _ => 1,
        }
    }

    /// Whether task outputs persist across jobs.
    pub fn persists_outputs(&self) -> bool {
        matches!(
            self,
            Strategy::Rcmp { .. }
                | Strategy::Hybrid { .. }
                | Strategy::DynamicHybrid { .. }
                | Strategy::AdaptiveHybrid { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_properties() {
        assert_eq!(Strategy::Replication { factor: 3 }.output_replication(), 3);
        assert_eq!(Strategy::rcmp_split(8).output_replication(), 1);
        assert!(Strategy::rcmp_no_split().persists_outputs());
        assert!(!Strategy::Optimistic.persists_outputs());
        assert!(!Strategy::Replication { factor: 2 }.persists_outputs());
        assert!(Strategy::Hybrid {
            split: SplitPolicy::None,
            every_k: 5,
            factor: 2,
            reclaim: true
        }
        .persists_outputs());
        assert!(Strategy::DynamicHybrid {
            split: SplitPolicy::None,
            factor: 2,
            policy: DynamicPolicy::from_trace_stats(0.17, 10.0, 10, 1),
            reclaim: false,
        }
        .persists_outputs());
        assert!(Strategy::AdaptiveHybrid {
            split: SplitPolicy::None,
            factor: 2,
            adapt: AdaptConfig::default_for(10),
            reclaim: false,
        }
        .persists_outputs());
    }
}
