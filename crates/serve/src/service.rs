//! The job service: admission, arbitration, dispatch.
//!
//! One [`JobService`] owns one shared cluster and three cooperating
//! pieces of machinery:
//!
//! * the **submission path** ([`JobService::submit`]) — admission
//!   control against each tenant's bounded queue, then enqueue into the
//!   DRR arbiter;
//! * the **dispatcher thread** — wakes whenever a chain slot or worker
//!   frees up, asks the arbiter for the next grants, and spawns one
//!   runner per granted chain;
//! * the **runner threads** — lease workers from the global budget,
//!   build a per-chain executor session matching the cluster's backend,
//!   and drive the chain to completion with the tenant tag and chain
//!   label threaded through the whole observability stack.
//!
//! Every scheduling decision is made by the deterministic arbiter;
//! the only wall-clock inputs are chain latencies (reported, never used
//! for decisions), so a replay of the same submission sequence grants
//! in the same order.

use rcmp_core::{ChainDriver, Strategy};
use rcmp_engine::{Cluster, FailureInjector, JobSpec};
use rcmp_exec::{BackendExecutor, WorkerBudget};
use rcmp_model::rng::derive_indexed;
use rcmp_model::{Error, ExecutorConfig, Result, ServeConfig, TenantId};
use rcmp_obs::{Counter, Gauge, Histogram};
use rcmp_policy::{DrrArbiter, TenantShare};
use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Instant;

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Latency buckets for `serve.chain_latency_ms` (milliseconds).
const LATENCY_BOUNDS_MS: &[u64] = &[
    1, 2, 5, 10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 30_000,
];

/// One tenant's request to run a chain through the service.
pub struct ChainRequest {
    /// Submitting tenant (must be registered).
    pub tenant: TenantId,
    /// The chain's jobs, dependency-ordered as for
    /// [`ChainDriver::run`].
    pub jobs: Vec<JobSpec>,
    /// Resilience strategy to drive the chain under.
    pub strategy: Strategy,
    /// Chain label: keys this chain's blackbox dump and names its
    /// `RCMP_BLACKBOX_DIR` file. Should be unique per submission.
    pub label: String,
    /// Failure injector for this chain (chaos testing); `None` runs
    /// without injected faults.
    pub injector: Option<Arc<dyn FailureInjector>>,
    /// DRR cost in deficit units; defaults to the job count.
    pub cost: u64,
}

impl ChainRequest {
    /// A request with the default label (`"<tenant>/chain"`), no
    /// injector, and cost equal to the job count.
    pub fn new(tenant: TenantId, jobs: Vec<JobSpec>, strategy: Strategy) -> Self {
        let cost = jobs.len().max(1) as u64;
        Self {
            tenant,
            jobs,
            strategy,
            label: format!("{tenant}/chain"),
            injector: None,
            cost,
        }
    }

    /// Sets the chain label (blackbox dump key; make it unique).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Attaches a failure injector to this chain's runs.
    pub fn with_injector(mut self, injector: Arc<dyn FailureInjector>) -> Self {
        self.injector = Some(injector);
        self
    }

    /// Overrides the DRR cost (defaults to the job count).
    pub fn with_cost(mut self, cost: u64) -> Self {
        self.cost = cost.max(1);
        self
    }
}

/// Compact summary of a completed chain (the full
/// [`ChainOutcome`](rcmp_core::ChainOutcome) stays inside the runner;
/// results must stay cheap to buffer for thousands of chains).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainSummary {
    /// Total job runs started (recomputations and restarts included).
    pub jobs_started: u64,
    /// Whole-chain restarts.
    pub restarts: u32,
    /// Mapper tasks actually executed across all runs.
    pub map_tasks: usize,
    /// Reducer tasks actually executed across all runs.
    pub reduce_tasks: usize,
}

/// Delivered to the submitting tenant when its chain resolves.
pub struct ChainResult {
    /// The tenant that submitted the chain.
    pub tenant: TenantId,
    /// The ticket from [`JobService::submit`].
    pub ticket: u64,
    /// The chain label from the request.
    pub label: String,
    /// Wall-clock submit → resolve latency in milliseconds (includes
    /// queueing delay — the number a tenant actually experiences).
    pub latency_ms: u64,
    /// Global grant sequence number (1-based): the `n`-th chain the
    /// arbiter granted a slot. Fairness analysis uses it to ask who got
    /// *scheduled* early under contention — unlike completion order it
    /// is a pure arbiter decision, untouched by wall-clock noise.
    pub grant_seq: u64,
    /// Global completion sequence number (1-based): the `n`-th chain
    /// the service resolved.
    pub done_seq: u64,
    /// The chain's outcome: a summary, or the typed error it surfaced.
    pub outcome: Result<ChainSummary>,
}

/// Handle for one admitted chain; redeem it with [`ChainTicket::wait`].
pub struct ChainTicket {
    ticket: u64,
    tenant: TenantId,
    rx: mpsc::Receiver<ChainResult>,
}

impl ChainTicket {
    /// The service-assigned ticket number (admission order).
    pub fn ticket(&self) -> u64 {
        self.ticket
    }

    /// The submitting tenant.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// Blocks until the chain resolves. Errors only if the service shut
    /// down before the chain ran.
    pub fn wait(self) -> Result<ChainResult> {
        self.rx.recv().map_err(|_| {
            Error::Config(format!(
                "job service shut down before ticket {} of {} ran",
                self.ticket, self.tenant
            ))
        })
    }
}

struct Pending {
    req: ChainRequest,
    tx: mpsc::Sender<ChainResult>,
    submitted: Instant,
}

struct Inner {
    arbiter: DrrArbiter,
    pending: HashMap<u64, Pending>,
    /// Consecutive rejections per tenant: the backoff attempt counter
    /// for the retry-after hint. Reset on successful admission.
    rejections: HashMap<TenantId, u32>,
    /// Pre-resolved `serve.tenant.<t>.in_flight` gauges — updated on
    /// grant/complete, potentially while waves are hot elsewhere.
    tenant_gauges: HashMap<TenantId, Gauge>,
    queued: u32,
    in_flight: u32,
    next_ticket: u64,
    grant_seq: u64,
    done_seq: u64,
    shutdown: bool,
    runners: Vec<JoinHandle<()>>,
}

struct Shared {
    inner: Mutex<Inner>,
    /// Wakes the dispatcher on submit, completion and shutdown.
    wake: Condvar,
    cluster: Arc<Cluster>,
    cfg: ServeConfig,
    budget: WorkerBudget,
    m_queue_depth: Gauge,
    m_in_flight: Gauge,
    m_admitted: Counter,
    m_rejected: Counter,
    m_latency: Histogram,
}

/// The multi-tenant job service (see the crate docs for the model).
///
/// Dropping the service stops the dispatcher, waits for in-flight
/// chains to finish, and fails any still-queued tickets.
pub struct JobService {
    shared: Arc<Shared>,
    dispatcher: Option<JoinHandle<()>>,
}

impl JobService {
    /// Starts a service over `cluster` with the given limits.
    pub fn new(cluster: Arc<Cluster>, cfg: ServeConfig) -> Result<Self> {
        cfg.validate()?;
        let metrics = cluster.metrics();
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                arbiter: DrrArbiter::new(cfg.quantum),
                pending: HashMap::new(),
                rejections: HashMap::new(),
                tenant_gauges: HashMap::new(),
                queued: 0,
                in_flight: 0,
                next_ticket: 1,
                grant_seq: 0,
                done_seq: 0,
                shutdown: false,
                runners: Vec::new(),
            }),
            wake: Condvar::new(),
            budget: WorkerBudget::new(cfg.worker_budget),
            m_queue_depth: metrics.gauge("serve.queue_depth"),
            m_in_flight: metrics.gauge("serve.chains_in_flight"),
            m_admitted: metrics.counter("serve.admitted"),
            m_rejected: metrics.counter("serve.rejected"),
            m_latency: metrics.histogram("serve.chain_latency_ms", LATENCY_BOUNDS_MS),
            cluster,
            cfg,
        });
        let dispatcher = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("rcmp-serve-dispatcher".into())
                .spawn(move || dispatch_loop(&shared))
                .map_err(|e| Error::Config(format!("spawning dispatcher: {e}")))?
        };
        Ok(Self {
            shared,
            dispatcher: Some(dispatcher),
        })
    }

    /// Registers a tenant (or updates its share). Submissions from
    /// unregistered tenants are rejected outright.
    pub fn register_tenant(&self, tenant: TenantId, share: TenantShare) {
        let gauge = self
            .shared
            .cluster
            .metrics()
            .gauge(&format!("serve.tenant.{tenant}.in_flight"));
        let mut inner = lock(&self.shared.inner);
        inner.arbiter.register(tenant, share);
        inner.tenant_gauges.entry(tenant).or_insert(gauge);
    }

    /// Submits a chain. Returns a ticket to wait on, or the typed
    /// admission rejection:
    ///
    /// * an unregistered tenant gets [`Error::Config`] — retrying will
    ///   not help;
    /// * a full per-tenant queue gets [`Error::AdmissionRejected`] with
    ///   a `retry_after_ms` hint from the seeded full-jitter backoff
    ///   (attempt = consecutive rejections), so a polite client's
    ///   retries decorrelate deterministically.
    pub fn submit(&self, req: ChainRequest) -> Result<ChainTicket> {
        let tenant = req.tenant;
        let mut inner = lock(&self.shared.inner);
        if inner.shutdown {
            return Err(Error::Config("job service is shutting down".into()));
        }
        if !inner.arbiter.is_registered(tenant) {
            return Err(Error::Config(format!(
                "tenant {tenant} is not registered with the job service"
            )));
        }
        if inner.arbiter.queue_len(tenant) >= self.shared.cfg.queue_depth as usize {
            let attempt = {
                let n = inner.rejections.entry(tenant).or_insert(0);
                *n = n.saturating_add(1);
                *n
            };
            let retry_after_ms = self.shared.cfg.retry.backoff_ms(
                derive_indexed(self.shared.cfg.seed, "admission", u64::from(tenant.raw())),
                attempt,
            );
            self.shared.m_rejected.inc();
            return Err(Error::AdmissionRejected {
                tenant,
                retry_after_ms,
            });
        }
        inner.rejections.insert(tenant, 0);
        let ticket = inner.next_ticket;
        inner.next_ticket += 1;
        let cost = req.cost;
        let admitted = inner.arbiter.enqueue(tenant, ticket, cost);
        debug_assert!(admitted, "registration checked above");
        let (tx, rx) = mpsc::channel();
        inner.pending.insert(
            ticket,
            Pending {
                req,
                tx,
                submitted: Instant::now(),
            },
        );
        inner.queued += 1;
        self.shared.m_queue_depth.set(i64::from(inner.queued));
        self.shared.m_admitted.inc();
        drop(inner);
        self.shared.wake.notify_all();
        Ok(ChainTicket { ticket, tenant, rx })
    }

    /// Blocks until every admitted chain has resolved (queue empty and
    /// nothing in flight). New submissions may still arrive afterwards;
    /// this is a drain point, not a shutdown.
    pub fn drain(&self) {
        let mut inner = lock(&self.shared.inner);
        while inner.queued > 0 || inner.in_flight > 0 {
            inner = self
                .shared
                .wake
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The shared cluster this service multiplexes.
    pub fn cluster(&self) -> &Arc<Cluster> {
        &self.shared.cluster
    }
}

impl Drop for JobService {
    fn drop(&mut self) {
        {
            let mut inner = lock(&self.shared.inner);
            inner.shutdown = true;
        }
        self.shared.wake.notify_all();
        if let Some(d) = self.dispatcher.take() {
            let _ = d.join();
        }
    }
}

/// The dispatcher: grants chains whenever slots and workers are free.
/// Exits once shutdown is requested and nothing is in flight, failing
/// still-queued tickets by dropping their senders.
fn dispatch_loop(shared: &Arc<Shared>) {
    let mut inner = lock(&shared.inner);
    loop {
        if inner.shutdown {
            if inner.in_flight > 0 {
                inner = shared
                    .wake
                    .wait(inner)
                    .unwrap_or_else(PoisonError::into_inner);
                continue;
            }
            inner.pending.clear();
            inner.queued = 0;
            shared.m_queue_depth.set(0);
            let runners = std::mem::take(&mut inner.runners);
            drop(inner);
            for r in runners {
                let _ = r.join();
            }
            return;
        }
        // A chain needs a slot under the concurrency cap and at least
        // one free worker (the lease's floor-of-one otherwise
        // oversubscribes the pool).
        let slots = shared
            .cfg
            .max_concurrent_chains
            .saturating_sub(inner.in_flight)
            .min(shared.budget.available());
        let grants = inner.arbiter.next_grants(slots);
        if grants.is_empty() {
            inner = shared
                .wake
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
            continue;
        }
        for grant in grants {
            let pending = inner
                .pending
                .remove(&grant.ticket)
                .expect("granted ticket has a pending entry");
            inner.queued -= 1;
            inner.in_flight += 1;
            inner.grant_seq += 1;
            let grant_seq = inner.grant_seq;
            if let Some(g) = inner.tenant_gauges.get(&grant.tenant) {
                g.add(1);
            }
            shared.m_queue_depth.set(i64::from(inner.queued));
            shared.m_in_flight.set(i64::from(inner.in_flight));
            let shared2 = Arc::clone(shared);
            let handle = std::thread::Builder::new()
                .name(format!("rcmp-serve-{}", grant.tenant))
                .spawn(move || run_chain(&shared2, grant.tenant, grant.ticket, grant_seq, pending))
                .expect("spawning chain runner");
            inner.runners.push(handle);
        }
    }
}

/// Builds a per-chain executor session matching the cluster's backend
/// kind: async chains get their own reactor sized to the worker lease;
/// threaded stays threaded (its per-slot threads are its semantics).
fn per_chain_executor(cluster: &Cluster, workers: u32) -> BackendExecutor {
    let cfg = match cluster.executor().name() {
        "async" => ExecutorConfig::async_workers(workers),
        _ => ExecutorConfig::default(),
    };
    BackendExecutor::from_config(&cfg)
        .with_obs(cluster.tracer().clone(), cluster.metrics())
        .with_profiler(cluster.profiler().clone())
}

/// One runner: leases workers, drives the chain, reports the result,
/// releases the slot. The lease is explicitly dropped *before* the
/// dispatcher is woken so freed workers are visible to the next grant.
fn run_chain(
    shared: &Arc<Shared>,
    tenant: TenantId,
    ticket: u64,
    grant_seq: u64,
    pending: Pending,
) {
    let Pending { req, tx, submitted } = pending;
    let lease = shared.budget.lease(shared.cfg.workers_per_chain);
    let executor = Arc::new(per_chain_executor(&shared.cluster, lease.workers()));
    let label = req.label.clone();
    let outcome = {
        let mut driver = ChainDriver::new(&shared.cluster, req.strategy)
            .with_chain_label(label.clone())
            .with_tenant(tenant)
            .with_executor(executor);
        if let Some(injector) = req.injector.clone() {
            driver = driver.with_injector(injector);
        }
        // A panicking chain must release its slot, or the service
        // wedges; surface it as a typed error instead.
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| driver.run(&req.jobs)))
            .unwrap_or_else(|_| Err(Error::Config(format!("chain runner panicked: {label}"))))
            .map(|o| ChainSummary {
                jobs_started: o.jobs_started,
                restarts: o.restarts,
                map_tasks: o.total_map_tasks(),
                reduce_tasks: o.total_reduce_tasks(),
            })
    };
    drop(lease);
    let latency_ms = submitted.elapsed().as_millis() as u64;
    shared.m_latency.observe(latency_ms);
    let done_seq = {
        let mut inner = lock(&shared.inner);
        inner.arbiter.complete(tenant);
        inner.in_flight -= 1;
        inner.done_seq += 1;
        if let Some(g) = inner.tenant_gauges.get(&tenant) {
            g.add(-1);
        }
        shared.m_in_flight.set(i64::from(inner.in_flight));
        inner.done_seq
    };
    shared.wake.notify_all();
    let _ = tx.send(ChainResult {
        tenant,
        ticket,
        label,
        latency_ms,
        grant_seq,
        done_seq,
        outcome,
    });
}
