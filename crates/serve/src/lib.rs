//! `rcmp-serve`: the multi-tenant job service.
//!
//! Everything below the driver runs *one* chain for *one* caller. This
//! crate turns the stack into a long-lived service: many tenants submit
//! [`ChainRequest`]s concurrently, all multiplexed onto one shared
//! [`Cluster`](rcmp_engine::Cluster). The service adds the three things
//! a shared deployment needs that a single-chain driver does not:
//!
//! * **Admission control** — each tenant owns a bounded submission
//!   queue; overflow is rejected with the typed
//!   [`Error::AdmissionRejected`](rcmp_model::Error::AdmissionRejected)
//!   carrying a seeded-backoff retry-after hint, so clients back off
//!   deterministically instead of hammering a full queue.
//! * **Fair-share arbitration** — whose chain runs next is decided by
//!   the weighted deficit-round-robin kernel in
//!   [`rcmp_policy::DrrArbiter`]: per-tenant weights and in-flight
//!   quotas above the existing slot-pull wave assignment, so one noisy
//!   tenant cannot starve a minimal-quota one.
//! * **Per-tenant execution and observability** — every admitted chain
//!   runs on its own wave-executor session leased from a global
//!   [`WorkerBudget`](rcmp_exec::WorkerBudget), its `JobRun` spans are
//!   tenant-tagged (filterable with
//!   [`rcmp_obs::tenant_view`]), its post-mortem blackbox dump is keyed
//!   by chain label, and the service publishes `serve.*` metrics
//!   (queue depth, admit/reject counts, per-tenant in-flight, chain
//!   latency histogram).
//!
//! The [`soak`] module drives the service with multi-tenant scenarios
//! and reports throughput, latency percentiles and Jain's fairness
//! index — the `servefig` pseudo-figure and the serve soak tests are
//! built on it.

#![deny(missing_docs)]

mod service;
pub mod soak;

pub use service::{ChainRequest, ChainResult, ChainSummary, ChainTicket, JobService};
