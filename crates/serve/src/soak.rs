//! Multi-tenant soak scenarios and the serve benchmark harness.
//!
//! A [`SoakScenario`] describes one service deployment — cluster size,
//! service limits, per-tenant load (chains, jobs per chain, share,
//! chaos) — and [`run_scenario`] drives it end to end:
//!
//! 1. compute the **golden digest** for each chain shape by running it
//!    solo on a pristine cluster (namespacing keeps digests invariant,
//!    so one solo run vouches for every tenant's copy);
//! 2. start a [`JobService`], register the tenants, and submit every
//!    chain round-robin across tenants (maximum contention), honouring
//!    [`Error::AdmissionRejected`] retry-after hints when a queue
//!    fills;
//! 3. wait for every ticket and verify each successful chain's final
//!    output byte-for-byte against its golden digest.
//!
//! The [`SoakReport`] carries throughput, p50/p99 latency, and Jain's
//! fairness index over *weight-normalised early grants*: of the first
//! half of arbiter grants, how many did each tenant get per unit of
//! weight. Grant order is a pure arbiter decision, so the index
//! measures the scheduler, not thread-timing noise.

use crate::{ChainRequest, ChainResult, ChainTicket, JobService};
use rcmp_core::{ChainDriver, Strategy};
use rcmp_engine::{Cluster, FailureInjector, RandomizedInjector};
use rcmp_model::{ClusterConfig, Error, ExecutorConfig, Result, ServeConfig, TenantId};
use rcmp_policy::{jain_index, TenantShare};
use rcmp_workloads::checksum::{digest_file, OutputDigest};
use rcmp_workloads::{generate_input, ChainBuilder, DataGenConfig};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One tenant's offered load in a scenario.
#[derive(Clone, Copy, Debug)]
pub struct TenantLoad {
    /// The tenant.
    pub tenant: TenantId,
    /// Fair-share weight and in-flight quota.
    pub share: TenantShare,
    /// Chains this tenant submits.
    pub chains: u32,
    /// Jobs per chain (the chain shape; also its golden-digest key).
    pub jobs_per_chain: u32,
    /// Whether this tenant's chains carry the scenario chaos injector.
    pub chaos: bool,
}

/// A full multi-tenant soak configuration.
#[derive(Clone, Debug)]
pub struct SoakScenario {
    /// Scenario name (report key, figure column).
    pub name: String,
    /// Cluster nodes.
    pub nodes: u32,
    /// Input partitions (also the reducer count of every chain job).
    pub partitions: u32,
    /// Input bytes per partition.
    pub bytes_per_partition: u64,
    /// Service limits.
    pub serve: ServeConfig,
    /// The tenants and their load.
    pub tenants: Vec<TenantLoad>,
    /// Seed for the shared chaos injector carried by `chaos` tenants'
    /// chains (`None` disables chaos).
    pub chaos_seed: Option<u64>,
}

impl SoakScenario {
    fn base(name: &str, nodes: u32) -> Self {
        Self {
            name: name.to_string(),
            nodes,
            partitions: 4,
            bytes_per_partition: 20_000,
            // queue_depth 2 on purpose: round-robin submission overruns
            // it, exercising the AdmissionRejected retry-after path.
            serve: ServeConfig {
                queue_depth: 2,
                max_concurrent_chains: 3,
                worker_budget: 6,
                workers_per_chain: 2,
                ..ServeConfig::default()
            },
            tenants: Vec::new(),
            chaos_seed: None,
        }
    }

    /// Three equal tenants, equal quotas, no chaos — the fairness-gate
    /// scenario (Jain over early grants must be ≥ 0.9).
    pub fn balanced() -> Self {
        let mut sc = Self::base("balanced", 6);
        sc.tenants = (0..3)
            .map(|t| TenantLoad {
                tenant: TenantId(t),
                share: TenantShare {
                    weight: 1,
                    max_in_flight: 1,
                },
                chains: 6,
                jobs_per_chain: 2,
                chaos: false,
            })
            .collect();
        sc
    }

    /// Weights 1/2/4 with matching quotas: the heavy tenant should see
    /// proportionally more early grants, not starve the light one.
    pub fn weighted() -> Self {
        let mut sc = Self::base("weighted", 6);
        sc.serve.max_concurrent_chains = 4;
        sc.tenants = [(0u32, 1u32, 4u32), (1, 2, 6), (2, 4, 8)]
            .into_iter()
            .map(|(t, weight, chains)| TenantLoad {
                tenant: TenantId(t),
                share: TenantShare {
                    weight,
                    max_in_flight: weight,
                },
                chains,
                jobs_per_chain: 2,
                chaos: false,
            })
            .collect();
        sc
    }

    /// Balanced quotas with seeded chaos on tenant 0's chains: the
    /// other tenants' digests must stay golden (or their chains end in
    /// a typed error) despite shared-cluster faults.
    pub fn chaos(seed: u64) -> Self {
        let mut sc = Self::base("chaos", 8);
        sc.chaos_seed = Some(seed);
        sc.tenants = (0..3)
            .map(|t| TenantLoad {
                tenant: TenantId(t),
                share: TenantShare {
                    weight: 1,
                    max_in_flight: 1,
                },
                chains: 4,
                jobs_per_chain: 2,
                chaos: t == 0,
            })
            .collect();
        sc
    }

    fn cluster_config(&self) -> ClusterConfig {
        let mut cfg = ClusterConfig::small_test(self.nodes);
        cfg.executor = ExecutorConfig::from_env_or_default();
        cfg
    }
}

/// Per-tenant slice of a [`SoakReport`].
#[derive(Clone, Debug, Serialize)]
pub struct TenantReport {
    /// Tenant id (display form, e.g. `"t0"`).
    pub tenant: String,
    /// Fair-share weight.
    pub weight: u32,
    /// Chains that completed with a summary.
    pub completed: u32,
    /// Chains that ended in a typed error.
    pub failed: u32,
    /// Median submit → resolve latency, milliseconds.
    pub p50_ms: u64,
    /// 99th-percentile latency, milliseconds.
    pub p99_ms: u64,
    /// Early grants (first half of the grant sequence) per unit of
    /// weight — the allocation Jain's index is computed over.
    pub early_grants_per_weight: f64,
}

/// The outcome of one soak scenario.
#[derive(Clone, Debug, Serialize)]
pub struct SoakReport {
    /// Scenario name.
    pub scenario: String,
    /// Chains submitted (and eventually admitted).
    pub chains: u32,
    /// Chains that completed with a summary.
    pub completed: u32,
    /// Chains that ended in a typed error (chaos scenarios only).
    pub failed: u32,
    /// Submissions rejected with `AdmissionRejected` before eventually
    /// being admitted on retry.
    pub rejected_submissions: u64,
    /// Wall-clock for the whole scenario, milliseconds.
    pub elapsed_ms: u64,
    /// Completed chains per second.
    pub throughput_cps: f64,
    /// Median chain latency, milliseconds.
    pub p50_ms: u64,
    /// 99th-percentile chain latency, milliseconds.
    pub p99_ms: u64,
    /// Jain's fairness index over weight-normalised early grants
    /// (1.0 = perfectly fair).
    pub jain: f64,
    /// Final outputs verified byte-identical to their golden digest.
    pub digests_verified: u32,
    /// Verified outputs that did NOT match golden — must be zero.
    pub digest_mismatches: u32,
    /// Outputs unverifiable because chaos later killed their replicas
    /// (never counts against correctness; replication is 1 under RCMP).
    pub digests_unavailable: u32,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantReport>,
}

/// Runs one chain shape solo on a pristine cluster and returns the
/// digest every tenant's copy must reproduce.
fn golden_digest(sc: &SoakScenario, jobs: u32) -> Result<OutputDigest> {
    let cluster = Cluster::new(sc.cluster_config());
    generate_input(
        cluster.dfs(),
        &DataGenConfig::test("input", sc.partitions, sc.bytes_per_partition),
    )?;
    let chain = ChainBuilder::new(jobs, sc.partitions)
        .input("input")
        .build();
    let driver = ChainDriver::new(&cluster, Strategy::rcmp_split(3));
    driver.run(&chain.jobs)?;
    let reader = cluster.live_nodes()[0];
    let (digest, _) = digest_file(cluster.dfs(), chain.final_output(), reader)?;
    Ok(digest)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Submits with bounded retries, honouring the rejection's seeded
/// retry-after hint (capped so a soak never sleeps long). Returns the
/// ticket and how many rejections it absorbed.
fn submit_with_backoff(
    service: &JobService,
    mut mk: impl FnMut() -> ChainRequest,
) -> Result<(ChainTicket, u64)> {
    let mut rejections = 0u64;
    loop {
        match service.submit(mk()) {
            Ok(ticket) => return Ok((ticket, rejections)),
            Err(Error::AdmissionRejected { retry_after_ms, .. }) => {
                rejections += 1;
                if rejections > 10_000 {
                    return Err(Error::Config(
                        "admission retries exhausted: queue never drained".into(),
                    ));
                }
                std::thread::sleep(std::time::Duration::from_millis(
                    retry_after_ms.clamp(1, 20),
                ));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Drives one scenario end to end (see the module docs for the phases).
pub fn run_scenario(sc: &SoakScenario) -> Result<SoakReport> {
    // Phase 1: golden digests, one per distinct chain shape.
    let mut golden: HashMap<u32, OutputDigest> = HashMap::new();
    for t in &sc.tenants {
        if let std::collections::hash_map::Entry::Vacant(e) = golden.entry(t.jobs_per_chain) {
            e.insert(golden_digest(sc, t.jobs_per_chain)?);
        }
    }

    // Phase 2: the shared service cluster.
    let cluster = Arc::new(Cluster::new(sc.cluster_config()));
    generate_input(
        cluster.dfs(),
        &DataGenConfig::test("input", sc.partitions, sc.bytes_per_partition),
    )?;
    let service = JobService::new(Arc::clone(&cluster), sc.serve)?;
    for t in &sc.tenants {
        service.register_tenant(t.tenant, t.share);
    }
    // One shared chaos injector: its kill budget is global, so
    // concurrent chaos chains can never conspire to wipe the cluster.
    let chaos: Option<Arc<dyn FailureInjector>> = sc.chaos_seed.map(|seed| {
        Arc::new(
            RandomizedInjector::new(seed, sc.nodes)
                .max_kills(1)
                .max_other_faults(2),
        ) as Arc<dyn FailureInjector>
    });

    // Phase 3: round-robin submission across tenants.
    let started = Instant::now();
    let mut tickets: Vec<(TenantLoad, u32, String, ChainTicket)> = Vec::new();
    let mut rejected = 0u64;
    let max_chains = sc.tenants.iter().map(|t| t.chains).max().unwrap_or(0);
    let mut namespace_idx = 0u32;
    for c in 0..max_chains {
        for t in &sc.tenants {
            if c >= t.chains {
                continue;
            }
            // Disjoint job-id ranges and output prefixes per chain keep
            // concurrent chains' map outputs and DFS files apart.
            let prefix = format!("{}/c{}/", t.tenant, c);
            let chain = ChainBuilder::new(t.jobs_per_chain, sc.partitions)
                .input("input")
                .namespace(prefix, namespace_idx * 100)
                .build();
            namespace_idx += 1;
            let final_output = chain.final_output().to_string();
            let label = format!("{}/c{}", t.tenant, c);
            let (ticket, rejections) = submit_with_backoff(&service, || {
                let mut req =
                    ChainRequest::new(t.tenant, chain.jobs.clone(), Strategy::rcmp_split(3))
                        .with_label(label.clone());
                if t.chaos {
                    if let Some(inj) = &chaos {
                        req = req.with_injector(Arc::clone(inj));
                    }
                }
                req
            })?;
            rejected += rejections;
            tickets.push((*t, c, final_output, ticket));
        }
    }

    // Phase 4: collect results and verify digests.
    let mut results: Vec<(TenantLoad, String, ChainResult)> = Vec::new();
    for (t, _c, final_output, ticket) in tickets {
        let result = ticket.wait()?;
        results.push((t, final_output, result));
    }
    let elapsed_ms = started.elapsed().as_millis().max(1) as u64;

    let mut digests_verified = 0u32;
    let mut digest_mismatches = 0u32;
    let mut digests_unavailable = 0u32;
    for (t, final_output, result) in &results {
        if result.outcome.is_err() {
            continue;
        }
        let live = cluster.live_nodes();
        let Some(&reader) = live.first() else {
            digests_unavailable += 1;
            continue;
        };
        match digest_file(cluster.dfs(), final_output, reader) {
            Ok((digest, _)) => {
                let expected = golden
                    .get(&t.jobs_per_chain)
                    .expect("golden digest computed for every shape");
                if digest == *expected {
                    digests_verified += 1;
                } else {
                    digest_mismatches += 1;
                }
            }
            // Chaos after completion can take the output's only replica
            // with it; that is data loss, not recomputation divergence.
            Err(_) if sc.chaos_seed.is_some() => digests_unavailable += 1,
            Err(e) => return Err(e),
        }
    }

    // Phase 5: fairness over weight-normalised early grants.
    let total = results.len() as u64;
    let early_cutoff = total.div_ceil(2);
    let mut early_by_tenant: HashMap<TenantId, u32> = HashMap::new();
    for (t, _, r) in &results {
        if r.grant_seq <= early_cutoff {
            *early_by_tenant.entry(t.tenant).or_insert(0) += 1;
        }
    }
    let allocations: Vec<f64> = sc
        .tenants
        .iter()
        .map(|t| {
            f64::from(early_by_tenant.get(&t.tenant).copied().unwrap_or(0))
                / f64::from(t.share.weight.max(1))
        })
        .collect();
    let jain = jain_index(&allocations);

    let mut all_latencies: Vec<u64> = Vec::new();
    let mut tenants_out = Vec::new();
    for t in &sc.tenants {
        let mut latencies: Vec<u64> = Vec::new();
        let mut completed = 0u32;
        let mut failed = 0u32;
        for (lt, _, r) in &results {
            if lt.tenant != t.tenant {
                continue;
            }
            latencies.push(r.latency_ms);
            match &r.outcome {
                Ok(_) => completed += 1,
                Err(_) => failed += 1,
            }
        }
        latencies.sort_unstable();
        all_latencies.extend_from_slice(&latencies);
        tenants_out.push(TenantReport {
            tenant: t.tenant.to_string(),
            weight: t.share.weight,
            completed,
            failed,
            p50_ms: percentile(&latencies, 50.0),
            p99_ms: percentile(&latencies, 99.0),
            early_grants_per_weight: f64::from(
                early_by_tenant.get(&t.tenant).copied().unwrap_or(0),
            ) / f64::from(t.share.weight.max(1)),
        });
    }
    all_latencies.sort_unstable();

    let completed: u32 = tenants_out.iter().map(|t| t.completed).sum();
    let failed: u32 = tenants_out.iter().map(|t| t.failed).sum();
    Ok(SoakReport {
        scenario: sc.name.clone(),
        chains: results.len() as u32,
        completed,
        failed,
        rejected_submissions: rejected,
        elapsed_ms,
        throughput_cps: f64::from(completed) / (elapsed_ms as f64 / 1_000.0),
        p50_ms: percentile(&all_latencies, 50.0),
        p99_ms: percentile(&all_latencies, 99.0),
        jain,
        digests_verified,
        digest_mismatches,
        digests_unavailable,
        tenants: tenants_out,
    })
}
