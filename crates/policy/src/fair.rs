//! Fair-share arbitration across tenants (the job service's cross-job
//! scheduling tier).
//!
//! The wave kernels in [`crate::waves`] decide *where tasks of one job
//! run*; this module decides *whose chain runs next* when many tenants
//! compete for the cluster's chain slots. The kernel is weighted
//! deficit round-robin (DRR) over per-tenant FIFO queues:
//!
//! * each tenant carries a `weight` (its fair share) and a
//!   `max_in_flight` quota (hard cap on concurrently granted chains);
//! * each arbitration round credits every backlogged tenant
//!   `weight × quantum` deficit units; a queued chain is granted when
//!   the tenant's deficit covers the chain's `cost` (its job count)
//!   and the tenant is under quota;
//! * deficit is capped so an idle or quota-capped tenant cannot hoard
//!   credit and later burst past its share.
//!
//! The arbiter is purely deterministic — no clock, no RNG — so a replay
//! of the same submission sequence grants in the same order, which is
//! what the serve soak's exact-replay mode relies on.

use rcmp_model::TenantId;
use std::collections::{BTreeMap, VecDeque};

/// One tenant's share configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TenantShare {
    /// Relative fair-share weight (≥ 1): deficit accrues at
    /// `weight × quantum` per round.
    pub weight: u32,
    /// Hard cap on chains in flight concurrently for this tenant.
    pub max_in_flight: u32,
}

impl TenantShare {
    /// An equal-share tenant: weight 1, `max_in_flight` 1.
    pub fn minimal() -> Self {
        Self {
            weight: 1,
            max_in_flight: 1,
        }
    }
}

/// One admitted-but-not-yet-granted chain in a tenant's queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Queued {
    /// Caller-chosen ticket identifying the chain.
    ticket: u64,
    /// Cost in deficit units (the chain's job count, ≥ 1).
    cost: u64,
}

/// A grant decision: run `ticket` of `tenant` now.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Grant {
    /// The tenant whose chain was granted.
    pub tenant: TenantId,
    /// The ticket passed to [`DrrArbiter::enqueue`].
    pub ticket: u64,
    /// The chain's cost, as enqueued.
    pub cost: u64,
}

struct TenantState {
    share: TenantShare,
    queue: VecDeque<Queued>,
    deficit: u64,
    in_flight: u32,
}

/// Weighted deficit-round-robin arbiter over per-tenant chain queues.
///
/// Deterministic and clock-free: rounds advance only inside
/// [`DrrArbiter::next_grants`], and ties between tenants break by
/// ascending [`TenantId`]. The service layer calls `enqueue` on
/// admission, `next_grants` whenever a chain slot frees up, and
/// `complete` when a granted chain finishes.
pub struct DrrArbiter {
    quantum: u64,
    tenants: BTreeMap<TenantId, TenantState>,
}

impl DrrArbiter {
    /// Creates an arbiter with the given DRR quantum (cost units
    /// credited per tenant weight per round; must be ≥ 1).
    pub fn new(quantum: u64) -> Self {
        Self {
            quantum: quantum.max(1),
            tenants: BTreeMap::new(),
        }
    }

    /// Registers a tenant (or replaces its share configuration; queue
    /// and in-flight state survive a reconfiguration).
    pub fn register(&mut self, tenant: TenantId, share: TenantShare) {
        let share = TenantShare {
            weight: share.weight.max(1),
            max_in_flight: share.max_in_flight.max(1),
        };
        self.tenants
            .entry(tenant)
            .and_modify(|s| s.share = share)
            .or_insert_with(|| TenantState {
                share,
                queue: VecDeque::new(),
                deficit: 0,
                in_flight: 0,
            });
    }

    /// True if the tenant has been registered.
    pub fn is_registered(&self, tenant: TenantId) -> bool {
        self.tenants.contains_key(&tenant)
    }

    /// Queued (not yet granted) chains for a tenant.
    pub fn queue_len(&self, tenant: TenantId) -> usize {
        self.tenants.get(&tenant).map_or(0, |s| s.queue.len())
    }

    /// Chains currently granted and not yet completed for a tenant.
    pub fn in_flight(&self, tenant: TenantId) -> u32 {
        self.tenants.get(&tenant).map_or(0, |s| s.in_flight)
    }

    /// Enqueues a chain of `cost` deficit units for `tenant`. The
    /// caller enforces queue-depth admission *before* calling this.
    /// Returns `false` (and drops the request) for an unknown tenant.
    #[must_use]
    pub fn enqueue(&mut self, tenant: TenantId, ticket: u64, cost: u64) -> bool {
        match self.tenants.get_mut(&tenant) {
            Some(s) => {
                s.queue.push_back(Queued {
                    ticket,
                    cost: cost.max(1),
                });
                true
            }
            None => false,
        }
    }

    /// Marks a granted chain of `tenant` complete, freeing one of its
    /// in-flight slots.
    pub fn complete(&mut self, tenant: TenantId) {
        if let Some(s) = self.tenants.get_mut(&tenant) {
            s.in_flight = s.in_flight.saturating_sub(1);
        }
    }

    /// Total queued chains across all tenants.
    pub fn backlog(&self) -> usize {
        self.tenants.values().map(|s| s.queue.len()).sum()
    }

    /// Runs DRR rounds until either `slots` grants have been issued or
    /// no further grant is possible (empty queues or every backlogged
    /// tenant at quota). Grants are returned in issue order.
    pub fn next_grants(&mut self, slots: u32) -> Vec<Grant> {
        let mut grants = Vec::new();
        if slots == 0 {
            return grants;
        }
        loop {
            let mut progressed = false;
            // One DRR round: credit + drain each tenant in id order.
            let ids: Vec<TenantId> = self.tenants.keys().copied().collect();
            for id in ids {
                let quantum = self.quantum;
                let s = self.tenants.get_mut(&id).expect("registered tenant");
                if s.queue.is_empty() {
                    // Idle tenants accrue nothing: DRR's anti-burst rule.
                    s.deficit = 0;
                    continue;
                }
                s.deficit = s
                    .deficit
                    .saturating_add(u64::from(s.share.weight).saturating_mul(quantum));
                // Cap so a quota-blocked tenant cannot bank unbounded
                // credit: one round's worth beyond its costliest head.
                let head_cost = s.queue.front().map_or(1, |q| q.cost);
                let cap = u64::from(s.share.weight)
                    .saturating_mul(quantum)
                    .saturating_add(head_cost);
                s.deficit = s.deficit.min(cap);
                while let Some(&head) = s.queue.front() {
                    if s.in_flight >= s.share.max_in_flight
                        || s.deficit < head.cost
                        || grants.len() as u32 >= slots
                    {
                        break;
                    }
                    s.queue.pop_front();
                    s.deficit -= head.cost;
                    s.in_flight += 1;
                    progressed = true;
                    grants.push(Grant {
                        tenant: id,
                        ticket: head.ticket,
                        cost: head.cost,
                    });
                }
                if grants.len() as u32 >= slots {
                    return grants;
                }
            }
            if !progressed {
                // A full round issued nothing: either no backlog, or
                // every backlogged tenant is at its in-flight quota.
                // Deficits are capped, so looping further cannot help.
                let stuck = self
                    .tenants
                    .values()
                    .all(|s| s.queue.is_empty() || s.in_flight >= s.share.max_in_flight);
                if stuck {
                    return grants;
                }
            }
        }
    }
}

/// Jain's fairness index over per-tenant allocations:
/// `(Σx)² / (n · Σx²)`. `1.0` is perfectly fair; `1/n` is maximally
/// unfair (one tenant gets everything). Empty input yields `1.0`.
pub fn jain_index(allocations: &[f64]) -> f64 {
    let n = allocations.len();
    if n == 0 {
        return 1.0;
    }
    let sum: f64 = allocations.iter().sum();
    let sum_sq: f64 = allocations.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbiter(shares: &[(u32, TenantShare)]) -> DrrArbiter {
        let mut a = DrrArbiter::new(4);
        for &(id, share) in shares {
            a.register(TenantId(id), share);
        }
        a
    }

    #[test]
    fn grants_in_weight_proportion() {
        let heavy = TenantShare {
            weight: 3,
            max_in_flight: 100,
        };
        let light = TenantShare {
            weight: 1,
            max_in_flight: 100,
        };
        let mut a = arbiter(&[(0, heavy), (1, light)]);
        for i in 0..40 {
            assert!(a.enqueue(TenantId(0), i, 4));
            assert!(a.enqueue(TenantId(1), 100 + i, 4));
        }
        let grants = a.next_grants(40);
        assert_eq!(grants.len(), 40);
        let t0 = grants.iter().filter(|g| g.tenant == TenantId(0)).count();
        let t1 = grants.iter().filter(|g| g.tenant == TenantId(1)).count();
        // 3:1 weights with equal costs → roughly 3:1 grant split.
        assert!(t0 >= 2 * t1, "expected weighted skew, got {t0}:{t1}");
        assert!(t1 >= 8, "light tenant must not starve, got {t1}");
    }

    #[test]
    fn quota_caps_in_flight() {
        let capped = TenantShare {
            weight: 10,
            max_in_flight: 2,
        };
        let mut a = arbiter(&[(0, capped), (1, TenantShare::minimal())]);
        for i in 0..8 {
            assert!(a.enqueue(TenantId(0), i, 1));
        }
        assert!(a.enqueue(TenantId(1), 100, 1));
        let grants = a.next_grants(8);
        // Tenant 0 capped at 2 despite weight 10; tenant 1 gets its one.
        assert_eq!(a.in_flight(TenantId(0)), 2);
        assert_eq!(a.in_flight(TenantId(1)), 1);
        assert_eq!(grants.len(), 3);
        // Completion frees a slot for the backlog.
        a.complete(TenantId(0));
        let more = a.next_grants(8);
        assert_eq!(more.len(), 1);
        assert_eq!(more[0].tenant, TenantId(0));
    }

    #[test]
    fn minimal_tenant_bounded_wait() {
        // A weight-1 tenant among heavyweights is granted within a
        // bounded number of rounds: with quantum Q it banks Q per round
        // and any cost c chain needs at most ceil(c / Q) rounds.
        let big = TenantShare {
            weight: 8,
            max_in_flight: 100,
        };
        let mut a = arbiter(&[(0, big), (1, big), (2, TenantShare::minimal())]);
        for i in 0..50 {
            assert!(a.enqueue(TenantId(0), i, 4));
            assert!(a.enqueue(TenantId(1), 100 + i, 4));
        }
        assert!(a.enqueue(TenantId(2), 999, 8)); // cost 8, quantum 4 → ≤ 2 rounds
        let grants = a.next_grants(200);
        let pos = grants
            .iter()
            .position(|g| g.tenant == TenantId(2))
            .expect("minimal tenant granted");
        // Two rounds of two heavyweight tenants grant at most
        // 2 rounds × 2 tenants × (8·4)/4 chains = 32 before it.
        assert!(pos <= 32, "minimal tenant waited {pos} grants");
    }

    #[test]
    fn deterministic_replay() {
        let mk = || {
            let mut a = arbiter(&[
                (
                    0,
                    TenantShare {
                        weight: 2,
                        max_in_flight: 3,
                    },
                ),
                (1, TenantShare::minimal()),
            ]);
            for i in 0..10 {
                assert!(a.enqueue(TenantId(0), i, 1 + i % 3));
                assert!(a.enqueue(TenantId(1), 50 + i, 2));
            }
            a.next_grants(6)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn unknown_tenant_rejected() {
        let mut a = DrrArbiter::new(4);
        assert!(!a.enqueue(TenantId(9), 1, 1));
        assert!(!a.is_registered(TenantId(9)));
        assert_eq!(a.backlog(), 0);
    }

    #[test]
    fn idle_tenant_banks_no_deficit() {
        let wide = TenantShare {
            weight: 1,
            max_in_flight: 5,
        };
        let mut a = arbiter(&[(0, wide), (1, TenantShare::minimal())]);
        // Tenant 1 stays idle for many rounds while tenant 0 drains.
        for i in 0..5 {
            assert!(a.enqueue(TenantId(0), i, 1));
        }
        assert_eq!(a.next_grants(5).len(), 5);
        for _ in 0..5 {
            a.complete(TenantId(0));
        }
        // Tenant 1 wakes up: its deficit starts from zero, so it can't
        // burst past its quota or ahead of its share.
        for i in 0..4 {
            assert!(a.enqueue(TenantId(1), 100 + i, 1));
        }
        let grants = a.next_grants(4);
        assert_eq!(grants.len(), 1, "quota 1 limits the burst");
    }

    #[test]
    fn jain_extremes() {
        assert!((jain_index(&[]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        let skewed = jain_index(&[1.0, 0.0, 0.0, 0.0]);
        assert!((skewed - 0.25).abs() < 1e-12);
        let near = jain_index(&[10.0, 9.0, 11.0]);
        assert!(near > 0.99);
    }
}
