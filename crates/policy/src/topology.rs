//! The kernel's view of a cluster, and the rack model.
//!
//! The engine schedules over `rcmp_model::NodeId`s owned by a live
//! `Cluster`; the simulator over bare `u32`s in a `SimState`. The kernel
//! only ever needs the *live* node list (survivors, in failure
//! scenarios) and the per-phase slot counts, so that is all the trait
//! asks for. The placement kernels additionally read per-position
//! capacity and rack hints, defaulted to a homogeneous flat cluster so
//! existing adapters keep working unchanged.
//!
//! [`RackTopology`] is the single source of truth for node→rack layout:
//! `rcmp-dfs` re-exports it for replica placement, and
//! [`crate::Membership::with_racks`] derives its rack vector from the
//! same contiguous-block rule — the two representations that used to
//! drift are now one struct.

use rcmp_model::NodeId;
use serde::{Deserialize, Serialize};
use std::fmt::Debug;

/// What the wave kernels need to know about a cluster.
///
/// `Node` is whatever the backend uses to name a machine; the kernel
/// treats it as an opaque copyable token and returns it in assignments.
pub trait TopologyView {
    /// Backend node identifier (engine: `NodeId`; simulator: `u32`).
    type Node: Copy + Eq + Ord + Debug;

    /// Nodes currently alive, in the backend's canonical order. The
    /// order matters: round-robin placement and steal order are defined
    /// over it, and both backends must present the same order for
    /// agreement to hold (both use ascending node id).
    fn live_nodes(&self) -> Vec<Self::Node>;

    /// Concurrent map tasks per node (§II's `SM`).
    fn map_slots(&self) -> u32;

    /// Concurrent reduce tasks per node (§II's `SR`).
    fn reduce_slots(&self) -> u32;

    /// Capacity weight of the node at position `pos` of
    /// [`TopologyView::live_nodes`] (the capacity-weighted kernel's
    /// slot multiplier). Defaults to 1 — a homogeneous cluster.
    fn capacity_at(&self, _pos: usize) -> u32 {
        1
    }

    /// Rack index of the node at position `pos` of
    /// [`TopologyView::live_nodes`]. Defaults to 0 — a flat cluster.
    fn rack_at(&self, _pos: usize) -> u32 {
        0
    }
}

/// A [`TopologyView`] over a plain slice of live nodes with uniform
/// slot counts — the adapter both backends use today.
#[derive(Clone, Copy, Debug)]
pub struct SliceTopology<'a, N> {
    live: &'a [N],
    map_slots: u32,
    reduce_slots: u32,
}

impl<'a, N: Copy + Eq + Ord + Debug> SliceTopology<'a, N> {
    /// View over `live` with distinct map/reduce slot counts.
    pub fn new(live: &'a [N], map_slots: u32, reduce_slots: u32) -> Self {
        Self {
            live,
            map_slots,
            reduce_slots,
        }
    }

    /// View over `live` with the same slot count for both phases —
    /// callers scheduling a single phase only ever read one of them.
    pub fn uniform(live: &'a [N], slots: u32) -> Self {
        Self::new(live, slots, slots)
    }
}

impl<N: Copy + Eq + Ord + Debug> TopologyView for SliceTopology<'_, N> {
    type Node = N;

    fn live_nodes(&self) -> Vec<N> {
        self.live.to_vec()
    }

    fn map_slots(&self) -> u32 {
        self.map_slots
    }

    fn reduce_slots(&self) -> u32 {
        self.reduce_slots
    }
}

/// A [`TopologyView`] carrying per-position capacity and rack vectors
/// alongside the live list — the adapter the placement kernels use when
/// a [`crate::Membership`] is in play.
///
/// `caps` and `racks` are aligned position-for-position with `live`
/// (see [`crate::Membership::caps_for`] / [`crate::Membership::racks_for`]);
/// an empty slice means "uniform" (capacity 1 / rack 0 everywhere).
#[derive(Clone, Copy, Debug)]
pub struct KernelTopology<'a, N> {
    live: &'a [N],
    map_slots: u32,
    reduce_slots: u32,
    caps: &'a [u32],
    racks: &'a [u32],
}

impl<'a, N: Copy + Eq + Ord + Debug> KernelTopology<'a, N> {
    /// View over `live` with capacity/rack hints (empty = uniform).
    pub fn new(
        live: &'a [N],
        map_slots: u32,
        reduce_slots: u32,
        caps: &'a [u32],
        racks: &'a [u32],
    ) -> Self {
        debug_assert!(caps.is_empty() || caps.len() == live.len());
        debug_assert!(racks.is_empty() || racks.len() == live.len());
        Self {
            live,
            map_slots,
            reduce_slots,
            caps,
            racks,
        }
    }

    /// Uniform slot count for both phases.
    pub fn uniform(live: &'a [N], slots: u32, caps: &'a [u32], racks: &'a [u32]) -> Self {
        Self::new(live, slots, slots, caps, racks)
    }
}

impl<N: Copy + Eq + Ord + Debug> TopologyView for KernelTopology<'_, N> {
    type Node = N;

    fn live_nodes(&self) -> Vec<N> {
        self.live.to_vec()
    }

    fn map_slots(&self) -> u32 {
        self.map_slots
    }

    fn reduce_slots(&self) -> u32 {
        self.reduce_slots
    }

    fn capacity_at(&self, pos: usize) -> u32 {
        self.caps.get(pos).copied().unwrap_or(1).max(1)
    }

    fn rack_at(&self, pos: usize) -> u32 {
        self.racks.get(pos).copied().unwrap_or(0)
    }
}

/// Maps nodes to racks: contiguous blocks of `nodes.div_ceil(racks)`
/// nodes per rack (node 0..k−1 → rack 0, etc.).
///
/// "Current replication strategies protect against the simultaneous
/// failure of two nodes or against single rack-level failures" (§III-A);
/// the DCO cluster's nodes "are distributed in 3 different racks"
/// (§V-A). HDFS's default policy puts the first replica on the writer,
/// the second on a different rack, and the third on the same rack as
/// the second — surviving the loss of any single rack with factor ≥ 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackTopology {
    /// Number of nodes.
    pub nodes: u32,
    /// Number of racks.
    pub racks: u32,
}

impl RackTopology {
    /// A topology of `nodes` nodes over `racks` racks.
    pub fn new(nodes: u32, racks: u32) -> Self {
        assert!(racks >= 1 && nodes >= 1, "need at least one node and rack");
        Self { nodes, racks }
    }

    /// A flat (single-rack) topology: rack awareness is a no-op.
    pub fn flat(nodes: u32) -> Self {
        Self::new(nodes, 1)
    }

    /// The DCO layout: 3 racks.
    pub fn dco(nodes: u32) -> Self {
        Self::new(nodes, 3)
    }

    /// Nodes per rack (the last rack may be smaller).
    pub fn nodes_per_rack(&self) -> u32 {
        self.nodes.div_ceil(self.racks)
    }

    /// The rack a node lives in.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        (node.raw() / self.nodes_per_rack()).min(self.racks - 1)
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// All nodes in one rack.
    pub fn rack_members(&self, rack: u32) -> Vec<NodeId> {
        (0..self.nodes)
            .map(NodeId)
            .filter(|&n| self.rack_of(n) == rack)
            .collect()
    }
}

/// Orders placement candidates HDFS-style given a first (writer-local)
/// replica: off-rack nodes first (the second replica must leave the
/// writer's rack), then same-rack-as-second for the third, then anyone.
///
/// Returns the candidates sorted by preference; the caller takes as
/// many as the replication factor requires.
pub fn rack_aware_order(
    topology: &RackTopology,
    first: NodeId,
    candidates: &[NodeId],
) -> Vec<NodeId> {
    let mut off_rack: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| !topology.same_rack(first, n))
        .collect();
    let on_rack: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| topology.same_rack(first, n) && n != first)
        .collect();
    // Third replica prefers the *second* replica's rack: after the
    // first off-rack pick, stable-partition the rest of the off-rack
    // list so the second pick's rack-mates come next.
    if off_rack.len() > 1 {
        let second_rack = topology.rack_of(off_rack[0]);
        let (mut same_as_second, other): (Vec<NodeId>, Vec<NodeId>) = off_rack[1..]
            .iter()
            .copied()
            .partition(|&n| topology.rack_of(n) == second_rack);
        let mut ordered = vec![off_rack[0]];
        ordered.append(&mut same_as_second);
        ordered.extend(other);
        off_rack = ordered;
    }
    off_rack.extend(on_rack);
    off_rack
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_topology_reports_its_inputs() {
        let live = [3u32, 5, 7];
        let t = SliceTopology::new(&live, 2, 4);
        assert_eq!(t.live_nodes(), vec![3, 5, 7]);
        assert_eq!(t.map_slots(), 2);
        assert_eq!(t.reduce_slots(), 4);
        let u = SliceTopology::uniform(&live, 3);
        assert_eq!(u.map_slots(), 3);
        assert_eq!(u.reduce_slots(), 3);
        // Slice topologies are homogeneous and flat by default.
        assert_eq!(u.capacity_at(0), 1);
        assert_eq!(u.rack_at(2), 0);
    }

    #[test]
    fn kernel_topology_carries_hints() {
        let live = [0u32, 1, 2];
        let caps = [2u32, 1, 4];
        let racks = [0u32, 1, 1];
        let t = KernelTopology::new(&live, 1, 2, &caps, &racks);
        assert_eq!(t.live_nodes(), vec![0, 1, 2]);
        assert_eq!(t.map_slots(), 1);
        assert_eq!(t.reduce_slots(), 2);
        assert_eq!(t.capacity_at(2), 4);
        assert_eq!(t.rack_at(1), 1);
        // Empty hint slices degrade to uniform/flat.
        let u = KernelTopology::uniform(&live, 1, &[], &[]);
        assert_eq!(u.capacity_at(1), 1);
        assert_eq!(u.rack_at(1), 0);
    }

    #[test]
    fn rack_of_contiguous_blocks() {
        let t = RackTopology::dco(60);
        assert_eq!(t.nodes_per_rack(), 20);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(19)), 0);
        assert_eq!(t.rack_of(NodeId(20)), 1);
        assert_eq!(t.rack_of(NodeId(59)), 2);
        assert!(t.same_rack(NodeId(0), NodeId(19)));
        assert!(!t.same_rack(NodeId(19), NodeId(20)));
    }

    #[test]
    fn uneven_division_clamps_last_rack() {
        let t = RackTopology::new(10, 3); // 4+4+2
        assert_eq!(t.rack_of(NodeId(9)), 2);
        assert_eq!(t.rack_members(2), vec![NodeId(8), NodeId(9)]);
        let total: usize = (0..3).map(|r| t.rack_members(r).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn flat_topology_is_one_rack() {
        let t = RackTopology::flat(5);
        for a in 0..5 {
            for b in 0..5 {
                assert!(t.same_rack(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn rack_aware_order_prefers_off_rack_then_seconds_rack() {
        let t = RackTopology::new(9, 3); // racks {0,1,2},{3,4,5},{6,7,8}
        let candidates: Vec<NodeId> = (0..9).map(NodeId).collect();
        let order = rack_aware_order(&t, NodeId(0), &candidates);
        // First pick is off-rack.
        assert!(!t.same_rack(NodeId(0), order[0]));
        // Second pick shares the first pick's rack (HDFS third replica).
        assert!(t.same_rack(order[0], order[1]));
        // Writer's rack-mates come last.
        let tail: Vec<u32> = order[order.len() - 2..].iter().map(|n| n.raw()).collect();
        assert_eq!(tail, vec![1, 2]);
    }

    #[test]
    fn order_handles_all_same_rack() {
        let t = RackTopology::flat(4);
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let order = rack_aware_order(&t, NodeId(1), &candidates);
        assert_eq!(order.len(), 3, "writer excluded, everyone else listed");
        assert!(!order.contains(&NodeId(1)));
    }
}
