//! The kernel's view of a cluster.
//!
//! The engine schedules over `rcmp_model::NodeId`s owned by a live
//! `Cluster`; the simulator over bare `u32`s in a `SimState`. The kernel
//! only ever needs the *live* node list (survivors, in failure
//! scenarios) and the per-phase slot counts, so that is all the trait
//! asks for.

use std::fmt::Debug;

/// What the wave kernels need to know about a cluster.
///
/// `Node` is whatever the backend uses to name a machine; the kernel
/// treats it as an opaque copyable token and returns it in assignments.
pub trait TopologyView {
    /// Backend node identifier (engine: `NodeId`; simulator: `u32`).
    type Node: Copy + Eq + Ord + Debug;

    /// Nodes currently alive, in the backend's canonical order. The
    /// order matters: round-robin placement and steal order are defined
    /// over it, and both backends must present the same order for
    /// agreement to hold (both use ascending node id).
    fn live_nodes(&self) -> Vec<Self::Node>;

    /// Concurrent map tasks per node (§II's `SM`).
    fn map_slots(&self) -> u32;

    /// Concurrent reduce tasks per node (§II's `SR`).
    fn reduce_slots(&self) -> u32;
}

/// A [`TopologyView`] over a plain slice of live nodes with uniform
/// slot counts — the adapter both backends use today.
#[derive(Clone, Copy, Debug)]
pub struct SliceTopology<'a, N> {
    live: &'a [N],
    map_slots: u32,
    reduce_slots: u32,
}

impl<'a, N: Copy + Eq + Ord + Debug> SliceTopology<'a, N> {
    /// View over `live` with distinct map/reduce slot counts.
    pub fn new(live: &'a [N], map_slots: u32, reduce_slots: u32) -> Self {
        Self {
            live,
            map_slots,
            reduce_slots,
        }
    }

    /// View over `live` with the same slot count for both phases —
    /// callers scheduling a single phase only ever read one of them.
    pub fn uniform(live: &'a [N], slots: u32) -> Self {
        Self::new(live, slots, slots)
    }
}

impl<N: Copy + Eq + Ord + Debug> TopologyView for SliceTopology<'_, N> {
    type Node = N;

    fn live_nodes(&self) -> Vec<N> {
        self.live.to_vec()
    }

    fn map_slots(&self) -> u32 {
        self.map_slots
    }

    fn reduce_slots(&self) -> u32 {
        self.reduce_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slice_topology_reports_its_inputs() {
        let live = [3u32, 5, 7];
        let t = SliceTopology::new(&live, 2, 4);
        assert_eq!(t.live_nodes(), vec![3, 5, 7]);
        assert_eq!(t.map_slots(), 2);
        assert_eq!(t.reduce_slots(), 4);
        let u = SliceTopology::uniform(&live, 3);
        assert_eq!(u.map_slots(), 3);
        assert_eq!(u.reduce_slots(), 3);
    }
}
