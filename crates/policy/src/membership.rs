//! Versioned, mutable cluster membership.
//!
//! The static node set the paper assumes (§II fixes the cluster at
//! construction) becomes a **membership record**: every node carries a
//! lifecycle status, a capacity weight and a rack, and every transition
//! — join, drain, decommission, rejoin, death — bumps a monotonically
//! increasing **epoch**. Both backends (engine and simulator) schedule
//! against snapshots of this one type, so a transition sequence yields
//! byte-identical live sets, capacity vectors and rack vectors on both
//! sides — the membership extension of the PR 3 engine ≡ sim invariant.
//!
//! Status semantics mirror HDFS/YARN decommissioning:
//!
//! * **Up** — schedulable and readable; the normal state.
//! * **Draining** — no new tasks or replicas land here, but the data it
//!   holds stays readable (graceful decommission in progress). Recovery
//!   never needs to recompute anything a drain touched.
//! * **Decommissioned** — fully removed after its replicas were
//!   rebalanced away; neither schedulable nor readable.
//! * **Dead** — fail-stop crash (`NodeCrash`): compute *and* data gone
//!   without warning, the scenario RCMP's recomputation recovers from.

use rcmp_model::{Error, Result};
use serde::{Deserialize, Serialize};

/// Lifecycle state of one member node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStatus {
    /// Schedulable and readable.
    Up,
    /// Readable but not schedulable; drain in progress.
    Draining,
    /// Removed gracefully; not schedulable, not readable.
    Decommissioned,
    /// Fail-stop crashed; not schedulable, not readable.
    Dead,
}

impl NodeStatus {
    /// May new tasks and replicas be placed here?
    pub fn is_schedulable(self) -> bool {
        matches!(self, NodeStatus::Up)
    }

    /// May data already on this node still be read?
    pub fn is_readable(self) -> bool {
        matches!(self, NodeStatus::Up | NodeStatus::Draining)
    }
}

/// Per-node membership record.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeInfo {
    /// Lifecycle status.
    pub status: NodeStatus,
    /// Capacity weight (slots multiplier for the capacity-weighted
    /// placement kernel); homogeneous clusters use 1.
    pub capacity: u32,
    /// Rack index (for the rack-aware placement kernel).
    pub rack: u32,
}

/// The versioned membership record of a cluster.
///
/// Node indices are dense and stable: a node keeps its index for the
/// lifetime of the record (transitions change status, never position),
/// and joins append. That stability is what lets the engine
/// (`NodeId(i)`) and the simulator (`u32` `i`) name the same machine.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Membership {
    nodes: Vec<NodeInfo>,
    epoch: u64,
}

impl Membership {
    /// A homogeneous single-rack cluster of `n` nodes, all up.
    pub fn uniform(n: u32) -> Self {
        Self {
            nodes: (0..n)
                .map(|_| NodeInfo {
                    status: NodeStatus::Up,
                    capacity: 1,
                    rack: 0,
                })
                .collect(),
            epoch: 0,
        }
    }

    /// A homogeneous cluster of `n` nodes spread over `racks` racks in
    /// contiguous blocks — the same layout as
    /// [`crate::RackTopology::rack_of`].
    pub fn with_racks(n: u32, racks: u32) -> Self {
        let topo = crate::RackTopology::new(n, racks.max(1));
        Self {
            nodes: (0..n)
                .map(|i| NodeInfo {
                    status: NodeStatus::Up,
                    capacity: 1,
                    rack: topo.rack_of(rcmp_model::NodeId(i)),
                })
                .collect(),
            epoch: 0,
        }
    }

    /// Current epoch: bumped by every successful transition.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total member count (all statuses, including dead).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Is the record empty (no members at all)?
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Status of node `n`, if it is a member.
    pub fn status(&self, n: u32) -> Option<NodeStatus> {
        self.nodes.get(n as usize).map(|i| i.status)
    }

    /// Full record of node `n`, if it is a member.
    pub fn info(&self, n: u32) -> Option<NodeInfo> {
        self.nodes.get(n as usize).copied()
    }

    /// May tasks and new replicas be placed on `n`?
    pub fn is_schedulable(&self, n: u32) -> bool {
        self.status(n).is_some_and(NodeStatus::is_schedulable)
    }

    /// May data on `n` still be read?
    pub fn is_readable(&self, n: u32) -> bool {
        self.status(n).is_some_and(NodeStatus::is_readable)
    }

    /// Nodes tasks may run on, ascending — the scheduling live set.
    pub fn schedulable(&self) -> Vec<u32> {
        self.filtered(NodeStatus::is_schedulable)
    }

    /// Nodes whose data is reachable, ascending (schedulable plus
    /// draining).
    pub fn readable(&self) -> Vec<u32> {
        self.filtered(NodeStatus::is_readable)
    }

    fn filtered(&self, pred: fn(NodeStatus) -> bool) -> Vec<u32> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, i)| pred(i.status))
            .map(|(n, _)| n as u32)
            .collect()
    }

    /// Capacity weights aligned position-for-position with `live` (a
    /// node list such as [`Membership::schedulable`]). Unknown nodes
    /// weigh 1.
    pub fn caps_for(&self, live: &[u32]) -> Vec<u32> {
        live.iter()
            .map(|&n| self.info(n).map_or(1, |i| i.capacity.max(1)))
            .collect()
    }

    /// Rack indices aligned position-for-position with `live`. Unknown
    /// nodes land in rack 0.
    pub fn racks_for(&self, live: &[u32]) -> Vec<u32> {
        live.iter()
            .map(|&n| self.info(n).map_or(0, |i| i.rack))
            .collect()
    }

    /// Adds a fresh node (Up) and returns its index. Bumps the epoch.
    pub fn join(&mut self, capacity: u32, rack: u32) -> u32 {
        self.nodes.push(NodeInfo {
            status: NodeStatus::Up,
            capacity: capacity.max(1),
            rack,
        });
        self.epoch += 1;
        self.nodes.len() as u32 - 1
    }

    /// Starts draining `n`: Up → Draining. Bumps the epoch.
    pub fn drain(&mut self, n: u32) -> Result<()> {
        self.transition(n, &[NodeStatus::Up], NodeStatus::Draining, "drain")
    }

    /// Finishes removing `n`: Up | Draining → Decommissioned (the
    /// caller is responsible for rebalancing its replicas first). Bumps
    /// the epoch.
    pub fn decommission(&mut self, n: u32) -> Result<()> {
        self.transition(
            n,
            &[NodeStatus::Up, NodeStatus::Draining],
            NodeStatus::Decommissioned,
            "decommission",
        )
    }

    /// Brings a drained or decommissioned node back: → Up. Bumps the
    /// epoch. (A decommissioned node rejoins empty, like a fresh join
    /// that keeps its index.)
    pub fn rejoin(&mut self, n: u32) -> Result<()> {
        self.transition(
            n,
            &[NodeStatus::Draining, NodeStatus::Decommissioned],
            NodeStatus::Up,
            "rejoin",
        )
    }

    /// Records a fail-stop crash: Up | Draining → Dead. Bumps the
    /// epoch.
    pub fn mark_dead(&mut self, n: u32) -> Result<()> {
        self.transition(
            n,
            &[NodeStatus::Up, NodeStatus::Draining],
            NodeStatus::Dead,
            "mark_dead",
        )
    }

    fn transition(
        &mut self,
        n: u32,
        from: &[NodeStatus],
        to: NodeStatus,
        what: &str,
    ) -> Result<()> {
        let Some(info) = self.nodes.get_mut(n as usize) else {
            return Err(Error::Config(format!(
                "membership: {what} of unknown node {n}"
            )));
        };
        if !from.contains(&info.status) {
            return Err(Error::Config(format!(
                "membership: cannot {what} node {n} in state {:?}",
                info.status
            )));
        }
        info.status = to;
        self.epoch += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transitions_bump_epoch_and_update_views() {
        let mut m = Membership::uniform(4);
        assert_eq!(m.epoch(), 0);
        assert_eq!(m.schedulable(), vec![0, 1, 2, 3]);

        m.drain(1).unwrap();
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.schedulable(), vec![0, 2, 3]);
        assert_eq!(m.readable(), vec![0, 1, 2, 3], "draining stays readable");

        m.decommission(1).unwrap();
        assert_eq!(m.epoch(), 2);
        assert_eq!(m.readable(), vec![0, 2, 3]);

        m.mark_dead(3).unwrap();
        assert_eq!(m.epoch(), 3);
        assert_eq!(m.schedulable(), vec![0, 2]);

        let new = m.join(4, 1);
        assert_eq!(new, 4);
        assert_eq!(m.epoch(), 4);
        assert_eq!(m.schedulable(), vec![0, 2, 4]);

        m.rejoin(1).unwrap();
        assert_eq!(m.schedulable(), vec![0, 1, 2, 4]);
        assert_eq!(m.epoch(), 5);
    }

    #[test]
    fn invalid_transitions_are_typed_errors() {
        let mut m = Membership::uniform(2);
        m.mark_dead(0).unwrap();
        assert!(m.drain(0).is_err(), "cannot drain the dead");
        assert!(m.mark_dead(0).is_err(), "already dead");
        assert!(m.rejoin(0).is_err(), "dead nodes do not rejoin");
        assert!(m.drain(7).is_err(), "unknown node");
        assert_eq!(m.epoch(), 1, "failed transitions leave the epoch alone");
    }

    #[test]
    fn caps_and_racks_align_with_live_list() {
        let mut m = Membership::with_racks(6, 3);
        m.join(4, 2);
        m.drain(0).unwrap();
        let live = m.schedulable();
        assert_eq!(live, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(m.caps_for(&live), vec![1, 1, 1, 1, 1, 4]);
        assert_eq!(m.racks_for(&live), vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn rack_layout_matches_rack_topology() {
        let m = Membership::with_racks(10, 3); // 4+4+2 like RackTopology
        let racks = m.racks_for(&m.schedulable());
        assert_eq!(racks, vec![0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }
}
