//! Hot-spot mitigation selection (§IV-B2).
//!
//! After a failure, the few recomputed reducers concentrate output on
//! few nodes; the next job's mappers then converge on those nodes. The
//! paper analyzes two mitigations — reducer splitting (its choice,
//! §IV-B1) and spread-output (analyzed and rejected) — and the choice
//! between them is *policy*, shared here by the real middleware
//! (`rcmp-core`) and the chain simulator (`rcmp-sim`).

use serde::{Deserialize, Serialize};

/// How many ways to split recomputed reducers (§IV-B1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitPolicy {
    /// No splitting — the paper's "RCMP NO-SPLIT".
    None,
    /// Split every recomputed reducer `k` ways (the paper uses 8 on
    /// STIC, 59 on DCO).
    Fixed(u32),
    /// Split by the number of surviving nodes at plan time, so every
    /// survivor gets reducer work (the paper's "N−1" rule of Fig. 11).
    Survivors,
}

impl SplitPolicy {
    /// Resolves the split factor given the current survivor count.
    /// Returns `None` when no splitting should be instructed.
    pub fn factor(&self, survivors: usize) -> Option<u32> {
        match self {
            SplitPolicy::None => None,
            SplitPolicy::Fixed(k) if *k <= 1 => None,
            SplitPolicy::Fixed(k) => Some(*k),
            SplitPolicy::Survivors => {
                let k = survivors as u32;
                (k > 1).then_some(k)
            }
        }
    }
}

/// How recomputation runs mitigate the hot-spots of §IV-B2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum HotspotMitigation {
    /// No mitigation: recomputed reducers write locally, the following
    /// job's mappers converge on that node.
    None,
    /// Reducer splitting (the paper's choice): splitting spreads the
    /// reducer output implicitly. Selected by using a [`SplitPolicy`]
    /// other than `None`.
    SplitReducers,
    /// The alternative the paper analyzes and rejects: unsplit
    /// recomputed reducers scatter their output blocks over many nodes.
    /// Balances the next map phase but not the reduce/shuffle work.
    SpreadOutput,
}

/// The resolved mitigation for one recomputation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MitigationChoice {
    /// Split factor to instruct (`None` = whole reducers).
    pub split: Option<u32>,
    /// Scatter recomputed reducer output blocks over all nodes.
    pub spread_output: bool,
}

/// Resolves the split/spread decision for a recomputation run given the
/// configured policies and the survivor count at plan time. This is the
/// single place where `SplitPolicy` and `HotspotMitigation` combine —
/// previously duplicated between the middleware planner and the chain
/// simulator.
pub fn choose_mitigation(
    split: SplitPolicy,
    hotspot: HotspotMitigation,
    survivors: usize,
) -> MitigationChoice {
    MitigationChoice {
        split: split.factor(survivors),
        spread_output: hotspot == HotspotMitigation::SpreadOutput,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_policy_resolution() {
        assert_eq!(SplitPolicy::None.factor(9), None);
        assert_eq!(SplitPolicy::Fixed(8).factor(9), Some(8));
        assert_eq!(SplitPolicy::Fixed(1).factor(9), None);
        assert_eq!(SplitPolicy::Survivors.factor(9), Some(9));
        assert_eq!(SplitPolicy::Survivors.factor(1), None);
    }

    #[test]
    fn mitigation_resolution() {
        let c = choose_mitigation(SplitPolicy::Fixed(8), HotspotMitigation::SplitReducers, 9);
        assert_eq!(
            c,
            MitigationChoice {
                split: Some(8),
                spread_output: false
            }
        );
        let c = choose_mitigation(SplitPolicy::None, HotspotMitigation::SpreadOutput, 9);
        assert_eq!(
            c,
            MitigationChoice {
                split: None,
                spread_output: true
            }
        );
        let c = choose_mitigation(SplitPolicy::Survivors, HotspotMitigation::None, 1);
        assert_eq!(
            c,
            MitigationChoice {
                split: None,
                spread_output: false
            }
        );
    }
}
