//! The kernel's view of a phase's task list.
//!
//! Tasks are addressed by index `0..len()`; the kernel returns indices
//! and the backend maps them back onto its own task objects (the engine
//! onto `MapTask`/`ReduceTask` structs, the simulator onto tuple
//! arrays). The queries are exactly the facts the paper's placement
//! policies consume: which node holds a map input block (and which copy
//! is the primary), and which partition a reduce task belongs to.

/// What map-wave assignment needs to know about the tasks of a job.
pub trait MapTaskSet<N> {
    /// Number of tasks; the kernel schedules indices `0..len()`.
    fn len(&self) -> usize;

    /// `true` when there are no tasks to place.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does `node` hold the *primary* (writer-local) replica of task
    /// `task`'s input block? Preferred over any other local block:
    /// without the primary preference nodes eat each other's blocks
    /// early and leave a contended non-local tail, which real Hadoop
    /// avoids.
    fn is_primary_holder(&self, task: usize, node: N) -> bool;

    /// Does `node` hold *any* replica of task `task`'s input block
    /// (data-locality tie-breaking, §III-A)?
    fn holds_replica(&self, task: usize, node: N) -> bool;
}

/// What reduce-wave assignment needs to know about the tasks of a job.
pub trait ReduceTaskSet {
    /// Number of tasks; the kernel schedules indices `0..len()`.
    fn len(&self) -> usize;

    /// `true` when there are no tasks to place.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The partition this reduce task serves — the round-robin key that
    /// gives the paper's deterministic `WR = R/(N·S)` wave count.
    fn partition_index(&self, task: usize) -> usize;
}

/// A [`MapTaskSet`] over closures — the simulator's adapter, and handy
/// in tests and benches.
pub struct FnMapTasks<P, Q> {
    len: usize,
    primary: Q,
    replica: P,
}

impl<P, Q> FnMapTasks<P, Q> {
    /// `primary(task, node)` / `replica(task, node)` answer the two
    /// holder queries for tasks `0..len`.
    pub fn new(len: usize, primary: Q, replica: P) -> Self {
        Self {
            len,
            primary,
            replica,
        }
    }
}

impl<N, P, Q> MapTaskSet<N> for FnMapTasks<P, Q>
where
    P: Fn(usize, N) -> bool,
    Q: Fn(usize, N) -> bool,
{
    fn len(&self) -> usize {
        self.len
    }

    fn is_primary_holder(&self, task: usize, node: N) -> bool {
        (self.primary)(task, node)
    }

    fn holds_replica(&self, task: usize, node: N) -> bool {
        (self.replica)(task, node)
    }
}

/// A [`ReduceTaskSet`] over a key closure.
pub struct FnReduceTasks<K> {
    len: usize,
    key: K,
}

impl<K: Fn(usize) -> usize> FnReduceTasks<K> {
    /// `key(task)` yields the partition index for tasks `0..len`.
    pub fn new(len: usize, key: K) -> Self {
        Self { len, key }
    }
}

impl<K: Fn(usize) -> usize> ReduceTaskSet for FnReduceTasks<K> {
    fn len(&self) -> usize {
        self.len
    }

    fn partition_index(&self, task: usize) -> usize {
        (self.key)(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_adapters_answer_queries() {
        let maps = FnMapTasks::new(3, |t, n: u32| t as u32 == n, |t, n: u32| t as u32 <= n);
        assert_eq!(maps.len(), 3);
        assert!(!maps.is_empty());
        assert!(maps.is_primary_holder(1, 1));
        assert!(!maps.is_primary_holder(1, 2));
        assert!(maps.holds_replica(1, 2));

        let reds = FnReduceTasks::new(4, |t| t * 2);
        assert_eq!(reds.len(), 4);
        assert_eq!(reds.partition_index(3), 6);
    }
}
