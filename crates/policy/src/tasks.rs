//! The kernel's view of a phase's task list.
//!
//! Tasks are addressed by index `0..len()`; the kernel returns indices
//! and the backend maps them back onto its own task objects (the engine
//! onto `MapTask`/`ReduceTask` structs, the simulator onto tuple
//! arrays). The queries are exactly the facts the paper's placement
//! policies consume: which node holds a map input block (and which copy
//! is the primary), and which partition a reduce task belongs to.

/// What map-wave assignment needs to know about the tasks of a job.
pub trait MapTaskSet<N> {
    /// Number of tasks; the kernel schedules indices `0..len()`.
    fn len(&self) -> usize;

    /// `true` when there are no tasks to place.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Does `node` hold the *primary* (writer-local) replica of task
    /// `task`'s input block? Preferred over any other local block:
    /// without the primary preference nodes eat each other's blocks
    /// early and leave a contended non-local tail, which real Hadoop
    /// avoids.
    fn is_primary_holder(&self, task: usize, node: N) -> bool;

    /// Does `node` hold *any* replica of task `task`'s input block
    /// (data-locality tie-breaking, §III-A)?
    fn holds_replica(&self, task: usize, node: N) -> bool;

    /// Does `node` hold task `task`'s input partition *in memory* in the
    /// inter-job chain cache (M3R-style partition stability)? Only the
    /// `Stable` kernel consults this; the default — no affinity — makes
    /// every kernel behave exactly as before the cache existed.
    fn cache_affine(&self, _task: usize, _node: N) -> bool {
        false
    }

    /// Does *some* node hold task `task`'s input partition in the chain
    /// cache? Used by the `Stable` kernel's steal fallback to prefer
    /// stealing tasks nobody has an in-memory claim on.
    fn has_cache_affinity(&self, _task: usize) -> bool {
        false
    }
}

/// Wraps a [`MapTaskSet`] with an inter-job chain-cache affinity map:
/// `holder(task)` names the node whose memory holds the task's input
/// partition (if any). The `Stable` kernel claims cache-affine tasks
/// first; all other queries delegate to the inner set.
pub struct CacheAffinity<S, A> {
    inner: S,
    holder: A,
}

impl<S, A> CacheAffinity<S, A> {
    /// Overlay `holder(task) -> Option<node>` onto `inner`.
    pub fn new(inner: S, holder: A) -> Self {
        Self { inner, holder }
    }
}

impl<N, S, A> MapTaskSet<N> for CacheAffinity<S, A>
where
    N: PartialEq,
    S: MapTaskSet<N>,
    A: Fn(usize) -> Option<N>,
{
    fn len(&self) -> usize {
        self.inner.len()
    }

    fn is_primary_holder(&self, task: usize, node: N) -> bool {
        self.inner.is_primary_holder(task, node)
    }

    fn holds_replica(&self, task: usize, node: N) -> bool {
        self.inner.holds_replica(task, node)
    }

    fn cache_affine(&self, task: usize, node: N) -> bool {
        (self.holder)(task) == Some(node)
    }

    fn has_cache_affinity(&self, task: usize) -> bool {
        (self.holder)(task).is_some()
    }
}

/// What reduce-wave assignment needs to know about the tasks of a job.
pub trait ReduceTaskSet {
    /// Number of tasks; the kernel schedules indices `0..len()`.
    fn len(&self) -> usize;

    /// `true` when there are no tasks to place.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The partition this reduce task serves — the round-robin key that
    /// gives the paper's deterministic `WR = R/(N·S)` wave count.
    fn partition_index(&self, task: usize) -> usize;
}

/// A [`MapTaskSet`] over closures — the simulator's adapter, and handy
/// in tests and benches.
pub struct FnMapTasks<P, Q> {
    len: usize,
    primary: Q,
    replica: P,
}

impl<P, Q> FnMapTasks<P, Q> {
    /// `primary(task, node)` / `replica(task, node)` answer the two
    /// holder queries for tasks `0..len`.
    pub fn new(len: usize, primary: Q, replica: P) -> Self {
        Self {
            len,
            primary,
            replica,
        }
    }
}

impl<N, P, Q> MapTaskSet<N> for FnMapTasks<P, Q>
where
    P: Fn(usize, N) -> bool,
    Q: Fn(usize, N) -> bool,
{
    fn len(&self) -> usize {
        self.len
    }

    fn is_primary_holder(&self, task: usize, node: N) -> bool {
        (self.primary)(task, node)
    }

    fn holds_replica(&self, task: usize, node: N) -> bool {
        (self.replica)(task, node)
    }
}

/// A [`ReduceTaskSet`] over a key closure.
pub struct FnReduceTasks<K> {
    len: usize,
    key: K,
}

impl<K: Fn(usize) -> usize> FnReduceTasks<K> {
    /// `key(task)` yields the partition index for tasks `0..len`.
    pub fn new(len: usize, key: K) -> Self {
        Self { len, key }
    }
}

impl<K: Fn(usize) -> usize> ReduceTaskSet for FnReduceTasks<K> {
    fn len(&self) -> usize {
        self.len
    }

    fn partition_index(&self, task: usize) -> usize {
        (self.key)(task)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_adapters_answer_queries() {
        let maps = FnMapTasks::new(3, |t, n: u32| t as u32 == n, |t, n: u32| t as u32 <= n);
        assert_eq!(maps.len(), 3);
        assert!(!maps.is_empty());
        assert!(maps.is_primary_holder(1, 1));
        assert!(!maps.is_primary_holder(1, 2));
        assert!(maps.holds_replica(1, 2));

        let reds = FnReduceTasks::new(4, |t| t * 2);
        assert_eq!(reds.len(), 4);
        assert_eq!(reds.partition_index(3), 6);
    }

    #[test]
    fn cache_affinity_overlay_delegates_and_answers() {
        let maps = FnMapTasks::new(3, |t, n: u32| t as u32 == n, |t, n: u32| t as u32 <= n);
        // No affinity by default on the plain adapter.
        assert!(!MapTaskSet::<u32>::has_cache_affinity(&maps, 0));
        assert!(!maps.cache_affine(0, 0u32));

        let overlaid = CacheAffinity::new(maps, |t| if t == 1 { Some(2u32) } else { None });
        assert_eq!(MapTaskSet::<u32>::len(&overlaid), 3);
        assert!(overlaid.cache_affine(1, 2));
        assert!(!overlaid.cache_affine(1, 1));
        assert!(overlaid.has_cache_affinity(1));
        assert!(!overlaid.has_cache_affinity(0));
        // Inner queries still answered.
        assert!(overlaid.is_primary_holder(1, 1));
        assert!(overlaid.holds_replica(1, 2));
    }
}
