//! The unified recomputation instruction set.
//!
//! One plan type serves both backends: the engine executes it against
//! real data (`rcmp-engine` re-exports it as `RecomputeInstructions`),
//! the simulator accounts it at tuple granularity (`rcmp-sim` re-exports
//! it as `RecomputeSpec`). Keeping one type makes "what should this
//! recovery run do" a single value that planners produce and either
//! backend consumes.

use rcmp_model::PartitionId;
use std::collections::BTreeSet;

/// Instructions for one recomputation run (§IV-B).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecomputePlan {
    /// Output partitions to regenerate (the lost reducer outputs,
    /// possibly merged across several data-loss events).
    pub partitions: BTreeSet<PartitionId>,
    /// Split each recomputed reducer this many ways (`None` = no
    /// splitting, the paper's RCMP NO-SPLIT; `Some(k ≤ 1)` also means
    /// whole reducers — see [`RecomputePlan::split_factor`]).
    pub split: Option<u32>,
    /// Reuse persisted map outputs whose input fingerprints still match
    /// (RCMP behaviour). `false` re-runs every mapper — used by the
    /// paper's Fig.-13 isolation experiment and the OPTIMISTIC baseline.
    pub reuse_map_outputs: bool,
    /// Scatter recomputed reducer output blocks over all nodes — the
    /// paper's alternative hot-spot mitigation (§IV-B2). Honored by the
    /// engine (placement policy override) and the simulator alike.
    pub spread_output: bool,
    /// Experiment knob (Figs. 13/14): re-run exactly this many mappers
    /// regardless of persisted-output validity, reusing the rest. Used
    /// by the simulator to control recomputation map waves directly;
    /// the engine ignores it (real map outputs carry fingerprints that
    /// decide reuse).
    pub force_rerun_mappers: Option<usize>,
    /// DANGEROUS, test/ablation only: reuse persisted map outputs even
    /// when the input fingerprint no longer matches. Reproduces the
    /// incorrect-reuse bug of Fig. 5 (duplicated and missing keys).
    pub unsafe_ignore_fingerprints: bool,
}

impl RecomputePlan {
    /// Recompute the given partitions with optional splitting, reusing
    /// persisted map outputs (the standard RCMP recomputation).
    ///
    /// `partitions` accepts anything convertible to [`PartitionId`]
    /// (the engine passes `PartitionId`s, the simulator raw `u32`s);
    /// `split` accepts `None`, `Some(k)`, or a bare `k`.
    pub fn new(
        partitions: impl IntoIterator<Item = impl Into<PartitionId>>,
        split: impl Into<Option<u32>>,
    ) -> Self {
        Self {
            partitions: partitions.into_iter().map(Into::into).collect(),
            split: split.into(),
            reuse_map_outputs: true,
            spread_output: false,
            force_rerun_mappers: None,
            unsafe_ignore_fingerprints: false,
        }
    }

    /// A plan that recomputes nothing — placeholder for full runs.
    pub fn empty() -> Self {
        Self::new(std::iter::empty::<PartitionId>(), None)
    }

    /// The effective split factor: `1` means whole reducers.
    pub fn split_factor(&self) -> u32 {
        self.split.map_or(1, |k| k.max(1))
    }

    /// Effective number of reduce tasks this run will execute.
    pub fn reduce_task_count(&self) -> usize {
        self.partitions.len() * self.split_factor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_both_backend_idioms() {
        // Engine idiom: PartitionIds + Option<u32>.
        let a = RecomputePlan::new([PartitionId(0), PartitionId(3)], Some(4));
        // Sim idiom: raw u32 partitions + bare split factor.
        let b = RecomputePlan::new([0u32, 3], 4);
        assert_eq!(a, b);
        assert_eq!(a.split_factor(), 4);
        assert_eq!(a.reduce_task_count(), 8);
    }

    #[test]
    fn split_factor_clamps() {
        assert_eq!(RecomputePlan::new([0u32], None).split_factor(), 1);
        assert_eq!(RecomputePlan::new([0u32], 0).split_factor(), 1);
        assert_eq!(RecomputePlan::new([0u32], 1).reduce_task_count(), 1);
    }

    #[test]
    fn empty_plan() {
        let p = RecomputePlan::empty();
        assert!(p.partitions.is_empty());
        assert_eq!(p.reduce_task_count(), 0);
        assert!(p.reuse_map_outputs);
        assert!(!p.spread_output);
    }
}
