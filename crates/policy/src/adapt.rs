//! Closed-loop adaptive resilience (§IV-C future work, taken further).
//!
//! The paper's hybrid mode replicates every k-th job output with a
//! *fixed* k, and the expected-cost [`DynamicPolicy`] still takes a
//! static `failure_prob_per_job` supplied up front. Nothing learns from
//! the faults the system actually observes. This module closes the
//! loop:
//!
//! * [`FailureIntensityEstimator`] — an exponentially-decayed per-job
//!   fault-rate estimate with normal-approximation confidence bounds,
//!   seeded from a prior (cold start) and updated once per completed
//!   job.
//! * [`AdaptConfig`] — the closed loop's parameters: the prior (which
//!   [`AdaptConfig::from_trace_stats`] calibrates from Fig.-2-style
//!   failure-trace statistics), the decay, the hysteresis band, and a
//!   normalized cost model in units of one job's runtime.
//! * [`AdaptivePolicy`] — re-derives the replication interval after
//!   every job from the *running* estimate, with hysteresis so the
//!   cadence doesn't thrash. Implements [`FaultObserver`], the one
//!   trait through which both the real engine's `Fault`/`Loss` events
//!   and the simulator's timeline events feed the estimator — so the
//!   two backends drive byte-identical decision sequences from
//!   identical event sequences (the PR-3 invariant, extended to the
//!   adaptive loop).
//! * [`expected_chain_time`] / [`optimal_interval`] — the analytic
//!   model the interval is the argmin of. Because the adaptive policy
//!   picks the argmin of the same model used for evaluation, its
//!   expected chain completion time is ≤ every fixed interval *by
//!   construction* (validated by proptest and the `resiliencefig`
//!   sweep).
//!
//! Everything here is deterministic: no clocks, no RNG state. The same
//! sequence of `record_fault`/`job_completed` calls produces the same
//! sequence of decisions on any backend.

use serde::{Deserialize, Serialize};

// ------------------------------------------------------------------
// The original §IV-C break-even policy (moved here from rcmp-core so
// the engine and the simulator share one kernel; re-exported there).
// ------------------------------------------------------------------

/// Cost-model parameters for dynamic replication points.
///
/// Replicating job `j`'s output costs `(factor − 1) × bytes` of extra
/// I/O, paid with certainty. *Not* replicating exposes the jobs since
/// the last replication point: if a data-loss failure arrives during a
/// job run (probability `p`), the cascade recomputes ≈ `d ×
/// recompute_fraction` jobs' worth of work, where `d` is the distance
/// to the last point. Setting the two expected costs equal yields a
/// break-even distance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DynamicPolicy {
    /// Probability that a data-loss failure strikes during one job run.
    pub failure_prob_per_job: f64,
    /// Extra replicas a replication point writes (factor − 1).
    pub extra_replicas: u32,
    /// Cost of writing one replica byte relative to recomputing one
    /// byte of lineage (≈ 1.0 when replication and recomputation move
    /// bytes through the same disks).
    pub replication_byte_cost: f64,
    /// Fraction of a job a single failure forces to recompute
    /// (≈ 1/N with balanced data, §IV-B).
    pub recompute_fraction: f64,
}

impl DynamicPolicy {
    /// A policy calibrated from a failure-day fraction (Fig. 2 style)
    /// and the expected number of job runs per day.
    pub fn from_trace_stats(
        failure_day_fraction: f64,
        jobs_per_day: f64,
        nodes: u32,
        extra_replicas: u32,
    ) -> Self {
        Self {
            failure_prob_per_job: (failure_day_fraction / jobs_per_day.max(1.0)).min(1.0),
            extra_replicas,
            replication_byte_cost: 1.0,
            recompute_fraction: 1.0 / nodes.max(1) as f64,
        }
    }

    /// Break-even distance: the number of un-replicated jobs at which
    /// the expected recomputation exposure equals the certain cost of
    /// one replication point. `None` means "never replicate" (the
    /// exposure can never reach the cost — e.g. failures impossible).
    pub fn break_even_interval(&self) -> Option<u32> {
        let exposure_per_job = self.failure_prob_per_job * self.recompute_fraction;
        if exposure_per_job <= 0.0 {
            return None;
        }
        let cost = self.extra_replicas as f64 * self.replication_byte_cost;
        let d = (cost / exposure_per_job).ceil();
        if d.is_finite() && d < u32::MAX as f64 {
            Some((d as u32).max(1))
        } else {
            None
        }
    }

    /// Should a replication point be placed after `jobs_since_point`
    /// un-replicated jobs?
    pub fn should_replicate(&self, jobs_since_point: u32) -> bool {
        match self.break_even_interval() {
            Some(k) => jobs_since_point >= k,
            None => false,
        }
    }
}

// ------------------------------------------------------------------
// Online failure-intensity estimation.
// ------------------------------------------------------------------

/// Exponentially-decayed per-job fault-rate estimator.
///
/// After each completed job carrying `n` observed faults the state
/// updates as `faults ← decay·faults + n`, `weight ← decay·weight + 1`,
/// so the rate estimate `faults / weight` is an exponentially-weighted
/// mean with effective sample size `weight` (bounded by
/// `1 / (1 − decay)`). The prior enters as `prior_weight` synthetic
/// observations at `prior_rate`, giving a cold-start estimate that the
/// running evidence gradually overrides.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FailureIntensityEstimator {
    /// Decayed fault mass.
    faults: f64,
    /// Decayed observation mass (effective sample size).
    weight: f64,
    /// Per-job decay factor in `(0, 1]`; `1.0` = plain running mean.
    decay: f64,
    /// Jobs observed (undecayed), for trajectory reporting.
    observed: u64,
}

impl FailureIntensityEstimator {
    /// An estimator seeded with `prior_weight` synthetic jobs at
    /// `prior_rate` faults per job.
    pub fn seeded(prior_rate: f64, prior_weight: f64, decay: f64) -> Self {
        let w = prior_weight.max(0.0);
        Self {
            faults: prior_rate.max(0.0) * w,
            weight: w,
            decay: decay.clamp(f64::MIN_POSITIVE, 1.0),
            observed: 0,
        }
    }

    /// Folds one completed job with `faults` observed fault events into
    /// the estimate.
    pub fn observe(&mut self, faults: u32) {
        self.faults = self.decay * self.faults + f64::from(faults);
        self.weight = self.decay * self.weight + 1.0;
        self.observed += 1;
    }

    /// Current fault-rate estimate (faults per job).
    pub fn rate(&self) -> f64 {
        if self.weight <= 0.0 {
            0.0
        } else {
            self.faults / self.weight
        }
    }

    /// Effective sample size behind the current estimate.
    pub fn effective_samples(&self) -> f64 {
        self.weight
    }

    /// Jobs folded in since construction (prior excluded).
    pub fn jobs_observed(&self) -> u64 {
        self.observed
    }

    /// Normal-approximation confidence bounds on the rate at `z`
    /// standard errors (z ≈ 1.96 for 95%), clamped below at zero. The
    /// variance treats each job as a Bernoulli-ish trial with the
    /// current rate, over the effective sample size.
    pub fn confidence_bounds(&self, z: f64) -> (f64, f64) {
        let r = self.rate();
        if self.weight <= 0.0 {
            return (0.0, f64::INFINITY);
        }
        let var = (r * (1.0 + r)) / self.weight;
        let half = z * var.sqrt();
        ((r - half).max(0.0), r + half)
    }

    /// The rate as integer parts-per-million, for gauge export.
    pub fn rate_ppm(&self) -> i64 {
        (self.rate() * 1e6).round() as i64
    }
}

// ------------------------------------------------------------------
// The analytic chain-time model the adaptive interval minimizes.
// ------------------------------------------------------------------

/// Expected chain completion time (in units of one job's failure-free
/// runtime) for a chain of `jobs` jobs under per-job fault rate `rate`,
/// replicating every `interval` jobs (`None` = never).
///
/// The model charges: one unit per job; `replicate_cost` per
/// replication point (`⌊jobs / k⌋` of them); and for each failure
/// (expected count `rate × jobs`) the detection stall `detect_cost`
/// plus a cascade that recomputes on average `(d̄) × recompute_cost`
/// where `d̄ = (min(k, jobs) + 1) / 2` is the mean distance to the last
/// replication point (uniform failure position within a segment).
pub fn expected_chain_time(interval: Option<u32>, rate: f64, jobs: u32, cfg: &AdaptConfig) -> f64 {
    let jobs_f = f64::from(jobs.max(1));
    let (points, seg) = match interval {
        Some(k) if k >= 1 => {
            let k = k.min(jobs.max(1));
            (f64::from(jobs / k.max(1)), f64::from(k))
        }
        _ => (0.0, jobs_f),
    };
    let mean_cascade = (seg + 1.0) / 2.0;
    let per_failure = cfg.detect_cost + mean_cascade * cfg.recompute_cost;
    jobs_f + points * cfg.replicate_cost + rate.max(0.0) * jobs_f * per_failure
}

/// The replication interval minimizing [`expected_chain_time`] for the
/// given rate: the argmin over every feasible `k ∈ 1..=jobs` and
/// "never". Ties resolve toward fewer replication points (larger `k`,
/// with `None` the largest), so a zero rate always yields `None`.
pub fn optimal_interval(rate: f64, jobs: u32, cfg: &AdaptConfig) -> Option<u32> {
    let mut best: Option<u32> = None;
    let mut best_t = expected_chain_time(None, rate, jobs, cfg);
    for k in (1..=jobs.max(1)).rev() {
        let t = expected_chain_time(Some(k), rate, jobs, cfg);
        if t < best_t - 1e-12 {
            best_t = t;
            best = Some(k);
        }
    }
    best
}

// ------------------------------------------------------------------
// The closed loop.
// ------------------------------------------------------------------

/// Parameters of the closed adaptive loop. `Copy` and serializable so
/// it can ride inside `Strategy::AdaptiveHybrid` like every other
/// strategy payload.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptConfig {
    /// Cold-start prior fault rate (faults per job).
    pub prior_rate: f64,
    /// Synthetic observations backing the prior; higher = slower to
    /// override with live evidence.
    pub prior_weight: f64,
    /// Per-job exponential decay of the estimator in `(0, 1]`.
    pub decay: f64,
    /// Hysteresis band: the interval only switches when the newly
    /// derived argmin leaves `±hysteresis` (fractional) of the current
    /// interval. `0.0` re-derives greedily every job.
    pub hysteresis: f64,
    /// Planning horizon (jobs) the expected-time model optimizes over.
    pub horizon: u32,
    /// Cost of one replication point, in units of one job's runtime.
    pub replicate_cost: f64,
    /// Cost of recomputing one cascaded job, in units of one job's
    /// runtime (≈ `1/N` with balanced data, §IV-B).
    pub recompute_cost: f64,
    /// Failure-detection stall per failure, in units of one job's
    /// runtime (30 s timeout vs. minutes-long jobs).
    pub detect_cost: f64,
}

impl AdaptConfig {
    /// Defaults for an `nodes`-node cluster with a pessimistic-but-weak
    /// prior: adapt quickly once real evidence arrives.
    pub fn default_for(nodes: u32) -> Self {
        Self {
            prior_rate: 0.05,
            prior_weight: 4.0,
            decay: 0.9,
            hysteresis: 0.25,
            horizon: 16,
            replicate_cost: 0.25,
            recompute_cost: 1.0 / nodes.max(1) as f64,
            detect_cost: 0.5,
        }
    }

    /// Calibrates the cold-start prior from Fig.-2-style failure-trace
    /// statistics: the measured failure-day fraction spread over the
    /// expected job runs per day (mirrors
    /// [`DynamicPolicy::from_trace_stats`]).
    pub fn from_trace_stats(
        failure_day_fraction: f64,
        jobs_per_day: f64,
        nodes: u32,
        extra_replicas: u32,
    ) -> Self {
        Self {
            prior_rate: (failure_day_fraction / jobs_per_day.max(1.0)).min(1.0),
            replicate_cost: 0.25 * extra_replicas.max(1) as f64,
            ..Self::default_for(nodes)
        }
    }

    /// The interval a fresh policy starts from (argmin at the prior).
    pub fn cold_start_interval(&self) -> Option<u32> {
        optimal_interval(self.prior_rate, self.horizon, self)
    }
}

/// One trajectory entry: the estimator state and decision after a
/// completed job — the diagnostic record chaos-soak failures dump.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdaptationStep {
    /// Completed-job ordinal (1-based).
    pub job: u64,
    /// Fault-rate estimate after folding the job in.
    pub rate: f64,
    /// Interval in force after hysteresis (`None` = never replicate).
    pub interval: Option<u32>,
    /// Whether this step switched the interval.
    pub switched: bool,
}

/// The one trait through which execution backends feed the adaptive
/// loop: the engine calls it from `Fault`/`Loss` observation and job
/// completion, the simulator from its timeline events. Identical call
/// sequences produce identical decision sequences.
pub trait FaultObserver {
    /// Records `faults` fault events observed during the current job.
    fn record_fault(&mut self, faults: u32);
    /// Folds the completed job into the estimate, re-derives the
    /// interval (with hysteresis), and returns `true` when a
    /// replication point is due after this job.
    fn job_completed(&mut self) -> bool;
}

/// [`DynamicPolicy`]'s closed-loop successor: the replication interval
/// is re-derived after every job from the running fault-rate estimate
/// instead of a frozen prior.
#[derive(Clone, Debug, PartialEq)]
pub struct AdaptivePolicy {
    cfg: AdaptConfig,
    est: FailureIntensityEstimator,
    interval: Option<u32>,
    jobs_since_point: u32,
    pending_faults: u32,
    completed: u64,
    trajectory: Vec<AdaptationStep>,
    last_switched: bool,
}

impl AdaptivePolicy {
    /// A fresh policy at the configured cold-start prior.
    pub fn new(cfg: AdaptConfig) -> Self {
        Self {
            interval: cfg.cold_start_interval(),
            est: FailureIntensityEstimator::seeded(cfg.prior_rate, cfg.prior_weight, cfg.decay),
            cfg,
            jobs_since_point: 0,
            pending_faults: 0,
            completed: 0,
            trajectory: Vec::new(),
            last_switched: false,
        }
    }

    /// The interval currently in force (`None` = never replicate).
    pub fn current_interval(&self) -> Option<u32> {
        self.interval
    }

    /// The underlying estimator (read-only).
    pub fn estimator(&self) -> &FailureIntensityEstimator {
        &self.est
    }

    /// Whether the most recent [`FaultObserver::job_completed`] call
    /// switched the interval — the engine emits an `AdaptationPoint`
    /// span exactly when this is true.
    pub fn last_switched(&self) -> bool {
        self.last_switched
    }

    /// The full adaptation trajectory, for diagnostics and reports.
    pub fn trajectory(&self) -> &[AdaptationStep] {
        &self.trajectory
    }

    /// Hysteresis: adopt `candidate` only when it leaves the fractional
    /// band around the interval in force. Transitions to/from "never"
    /// always switch (there is no meaningful band around infinity).
    fn apply_hysteresis(&self, candidate: Option<u32>) -> Option<u32> {
        match (self.interval, candidate) {
            (Some(cur), Some(new)) => {
                let band = self.cfg.hysteresis.max(0.0) * f64::from(cur);
                if (f64::from(new) - f64::from(cur)).abs() > band {
                    Some(new)
                } else {
                    Some(cur)
                }
            }
            (_, c) => c,
        }
    }
}

impl FaultObserver for AdaptivePolicy {
    fn record_fault(&mut self, faults: u32) {
        self.pending_faults = self.pending_faults.saturating_add(faults);
    }

    fn job_completed(&mut self) -> bool {
        self.est.observe(self.pending_faults);
        self.pending_faults = 0;
        self.completed += 1;
        let candidate = optimal_interval(self.est.rate(), self.cfg.horizon, &self.cfg);
        let next = self.apply_hysteresis(candidate);
        self.last_switched = next != self.interval;
        self.interval = next;
        self.trajectory.push(AdaptationStep {
            job: self.completed,
            rate: self.est.rate(),
            interval: self.interval,
            switched: self.last_switched,
        });
        self.jobs_since_point += 1;
        match self.interval {
            Some(k) if self.jobs_since_point >= k => {
                self.jobs_since_point = 0;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(p: f64, nodes: u32) -> DynamicPolicy {
        DynamicPolicy {
            failure_prob_per_job: p,
            extra_replicas: 1,
            replication_byte_cost: 1.0,
            recompute_fraction: 1.0 / nodes as f64,
        }
    }

    #[test]
    fn rare_failures_mean_huge_intervals() {
        // The paper's moderate-cluster regime: failures days apart.
        let p = DynamicPolicy::from_trace_stats(0.17, 100.0, 10, 1);
        let k = p.break_even_interval().unwrap();
        assert!(
            k > 1000,
            "rare failures → replication points essentially never: {k}"
        );
        assert!(!p.should_replicate(100));
    }

    #[test]
    fn failure_heavy_environments_replicate_often() {
        // A failure nearly every job: behave like frequent checkpoints.
        let p = policy(0.5, 10);
        let k = p.break_even_interval().unwrap();
        assert!(k <= 20, "heavy failures → short interval, got {k}");
        assert!(p.should_replicate(k));
        assert!(!p.should_replicate(k - 1));
    }

    #[test]
    fn interval_monotone_in_failure_probability() {
        let mut last = u32::MAX;
        for p in [0.01, 0.05, 0.2, 0.8] {
            let k = policy(p, 10).break_even_interval().unwrap();
            assert!(k <= last, "higher failure prob → shorter interval");
            last = k;
        }
    }

    #[test]
    fn interval_grows_with_cluster_size() {
        // Bigger clusters lose a smaller fraction per failure, so the
        // exposure per job shrinks and points spread out.
        let small = policy(0.1, 10).break_even_interval().unwrap();
        let large = policy(0.1, 100).break_even_interval().unwrap();
        assert!(large > small);
    }

    #[test]
    fn zero_probability_never_replicates() {
        let p = policy(0.0, 10);
        assert_eq!(p.break_even_interval(), None);
        assert!(!p.should_replicate(u32::MAX));
    }

    #[test]
    fn higher_factor_costs_more() {
        let f1 = DynamicPolicy {
            extra_replicas: 1,
            ..policy(0.3, 10)
        };
        let f2 = DynamicPolicy {
            extra_replicas: 2,
            ..policy(0.3, 10)
        };
        assert!(f2.break_even_interval().unwrap() >= f1.break_even_interval().unwrap());
    }

    // ---------------------------------------------- estimator

    #[test]
    fn estimator_starts_at_prior_and_converges_to_evidence() {
        let mut e = FailureIntensityEstimator::seeded(0.5, 4.0, 0.95);
        assert!((e.rate() - 0.5).abs() < 1e-12);
        for _ in 0..200 {
            e.observe(0);
        }
        assert!(e.rate() < 0.01, "fault-free evidence drives the rate down");
        for _ in 0..200 {
            e.observe(1);
        }
        assert!(
            (e.rate() - 1.0).abs() < 0.05,
            "steady faults drive it to ~1: {}",
            e.rate()
        );
    }

    #[test]
    fn estimator_decay_forgets_old_evidence_faster() {
        let run = |decay: f64| {
            let mut e = FailureIntensityEstimator::seeded(0.0, 1.0, decay);
            for _ in 0..50 {
                e.observe(1);
            }
            for _ in 0..10 {
                e.observe(0);
            }
            e.rate()
        };
        assert!(
            run(0.7) < run(0.99),
            "stronger decay forgets the fault burst faster"
        );
    }

    #[test]
    fn confidence_bounds_bracket_the_rate_and_narrow() {
        let mut e = FailureIntensityEstimator::seeded(0.2, 2.0, 1.0);
        let (lo0, hi0) = e.confidence_bounds(1.96);
        assert!(lo0 <= e.rate() && e.rate() <= hi0);
        for _ in 0..100 {
            e.observe(0);
        }
        let (lo, hi) = e.confidence_bounds(1.96);
        assert!(hi - lo < hi0 - lo0, "more evidence → tighter bounds");
        assert!(lo >= 0.0);
    }

    // ---------------------------------------------- analytic model

    #[test]
    fn zero_rate_prefers_never_replicating() {
        let cfg = AdaptConfig::default_for(10);
        assert_eq!(optimal_interval(0.0, 16, &cfg), None);
    }

    #[test]
    fn heavy_rate_prefers_short_intervals() {
        let cfg = AdaptConfig::default_for(5);
        let k = optimal_interval(2.0, 16, &cfg);
        assert!(k.is_some() && k.unwrap() <= 4, "got {k:?}");
    }

    #[test]
    fn optimal_interval_is_argmin() {
        let cfg = AdaptConfig::default_for(8);
        for rate in [0.0, 0.01, 0.1, 0.5, 1.5] {
            let best = optimal_interval(rate, 16, &cfg);
            let t_best = expected_chain_time(best, rate, 16, &cfg);
            for k in [Some(1), Some(2), Some(4), Some(8), None] {
                assert!(
                    t_best <= expected_chain_time(k, rate, 16, &cfg) + 1e-9,
                    "rate {rate}: adaptive {best:?} beaten by fixed {k:?}"
                );
            }
        }
    }

    // ---------------------------------------------- closed loop

    #[test]
    fn fault_free_run_places_no_points() {
        let cfg = AdaptConfig {
            prior_rate: 0.0,
            ..AdaptConfig::default_for(10)
        };
        let mut p = AdaptivePolicy::new(cfg);
        for _ in 0..50 {
            assert!(!p.job_completed(), "no faults → never replicate");
        }
        assert_eq!(p.current_interval(), None);
    }

    #[test]
    fn fault_storm_tightens_the_cadence() {
        let mut p = AdaptivePolicy::new(AdaptConfig::default_for(5));
        let before = p.current_interval();
        let mut placed = 0;
        for _ in 0..30 {
            p.record_fault(1);
            if p.job_completed() {
                placed += 1;
            }
        }
        let after = p.current_interval().expect("storm forces an interval");
        assert!(placed > 0, "points were placed under the storm");
        assert!(
            before.is_none() || after <= before.unwrap(),
            "cadence tightened: {before:?} → {after:?}"
        );
        // Calm restores a sparser cadence.
        for _ in 0..80 {
            p.job_completed();
        }
        let calm = p.current_interval();
        assert!(
            calm.is_none() || calm.unwrap() >= after,
            "calm relaxes the cadence: {after} → {calm:?}"
        );
    }

    #[test]
    fn hysteresis_suppresses_small_oscillations() {
        let cfg = AdaptConfig {
            hysteresis: 10.0, // absurdly wide band: never leave it
            prior_rate: 0.4,
            ..AdaptConfig::default_for(5)
        };
        let mut p = AdaptivePolicy::new(cfg);
        let start = p.current_interval();
        assert!(start.is_some(), "pessimistic prior sets an interval");
        for i in 0..40 {
            p.record_fault(u32::from(i % 3 == 0));
            p.job_completed();
            assert_eq!(
                p.current_interval(),
                start,
                "wide hysteresis pins the finite interval"
            );
        }
        assert!(p.trajectory().iter().all(|s| !s.switched));
    }

    #[test]
    fn identical_event_sequences_give_identical_decisions() {
        // The backend-agnosticism contract behind the PR-3 invariant.
        let cfg = AdaptConfig::default_for(6);
        let mut a = AdaptivePolicy::new(cfg);
        let mut b = AdaptivePolicy::new(cfg);
        let events = [0u32, 1, 0, 0, 2, 0, 1, 1, 0, 0, 0, 3, 0];
        for &n in &events {
            a.record_fault(n);
            b.record_fault(n);
            assert_eq!(a.job_completed(), b.job_completed());
            assert_eq!(a.current_interval(), b.current_interval());
        }
        assert_eq!(a.trajectory(), b.trajectory());
    }

    #[test]
    fn trajectory_records_every_job() {
        let mut p = AdaptivePolicy::new(AdaptConfig::default_for(4));
        p.record_fault(2);
        p.job_completed();
        p.job_completed();
        assert_eq!(p.trajectory().len(), 2);
        assert_eq!(p.trajectory()[0].job, 1);
        assert!(p.trajectory()[0].rate > p.trajectory()[1].rate);
    }
}
