//! # rcmp-policy — the shared scheduling & recovery policy kernel
//!
//! Every phenomenon the paper measures — waves (§II), data-locality
//! tie-breaking (§III-A), recomputation spreading and hot-spots (§IV-B),
//! reducer splitting and spread-output mitigation (§IV-B1/2) — is a
//! *decision*, not a mechanism. This crate holds the single
//! implementation of those decisions, expressed over backend-agnostic
//! traits, so the real engine (`rcmp-engine`) and the discrete-event
//! simulator (`rcmp-sim`) execute literally the same code and agree by
//! construction rather than by test discipline.
//!
//! The shape follows M3R's argument for one well-factored execution core
//! reused across running modes, and Binocular Speculation's argument
//! that recovery *policy* should be a first-class module separable from
//! the execution substrate:
//!
//! * [`TopologyView`] — what the kernel needs to know about a cluster:
//!   live nodes and per-phase slot counts. [`SliceTopology`] adapts a
//!   plain node slice.
//! * [`MapTaskSet`] / [`ReduceTaskSet`] — what it needs to know about
//!   the work: task count, replica/primary-holder queries, partition
//!   keys. [`FnMapTasks`] / [`FnReduceTasks`] adapt closures.
//! * [`assign_map_waves`] / [`assign_reduce_waves`] — the wave kernels.
//! * [`RecomputePlan`] — the unified recomputation instruction set that
//!   `rcmp-engine::RecomputeInstructions` and `rcmp-sim::RecomputeSpec`
//!   are re-exports of.
//! * [`choose_mitigation`] — hot-spot mitigation selection (split vs
//!   spread-output, §IV-B2) shared by the middleware and the simulator.
//! * [`PolicyCtx`] — optional `rcmp-obs` instrumentation: every
//!   placement decision can emit a span, in both backends.
//! * [`adapt`] — closed-loop adaptive resilience: the online
//!   failure-intensity estimator and the [`AdaptivePolicy`] that
//!   re-derives the replication cadence from it, shared (like the wave
//!   kernels) by the engine and the simulator so their decision
//!   sequences agree byte for byte.
//! * [`Membership`] — the versioned, mutable node set: join / drain /
//!   decommission / rejoin transitions with epoch numbers, snapshotted
//!   identically by both backends.
//! * [`assign_map_waves_kernel`] / [`assign_reduce_waves_kernel`] —
//!   pluggable placement kernels (rack-aware, delay scheduling,
//!   capacity-weighted) selected via
//!   `rcmp_model::PlacementKernel`, all sharing one claim loop.
//! * [`RackTopology`] — the single node→rack layout shared by DFS
//!   replica placement and the rack-aware kernel (formerly duplicated
//!   in `rcmp-dfs`).
//! * [`DrrArbiter`] — cross-tenant fair-share arbitration (weighted
//!   deficit round-robin with per-tenant in-flight quotas), the tier
//!   *above* the wave kernels that the `rcmp-serve` job service uses to
//!   decide whose chain runs next; [`jain_index`] scores the outcome.

#![deny(missing_docs)]

pub mod adapt;
mod fair;
mod membership;
mod mitigation;
mod plan;
mod tasks;
mod topology;
mod waves;

pub use adapt::{
    expected_chain_time, optimal_interval, AdaptConfig, AdaptationStep, AdaptivePolicy,
    DynamicPolicy, FailureIntensityEstimator, FaultObserver,
};
pub use fair::{jain_index, DrrArbiter, Grant, TenantShare};
pub use membership::{Membership, NodeInfo, NodeStatus};
pub use mitigation::{choose_mitigation, HotspotMitigation, MitigationChoice, SplitPolicy};
pub use plan::RecomputePlan;
pub use tasks::{CacheAffinity, FnMapTasks, FnReduceTasks, MapTaskSet, ReduceTaskSet};
pub use topology::{rack_aware_order, KernelTopology, RackTopology, SliceTopology, TopologyView};
pub use waves::{
    assign_map_waves, assign_map_waves_kernel, assign_reduce_waves, assign_reduce_waves_kernel,
    queues_to_waves, queues_to_waves_weighted, PolicyCtx, ReduceAssignment, WaveAssignment,
};
