//! Slot-constrained wave assignment — the kernel both backends run.
//!
//! A node runs at most `slots` tasks of a phase concurrently; a phase
//! with more tasks per node runs in multiple **waves** (§II). The
//! assignment policy mirrors Hadoop's slot scheduler at the fidelity the
//! paper's phenomena need:
//!
//! * tasks balance across live nodes (nodes claim in rounds), so a
//!   recomputation's few tasks spread over *all* survivors — this is
//!   what makes the hot-spot of §IV-B2 appear: recomputed mappers land
//!   on many nodes but all read from the one node holding the
//!   recomputed input;
//! * each node prefers a task whose *primary* replica it holds (the
//!   writer-local copy), then any task whose data it holds (locality
//!   via tie-breaking, §III-A), then steals a non-local task;
//! * initial-run reducers are placed round-robin by partition id,
//!   giving the deterministic `WR = R/(N·S)` waves of the paper's
//!   model; recomputation reducers balance over survivors instead
//!   (Fig. 4).

use crate::tasks::{MapTaskSet, ReduceTaskSet};
use crate::topology::TopologyView;
use rcmp_model::{Error, Result};
use rcmp_obs::{SpanId, SpanKind, Tracer};

/// Tasks grouped into waves: `waves[w]` lists the `(node, task_index)`
/// pairs running concurrently in wave `w`.
pub type WaveAssignment<N> = Vec<Vec<(N, usize)>>;

/// How reduce tasks pick nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceAssignment {
    /// Partition `p` goes to `live[p % N]` — the initial-run layout.
    RoundRobinByPartition,
    /// Shortest-queue balancing — used for recomputation runs, where
    /// the task list is small and should use every survivor (Fig. 4).
    Balance,
}

/// Optional instrumentation handle threaded through the kernels.
///
/// When a tracer is attached, every placement decision emits an
/// [`SpanKind::Event`] span (label prefix `policy.`) under `parent`, so
/// traces from the engine and the simulator show the *same* decision
/// points.
#[derive(Clone, Copy, Default)]
pub struct PolicyCtx<'a> {
    tracer: Option<&'a Tracer>,
    parent: Option<SpanId>,
}

impl<'a> PolicyCtx<'a> {
    /// No instrumentation; decisions are silent.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Emit decision spans to `tracer`, parented under `parent`.
    pub fn new(tracer: &'a Tracer, parent: Option<SpanId>) -> Self {
        Self {
            tracer: Some(tracer),
            parent,
        }
    }

    /// Like [`PolicyCtx::new`] but tolerating an optional tracer.
    pub fn maybe(tracer: Option<&'a Tracer>, parent: Option<SpanId>) -> Self {
        Self { tracer, parent }
    }

    fn emit(&self, label: String) {
        if let Some(t) = self.tracer {
            t.instant(SpanKind::Event { seq: 0, label }, self.parent, None, None);
        }
    }
}

/// Spreads per-node queues into waves of at most `slots` tasks per node.
///
/// Exposed so backends can reuse the wave arithmetic for custom queue
/// shapes (e.g. speculative re-execution experiments).
pub fn queues_to_waves<N: Copy>(
    queues: Vec<Vec<usize>>,
    live: &[N],
    slots: u32,
) -> WaveAssignment<N> {
    let slots = slots.max(1) as usize;
    let num_waves = queues
        .iter()
        .map(|q| q.len().div_ceil(slots))
        .max()
        .unwrap_or(0);
    let mut waves: WaveAssignment<N> = vec![Vec::new(); num_waves];
    for (ni, queue) in queues.into_iter().enumerate() {
        for (ti, task) in queue.into_iter().enumerate() {
            waves[ti / slots].push((live[ni], task));
        }
    }
    waves
}

/// Assigns map tasks to waves over the live nodes with Hadoop's
/// slot-pull semantics: nodes claim tasks in rounds, each preferring a
/// primary-local task, then any local task, then stealing. Balanced
/// data runs (almost) fully local; a handful of recomputed tasks
/// spreads over all nodes in one wave — the behaviours behind the
/// paper's locality and hot-spot observations.
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_map_waves<V, S>(
    topo: &V,
    tasks: &S,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: MapTaskSet<V::Node>,
{
    let live = topo.live_nodes();
    if live.is_empty() {
        return Err(Error::NoLiveNodes);
    }
    let mut pending: Vec<usize> = (0..tasks.len()).collect();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    let mut local = 0usize;
    while !pending.is_empty() {
        for (i, &n) in live.iter().enumerate() {
            if pending.is_empty() {
                break;
            }
            let pos = pending
                .iter()
                .position(|&t| tasks.is_primary_holder(t, n))
                .or_else(|| pending.iter().position(|&t| tasks.holds_replica(t, n)))
                .unwrap_or(0);
            let t = pending.remove(pos);
            if tasks.holds_replica(t, n) {
                local += 1;
            }
            queues[i].push(t);
        }
    }
    let waves = queues_to_waves(queues, &live, topo.map_slots());
    ctx.emit(format!(
        "policy.map_waves tasks={} nodes={} slots={} waves={} local={}",
        tasks.len(),
        live.len(),
        topo.map_slots(),
        waves.len(),
        local,
    ));
    Ok(waves)
}

/// Assigns reduce tasks to waves over the live nodes, either round-robin
/// by partition (initial runs) or shortest-queue balanced (recompute
/// runs — splits of one partition spread over all survivors, Fig. 4b).
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_reduce_waves<V, S>(
    topo: &V,
    tasks: &S,
    style: ReduceAssignment,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: ReduceTaskSet,
{
    let live = topo.live_nodes();
    if live.is_empty() {
        return Err(Error::NoLiveNodes);
    }
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    match style {
        ReduceAssignment::RoundRobinByPartition => {
            for t in 0..tasks.len() {
                queues[tasks.partition_index(t) % live.len()].push(t);
            }
        }
        ReduceAssignment::Balance => {
            for t in 0..tasks.len() {
                let (i, _) = queues
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, q)| (q.len(), *i))
                    .expect("at least one live node");
                queues[i].push(t);
            }
        }
    }
    let waves = queues_to_waves(queues, &live, topo.reduce_slots());
    ctx.emit(format!(
        "policy.reduce_waves style={style:?} tasks={} nodes={} slots={} waves={}",
        tasks.len(),
        live.len(),
        topo.reduce_slots(),
        waves.len(),
    ));
    Ok(waves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{FnMapTasks, FnReduceTasks};
    use crate::topology::SliceTopology;

    fn nodes(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    /// Map tasks where task `t`'s replica set is `layout[t]` and the
    /// primary is the first entry.
    fn layout_tasks(
        layout: &[Vec<u32>],
    ) -> FnMapTasks<impl Fn(usize, u32) -> bool + '_, impl Fn(usize, u32) -> bool + '_> {
        FnMapTasks::new(
            layout.len(),
            |t: usize, n: u32| layout[t].first() == Some(&n),
            |t: usize, n: u32| layout[t].contains(&n),
        )
    }

    #[test]
    fn balanced_map_tasks_prefer_local() {
        // 4 tasks, 4 nodes, 1 replica each on its "own" node.
        let layout: Vec<Vec<u32>> = (0..4u32).map(|i| vec![i]).collect();
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert!(
                layout[task].contains(&node),
                "task {task} not local on {node}"
            );
        }
    }

    #[test]
    fn few_tasks_spread_over_nodes_not_piled_on_replica_holder() {
        // The hot-spot scenario: 3 blocks all on node 0, 4 live nodes.
        let layout: Vec<Vec<u32>> = (0..3).map(|_| vec![0u32]).collect();
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        // All three run in a single wave on three different nodes.
        assert_eq!(waves.len(), 1);
        let used: std::collections::HashSet<u32> = waves[0].iter().map(|&(n, _)| n).collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn waves_respect_slots() {
        let layout: Vec<Vec<u32>> = (0..8).map(|_| Vec::new()).collect();
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 2);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        // 8 tasks / (2 nodes * 2 slots) = 2 waves.
        assert_eq!(waves.len(), 2);
        for wave in &waves {
            let mut per_node = std::collections::HashMap::new();
            for &(n, _) in wave {
                *per_node.entry(n).or_insert(0) += 1;
            }
            assert!(per_node.values().all(|&c| c <= 2));
        }
    }

    #[test]
    fn primary_preference_beats_mere_replica() {
        // Task 0 has its primary on node 1 but a replica on node 0;
        // task 1 has its primary on node 0. Without the primary
        // preference node 0 (first in claim order) would eat task 0.
        let layout: Vec<Vec<u32>> = vec![vec![1, 0], vec![0, 1]];
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert_eq!(layout[task][0], node, "each task on its primary holder");
        }
    }

    #[test]
    fn initial_reducers_round_robin() {
        // 10 reducers, 10 nodes, 1 slot: exactly 1 wave (WR = 1), with
        // partition p on node p % N.
        let live = nodes(10);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(10, |t| t);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert_eq!(node as usize, task % 10);
        }
    }

    #[test]
    fn round_robin_gives_paper_wave_count() {
        // 40 reducers, 10 nodes, 1 slot: WR = 4 waves.
        let live = nodes(10);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(40, |t| t);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn balance_spreads_splits_over_all_nodes() {
        // 1 recomputed reducer split 8 ways, 9 surviving nodes (Fig. 4b).
        let live = nodes(9);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(8, |_| 0);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1, "all splits fit one wave across nodes");
        let used: std::collections::HashSet<u32> = waves[0].iter().map(|&(n, _)| n).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn no_split_recompute_uses_one_node_per_reducer() {
        // 1 recomputed whole reducer, 9 nodes: 1 task on 1 node — the
        // paper's under-utilization (Fig. 4a).
        let live = nodes(9);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(1, |_| 0);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
    }

    #[test]
    fn empty_task_list_zero_waves() {
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        let maps: Vec<Vec<u32>> = Vec::new();
        assert!(
            assign_map_waves(&topo, &layout_tasks(&maps), PolicyCtx::disabled())
                .unwrap()
                .is_empty()
        );
        let reds = FnReduceTasks::new(0, |t| t);
        assert!(assign_reduce_waves(
            &topo,
            &reds,
            ReduceAssignment::Balance,
            PolicyCtx::disabled()
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn empty_topology_is_a_typed_error() {
        let live: Vec<u32> = Vec::new();
        let topo = SliceTopology::uniform(&live, 1);
        let maps: Vec<Vec<u32>> = vec![vec![0]];
        assert_eq!(
            assign_map_waves(&topo, &layout_tasks(&maps), PolicyCtx::disabled()).unwrap_err(),
            rcmp_model::Error::NoLiveNodes
        );
        let reds = FnReduceTasks::new(1, |_| 0);
        assert_eq!(
            assign_reduce_waves(
                &topo,
                &reds,
                ReduceAssignment::RoundRobinByPartition,
                PolicyCtx::disabled()
            )
            .unwrap_err(),
            rcmp_model::Error::NoLiveNodes
        );
    }

    #[test]
    fn decision_spans_emitted_when_traced() {
        let tracer = Tracer::new();
        let layout: Vec<Vec<u32>> = vec![vec![0], vec![1]];
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::new(&tracer, None)).unwrap();
        let reds = FnReduceTasks::new(2, |t| t);
        assign_reduce_waves(
            &topo,
            &reds,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::new(&tracer, None),
        )
        .unwrap();
        let spans = tracer.snapshot();
        let labels: Vec<String> = spans
            .spans
            .iter()
            .filter_map(|s| match &s.kind {
                SpanKind::Event { label, .. } => Some(label.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels[0].starts_with("policy.map_waves "), "{}", labels[0]);
        assert!(labels[0].contains("local=2"), "{}", labels[0]);
        assert!(
            labels[1].starts_with("policy.reduce_waves style=RoundRobinByPartition"),
            "{}",
            labels[1]
        );
    }
}
