//! Slot-constrained wave assignment — the kernel both backends run.
//!
//! A node runs at most `slots` tasks of a phase concurrently; a phase
//! with more tasks per node runs in multiple **waves** (§II). The
//! assignment policy mirrors Hadoop's slot scheduler at the fidelity the
//! paper's phenomena need:
//!
//! * tasks balance across live nodes (nodes claim in rounds), so a
//!   recomputation's few tasks spread over *all* survivors — this is
//!   what makes the hot-spot of §IV-B2 appear: recomputed mappers land
//!   on many nodes but all read from the one node holding the
//!   recomputed input;
//! * each node prefers a task whose *primary* replica it holds (the
//!   writer-local copy), then any task whose data it holds (locality
//!   via tie-breaking, §III-A), then steals a non-local task;
//! * initial-run reducers are placed round-robin by partition id,
//!   giving the deterministic `WR = R/(N·S)` waves of the paper's
//!   model; recomputation reducers balance over survivors instead
//!   (Fig. 4).

use crate::tasks::{MapTaskSet, ReduceTaskSet};
use crate::topology::TopologyView;
use rcmp_model::{Error, PlacementKernel, Result};
use rcmp_obs::{SpanId, SpanKind, Tracer};

/// Tasks grouped into waves: `waves[w]` lists the `(node, task_index)`
/// pairs running concurrently in wave `w`.
pub type WaveAssignment<N> = Vec<Vec<(N, usize)>>;

/// How reduce tasks pick nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceAssignment {
    /// Partition `p` goes to `live[p % N]` — the initial-run layout.
    RoundRobinByPartition,
    /// Shortest-queue balancing — used for recomputation runs, where
    /// the task list is small and should use every survivor (Fig. 4).
    Balance,
}

/// Optional instrumentation handle threaded through the kernels.
///
/// When a tracer is attached, every placement decision emits an
/// [`SpanKind::Event`] span (label prefix `policy.`) under `parent`, so
/// traces from the engine and the simulator show the *same* decision
/// points.
#[derive(Clone, Copy, Default)]
pub struct PolicyCtx<'a> {
    tracer: Option<&'a Tracer>,
    parent: Option<SpanId>,
}

impl<'a> PolicyCtx<'a> {
    /// No instrumentation; decisions are silent.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Emit decision spans to `tracer`, parented under `parent`.
    pub fn new(tracer: &'a Tracer, parent: Option<SpanId>) -> Self {
        Self {
            tracer: Some(tracer),
            parent,
        }
    }

    /// Like [`PolicyCtx::new`] but tolerating an optional tracer.
    pub fn maybe(tracer: Option<&'a Tracer>, parent: Option<SpanId>) -> Self {
        Self { tracer, parent }
    }

    fn emit(&self, label: String) {
        if let Some(t) = self.tracer {
            t.instant(SpanKind::Event { seq: 0, label }, self.parent, None, None);
        }
    }
}

/// Spreads per-node queues into waves of at most `slots` tasks per node.
///
/// Exposed so backends can reuse the wave arithmetic for custom queue
/// shapes (e.g. speculative re-execution experiments).
pub fn queues_to_waves<N: Copy>(
    queues: Vec<Vec<usize>>,
    live: &[N],
    slots: u32,
) -> WaveAssignment<N> {
    let slots = slots.max(1) as usize;
    let num_waves = queues
        .iter()
        .map(|q| q.len().div_ceil(slots))
        .max()
        .unwrap_or(0);
    let mut waves: WaveAssignment<N> = vec![Vec::new(); num_waves];
    for (ni, queue) in queues.into_iter().enumerate() {
        for (ti, task) in queue.into_iter().enumerate() {
            waves[ti / slots].push((live[ni], task));
        }
    }
    waves
}

/// Like [`queues_to_waves`], but with per-node capacity weights: node
/// `i` packs `slots × caps[i]` tasks per wave (the capacity-weighted
/// kernel's heterogeneous slot model). An empty `caps` slice means
/// uniform weight 1.
pub fn queues_to_waves_weighted<N: Copy>(
    queues: Vec<Vec<usize>>,
    live: &[N],
    slots: u32,
    caps: &[u32],
) -> WaveAssignment<N> {
    let slots = slots.max(1) as usize;
    let cap = |i: usize| caps.get(i).copied().unwrap_or(1).max(1) as usize;
    let num_waves = queues
        .iter()
        .enumerate()
        .map(|(i, q)| q.len().div_ceil(slots * cap(i)))
        .max()
        .unwrap_or(0);
    let mut waves: WaveAssignment<N> = vec![Vec::new(); num_waves];
    for (ni, queue) in queues.into_iter().enumerate() {
        let per_wave = slots * cap(ni);
        for (ti, task) in queue.into_iter().enumerate() {
            waves[ti / per_wave].push((live[ni], task));
        }
    }
    waves
}

/// Assigns map tasks to waves over the live nodes with Hadoop's
/// slot-pull semantics: nodes claim tasks in rounds, each preferring a
/// primary-local task, then any local task, then stealing. Balanced
/// data runs (almost) fully local; a handful of recomputed tasks
/// spreads over all nodes in one wave — the behaviours behind the
/// paper's locality and hot-spot observations.
///
/// Runs the [`PlacementKernel::Default`] kernel; see
/// [`assign_map_waves_kernel`] for the pluggable variants.
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_map_waves<V, S>(
    topo: &V,
    tasks: &S,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: MapTaskSet<V::Node>,
{
    assign_map_waves_kernel(topo, tasks, PlacementKernel::Default, ctx)
}

/// Assigns map tasks to waves under the selected placement kernel.
///
/// All kernels share the round-based claim loop and the wave
/// arithmetic; they differ in the claim rule:
///
/// * [`PlacementKernel::Default`] — primary-local, then any local
///   replica, then steal the oldest pending task (byte-identical to
///   the historical [`assign_map_waves`]).
/// * [`PlacementKernel::RackAware`] — like `Default`, but the steal
///   fallback first looks for a task with a replica on any live node
///   in the claimer's rack ([`TopologyView::rack_at`]).
/// * [`PlacementKernel::Delay`] — a node with no local task skips its
///   claim for up to `rounds` rounds before stealing (delay
///   scheduling); a local launch resets its wait.
/// * [`PlacementKernel::CapacityWeighted`] — node `i` claims
///   [`TopologyView::capacity_at`]`(i)` tasks per round and packs
///   `slots × capacity` tasks per wave.
/// * [`PlacementKernel::Stable`] — partition-stable chain placement: a
///   node first claims a task whose input partition it holds in the
///   inter-job chain cache ([`MapTaskSet::cache_affine`]), then falls
///   back to the `Default` chain; its steal fallback prefers tasks no
///   node has an in-memory claim on, so one straggler doesn't eat
///   another node's cached partition. With no affinity info (cache off,
///   cold, or invalidated) it is byte-identical to `Default`.
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_map_waves_kernel<V, S>(
    topo: &V,
    tasks: &S,
    kernel: PlacementKernel,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: MapTaskSet<V::Node>,
{
    let live = topo.live_nodes();
    if live.is_empty() {
        return Err(Error::NoLiveNodes);
    }
    let mut pending: Vec<usize> = (0..tasks.len()).collect();
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    let mut local = 0usize;

    // Rack-aware steal fallback: one bitmask per task recording which
    // racks hold a live replica (rack index folded mod 64), computed
    // once in O(tasks × live) so each claim stays O(pending).
    let rack_masks: Vec<u64> = if kernel == PlacementKernel::RackAware {
        (0..tasks.len())
            .map(|t| {
                live.iter().enumerate().fold(0u64, |m, (j, &n)| {
                    if tasks.holds_replica(t, n) {
                        m | (1u64 << (topo.rack_at(j) % 64))
                    } else {
                        m
                    }
                })
            })
            .collect()
    } else {
        Vec::new()
    };

    let mut claim =
        |queues: &mut Vec<Vec<usize>>, pending: &mut Vec<usize>, i: usize, pos: usize| {
            let t = pending.remove(pos);
            if tasks.holds_replica(t, live[i]) {
                local += 1;
            }
            queues[i].push(t);
        };

    match kernel {
        PlacementKernel::Default | PlacementKernel::RackAware => {
            while !pending.is_empty() {
                for (i, &n) in live.iter().enumerate() {
                    if pending.is_empty() {
                        break;
                    }
                    let rack_bit = 1u64 << (topo.rack_at(i) % 64);
                    let pos = pending
                        .iter()
                        .position(|&t| tasks.is_primary_holder(t, n))
                        .or_else(|| pending.iter().position(|&t| tasks.holds_replica(t, n)))
                        .or_else(|| {
                            if kernel == PlacementKernel::RackAware {
                                pending.iter().position(|&t| rack_masks[t] & rack_bit != 0)
                            } else {
                                None
                            }
                        })
                        .unwrap_or(0);
                    claim(&mut queues, &mut pending, i, pos);
                }
            }
        }
        PlacementKernel::Stable => {
            while !pending.is_empty() {
                for (i, &n) in live.iter().enumerate() {
                    if pending.is_empty() {
                        break;
                    }
                    let pos = pending
                        .iter()
                        .position(|&t| tasks.cache_affine(t, n))
                        .or_else(|| pending.iter().position(|&t| tasks.is_primary_holder(t, n)))
                        .or_else(|| pending.iter().position(|&t| tasks.holds_replica(t, n)))
                        .or_else(|| pending.iter().position(|&t| !tasks.has_cache_affinity(t)))
                        .unwrap_or(0);
                    claim(&mut queues, &mut pending, i, pos);
                }
            }
        }
        PlacementKernel::Delay { rounds } => {
            let mut waited = vec![0u32; live.len()];
            while !pending.is_empty() {
                for (i, &n) in live.iter().enumerate() {
                    if pending.is_empty() {
                        break;
                    }
                    let pos = pending
                        .iter()
                        .position(|&t| tasks.is_primary_holder(t, n))
                        .or_else(|| pending.iter().position(|&t| tasks.holds_replica(t, n)));
                    match pos {
                        Some(p) => {
                            waited[i] = 0;
                            claim(&mut queues, &mut pending, i, p);
                        }
                        None if waited[i] < rounds => waited[i] += 1,
                        None => claim(&mut queues, &mut pending, i, 0),
                    }
                }
            }
        }
        PlacementKernel::CapacityWeighted => {
            while !pending.is_empty() {
                for (i, &n) in live.iter().enumerate() {
                    for _ in 0..topo.capacity_at(i).max(1) {
                        if pending.is_empty() {
                            break;
                        }
                        let pos = pending
                            .iter()
                            .position(|&t| tasks.is_primary_holder(t, n))
                            .or_else(|| pending.iter().position(|&t| tasks.holds_replica(t, n)))
                            .unwrap_or(0);
                        claim(&mut queues, &mut pending, i, pos);
                    }
                }
            }
        }
    }

    let waves = if kernel == PlacementKernel::CapacityWeighted {
        let caps: Vec<u32> = (0..live.len()).map(|i| topo.capacity_at(i)).collect();
        queues_to_waves_weighted(queues, &live, topo.map_slots(), &caps)
    } else {
        queues_to_waves(queues, &live, topo.map_slots())
    };
    ctx.emit(format!(
        "policy.map_waves tasks={} nodes={} slots={} waves={} local={} kernel={}",
        tasks.len(),
        live.len(),
        topo.map_slots(),
        waves.len(),
        local,
        kernel.label(),
    ));
    Ok(waves)
}

/// Assigns reduce tasks to waves over the live nodes, either round-robin
/// by partition (initial runs) or shortest-queue balanced (recompute
/// runs — splits of one partition spread over all survivors, Fig. 4b).
///
/// Runs the [`PlacementKernel::Default`] kernel; see
/// [`assign_reduce_waves_kernel`] for the pluggable variants.
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_reduce_waves<V, S>(
    topo: &V,
    tasks: &S,
    style: ReduceAssignment,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: ReduceTaskSet,
{
    assign_reduce_waves_kernel(topo, tasks, style, PlacementKernel::Default, ctx)
}

/// Assigns reduce tasks to waves under the selected placement kernel.
///
/// Reducers consume *every* mapper's output, so rack and delay
/// preferences have no data to chase: [`PlacementKernel::RackAware`]
/// and [`PlacementKernel::Delay`] behave exactly like `Default` here.
/// [`PlacementKernel::CapacityWeighted`] balances by *weighted* queue
/// depth (`len / capacity`, compared exactly via cross-multiplication)
/// and packs `slots × capacity` tasks per wave.
///
/// Errors with [`Error::NoLiveNodes`] when the topology has no
/// survivors left to place on.
pub fn assign_reduce_waves_kernel<V, S>(
    topo: &V,
    tasks: &S,
    style: ReduceAssignment,
    kernel: PlacementKernel,
    ctx: PolicyCtx<'_>,
) -> Result<WaveAssignment<V::Node>>
where
    V: TopologyView,
    S: ReduceTaskSet,
{
    let live = topo.live_nodes();
    if live.is_empty() {
        return Err(Error::NoLiveNodes);
    }
    let weighted = kernel == PlacementKernel::CapacityWeighted;
    let mut queues: Vec<Vec<usize>> = vec![Vec::new(); live.len()];
    match style {
        ReduceAssignment::RoundRobinByPartition => {
            for t in 0..tasks.len() {
                queues[tasks.partition_index(t) % live.len()].push(t);
            }
        }
        ReduceAssignment::Balance if weighted => {
            for t in 0..tasks.len() {
                // argmin of len/capacity without floats: len_i·cap_b <
                // len_b·cap_i ⇔ node i is less loaded per unit weight.
                let mut best = 0usize;
                for i in 1..queues.len() {
                    let (li, ci) = (
                        queues[i].len() as u64,
                        u64::from(topo.capacity_at(i).max(1)),
                    );
                    let (lb, cb) = (
                        queues[best].len() as u64,
                        u64::from(topo.capacity_at(best).max(1)),
                    );
                    if li * cb < lb * ci {
                        best = i;
                    }
                }
                queues[best].push(t);
            }
        }
        ReduceAssignment::Balance => {
            for t in 0..tasks.len() {
                let (i, _) = queues
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, q)| (q.len(), *i))
                    .expect("at least one live node");
                queues[i].push(t);
            }
        }
    }
    let waves = if weighted {
        let caps: Vec<u32> = (0..live.len()).map(|i| topo.capacity_at(i)).collect();
        queues_to_waves_weighted(queues, &live, topo.reduce_slots(), &caps)
    } else {
        queues_to_waves(queues, &live, topo.reduce_slots())
    };
    ctx.emit(format!(
        "policy.reduce_waves style={style:?} tasks={} nodes={} slots={} waves={} kernel={}",
        tasks.len(),
        live.len(),
        topo.reduce_slots(),
        waves.len(),
        kernel.label(),
    ));
    Ok(waves)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::{FnMapTasks, FnReduceTasks};
    use crate::topology::{KernelTopology, SliceTopology};

    fn nodes(n: u32) -> Vec<u32> {
        (0..n).collect()
    }

    /// Map tasks where task `t`'s replica set is `layout[t]` and the
    /// primary is the first entry.
    fn layout_tasks(
        layout: &[Vec<u32>],
    ) -> FnMapTasks<impl Fn(usize, u32) -> bool + '_, impl Fn(usize, u32) -> bool + '_> {
        FnMapTasks::new(
            layout.len(),
            |t: usize, n: u32| layout[t].first() == Some(&n),
            |t: usize, n: u32| layout[t].contains(&n),
        )
    }

    #[test]
    fn balanced_map_tasks_prefer_local() {
        // 4 tasks, 4 nodes, 1 replica each on its "own" node.
        let layout: Vec<Vec<u32>> = (0..4u32).map(|i| vec![i]).collect();
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert!(
                layout[task].contains(&node),
                "task {task} not local on {node}"
            );
        }
    }

    #[test]
    fn few_tasks_spread_over_nodes_not_piled_on_replica_holder() {
        // The hot-spot scenario: 3 blocks all on node 0, 4 live nodes.
        let layout: Vec<Vec<u32>> = (0..3).map(|_| vec![0u32]).collect();
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        // All three run in a single wave on three different nodes.
        assert_eq!(waves.len(), 1);
        let used: std::collections::HashSet<u32> = waves[0].iter().map(|&(n, _)| n).collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn waves_respect_slots() {
        let layout: Vec<Vec<u32>> = (0..8).map(|_| Vec::new()).collect();
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 2);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        // 8 tasks / (2 nodes * 2 slots) = 2 waves.
        assert_eq!(waves.len(), 2);
        for wave in &waves {
            let mut per_node = std::collections::HashMap::new();
            for &(n, _) in wave {
                *per_node.entry(n).or_insert(0) += 1;
            }
            assert!(per_node.values().all(|&c| c <= 2));
        }
    }

    #[test]
    fn primary_preference_beats_mere_replica() {
        // Task 0 has its primary on node 1 but a replica on node 0;
        // task 1 has its primary on node 0. Without the primary
        // preference node 0 (first in claim order) would eat task 0.
        let layout: Vec<Vec<u32>> = vec![vec![1, 0], vec![0, 1]];
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::disabled()).unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert_eq!(layout[task][0], node, "each task on its primary holder");
        }
    }

    #[test]
    fn stable_kernel_without_affinity_matches_default() {
        let layout: Vec<Vec<u32>> = vec![vec![1, 0], vec![0, 1], vec![2], vec![3], vec![0]];
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 2);
        let default = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Default,
            PolicyCtx::disabled(),
        )
        .unwrap();
        let stable = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Stable,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(default, stable);
    }

    #[test]
    fn stable_kernel_follows_cache_affinity_over_dfs_primary() {
        // Every task's DFS primary sits on node 0 (the hot-spot shape),
        // but each task's partition is cached on its "own" node: the
        // stable kernel must follow memory, not the disk replica.
        let layout: Vec<Vec<u32>> = (0..4).map(|_| vec![0u32]).collect();
        let cached: Vec<u32> = vec![0, 1, 2, 3];
        let tasks = crate::tasks::CacheAffinity::new(layout_tasks(&layout), |t: usize| {
            Some(cached[t])
        });
        let live = nodes(4);
        let topo = SliceTopology::uniform(&live, 1);
        let waves =
            assign_map_waves_kernel(&topo, &tasks, PlacementKernel::Stable, PolicyCtx::disabled())
                .unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert_eq!(cached[task], node, "task {task} must run on its cache holder");
        }
    }

    #[test]
    fn stable_steal_prefers_unclaimed_tasks() {
        // Node 0 holds nothing; tasks 0/1 are cached on node 1, tasks
        // 2/3 are cached nowhere. Node 0's steals must take the
        // unclaimed tasks, leaving both cached partitions to their
        // holder.
        let layout: Vec<Vec<u32>> = (0..4).map(|_| Vec::new()).collect();
        let cached: Vec<Option<u32>> = vec![Some(1), Some(1), None, None];
        let tasks = crate::tasks::CacheAffinity::new(layout_tasks(&layout), |t: usize| cached[t]);
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 2);
        let waves =
            assign_map_waves_kernel(&topo, &tasks, PlacementKernel::Stable, PolicyCtx::disabled())
                .unwrap();
        let placed: std::collections::HashMap<usize, u32> = waves
            .iter()
            .flatten()
            .map(|&(n, t)| (t, n))
            .collect();
        assert_eq!(placed[&2], 0, "node 0 steals the unclaimed tasks first");
        assert_eq!(placed[&3], 0);
        assert_eq!(placed[&0], 1);
        assert_eq!(placed[&1], 1);
    }

    #[test]
    fn initial_reducers_round_robin() {
        // 10 reducers, 10 nodes, 1 slot: exactly 1 wave (WR = 1), with
        // partition p on node p % N.
        let live = nodes(10);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(10, |t| t);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        for &(node, task) in &waves[0] {
            assert_eq!(node as usize, task % 10);
        }
    }

    #[test]
    fn round_robin_gives_paper_wave_count() {
        // 40 reducers, 10 nodes, 1 slot: WR = 4 waves.
        let live = nodes(10);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(40, |t| t);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn balance_spreads_splits_over_all_nodes() {
        // 1 recomputed reducer split 8 ways, 9 surviving nodes (Fig. 4b).
        let live = nodes(9);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(8, |_| 0);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1, "all splits fit one wave across nodes");
        let used: std::collections::HashSet<u32> = waves[0].iter().map(|&(n, _)| n).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn no_split_recompute_uses_one_node_per_reducer() {
        // 1 recomputed whole reducer, 9 nodes: 1 task on 1 node — the
        // paper's under-utilization (Fig. 4a).
        let live = nodes(9);
        let topo = SliceTopology::uniform(&live, 1);
        let tasks = FnReduceTasks::new(1, |_| 0);
        let waves = assign_reduce_waves(
            &topo,
            &tasks,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
    }

    #[test]
    fn empty_task_list_zero_waves() {
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        let maps: Vec<Vec<u32>> = Vec::new();
        assert!(
            assign_map_waves(&topo, &layout_tasks(&maps), PolicyCtx::disabled())
                .unwrap()
                .is_empty()
        );
        let reds = FnReduceTasks::new(0, |t| t);
        assert!(assign_reduce_waves(
            &topo,
            &reds,
            ReduceAssignment::Balance,
            PolicyCtx::disabled()
        )
        .unwrap()
        .is_empty());
    }

    #[test]
    fn empty_topology_is_a_typed_error() {
        let live: Vec<u32> = Vec::new();
        let topo = SliceTopology::uniform(&live, 1);
        let maps: Vec<Vec<u32>> = vec![vec![0]];
        assert_eq!(
            assign_map_waves(&topo, &layout_tasks(&maps), PolicyCtx::disabled()).unwrap_err(),
            rcmp_model::Error::NoLiveNodes
        );
        let reds = FnReduceTasks::new(1, |_| 0);
        assert_eq!(
            assign_reduce_waves(
                &topo,
                &reds,
                ReduceAssignment::RoundRobinByPartition,
                PolicyCtx::disabled()
            )
            .unwrap_err(),
            rcmp_model::Error::NoLiveNodes
        );
    }

    #[test]
    fn default_kernel_matches_historical_assignment() {
        // The kernel-parameterized entry point with `Default` must be
        // byte-identical to the original implementation.
        let layouts: Vec<Vec<Vec<u32>>> = vec![
            (0..6u32).map(|i| vec![i % 4]).collect(),
            (0..5).map(|_| vec![0u32]).collect(),
            vec![vec![1, 0], vec![0, 1], vec![], vec![3]],
        ];
        let live = nodes(4);
        for layout in &layouts {
            let topo = SliceTopology::uniform(&live, 1);
            let a = assign_map_waves(&topo, &layout_tasks(layout), PolicyCtx::disabled()).unwrap();
            let b = assign_map_waves_kernel(
                &topo,
                &layout_tasks(layout),
                PlacementKernel::Default,
                PolicyCtx::disabled(),
            )
            .unwrap();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn rack_aware_steal_prefers_rack_local_task() {
        // Nodes 0,1 in rack 0; node 2 in rack 1. Task 0 lives on node 2
        // (rack 1), task 1 on node 1 (rack 0). Node 0 claims first and
        // has nothing local: the default kernel steals the oldest
        // pending task (0); the rack-aware kernel prefers task 1, whose
        // replica sits in its own rack.
        let live = nodes(3);
        let racks = [0u32, 0, 1];
        let layout: Vec<Vec<u32>> = vec![vec![2], vec![1]];
        let topo = KernelTopology::uniform(&live, 1, &[], &racks);
        let default = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Default,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert!(default[0].contains(&(0, 0)), "default steals task 0");
        let rack = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::RackAware,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert!(
            rack[0].contains(&(0, 1)),
            "rack-aware steals in-rack: {rack:?}"
        );
        assert!(
            rack[0].contains(&(1, 0)),
            "task 0 falls to node 1: {rack:?}"
        );
    }

    #[test]
    fn delay_kernel_waits_for_local_work() {
        // One task, local only to node 1. Default: node 0 (first in
        // claim order) steals it remotely. Delay(1): node 0 waits a
        // round and node 1 launches it locally.
        let live = nodes(2);
        let layout: Vec<Vec<u32>> = vec![vec![1]];
        let topo = SliceTopology::uniform(&live, 1);
        let default = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Default,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(default[0], vec![(0, 0)], "default steals remotely");
        let delay = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Delay { rounds: 1 },
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(delay[0], vec![(1, 0)], "delayed claim lands local");
        // rounds = 0 degenerates to the default steal behaviour.
        let zero = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Delay { rounds: 0 },
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(zero, default);
    }

    #[test]
    fn delay_kernel_terminates_on_fully_remote_work() {
        // No task is local anywhere: every node waits out its budget,
        // then steals — assignment completes and covers all tasks.
        let live = nodes(3);
        let layout: Vec<Vec<u32>> = (0..5).map(|_| Vec::new()).collect();
        let topo = SliceTopology::uniform(&live, 1);
        let waves = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::Delay { rounds: 4 },
            PolicyCtx::disabled(),
        )
        .unwrap();
        let total: usize = waves.iter().map(Vec::len).sum();
        assert_eq!(total, 5);
    }

    #[test]
    fn capacity_weighted_packs_big_nodes_harder() {
        // Node 1 weighs 3×: of 8 location-free tasks it claims 6 and
        // packs 3 per wave, so the whole job fits 2 waves where the
        // default kernel needs 4.
        let live = nodes(2);
        let caps = [1u32, 3];
        let layout: Vec<Vec<u32>> = (0..8).map(|_| Vec::new()).collect();
        let topo = KernelTopology::uniform(&live, 1, &caps, &[]);
        let waves = assign_map_waves_kernel(
            &topo,
            &layout_tasks(&layout),
            PlacementKernel::CapacityWeighted,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 2, "{waves:?}");
        let on_big: usize = waves.iter().flatten().filter(|&&(n, _)| n == 1).count();
        assert_eq!(on_big, 6);
        for wave in &waves {
            let mut per = std::collections::HashMap::new();
            for &(n, _) in wave {
                *per.entry(n).or_insert(0u32) += 1;
            }
            assert!(per.get(&0).copied().unwrap_or(0) <= 1);
            assert!(per.get(&1).copied().unwrap_or(0) <= 3);
        }
    }

    #[test]
    fn capacity_weighted_balance_is_weighted_shortest_queue() {
        let live = nodes(2);
        let caps = [1u32, 3];
        let topo = KernelTopology::uniform(&live, 1, &caps, &[]);
        let tasks = FnReduceTasks::new(8, |_| 0);
        let waves = assign_reduce_waves_kernel(
            &topo,
            &tasks,
            ReduceAssignment::Balance,
            PlacementKernel::CapacityWeighted,
            PolicyCtx::disabled(),
        )
        .unwrap();
        let on_big: usize = waves.iter().flatten().filter(|&&(n, _)| n == 1).count();
        assert_eq!(on_big, 6, "weighted balance loads the 3× node 3× harder");
    }

    #[test]
    fn weighted_waves_degrade_to_uniform_without_caps() {
        let queues = vec![vec![0usize, 2], vec![1, 3, 4]];
        let live = [10u32, 11];
        assert_eq!(
            queues_to_waves_weighted(queues.clone(), &live, 1, &[]),
            queues_to_waves(queues, &live, 1)
        );
    }

    #[test]
    fn decision_spans_emitted_when_traced() {
        let tracer = Tracer::new();
        let layout: Vec<Vec<u32>> = vec![vec![0], vec![1]];
        let live = nodes(2);
        let topo = SliceTopology::uniform(&live, 1);
        assign_map_waves(&topo, &layout_tasks(&layout), PolicyCtx::new(&tracer, None)).unwrap();
        let reds = FnReduceTasks::new(2, |t| t);
        assign_reduce_waves(
            &topo,
            &reds,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::new(&tracer, None),
        )
        .unwrap();
        let spans = tracer.snapshot();
        let labels: Vec<String> = spans
            .spans
            .iter()
            .filter_map(|s| match &s.kind {
                SpanKind::Event { label, .. } => Some(label.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(labels.len(), 2);
        assert!(labels[0].starts_with("policy.map_waves "), "{}", labels[0]);
        assert!(labels[0].contains("local=2"), "{}", labels[0]);
        assert!(
            labels[1].starts_with("policy.reduce_waves style=RoundRobinByPartition"),
            "{}",
            labels[1]
        );
    }
}
