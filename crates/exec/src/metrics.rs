//! Pre-resolved `rcmp-obs` metric handles for the executor hot path.

use rcmp_obs::{Counter, Gauge, MetricsRegistry};

/// Executor health metrics, resolved once against a registry so wave
/// execution never takes the registry lock.
///
/// All handles live under the `exec.` prefix; the async reactor updates
/// them, while the threaded backend — kept byte-identical to the
/// pre-executor code — records nothing.
#[derive(Clone)]
pub struct ExecMetrics {
    /// Instantaneous ready-queue depth (last observed).
    pub ready_depth: Gauge,
    /// Worker threads currently parked waiting for work.
    pub parked_workers: Gauge,
    /// OS worker threads used by the most recent wave.
    pub workers: Gauge,
    /// Average polls per task of the most recent wave (×1000, so the
    /// nominal 2.0 polls/task reads as 2000).
    pub polls_per_task_milli: Gauge,
    /// Total future polls across all waves.
    pub polls: Counter,
    /// Nanoseconds spent inside `Future::poll` across all waves.
    pub poll_ns: Counter,
    /// Nanoseconds workers spent parked waiting for ready tasks.
    pub park_ns: Counter,
    /// Tasks that ran to completion.
    pub tasks_completed: Counter,
    /// Tasks skipped by cooperative cancellation.
    pub tasks_cancelled: Counter,
    /// Tasks whose body panicked.
    pub tasks_abandoned: Counter,
    /// Waves executed.
    pub waves: Counter,
    /// OS worker threads spawned. In session mode this stays at the
    /// pool size while `waves` climbs — the observable for the
    /// pool-per-job (rather than pool-per-wave) lifetime.
    pub worker_starts: Counter,
}

impl ExecMetrics {
    /// Resolves every handle against `registry` (get-or-create).
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            ready_depth: registry.gauge("exec.ready_depth"),
            parked_workers: registry.gauge("exec.parked_workers"),
            workers: registry.gauge("exec.workers"),
            polls_per_task_milli: registry.gauge("exec.polls_per_task_milli"),
            polls: registry.counter("exec.polls"),
            poll_ns: registry.counter("exec.poll_ns"),
            park_ns: registry.counter("exec.park_ns"),
            tasks_completed: registry.counter("exec.tasks_completed"),
            tasks_cancelled: registry.counter("exec.tasks_cancelled"),
            tasks_abandoned: registry.counter("exec.tasks_abandoned"),
            waves: registry.counter("exec.waves"),
            worker_starts: registry.counter("exec.worker_starts"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_attached_to_registry() {
        let reg = MetricsRegistry::new();
        let m = ExecMetrics::register(&reg);
        m.polls.add(4);
        m.workers.set(2);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exec.polls"), Some(4));
        assert_eq!(
            snap.get("exec.workers"),
            Some(&rcmp_obs::SnapshotValue::Gauge(2))
        );
    }
}
