//! The hand-rolled cooperative reactor behind [`AsyncExecutor`].
//!
//! One wave at a time: the wave's slot tasks are lifted into
//! [`TaskFuture`]s held in per-slot mutexes on the caller's stack, a
//! seeded shuffle of their indices primes the ready queue, and a bounded
//! pool of scoped worker threads multiplexes them — pop an index, poll
//! that future, park on a condvar when the queue runs dry. Wakers
//! (`std::task::Wake` over an `Arc` of the reactor's shared state)
//! re-enqueue their index and unpark one worker; when the last task
//! resolves, every parked worker is released and the scope joins.
//!
//! The queue seed makes the *initial* service order a pure function of
//! `(seed, label)`; with one worker the whole execution order is. With
//! more workers the interleaving is OS-scheduled, exactly like the
//! threaded backend — which is why schedules and digests agree across
//! backends (wave outcomes are collected in input order either way).

use crate::future::TaskFuture;
use crate::metrics::ExecMetrics;
use crate::task::{CancelToken, SlotOutcome, SlotTask, TaskCtx};
use crate::{Executor, WaveSpec};
use rand::seq::SliceRandom;
use rcmp_model::rng::rng_for;
use rcmp_obs::{MetricsRegistry, PhaseKind, PhaseProfiler, SpanKind, Tracer};
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::task::{Context, Poll, Wake, Waker};
use std::time::Instant;

/// Locks ignoring poisoning: task panics are contained inside
/// [`TaskFuture::poll`], so a poisoned reactor lock can only come from a
/// bug in the reactor itself — and even then the queue state is a plain
/// index list that stays coherent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Reactor state shared between workers and wakers.
///
/// Wakers require `'static` state (`std::task::Waker` erases
/// lifetimes), so everything reachable from one — the ready queue of
/// task *indices*, the park condvar and the counters — lives in this
/// `Arc`. The futures themselves stay on the wave's stack frame,
/// accessed only by the scoped workers.
struct Shared {
    queue: Mutex<VecDeque<usize>>,
    ready: Condvar,
    remaining: AtomicUsize,
    polls: AtomicU64,
    parked: AtomicUsize,
    /// Nanoseconds workers spent inside `Future::poll` this wave.
    poll_ns: AtomicU64,
    /// Nanoseconds workers spent parked on the ready condvar this wave.
    park_ns: AtomicU64,
    /// Number of park episodes this wave (each condvar wait counts one).
    parks: AtomicU64,
    /// Completion latch for session mode: the wave submitter waits here,
    /// never on `ready` — `enqueue`'s `notify_one` could otherwise wake
    /// the submitter instead of a parked worker and stall the wave.
    done: Mutex<bool>,
    done_cv: Condvar,
    metrics: Option<ExecMetrics>,
}

impl Shared {
    fn new(tasks: usize, metrics: Option<ExecMetrics>) -> Self {
        Self {
            queue: Mutex::new(VecDeque::with_capacity(tasks)),
            ready: Condvar::new(),
            remaining: AtomicUsize::new(tasks),
            polls: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            poll_ns: AtomicU64::new(0),
            park_ns: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            metrics,
        }
    }

    fn note_depth(&self, depth: usize) {
        if let Some(m) = &self.metrics {
            m.ready_depth.set(depth as i64);
        }
    }

    /// Re-enqueues a task index and unparks one worker (the wake path).
    fn enqueue(&self, index: usize) {
        let mut q = lock(&self.queue);
        q.push_back(index);
        self.note_depth(q.len());
        // Notify while holding the lock: a worker between its empty
        // check and its park holds the lock, so the wake cannot slip
        // into that window and be lost.
        self.ready.notify_one();
    }

    /// Pops the next ready index, parking until one arrives or every
    /// task has resolved (`None` = shut down).
    fn next_ready(&self) -> Option<usize> {
        let mut q = lock(&self.queue);
        loop {
            if let Some(i) = q.pop_front() {
                self.note_depth(q.len());
                return Some(i);
            }
            if self.remaining.load(Ordering::Acquire) == 0 {
                return None;
            }
            self.parked.fetch_add(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.parked_workers
                    .set(self.parked.load(Ordering::Relaxed) as i64);
            }
            let parked_at = Instant::now();
            q = self.ready.wait(q).unwrap_or_else(PoisonError::into_inner);
            self.park_ns
                .fetch_add(parked_at.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.parks.fetch_add(1, Ordering::Relaxed);
            self.parked.fetch_sub(1, Ordering::Relaxed);
            if let Some(m) = &self.metrics {
                m.parked_workers
                    .set(self.parked.load(Ordering::Relaxed) as i64);
            }
        }
    }

    /// Marks one task resolved; the last one releases every parked
    /// worker so the pool can drain, and trips the completion latch for
    /// a session-mode submitter.
    fn task_done(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            {
                let _queue = lock(&self.queue);
                self.ready.notify_all();
            }
            *lock(&self.done) = true;
            self.done_cv.notify_all();
        }
    }

    /// Blocks until every task of the wave has resolved.
    fn wait_done(&self) {
        let mut done = lock(&self.done);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Waker for one slot: re-enqueues its index.
struct SlotWaker {
    shared: Arc<Shared>,
    index: usize,
}

impl Wake for SlotWaker {
    fn wake(self: Arc<Self>) {
        self.shared.enqueue(self.index);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.shared.enqueue(self.index);
    }
}

/// One slot's reactor-side state: the future while it is pending, the
/// outcome once it resolved.
struct Slot<'env, T> {
    fut: Option<TaskFuture<'env, T>>,
    outcome: Option<SlotOutcome<T>>,
}

fn worker_loop<T: Send>(shared: &Arc<Shared>, slots: &[Mutex<Slot<'_, T>>]) {
    while let Some(index) = shared.next_ready() {
        let mut slot = lock(&slots[index]);
        // A duplicate wake can race a poll already in flight: by the
        // time this worker gets the slot lock the future is either back
        // (poll it again) or resolved (nothing to do).
        let Some(mut fut) = slot.fut.take() else {
            continue;
        };
        let waker = Waker::from(Arc::new(SlotWaker {
            shared: Arc::clone(shared),
            index,
        }));
        let mut cx = Context::from_waker(&waker);
        shared.polls.fetch_add(1, Ordering::Relaxed);
        let poll_started = Instant::now();
        let polled = Pin::new(&mut fut).poll(&mut cx);
        shared
            .poll_ns
            .fetch_add(poll_started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        match polled {
            Poll::Pending => {
                slot.fut = Some(fut);
            }
            Poll::Ready(out) => {
                slot.outcome = Some(out);
                drop(slot);
                shared.task_done();
            }
        }
    }
}

/// One wave's worth of servable work, type-erased so session workers
/// spawned once per job can serve waves of differing outcome types.
trait WaveWork: Send + Sync {
    /// Serves the wave until every task has resolved (a worker-loop
    /// body; called concurrently from every session worker).
    fn serve(&self);
}

/// A published wave: the reactor state plus the slot futures, kept
/// alive by `Arc` because laggard session workers may still hold it
/// briefly after the submitter has collected the outcomes.
struct WaveState<'env, T: Send> {
    shared: Arc<Shared>,
    slots: Vec<Mutex<Slot<'env, T>>>,
}

impl<T: Send> WaveWork for WaveState<'_, T> {
    fn serve(&self) {
        worker_loop(&self.shared, &self.slots);
    }
}

/// What the session's worker pool should be doing right now.
enum SessionState<'env> {
    /// No wave published yet.
    Idle,
    /// Wave number `.0` is available for service.
    Work(u64, Arc<dyn WaveWork + 'env>),
    /// The session is over: workers exit.
    Shutdown,
}

/// Coordination point between the session's long-lived workers and the
/// thread submitting waves.
struct SessionShared<'env> {
    state: Mutex<SessionState<'env>>,
    publish: Condvar,
}

/// Body of one session worker: wait for the next unserved generation,
/// serve it to completion, repeat until shutdown. Generations are
/// strictly increasing and waves are serialized by the submitter, so a
/// worker that dawdles past a whole wave simply picks up the newest one
/// (each wave has enough workers only because *some* worker serves it;
/// correctness never depends on all of them showing up).
fn session_worker(shared: &SessionShared<'_>) {
    let mut served = 0u64;
    loop {
        let work = {
            let mut st = lock(&shared.state);
            loop {
                match &*st {
                    SessionState::Shutdown => return,
                    SessionState::Work(generation, work) if *generation > served => {
                        served = *generation;
                        break Arc::clone(work);
                    }
                    _ => {
                        st = shared
                            .publish
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                }
            }
        };
        work.serve();
    }
}

/// A job-scoped reactor session: the worker pool is spawned once by
/// [`AsyncExecutor::with_session`] and serves every wave submitted
/// through [`AsyncSession::run_wave`], instead of being rebuilt per
/// wave. `'s` is the session scope, `'env` the environment the slot
/// tasks may borrow from.
pub struct AsyncSession<'s, 'env> {
    exec: &'env AsyncExecutor,
    shared: &'s SessionShared<'env>,
    workers: usize,
    generation: AtomicU64,
}

impl<'env> AsyncSession<'_, 'env> {
    /// Executes one wave on the session's shared worker pool. Same
    /// contract as [`Executor::run_wave`]: outcomes in input order,
    /// panics contained, returns only once every task has resolved.
    pub fn run_wave<T: Send + 'env>(
        &self,
        spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let exec = self.exec;
        let started = exec.tracer.as_ref().map(|t| t.now_us());
        if let Some(m) = &exec.metrics {
            m.waves.inc();
        }
        let cancel = CancelToken::new();
        let shared = Arc::new(Shared::new(n, exec.metrics.clone()));
        {
            // Seeded-deterministic initial service order, exactly as in
            // the standalone wave path.
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng_for(spec.seed, spec.label));
            let mut q = lock(&shared.queue);
            q.extend(order);
            shared.note_depth(q.len());
        }
        let slots: Vec<Mutex<Slot<'env, T>>> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                Mutex::new(Slot {
                    fut: Some(TaskFuture::new(
                        t.into_fn(),
                        TaskCtx::new(cancel.clone(), i),
                    )),
                    outcome: None,
                })
            })
            .collect();
        let wave: Arc<WaveState<'env, T>> = Arc::new(WaveState {
            shared: Arc::clone(&shared),
            slots,
        });
        {
            let generation = self.generation.fetch_add(1, Ordering::Relaxed) + 1;
            let mut st = lock(&self.shared.state);
            *st = SessionState::Work(generation, Arc::clone(&wave) as Arc<dyn WaveWork + 'env>);
            // Notify under the lock so the publish cannot slip into a
            // worker's check-then-wait window.
            self.shared.publish.notify_all();
        }
        shared.wait_done();
        // Workers may still hold the `Arc<WaveState>` briefly, so take
        // each outcome out of its slot instead of unwrapping the Arc.
        let outcomes: Vec<SlotOutcome<T>> = wave
            .slots
            .iter()
            .map(|m| lock(m).outcome.take().unwrap_or(SlotOutcome::Cancelled))
            .collect();
        exec.flush_reactor_time(&shared);
        let polls = shared.polls.load(Ordering::Relaxed);
        let cancelled = outcomes.iter().filter(|o| o.is_cancelled()).count();
        if let Some(m) = &exec.metrics {
            m.polls.add(polls);
            m.polls_per_task_milli.set((polls * 1000 / n as u64) as i64);
            m.tasks_cancelled.add(cancelled as u64);
            m.tasks_abandoned
                .add(outcomes.iter().filter(|o| o.is_abandoned()).count() as u64);
            m.tasks_completed.add(
                outcomes
                    .iter()
                    .filter(|o| matches!(o, SlotOutcome::Completed(_)))
                    .count() as u64,
            );
        }
        if let (Some(tracer), Some(start)) = (&exec.tracer, started) {
            let end = tracer.now_us();
            tracer.record(
                SpanKind::ExecutorWave {
                    backend: "async".into(),
                    tasks: n as u32,
                    workers: self.workers as u32,
                    polls,
                    cancelled: cancelled as u32,
                },
                spec.parent,
                None,
                None,
                start,
                end,
            );
        }
        outcomes
    }

    /// The session's OS worker-thread count (fixed for its lifetime).
    pub fn workers(&self) -> usize {
        self.workers
    }
}

/// The cooperative reactor backend: `workers` OS threads multiplex the
/// whole wave, so thousands of simulated slots run in one process with
/// a bounded thread count.
pub struct AsyncExecutor {
    workers: usize,
    tracer: Option<Arc<Tracer>>,
    metrics: Option<ExecMetrics>,
    profiler: Option<Arc<PhaseProfiler>>,
}

impl AsyncExecutor {
    /// Creates a reactor with `workers` OS threads; `0` auto-sizes to
    /// the machine's available parallelism.
    pub fn new(workers: u32) -> Self {
        let workers = if workers == 0 {
            std::thread::available_parallelism()
                .map(usize::from)
                .unwrap_or(4)
        } else {
            workers as usize
        };
        Self {
            workers,
            tracer: None,
            metrics: None,
            profiler: None,
        }
    }

    /// Attaches observability: `ExecutorWave` spans on `tracer` and
    /// `exec.*` metrics registered in `registry`.
    pub fn with_obs(mut self, tracer: Arc<Tracer>, registry: &MetricsRegistry) -> Self {
        self.tracer = Some(tracer);
        self.metrics = Some(ExecMetrics::register(registry));
        self
    }

    /// Attaches a phase profiler: reactor poll and park time flow into
    /// [`PhaseKind::ReactorPoll`] / [`PhaseKind::ReactorPark`] at the
    /// end of each wave.
    pub fn with_profiler(mut self, profiler: Arc<PhaseProfiler>) -> Self {
        self.profiler = Some(profiler);
        self
    }

    /// Flushes one wave's accumulated poll/park time into the exec
    /// metrics and the phase profiler (one flush per wave — the hot
    /// loop only touches the wave-local atomics in [`Shared`]).
    fn flush_reactor_time(&self, shared: &Shared) {
        let poll_ns = shared.poll_ns.load(Ordering::Relaxed);
        let park_ns = shared.park_ns.load(Ordering::Relaxed);
        let polls = shared.polls.load(Ordering::Relaxed);
        let parks = shared.parks.load(Ordering::Relaxed);
        if let Some(m) = &self.metrics {
            m.poll_ns.add(poll_ns);
            m.park_ns.add(park_ns);
        }
        if let Some(p) = &self.profiler {
            p.add_many_ns(PhaseKind::ReactorPoll, poll_ns, polls);
            p.add_many_ns(PhaseKind::ReactorPark, park_ns, parks);
        }
    }

    /// The resolved OS worker-thread count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` with a job-scoped [`AsyncSession`]: the worker pool is
    /// spawned once here and serves every wave submitted through the
    /// session, so a multi-wave job pays the thread spawn cost once
    /// instead of per wave (observable as `exec.worker_starts` staying
    /// flat while `exec.waves` climbs).
    ///
    /// A panic inside `f` still shuts the pool down cleanly before
    /// being propagated.
    pub fn with_session<'env, R>(&'env self, f: impl FnOnce(&AsyncSession<'_, 'env>) -> R) -> R {
        let workers = self.workers.max(1);
        if let Some(m) = &self.metrics {
            m.workers.set(workers as i64);
        }
        let shared = SessionShared {
            state: Mutex::new(SessionState::Idle),
            publish: Condvar::new(),
        };
        let result = std::thread::scope(|s| {
            for _ in 0..workers {
                let shared = &shared;
                let metrics = self.metrics.clone();
                s.spawn(move || {
                    if let Some(m) = &metrics {
                        m.worker_starts.inc();
                    }
                    session_worker(shared);
                });
            }
            let session = AsyncSession {
                exec: self,
                shared: &shared,
                workers,
                generation: AtomicU64::new(0),
            };
            let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&session)));
            {
                let mut st = lock(&shared.state);
                *st = SessionState::Shutdown;
                shared.publish.notify_all();
            }
            out
        });
        match result {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }
}

impl Executor for AsyncExecutor {
    fn run_wave<'env, T: Send + 'env>(
        &self,
        spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>> {
        let n = tasks.len();
        if n == 0 {
            return Vec::new();
        }
        let workers = self.workers.min(n).max(1);
        let started = self.tracer.as_ref().map(|t| t.now_us());
        if let Some(m) = &self.metrics {
            m.waves.inc();
            m.workers.set(workers as i64);
        }
        let cancel = CancelToken::new();
        let shared = Arc::new(Shared::new(n, self.metrics.clone()));
        {
            // Seeded-deterministic initial service order.
            let mut order: Vec<usize> = (0..n).collect();
            order.shuffle(&mut rng_for(spec.seed, spec.label));
            let mut q = lock(&shared.queue);
            q.extend(order);
            shared.note_depth(q.len());
        }
        let slots: Vec<Mutex<Slot<'env, T>>> = tasks
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                Mutex::new(Slot {
                    fut: Some(TaskFuture::new(
                        t.into_fn(),
                        TaskCtx::new(cancel.clone(), i),
                    )),
                    outcome: None,
                })
            })
            .collect();
        std::thread::scope(|s| {
            for _ in 0..workers {
                let shared = &shared;
                let slots = &slots;
                s.spawn(move || {
                    if let Some(m) = &shared.metrics {
                        m.worker_starts.inc();
                    }
                    worker_loop(shared, slots);
                });
            }
        });
        self.flush_reactor_time(&shared);
        let polls = shared.polls.load(Ordering::Relaxed);
        let outcomes: Vec<SlotOutcome<T>> = slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .outcome
                    .unwrap_or(SlotOutcome::Cancelled)
            })
            .collect();
        let cancelled = outcomes.iter().filter(|o| o.is_cancelled()).count();
        if let Some(m) = &self.metrics {
            m.polls.add(polls);
            m.polls_per_task_milli.set((polls * 1000 / n as u64) as i64);
            m.tasks_cancelled.add(cancelled as u64);
            m.tasks_abandoned
                .add(outcomes.iter().filter(|o| o.is_abandoned()).count() as u64);
            m.tasks_completed.add(
                outcomes
                    .iter()
                    .filter(|o| matches!(o, SlotOutcome::Completed(_)))
                    .count() as u64,
            );
        }
        if let (Some(tracer), Some(start)) = (&self.tracer, started) {
            let end = tracer.now_us();
            tracer.record(
                SpanKind::ExecutorWave {
                    backend: "async".into(),
                    tasks: n as u32,
                    workers: workers as u32,
                    polls,
                    cancelled: cancelled as u32,
                },
                spec.parent,
                None,
                None,
                start,
                end,
            );
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn wave(n: usize) -> Vec<SlotTask<'static, usize>> {
        (0..n)
            .map(|i| {
                SlotTask::new(move |ctx: &TaskCtx| {
                    assert_eq!(ctx.index(), i);
                    i * 2
                })
            })
            .collect()
    }

    #[test]
    fn outcomes_are_input_ordered() {
        let exec = AsyncExecutor::new(3);
        let out = exec.run_wave(&WaveSpec::new("t", 7), wave(100));
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o.completed(), Some(i * 2));
        }
    }

    #[test]
    fn polls_are_exactly_two_per_task() {
        let reg = MetricsRegistry::new();
        let exec = AsyncExecutor::new(2).with_obs(Arc::new(Tracer::new()), &reg);
        let out = exec.run_wave(&WaveSpec::new("t", 1), wave(50));
        assert_eq!(out.len(), 50);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exec.polls"), Some(100));
        assert_eq!(snap.counter("exec.tasks_completed"), Some(50));
        assert_eq!(
            snap.get("exec.polls_per_task_milli"),
            Some(&rcmp_obs::SnapshotValue::Gauge(2000))
        );
    }

    #[test]
    fn single_worker_order_is_seeded() {
        // With one worker the completion order is the seeded shuffle;
        // same seed => same order, different seed => (almost surely)
        // different order.
        let record = |seed: u64| {
            let order = Mutex::new(Vec::new());
            let tasks: Vec<SlotTask<'_, ()>> = (0..32)
                .map(|i| {
                    let order = &order;
                    SlotTask::new(move |_: &TaskCtx| lock(order).push(i))
                })
                .collect();
            AsyncExecutor::new(1).run_wave(&WaveSpec::new("order", seed), tasks);
            order.into_inner().unwrap_or_else(PoisonError::into_inner)
        };
        let a = record(5);
        let b = record(5);
        let c = record(6);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_drains_wave_early() {
        // Single worker: the first task cancels the wave, so every task
        // served after it is skipped.
        let ran = AtomicUsize::new(0);
        let tasks: Vec<SlotTask<'_, ()>> = (0..64)
            .map(|_| {
                let ran = &ran;
                SlotTask::new(move |ctx: &TaskCtx| {
                    ran.fetch_add(1, Ordering::SeqCst);
                    ctx.cancel_wave();
                })
            })
            .collect();
        let out = AsyncExecutor::new(1).run_wave(&WaveSpec::new("c", 3), tasks);
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(out.iter().filter(|o| o.is_cancelled()).count(), 63);
    }

    #[test]
    fn panic_abandons_only_that_task() {
        let tasks: Vec<SlotTask<'_, u32>> = (0..8)
            .map(|i| {
                SlotTask::new(move |_: &TaskCtx| {
                    assert!(i != 3, "scripted task panic");
                    i
                })
            })
            .collect();
        let out = AsyncExecutor::new(2).run_wave(&WaveSpec::new("p", 9), tasks);
        assert!(out[3].is_abandoned());
        assert_eq!(
            out.iter()
                .filter(|o| matches!(o, SlotOutcome::Completed(_)))
                .count(),
            7
        );
    }

    #[test]
    fn emits_executor_wave_span() {
        let reg = MetricsRegistry::new();
        let tracer = Arc::new(Tracer::new());
        let exec = AsyncExecutor::new(2).with_obs(tracer.clone(), &reg);
        exec.run_wave(&WaveSpec::new("s", 11), wave(10));
        let trace = tracer.snapshot();
        let span = trace.of_kind("ExecutorWave").next().expect("span emitted");
        match &span.kind {
            SpanKind::ExecutorWave {
                backend,
                tasks,
                workers,
                polls,
                cancelled,
            } => {
                assert_eq!(backend, "async");
                assert_eq!(*tasks, 10);
                assert_eq!(*workers, 2);
                assert_eq!(*polls, 20);
                assert_eq!(*cancelled, 0);
            }
            other => panic!("unexpected kind {other:?}"),
        }
    }

    #[test]
    fn reactor_time_flows_into_metrics_and_profiler() {
        let reg = MetricsRegistry::new();
        let profiler = Arc::new(PhaseProfiler::new(rcmp_obs::Clock::monotonic()));
        let exec = AsyncExecutor::new(2)
            .with_obs(Arc::new(Tracer::new()), &reg)
            .with_profiler(Arc::clone(&profiler));
        let tasks: Vec<SlotTask<'_, ()>> = (0..16)
            .map(|_| {
                SlotTask::new(move |_: &TaskCtx| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                })
            })
            .collect();
        exec.run_wave(&WaveSpec::new("timed", 1), tasks);
        // 16 × 1 ms of task body runs inside `poll`, so well over a
        // millisecond of poll time must have been attributed.
        assert!(reg.snapshot().counter("exec.poll_ns").unwrap() > 1_000_000);
        assert!(profiler.total_ns(PhaseKind::ReactorPoll) > 1_000_000);
        let polled = profiler.snapshot().entries[PhaseKind::ReactorPoll.index()].count;
        assert_eq!(polled, 32, "two polls per task");
    }

    #[test]
    fn empty_wave_is_a_noop() {
        let out: Vec<SlotOutcome<()>> =
            AsyncExecutor::new(4).run_wave(&WaveSpec::new("e", 0), Vec::new());
        assert!(out.is_empty());
    }

    #[test]
    fn session_reuses_workers_across_waves() {
        let reg = MetricsRegistry::new();
        let exec = AsyncExecutor::new(2).with_obs(Arc::new(Tracer::new()), &reg);
        let sums: Vec<usize> = exec.with_session(|session| {
            assert_eq!(session.workers(), 2);
            (0..3u64)
                .map(|w| {
                    let out = session.run_wave(&WaveSpec::new("sess", w), wave(8));
                    out.into_iter().map(|o| o.completed().expect("done")).sum()
                })
                .collect()
        });
        assert_eq!(sums, vec![56, 56, 56]);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("exec.waves"), Some(3));
        assert_eq!(
            snap.counter("exec.worker_starts"),
            Some(2),
            "the pool must be spawned once per session, not per wave"
        );
        assert_eq!(
            snap.get("exec.workers"),
            Some(&rcmp_obs::SnapshotValue::Gauge(2))
        );
        assert_eq!(snap.counter("exec.tasks_completed"), Some(24));
        assert_eq!(snap.counter("exec.polls"), Some(48));
    }

    #[test]
    fn session_waves_borrow_caller_state() {
        let counter = AtomicUsize::new(0);
        AsyncExecutor::new(3).with_session(|session| {
            for w in 0..4u64 {
                let tasks: Vec<SlotTask<'_, ()>> = (0..16)
                    .map(|_| {
                        let counter = &counter;
                        SlotTask::new(move |_: &TaskCtx| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                session.run_wave(&WaveSpec::new("borrow", w), tasks);
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn session_outcomes_match_standalone_waves() {
        let standalone = AsyncExecutor::new(4).run_wave(&WaveSpec::new("cmp", 21), wave(64));
        let exec = AsyncExecutor::new(4);
        let sessioned = exec.with_session(|s| s.run_wave(&WaveSpec::new("cmp", 21), wave(64)));
        let a: Vec<Option<usize>> = standalone.into_iter().map(SlotOutcome::completed).collect();
        let b: Vec<Option<usize>> = sessioned.into_iter().map(SlotOutcome::completed).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn session_closure_panic_shuts_pool_down_and_propagates() {
        let exec = AsyncExecutor::new(2);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.with_session(|_s| panic!("scripted session panic"))
        }));
        assert!(r.is_err(), "the closure panic must propagate");
    }

    #[test]
    fn session_empty_wave_is_a_noop() {
        let exec = AsyncExecutor::new(2);
        let out: Vec<SlotOutcome<()>> =
            exec.with_session(|s| s.run_wave(&WaveSpec::new("e", 0), Vec::new()));
        assert!(out.is_empty());
    }
}
