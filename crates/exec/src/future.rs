//! [`TaskFuture`]: the slot-task closure lifted into a hand-rolled
//! [`Future`] state machine for the cooperative reactor.

use crate::task::{SlotOutcome, TaskCtx, TaskFn};
use std::future::Future;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::pin::Pin;
use std::task::{Context, Poll};

enum State<'env, T> {
    /// Not yet admitted: the first poll performs an *admission yield* —
    /// it wakes itself and returns `Pending` — so every task round-trips
    /// through the reactor's wake/park machinery exactly once before
    /// running. This keeps the wake path exercised on every wave (not
    /// just under contention) and makes polls-per-task a meaningful
    /// health signal (exactly 2 for a completed task).
    Queued(TaskFn<'env, T>, TaskCtx),
    /// Admitted: the next poll runs the body to completion.
    Yielded(TaskFn<'env, T>, TaskCtx),
    /// Terminal.
    Done,
}

/// A slot task as a [`Future`] resolving to its [`SlotOutcome`].
///
/// The state machine is `Queued → Yielded → Done`; the wave's cancel
/// token is checked on every poll, so a cancelled task resolves without
/// running its body. A panicking body is contained with
/// [`catch_unwind`] and resolves to [`SlotOutcome::Abandoned`] — poll
/// itself never unwinds, so reactor locks are never poisoned by task
/// bodies (the engine escalates any abandoned task to a typed
/// `Error::ExecutorShutdown`).
pub struct TaskFuture<'env, T> {
    state: State<'env, T>,
}

impl<'env, T> TaskFuture<'env, T> {
    /// Lifts a task body and its context into a future.
    pub(crate) fn new(run: TaskFn<'env, T>, ctx: TaskCtx) -> Self {
        Self {
            state: State::Queued(run, ctx),
        }
    }
}

// No self-references: the state machine owns a Box and a TaskCtx.
impl<T> Unpin for TaskFuture<'_, T> {}

impl<T> Future for TaskFuture<'_, T> {
    type Output = SlotOutcome<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        match std::mem::replace(&mut this.state, State::Done) {
            State::Queued(run, ctx) => {
                if ctx.is_cancelled() {
                    return Poll::Ready(SlotOutcome::Cancelled);
                }
                cx.waker().wake_by_ref();
                this.state = State::Yielded(run, ctx);
                Poll::Pending
            }
            State::Yielded(run, ctx) => {
                if ctx.is_cancelled() {
                    return Poll::Ready(SlotOutcome::Cancelled);
                }
                match catch_unwind(AssertUnwindSafe(move || run(&ctx))) {
                    Ok(v) => Poll::Ready(SlotOutcome::Completed(v)),
                    Err(_) => Poll::Ready(SlotOutcome::Abandoned),
                }
            }
            State::Done => Poll::Ready(SlotOutcome::Cancelled),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::CancelToken;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::task::{Wake, Waker};

    struct CountingWaker(AtomicUsize);
    impl Wake for CountingWaker {
        fn wake(self: Arc<Self>) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    fn poll_once<T>(fut: &mut TaskFuture<'_, T>, waker: &Waker) -> Poll<SlotOutcome<T>> {
        let mut cx = Context::from_waker(waker);
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn admission_yield_then_complete() {
        let counting = Arc::new(CountingWaker(AtomicUsize::new(0)));
        let waker = Waker::from(counting.clone());
        let ctx = TaskCtx::new(CancelToken::new(), 0);
        let mut fut = TaskFuture::new(Box::new(|_: &TaskCtx| 41 + 1), ctx);
        assert!(matches!(poll_once(&mut fut, &waker), Poll::Pending));
        assert_eq!(counting.0.load(Ordering::SeqCst), 1, "woke itself");
        match poll_once(&mut fut, &waker) {
            Poll::Ready(SlotOutcome::Completed(42)) => {}
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn cancelled_before_first_poll_skips_body() {
        let waker = Waker::from(Arc::new(CountingWaker(AtomicUsize::new(0))));
        let token = CancelToken::new();
        token.cancel();
        let ctx = TaskCtx::new(token, 0);
        let mut fut = TaskFuture::new(Box::new(|_: &TaskCtx| panic!("must not run")), ctx);
        assert!(matches!(
            poll_once(&mut fut, &waker),
            Poll::Ready(SlotOutcome::Cancelled)
        ));
    }

    #[test]
    fn cancelled_between_polls_skips_body() {
        let waker = Waker::from(Arc::new(CountingWaker(AtomicUsize::new(0))));
        let token = CancelToken::new();
        let ctx = TaskCtx::new(token.clone(), 0);
        let mut fut = TaskFuture::new(Box::new(|_: &TaskCtx| panic!("must not run")), ctx);
        assert!(matches!(poll_once(&mut fut, &waker), Poll::Pending));
        token.cancel();
        assert!(matches!(
            poll_once(&mut fut, &waker),
            Poll::Ready(SlotOutcome::Cancelled)
        ));
    }

    #[test]
    fn panic_is_contained_as_abandoned() {
        let waker = Waker::from(Arc::new(CountingWaker(AtomicUsize::new(0))));
        let ctx = TaskCtx::new(CancelToken::new(), 0);
        let mut fut: TaskFuture<'_, u32> =
            TaskFuture::new(Box::new(|_: &TaskCtx| panic!("boom")), ctx);
        assert!(matches!(poll_once(&mut fut, &waker), Poll::Pending));
        assert!(matches!(
            poll_once(&mut fut, &waker),
            Poll::Ready(SlotOutcome::Abandoned)
        ));
    }
}
