//! `rcmp-exec`: wave-executor backends for the RCMP engine.
//!
//! The engine executes a job as a sequence of *waves*: a batch of slot
//! tasks assigned by the policy kernel, run concurrently, whose
//! outcomes are collected in input order before the next wave starts.
//! This crate captures that contract as the [`Executor`] trait and
//! implements it twice:
//!
//! * [`ThreadedExecutor`] — one OS thread per occupied slot per wave
//!   (Hadoop 1.0.3's process-per-slot model, and the engine's original
//!   behaviour, extracted verbatim).
//! * [`AsyncExecutor`] — a hand-rolled cooperative reactor: slot tasks
//!   become [`TaskFuture`]s, a seeded-deterministic ready queue feeds a
//!   bounded pool of worker threads, and a wake/park condvar keeps idle
//!   workers cheap. Thousands of simulated slots run in one process
//!   with at most `workers` OS threads.
//!
//! Backend choice is configuration (`ExecutorConfig` on
//! `ClusterConfig`), threaded through [`BackendExecutor`] so the
//! engine, the chaos harness and the figure runner never name a
//! concrete backend. Under a fixed seed both backends produce identical
//! schedules and outcome vectors — assignment happens before execution
//! and outcomes are input-ordered — so recovery event logs and golden
//! chain digests agree across backends.

#![deny(missing_docs)]

mod budget;
mod future;
mod metrics;
mod reactor;
mod task;
mod threaded;

pub use budget::{WorkerBudget, WorkerLease};
pub use future::TaskFuture;
pub use metrics::ExecMetrics;
pub use reactor::{AsyncExecutor, AsyncSession};
pub use task::{CancelToken, SlotOutcome, SlotTask, TaskCtx};
pub use threaded::ThreadedExecutor;

use rcmp_model::{ExecutorConfig, ExecutorKind};
use rcmp_obs::{MetricsRegistry, SpanId, Tracer};
use std::sync::Arc;

/// Identity and instrumentation for one wave submission.
#[derive(Clone, Copy, Debug)]
pub struct WaveSpec {
    /// Domain label for the wave's seed stream (e.g. `"map-wave"`).
    pub label: &'static str,
    /// Seed for the reactor's initial ready-queue order. Derive it from
    /// the cluster seed and the wave index so replays are bit-identical.
    pub seed: u64,
    /// Span to parent the backend's `ExecutorWave` span under.
    pub parent: Option<SpanId>,
}

impl WaveSpec {
    /// A spec with no span parent.
    pub fn new(label: &'static str, seed: u64) -> Self {
        Self {
            label,
            seed,
            parent: None,
        }
    }

    /// Parents the backend's instrumentation span under `parent`.
    pub fn with_parent(mut self, parent: SpanId) -> Self {
        self.parent = Some(parent);
        self
    }
}

/// The wave contract: run every slot task of one wave, honour the
/// wave's cancel token, and return one [`SlotOutcome`] per task *in
/// input order*.
///
/// Implementations must run each task body at most once, must not let a
/// task panic escape (contain it as [`SlotOutcome::Abandoned`]), and
/// must return only once every task has resolved — the engine processes
/// a wave's outcomes as a unit before consulting the failure injector
/// again.
pub trait Executor {
    /// Executes one wave.
    fn run_wave<'env, T: Send + 'env>(
        &self,
        spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>>;
}

/// Configuration-selected backend, so callers hold one concrete type.
pub enum BackendExecutor {
    /// Per-slot OS threads.
    Threaded(ThreadedExecutor),
    /// Cooperative reactor.
    Async(AsyncExecutor),
}

impl BackendExecutor {
    /// Builds the backend named by `cfg` (uninstrumented).
    pub fn from_config(cfg: &ExecutorConfig) -> Self {
        match cfg.backend {
            ExecutorKind::Threaded => BackendExecutor::Threaded(ThreadedExecutor::new()),
            ExecutorKind::Async => BackendExecutor::Async(AsyncExecutor::new(cfg.workers)),
        }
    }

    /// Attaches observability (a no-op for the threaded backend, which
    /// stays byte-identical to the pre-executor engine).
    pub fn with_obs(self, tracer: Arc<Tracer>, registry: &MetricsRegistry) -> Self {
        match self {
            BackendExecutor::Threaded(t) => BackendExecutor::Threaded(t),
            BackendExecutor::Async(a) => BackendExecutor::Async(a.with_obs(tracer, registry)),
        }
    }

    /// Attaches a phase profiler for reactor poll/park attribution (a
    /// no-op for the threaded backend, which has no reactor).
    pub fn with_profiler(self, profiler: Arc<rcmp_obs::PhaseProfiler>) -> Self {
        match self {
            BackendExecutor::Threaded(t) => BackendExecutor::Threaded(t),
            BackendExecutor::Async(a) => BackendExecutor::Async(a.with_profiler(profiler)),
        }
    }

    /// Stable backend name (`"threaded"` / `"async"`).
    pub fn name(&self) -> &'static str {
        match self {
            BackendExecutor::Threaded(_) => "threaded",
            BackendExecutor::Async(_) => "async",
        }
    }

    /// Runs `f` with a job-scoped [`SessionExecutor`].
    ///
    /// For the async backend this spawns the reactor's worker pool once
    /// and serves every wave submitted through the session with it —
    /// a multi-wave job no longer rebuilds its thread pool at every
    /// wave boundary. The threaded backend is stateless (one OS thread
    /// per occupied slot per wave is its *semantics*), so its session
    /// is a plain pass-through.
    pub fn with_session<'env, R>(&'env self, f: impl FnOnce(&SessionExecutor<'_, 'env>) -> R) -> R {
        match self {
            BackendExecutor::Threaded(t) => f(&SessionExecutor::Threaded(*t)),
            BackendExecutor::Async(a) => a.with_session(|s| f(&SessionExecutor::Async(s))),
        }
    }
}

/// A backend handle scoped to one job, obtained from
/// [`BackendExecutor::with_session`]: the async reactor keeps one
/// worker pool alive across every wave submitted through it, while the
/// threaded backend passes straight through to its per-wave threads.
///
/// `'s` is the session scope, `'env` the environment slot tasks may
/// borrow from. This cannot implement [`Executor`] — the trait
/// quantifies `'env` per call, but a session fixes it for its whole
/// lifetime — so it exposes the same `run_wave` shape inherently.
pub enum SessionExecutor<'s, 'env> {
    /// Stateless pass-through to the per-slot-thread backend.
    Threaded(ThreadedExecutor),
    /// Handle onto a live reactor session (shared worker pool).
    Async(&'s AsyncSession<'s, 'env>),
}

impl<'env> SessionExecutor<'_, 'env> {
    /// Executes one wave through the session. Same contract as
    /// [`Executor::run_wave`]: outcomes in input order, panics
    /// contained as [`SlotOutcome::Abandoned`], returns only once every
    /// task has resolved.
    pub fn run_wave<T: Send + 'env>(
        &self,
        spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>> {
        match self {
            SessionExecutor::Threaded(t) => t.run_wave(spec, tasks),
            SessionExecutor::Async(s) => s.run_wave(spec, tasks),
        }
    }
}

impl Executor for BackendExecutor {
    fn run_wave<'env, T: Send + 'env>(
        &self,
        spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>> {
        match self {
            BackendExecutor::Threaded(t) => t.run_wave(spec, tasks),
            BackendExecutor::Async(a) => a.run_wave(spec, tasks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_from_config() {
        let t = BackendExecutor::from_config(&ExecutorConfig::default());
        assert_eq!(t.name(), "threaded");
        let a = BackendExecutor::from_config(&ExecutorConfig::async_workers(3));
        assert_eq!(a.name(), "async");
        match a {
            BackendExecutor::Async(a) => assert_eq!(a.workers(), 3),
            BackendExecutor::Threaded(_) => panic!("expected async"),
        }
    }

    #[test]
    fn backends_agree_on_outcomes() {
        let mk = || {
            (0..200)
                .map(|i| SlotTask::new(move |_: &TaskCtx| i * 3))
                .collect::<Vec<SlotTask<'_, usize>>>()
        };
        let spec = WaveSpec::new("agree", 42);
        let threaded: Vec<Option<usize>> = BackendExecutor::from_config(&ExecutorConfig::default())
            .run_wave(&spec, mk())
            .into_iter()
            .map(SlotOutcome::completed)
            .collect();
        let asynced: Vec<Option<usize>> =
            BackendExecutor::from_config(&ExecutorConfig::async_workers(4))
                .run_wave(&spec, mk())
                .into_iter()
                .map(SlotOutcome::completed)
                .collect();
        assert_eq!(threaded, asynced);
    }

    #[test]
    fn sessions_agree_across_backends() {
        let run = |cfg: &ExecutorConfig| {
            let exec = BackendExecutor::from_config(cfg);
            exec.with_session(|session| {
                (0..3u64)
                    .map(|w| {
                        let tasks: Vec<SlotTask<'_, u64>> = (0..50)
                            .map(|i| SlotTask::new(move |_: &TaskCtx| i + w))
                            .collect();
                        session
                            .run_wave(&WaveSpec::new("sess", w), tasks)
                            .into_iter()
                            .map(|o| o.completed().expect("completed"))
                            .collect::<Vec<u64>>()
                    })
                    .collect::<Vec<_>>()
            })
        };
        let threaded = run(&ExecutorConfig::default());
        let async1 = run(&ExecutorConfig::async_workers(1));
        let async4 = run(&ExecutorConfig::async_workers(4));
        assert_eq!(threaded, async1);
        assert_eq!(threaded, async4);
    }
}
