//! The per-slot OS-thread backend (Hadoop 1.0.3's TaskTracker model).

use crate::task::{CancelToken, SlotOutcome, SlotTask, TaskCtx};
use crate::{Executor, WaveSpec};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One OS thread per occupied slot per wave, spawned in input order
/// under `std::thread::scope` and joined in input order — exactly the
/// engine's original wave loop, extracted behind the [`Executor`]
/// contract. The only behavioural delta is hardening: a panicking task
/// used to abort the whole process via `join().expect(...)`; here it is
/// contained as [`SlotOutcome::Abandoned`] and surfaced as a typed
/// error by the engine.
///
/// The wave's cancel token is honoured at task start: threads all spawn
/// immediately, so how many tasks observe a cancellation raised
/// mid-wave depends on OS scheduling — one reason `cancel_on_fatal`
/// defaults to off (see `ExecutorConfig`).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThreadedExecutor;

impl ThreadedExecutor {
    /// Creates the backend (stateless).
    pub fn new() -> Self {
        Self
    }
}

impl Executor for ThreadedExecutor {
    fn run_wave<'env, T: Send + 'env>(
        &self,
        _spec: &WaveSpec,
        tasks: Vec<SlotTask<'env, T>>,
    ) -> Vec<SlotOutcome<T>> {
        let cancel = CancelToken::new();
        std::thread::scope(|s| {
            let handles: Vec<_> = tasks
                .into_iter()
                .enumerate()
                .map(|(i, t)| {
                    let ctx = TaskCtx::new(cancel.clone(), i);
                    s.spawn(move || {
                        if ctx.is_cancelled() {
                            return SlotOutcome::Cancelled;
                        }
                        let run = t.into_fn();
                        match catch_unwind(AssertUnwindSafe(move || run(&ctx))) {
                            Ok(v) => SlotOutcome::Completed(v),
                            Err(_) => SlotOutcome::Abandoned,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(SlotOutcome::Abandoned))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_tasks_in_input_order() {
        let tasks: Vec<SlotTask<'_, usize>> = (0..40)
            .map(|i| {
                SlotTask::new(move |ctx: &TaskCtx| {
                    assert_eq!(ctx.index(), i);
                    i + 100
                })
            })
            .collect();
        let out = ThreadedExecutor::new().run_wave(&WaveSpec::new("t", 0), tasks);
        for (i, o) in out.into_iter().enumerate() {
            assert_eq!(o.completed(), Some(i + 100));
        }
    }

    #[test]
    fn panic_is_contained() {
        let tasks: Vec<SlotTask<'_, u32>> = (0..4)
            .map(|i| {
                SlotTask::new(move |_: &TaskCtx| {
                    assert!(i != 2, "scripted task panic");
                    i
                })
            })
            .collect();
        let out = ThreadedExecutor::new().run_wave(&WaveSpec::new("p", 0), tasks);
        assert!(out[2].is_abandoned());
        assert_eq!(
            out.iter()
                .filter(|o| matches!(o, SlotOutcome::Completed(_)))
                .count(),
            3
        );
    }

    #[test]
    fn pre_cancelled_token_skips_late_tasks() {
        // Cancellation is honoured at task start; a wave cancelled by
        // its very first action ends with skipped tasks.
        let first = std::sync::atomic::AtomicBool::new(true);
        let tasks: Vec<SlotTask<'_, ()>> = (0..256)
            .map(|_| {
                let first = &first;
                SlotTask::new(move |ctx: &TaskCtx| {
                    if first.swap(false, std::sync::atomic::Ordering::SeqCst) {
                        ctx.cancel_wave();
                    }
                })
            })
            .collect();
        let out = ThreadedExecutor::new().run_wave(&WaveSpec::new("c", 0), tasks);
        assert_eq!(out.len(), 256);
        // Timing-dependent how many, but the outcome vector is complete
        // and every entry is either Completed or Cancelled.
        assert!(out
            .iter()
            .all(|o| o.is_cancelled() || matches!(o, SlotOutcome::Completed(()))));
    }
}
