//! A shared worker budget for concurrent executor sessions.
//!
//! The job service multiplexes many chains onto one cluster, each chain
//! running its waves on its own reactor session. Without a cap, N
//! concurrent chains × `workers` threads each would oversubscribe the
//! host. [`WorkerBudget`] is the global cap: a session leases workers
//! before it spawns, gets at least one (so an admitted chain always
//! makes progress) and at most what remains, and the lease returns its
//! workers on drop — including on panic unwind.

use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};

fn lock(m: &Mutex<u32>) -> MutexGuard<'_, u32> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Inner {
    available: Mutex<u32>,
    freed: Condvar,
    total: u32,
}

/// A global pool of wave-executor workers shared by every concurrent
/// chain session. Cloneable handle (`Arc` semantics).
#[derive(Clone)]
pub struct WorkerBudget {
    inner: Arc<Inner>,
}

impl WorkerBudget {
    /// A budget of `total` workers (clamped to ≥ 1).
    pub fn new(total: u32) -> Self {
        let total = total.max(1);
        Self {
            inner: Arc::new(Inner {
                available: Mutex::new(total),
                freed: Condvar::new(),
                total,
            }),
        }
    }

    /// The configured pool size.
    pub fn total(&self) -> u32 {
        self.inner.total
    }

    /// Workers not currently leased.
    pub fn available(&self) -> u32 {
        *lock(&self.inner.available)
    }

    /// Leases up to `want` workers without blocking. The lease holds
    /// `min(want, available)` workers but never less than one — a
    /// zero-worker chain could not run — so the budget can go
    /// transiently negative-in-spirit only via this floor: when the
    /// pool is empty the lease still grants 1 and the pool owes it.
    ///
    /// Callers that must not oversubscribe should gate admission on
    /// [`WorkerBudget::available`] first (the job service does: it
    /// grants a chain slot only when at least one worker is free).
    pub fn lease(&self, want: u32) -> WorkerLease {
        let want = want.max(1);
        let mut avail = lock(&self.inner.available);
        let granted = want.min((*avail).max(1));
        *avail = avail.saturating_sub(granted);
        WorkerLease {
            budget: self.clone(),
            workers: granted,
        }
    }

    /// Blocks until at least one worker is free, then leases up to
    /// `want` of the free ones.
    pub fn lease_blocking(&self, want: u32) -> WorkerLease {
        let want = want.max(1);
        let mut avail = lock(&self.inner.available);
        while *avail == 0 {
            avail = self
                .inner
                .freed
                .wait(avail)
                .unwrap_or_else(PoisonError::into_inner);
        }
        let granted = want.min(*avail);
        *avail -= granted;
        WorkerLease {
            budget: self.clone(),
            workers: granted,
        }
    }

    fn give_back(&self, workers: u32) {
        let mut avail = lock(&self.inner.available);
        *avail = (*avail + workers).min(self.inner.total);
        self.inner.freed.notify_all();
    }
}

/// A granted slice of the worker budget; returns its workers on drop.
pub struct WorkerLease {
    budget: WorkerBudget,
    workers: u32,
}

impl WorkerLease {
    /// Workers this lease holds (≥ 1).
    pub fn workers(&self) -> u32 {
        self.workers
    }
}

impl Drop for WorkerLease {
    fn drop(&mut self) {
        self.budget.give_back(self.workers);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lease_and_return() {
        let b = WorkerBudget::new(8);
        assert_eq!(b.total(), 8);
        let l1 = b.lease(3);
        assert_eq!(l1.workers(), 3);
        assert_eq!(b.available(), 5);
        {
            let l2 = b.lease(10);
            assert_eq!(l2.workers(), 5, "capped at what remains");
            assert_eq!(b.available(), 0);
        }
        assert_eq!(b.available(), 5, "drop returns the lease");
        drop(l1);
        assert_eq!(b.available(), 8);
    }

    #[test]
    fn empty_pool_still_grants_one() {
        let b = WorkerBudget::new(2);
        let _l1 = b.lease(2);
        let l2 = b.lease(4);
        assert_eq!(l2.workers(), 1, "floor of one keeps chains live");
    }

    #[test]
    fn zero_total_clamps_to_one() {
        let b = WorkerBudget::new(0);
        assert_eq!(b.total(), 1);
        assert_eq!(b.lease(5).workers(), 1);
    }

    #[test]
    fn blocking_lease_wakes_on_return() {
        let b = WorkerBudget::new(1);
        let l = b.lease(1);
        let b2 = b.clone();
        let waiter = std::thread::spawn(move || b2.lease_blocking(1).workers());
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(l);
        assert_eq!(waiter.join().expect("no panic"), 1);
    }
}
