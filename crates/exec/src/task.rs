//! The unit of executor work: a boxed slot-task closure plus the
//! context (cancel token, slot index) it runs with.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag for one wave.
///
/// Any task can raise it (see [`TaskCtx::cancel_wave`]); both executor
/// backends check it before *starting* each task, so a poisoned wave
/// drains early instead of running every remaining slot task. Tasks
/// already running are never interrupted — cancellation is cooperative.
#[derive(Clone, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether the flag has been raised.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Acquire)
    }
}

/// Per-task execution context handed to the slot-task closure.
pub struct TaskCtx {
    cancel: CancelToken,
    index: usize,
}

impl TaskCtx {
    pub(crate) fn new(cancel: CancelToken, index: usize) -> Self {
        Self { cancel, index }
    }

    /// The task's position in the wave's input order (also the index of
    /// its outcome in the returned vector).
    pub fn index(&self) -> usize {
        self.index
    }

    /// Whether the wave has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Cancels the rest of the wave: tasks that have not started yet
    /// complete as [`SlotOutcome::Cancelled`].
    pub fn cancel_wave(&self) {
        self.cancel.cancel();
    }
}

pub(crate) type TaskFn<'env, T> = Box<dyn FnOnce(&TaskCtx) -> T + Send + 'env>;

/// One logical slot task: a closure the executor will run exactly once
/// (or skip, if the wave is cancelled first).
///
/// The closure borrows from the caller's environment (`'env`), so the
/// engine's task bodies can capture `&JobTracker` without `'static`
/// gymnastics — both backends run waves under a scoped thread pool.
pub struct SlotTask<'env, T> {
    run: TaskFn<'env, T>,
}

impl<'env, T> SlotTask<'env, T> {
    /// Wraps a task body.
    pub fn new(run: impl FnOnce(&TaskCtx) -> T + Send + 'env) -> Self {
        Self { run: Box::new(run) }
    }

    pub(crate) fn into_fn(self) -> TaskFn<'env, T> {
        self.run
    }
}

/// How one slot task ended.
#[derive(Debug)]
pub enum SlotOutcome<T> {
    /// The task body ran to completion and returned this value.
    Completed(T),
    /// The wave was cancelled before the task body started.
    Cancelled,
    /// The task body panicked; the executor contained the panic. The
    /// engine surfaces this as `Error::ExecutorShutdown`.
    Abandoned,
}

impl<T> SlotOutcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            SlotOutcome::Completed(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the task was skipped by cancellation.
    pub fn is_cancelled(&self) -> bool {
        matches!(self, SlotOutcome::Cancelled)
    }

    /// Whether the task body panicked.
    pub fn is_abandoned(&self) -> bool {
        matches!(self, SlotOutcome::Abandoned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancel_token_is_shared() {
        let t = CancelToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn ctx_exposes_index_and_cancel() {
        let ctx = TaskCtx::new(CancelToken::new(), 7);
        assert_eq!(ctx.index(), 7);
        assert!(!ctx.is_cancelled());
        ctx.cancel_wave();
        assert!(ctx.is_cancelled());
    }

    #[test]
    fn outcome_accessors() {
        assert_eq!(SlotOutcome::Completed(3).completed(), Some(3));
        assert!(SlotOutcome::<u32>::Cancelled.is_cancelled());
        assert!(SlotOutcome::<u32>::Abandoned.is_abandoned());
        assert_eq!(SlotOutcome::<u32>::Cancelled.completed(), None);
    }
}
