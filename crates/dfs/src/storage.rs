//! Per-node block stores with access accounting.
//!
//! A node's "disk" is an in-memory map from block id to bytes, sharded
//! by block-id hash so concurrent readers and writers of *different*
//! blocks do not serialize on one lock (reducer fan-in at DCO scale
//! hammers every store from hundreds of tasks at once). Besides holding
//! data, each store counts concurrent readers and total bytes served —
//! that is how the real engine *observes* the hot-spot effect of
//! §IV-B2 (many recomputed mappers converging on the one node that
//! recomputed their input reducer) without needing wall-clock timing.
//! The access counters are store-level atomics, so their values are
//! exact and independent of the shard count.

use bytes::Bytes;
use parking_lot::RwLock;
use rcmp_model::partition::mix64;
use rcmp_model::{BlockId, ByteSize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Snapshot of one node's access counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NodeAccessStats {
    /// Bytes ever read from this node's store (local + remote readers).
    pub bytes_read: u64,
    /// Bytes ever written to this node's store.
    pub bytes_written: u64,
    /// Number of read operations served.
    pub reads: u64,
    /// Highest number of overlapping read operations observed.
    pub max_concurrent_reads: u64,
}

/// One node's block store.
pub(crate) struct NodeStore {
    /// Payload shards, keyed by [`mix64`] of the block id. Readers take
    /// a shard read-lock (concurrent reads of one shard proceed in
    /// parallel); writers take the shard write-lock.
    shards: Vec<RwLock<HashMap<BlockId, Bytes>>>,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    reads: AtomicU64,
    current_reads: AtomicU64,
    max_concurrent_reads: AtomicU64,
}

impl NodeStore {
    /// Default shard count, matching `ShuffleConfig::default`.
    pub(crate) const DEFAULT_SHARDS: u32 = 8;

    /// A store with `shards` payload shards (`0` is clamped to 1 — the
    /// single-lock legacy layout).
    pub(crate) fn with_shards(shards: u32) -> Self {
        let shards = shards.max(1) as usize;
        Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            reads: AtomicU64::new(0),
            current_reads: AtomicU64::new(0),
            max_concurrent_reads: AtomicU64::new(0),
        }
    }

    fn shard(&self, id: BlockId) -> &RwLock<HashMap<BlockId, Bytes>> {
        &self.shards[(mix64(id.raw()) as usize) % self.shards.len()]
    }

    pub(crate) fn put(&self, id: BlockId, data: Bytes) {
        self.bytes_written
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        self.shard(id).write().insert(id, data);
    }

    /// Reads a block, updating concurrency accounting. The optional
    /// `read_delay` models a slow disk so that concurrent readers truly
    /// overlap (used by hot-spot tests).
    pub(crate) fn get(
        &self,
        id: BlockId,
        read_delay: Option<std::time::Duration>,
    ) -> Option<Bytes> {
        let in_flight = self.current_reads.fetch_add(1, Ordering::SeqCst) + 1;
        self.max_concurrent_reads
            .fetch_max(in_flight, Ordering::SeqCst);
        self.reads.fetch_add(1, Ordering::Relaxed);
        // Fetch the bytes while counted as in-flight.
        let data = self.shard(id).read().get(&id).cloned();
        if let Some(d) = &data {
            self.bytes_read.fetch_add(d.len() as u64, Ordering::Relaxed);
            if let Some(delay) = read_delay {
                // Scale the delay with the block size so bigger reads
                // hold the "disk" longer, like a real drive.
                let per_mib = delay.as_secs_f64();
                let secs = per_mib * (d.len() as f64 / (1024.0 * 1024.0)).max(0.01);
                std::thread::sleep(std::time::Duration::from_secs_f64(secs));
            }
        }
        self.current_reads.fetch_sub(1, Ordering::SeqCst);
        data
    }

    pub(crate) fn remove(&self, id: BlockId) -> Option<Bytes> {
        self.shard(id).write().remove(&id)
    }

    /// Flips bits in a stored block's payload (fault injection: silent
    /// on-disk corruption). The namespace checksum is untouched, so the
    /// next verified read of this replica fails. Returns false when the
    /// block is absent or empty (nothing to corrupt).
    pub(crate) fn corrupt(&self, id: BlockId) -> bool {
        let mut blocks = self.shard(id).write();
        match blocks.get(&id) {
            Some(data) if !data.is_empty() => {
                let mut flipped = data.to_vec();
                flipped[0] ^= 0xff;
                blocks.insert(id, Bytes::from(flipped));
                true
            }
            _ => false,
        }
    }

    /// Ids of the blocks currently stored, in ascending order (used to
    /// pick a deterministic corruption victim).
    pub(crate) fn block_ids(&self) -> Vec<BlockId> {
        let mut ids: Vec<BlockId> = self
            .shards
            .iter()
            .flat_map(|s| s.read().keys().copied().collect::<Vec<_>>())
            .collect();
        ids.sort();
        ids
    }

    /// Drops every block (node death).
    pub(crate) fn wipe(&self) {
        for s in &self.shards {
            s.write().clear();
        }
    }

    pub(crate) fn used(&self) -> ByteSize {
        ByteSize::bytes(
            self.shards
                .iter()
                .map(|s| s.read().values().map(|b| b.len() as u64).sum::<u64>())
                .sum(),
        )
    }

    pub(crate) fn block_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    pub(crate) fn stats(&self) -> NodeAccessStats {
        NodeAccessStats {
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            max_concurrent_reads: self.max_concurrent_reads.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn put_get_remove() {
        let s = NodeStore::with_shards(NodeStore::DEFAULT_SHARDS);
        s.put(BlockId(1), Bytes::from_static(b"hello"));
        assert_eq!(
            s.get(BlockId(1), None).unwrap(),
            Bytes::from_static(b"hello")
        );
        assert_eq!(s.used(), ByteSize::bytes(5));
        assert_eq!(s.block_count(), 1);
        assert!(s.remove(BlockId(1)).is_some());
        assert!(s.get(BlockId(1), None).is_none());
    }

    #[test]
    fn wipe_clears_everything() {
        let s = NodeStore::with_shards(NodeStore::DEFAULT_SHARDS);
        for i in 0..10 {
            s.put(BlockId(i), Bytes::from(vec![0u8; 16]));
        }
        s.wipe();
        assert_eq!(s.block_count(), 0);
        assert_eq!(s.used(), ByteSize::ZERO);
    }

    #[test]
    fn stats_account_io() {
        let s = NodeStore::with_shards(NodeStore::DEFAULT_SHARDS);
        s.put(BlockId(1), Bytes::from(vec![1u8; 100]));
        s.get(BlockId(1), None);
        s.get(BlockId(1), None);
        let st = s.stats();
        assert_eq!(st.bytes_written, 100);
        assert_eq!(st.bytes_read, 200);
        assert_eq!(st.reads, 2);
        assert!(st.max_concurrent_reads >= 1);
    }

    #[test]
    fn sharded_and_single_lock_stores_agree() {
        // Identical operation sequences against the legacy single-lock
        // layout and the sharded layout must produce identical contents
        // and identical (exact) access stats.
        let single = NodeStore::with_shards(1);
        let sharded = NodeStore::with_shards(8);
        for s in [&single, &sharded] {
            for i in 0..64u64 {
                s.put(BlockId(i), Bytes::from(vec![i as u8; (i as usize % 7) + 1]));
            }
            for i in (0..64u64).step_by(3) {
                s.get(BlockId(i), None);
            }
            for i in (0..64u64).step_by(5) {
                s.remove(BlockId(i));
            }
            assert!(s.corrupt(BlockId(1)));
        }
        assert_eq!(single.stats(), sharded.stats());
        assert_eq!(single.used(), sharded.used());
        assert_eq!(single.block_count(), sharded.block_count());
        let ids = single.block_ids();
        assert_eq!(ids, sharded.block_ids());
        for id in ids {
            assert_eq!(single.get(id, None), sharded.get(id, None));
        }
    }

    #[test]
    fn concurrent_reads_observed() {
        let s = Arc::new(NodeStore::with_shards(NodeStore::DEFAULT_SHARDS));
        s.put(BlockId(1), Bytes::from(vec![1u8; 1024 * 1024]));
        let delay = std::time::Duration::from_millis(30);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    s.get(BlockId(1), Some(delay));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            s.stats().max_concurrent_reads >= 2,
            "expected overlapping reads, got {:?}",
            s.stats()
        );
    }
}
