//! An HDFS-like distributed file system substrate.
//!
//! The RCMP paper runs on Hadoop's HDFS; this crate provides the
//! equivalent substrate for the real execution engine in `rcmp-engine`:
//!
//! * files are **partitioned**: a job's output file has one partition
//!   per reducer, which is what lets lost key-value pairs be traced back
//!   to the reducer that produced them (the paper's §IV assumption);
//! * partitions are stored as **segments** of replicated, fixed-size
//!   **blocks** — a segment is what one writer (a reducer, or one split
//!   of a reducer) produced, so a split recomputation naturally spreads
//!   a partition's data over many nodes;
//! * replica **placement** is writer-local first (collocated clusters,
//!   §II), remote replicas on random distinct live nodes; a `Spread`
//!   policy implements the paper's alternative hot-spot mitigation
//!   (§IV-B2) where reducers scatter their output over many nodes;
//! * **node failure** atomically drops the node's block store and
//!   reports which partitions of which files lost *all* replicas —
//!   the irreversible-data-loss events that trigger RCMP recovery;
//! * **membership is elastic**: nodes can join (fresh, empty,
//!   immediately placable), drain (readable but no longer a placement
//!   target), decommission (replicas rebalanced away deterministically,
//!   then the store is wiped — nothing is ever lost) and rejoin. The
//!   lifecycle states are `rcmp_policy::NodeStatus`, the same model the
//!   scheduler's membership snapshots use.
//!
//! Everything is in-memory (a node's "disk" is a locked hash map): the
//! engine exercises real data paths and real concurrency, while wall
//! clock performance at cluster scale is the job of `rcmp-sim`.

pub mod block;
pub mod chain_cache;
pub mod namespace;
pub mod placement;
pub mod report;
pub mod storage;
pub mod topology;

mod dfs;

pub use block::{BlockInfo, BlockLocation};
pub use chain_cache::{ChainCache, ChainCacheStats};
pub use dfs::{Dfs, DfsConfig};
pub use namespace::{FileMeta, PartitionMeta, SegmentMeta};
pub use placement::PlacementPolicy;
pub use report::{LossReport, RebalanceReport};
pub use storage::NodeAccessStats;
pub use topology::RackTopology;
