//! The DFS master: namespace + per-node stores + failure handling.

use crate::block::{BlockInfo, BlockLocation};
use crate::chain_cache::ChainCache;
use crate::namespace::{FileMeta, PartitionMeta, SegmentMeta};
use crate::placement::{place_block, PlacementPolicy};
use crate::report::{LossReport, RebalanceReport};
use crate::storage::{NodeAccessStats, NodeStore};
use crate::topology::RackTopology;
use bytes::{Bytes, BytesMut};
use parking_lot::{Mutex, RwLock};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rcmp_model::rng::rng_for;
use rcmp_model::{BlockId, ByteSize, Error, NodeId, PartitionId, Result};
use rcmp_obs::{
    EventCode, FlightRecorder, Histogram, MetricsRegistry, PhaseKind, PhaseProfiler, SpanKind,
    Tracer,
};
use rcmp_policy::NodeStatus;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the DFS substrate.
#[derive(Clone, Debug)]
pub struct DfsConfig {
    /// Number of storage nodes (collocated with compute).
    pub nodes: u32,
    /// Block size; writes are chunked to this size.
    pub block_size: ByteSize,
    /// Seed for placement randomness.
    pub seed: u64,
    /// Optional artificial per-MiB read latency, used by hot-spot
    /// experiments on the real engine so concurrent reads genuinely
    /// overlap in wall-clock time. `None` (default) reads at memory
    /// speed.
    pub read_delay: Option<Duration>,
    /// Optional rack topology; when present, remote replicas are placed
    /// rack-aware (HDFS-style), protecting against single rack failures
    /// (§III-A).
    pub topology: Option<RackTopology>,
    /// Lock shards per node store. `1` is the legacy single-lock
    /// layout; `0` is clamped to 1. Access accounting is shard-count
    /// independent.
    pub store_shards: u32,
}

impl DfsConfig {
    pub fn new(nodes: u32, block_size: ByteSize) -> Self {
        Self {
            nodes,
            block_size,
            seed: 0xd5f5,
            read_delay: None,
            topology: None,
            store_shards: NodeStore::DEFAULT_SHARDS,
        }
    }

    /// Adds a rack topology (rack-aware remote-replica placement).
    pub fn with_topology(mut self, topology: RackTopology) -> Self {
        self.topology = Some(topology);
        self
    }
}

/// Pre-resolved production-telemetry handles for DFS I/O, attached via
/// [`Dfs::with_obs`]. Resolved once so reads and writes never take the
/// registry lock.
struct DfsObs {
    /// Verified block-read latency, microseconds.
    read_us: Histogram,
    /// Partition-write latency (all chunks, all replicas), microseconds.
    write_us: Histogram,
    profiler: Arc<PhaseProfiler>,
    recorder: Arc<FlightRecorder>,
}

/// Microsecond latency buckets for DFS I/O histograms: 50 µs … 100 ms.
const IO_US_BOUNDS: [u64; 11] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000,
];

/// One member node of the DFS: its block store plus its membership
/// lifecycle status. Dynamic membership (join / drain / decommission /
/// rejoin) mutates the status in place — indices are dense and stable,
/// a node keeps its `NodeId` for the lifetime of the cluster.
struct NodeSlot {
    store: Arc<NodeStore>,
    status: NodeStatus,
}

impl NodeSlot {
    fn new(shards: u32) -> Self {
        Self {
            store: Arc::new(NodeStore::with_shards(shards)),
            status: NodeStatus::Up,
        }
    }
}

/// The distributed file system.
///
/// Thread-safe: the engine's node executors read and write concurrently.
/// The namespace lock is never held while block payloads are copied.
///
/// Membership semantics (mirroring `rcmp_policy::Membership`):
/// **readable** nodes (Up or Draining) serve reads and appear in
/// [`Dfs::live_nodes`]; **schedulable** nodes (Up only) receive new
/// replicas and appear in [`Dfs::placement_targets`]. A draining node
/// therefore stops accumulating data immediately while everything it
/// already holds stays reachable — the graceful counterpart to
/// [`Dfs::fail_node`].
pub struct Dfs {
    cfg: DfsConfig,
    namespace: RwLock<HashMap<String, FileMeta>>,
    nodes: RwLock<Vec<NodeSlot>>,
    next_block: AtomicU64,
    rng: Mutex<SmallRng>,
    tracer: Arc<Tracer>,
    obs: Option<DfsObs>,
    chain_cache: Option<Arc<ChainCache>>,
}

impl Dfs {
    pub fn new(cfg: DfsConfig) -> Self {
        Self::new_traced(cfg, Arc::new(Tracer::new()))
    }

    /// Like [`Dfs::new`] but recording block-level spans (reads, writes,
    /// checksum demotions) into a shared tracer — the engine passes its
    /// cluster-wide tracer here so DFS activity lands in the same trace
    /// as job/wave/task spans.
    pub fn new_traced(cfg: DfsConfig, tracer: Arc<Tracer>) -> Self {
        assert!(cfg.nodes > 0, "DFS needs at least one node");
        assert!(!cfg.block_size.is_zero(), "block size must be positive");
        let nodes = (0..cfg.nodes)
            .map(|_| NodeSlot::new(cfg.store_shards))
            .collect();
        let rng = Mutex::new(rng_for(cfg.seed, "dfs-placement"));
        Self {
            cfg,
            namespace: RwLock::new(HashMap::new()),
            nodes: RwLock::new(nodes),
            next_block: AtomicU64::new(1),
            rng,
            tracer,
            obs: None,
            chain_cache: None,
        }
    }

    /// Attaches the inter-job [`ChainCache`]. The DFS owns invalidation:
    /// node death/drain/decommission, partition clears, file deletes and
    /// injected corruption all drop the covering cache entries, so a
    /// cached read can never outlive the persisted state it mirrors.
    pub fn with_chain_cache(mut self, cache: Arc<ChainCache>) -> Self {
        self.chain_cache = Some(cache);
        self
    }

    /// The attached inter-job cache, if any.
    pub fn chain_cache(&self) -> Option<&Arc<ChainCache>> {
        self.chain_cache.as_ref()
    }

    /// Attaches the production telemetry tier: `dfs.read_us` /
    /// `dfs.write_us` latency histograms resolved against `registry`,
    /// [`PhaseKind::DfsRead`]/[`PhaseKind::DfsWrite`]/
    /// [`PhaseKind::BlockVerify`] time on `profiler`, and
    /// checksum-failure events on `recorder`.
    pub fn with_obs(
        mut self,
        registry: &MetricsRegistry,
        profiler: Arc<PhaseProfiler>,
        recorder: Arc<FlightRecorder>,
    ) -> Self {
        self.obs = Some(DfsObs {
            read_us: registry.histogram("dfs.read_us", &IO_US_BOUNDS),
            write_us: registry.histogram("dfs.write_us", &IO_US_BOUNDS),
            profiler,
            recorder,
        });
        self
    }

    pub fn config(&self) -> &DfsConfig {
        &self.cfg
    }

    /// The tracer block-level spans are recorded into.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// Nodes whose data is currently reachable (Up or Draining),
    /// ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.filtered_nodes(NodeStatus::is_readable)
    }

    /// Nodes new replicas may land on (Up only), ascending. A draining
    /// node still serves its data but stops accumulating more.
    pub fn placement_targets(&self) -> Vec<NodeId> {
        self.filtered_nodes(NodeStatus::is_schedulable)
    }

    fn filtered_nodes(&self, pred: fn(NodeStatus) -> bool) -> Vec<NodeId> {
        self.nodes
            .read()
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s.status))
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// May data on `node` still be read (Up or Draining)?
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.node_status(node).is_some_and(NodeStatus::is_readable)
    }

    /// Membership lifecycle status of `node`, if it is a member.
    pub fn node_status(&self, node: NodeId) -> Option<NodeStatus> {
        self.nodes.read().get(node.index()).map(|s| s.status)
    }

    /// Total member count, including drained, decommissioned and dead
    /// nodes (indices are never reused).
    pub fn num_nodes(&self) -> u32 {
        self.nodes.read().len() as u32
    }

    fn store(&self, node: NodeId) -> Option<Arc<NodeStore>> {
        self.nodes
            .read()
            .get(node.index())
            .map(|s| Arc::clone(&s.store))
    }

    // ----------------------------------------------------------- membership

    /// Adds a fresh, empty node and returns its id. Joined nodes start
    /// Up: immediately schedulable as placement targets.
    pub fn join_node(&self) -> NodeId {
        let mut nodes = self.nodes.write();
        nodes.push(NodeSlot::new(self.cfg.store_shards));
        NodeId(nodes.len() as u32 - 1)
    }

    /// Starts draining `node` (Up → Draining): its data stays readable
    /// but no new replicas land on it. In-flight writers that name it as
    /// their local node keep working — their blocks are simply placed on
    /// the remaining Up nodes.
    pub fn drain_node(&self, node: NodeId) -> Result<()> {
        self.set_status(node, &[NodeStatus::Up], NodeStatus::Draining, "drain")?;
        // A draining node's DFS data stays readable, but its in-memory
        // cached partitions stop being scheduling targets: conservative
        // invalidation keeps stable placement off departing nodes.
        if let Some(cache) = &self.chain_cache {
            cache.invalidate_node(node);
        }
        Ok(())
    }

    /// Brings a drained or decommissioned node back into service
    /// (→ Up). A decommissioned node rejoins empty, like a fresh join
    /// that kept its id.
    pub fn rejoin_node(&self, node: NodeId) -> Result<()> {
        self.set_status(
            node,
            &[NodeStatus::Draining, NodeStatus::Decommissioned],
            NodeStatus::Up,
            "rejoin",
        )
    }

    fn set_status(
        &self,
        node: NodeId,
        from: &[NodeStatus],
        to: NodeStatus,
        what: &str,
    ) -> Result<()> {
        let mut nodes = self.nodes.write();
        let Some(slot) = nodes.get_mut(node.index()) else {
            return Err(Error::Config(format!("dfs: {what} of unknown {node}")));
        };
        if !from.contains(&slot.status) {
            return Err(Error::Config(format!(
                "dfs: cannot {what} {node} in state {:?}",
                slot.status
            )));
        }
        slot.status = to;
        Ok(())
    }

    /// Gracefully removes `node`: every block replica it holds is first
    /// copied to the lowest-id Up node that does not already hold that
    /// block (incremental rebalance preserving the persisted-output
    /// lineage — content hashes never change), then the node's store is
    /// wiped and its status set to Decommissioned.
    ///
    /// Plan-then-commit like [`Dfs::replicate_file`]: targets for every
    /// block are validated before any byte is copied, so an
    /// impossible rebalance (a sole surviving replica with no Up node to
    /// take it) fails the whole call with namespace and stores
    /// unchanged. Blocks whose every placement target already holds a
    /// copy are dropped rather than moved (they stay readable, merely
    /// less replicated) and counted in the report.
    pub fn decommission_node(&self, node: NodeId) -> Result<RebalanceReport> {
        match self.node_status(node) {
            None => {
                return Err(Error::Config(format!(
                    "dfs: decommission of unknown {node}"
                )))
            }
            Some(s) if !s.is_readable() => {
                return Err(Error::Config(format!(
                    "dfs: cannot decommission {node} in state {s:?}"
                )))
            }
            Some(_) => {}
        }
        let pool: Vec<NodeId> = self
            .placement_targets()
            .into_iter()
            .filter(|&n| n != node)
            .collect();

        // Phase 1: plan. (block, hash, verified-read sources, target).
        // `None` target means drop-in-place: some other readable replica
        // keeps the block alive.
        let mut plan: Vec<(BlockId, u64, Vec<NodeId>, Option<NodeId>)> = Vec::new();
        let mut dropped = 0usize;
        {
            let ns = self.namespace.read();
            for meta in ns.values() {
                for p in &meta.partitions {
                    for b in p.blocks() {
                        if !b.replicas.contains(&node) {
                            continue;
                        }
                        let sources: Vec<NodeId> = b
                            .replicas
                            .iter()
                            .copied()
                            .filter(|&r| self.is_alive(r))
                            .collect();
                        match pool.iter().copied().find(|t| !b.replicas.contains(t)) {
                            Some(t) => {
                                plan.push((b.id, b.content_hash, sources, Some(t)));
                            }
                            None if sources.iter().any(|&s| s != node) => dropped += 1,
                            None => {
                                return Err(Error::InsufficientReplicaTargets {
                                    wanted: 1,
                                    alive: pool.len(),
                                });
                            }
                        }
                    }
                }
            }
        }

        // Phase 2: copy payloads per the validated plan, verifying
        // against the recorded content hash (a corrupt source is
        // demoted, never propagated — same discipline as
        // `replicate_file`).
        let mut report = RebalanceReport {
            node: Some(node),
            blocks_dropped: dropped,
            ..Default::default()
        };
        let mut added: Vec<(BlockId, NodeId)> = Vec::new();
        for (id, content_hash, sources, target) in plan {
            let Some(target) = target else { continue };
            let mut data = None;
            for source in sources {
                let Some(store) = self.store(source) else {
                    continue;
                };
                let Some(d) = store.get(id, None) else {
                    continue;
                };
                if rcmp_model::hash::hash_bytes(&d) == content_hash {
                    data = Some(d);
                    break;
                }
                self.demote_replica(id, source);
            }
            let data = data.ok_or_else(|| Error::DataLoss {
                path: format!("block {id}"),
                partition: None,
            })?;
            report.blocks_moved += 1;
            report.bytes_moved += data.len() as u64;
            if let Some(store) = self.store(target) {
                store.put(id, data);
            }
            added.push((id, target));
        }

        // Phase 3: commit — new holders into the namespace, the leaving
        // node out of every replica set, store wiped, status flipped.
        {
            let mut by_block: HashMap<BlockId, NodeId> = added.into_iter().collect();
            let mut ns = self.namespace.write();
            for meta in ns.values_mut() {
                for p in &mut meta.partitions {
                    for s in &mut p.segments {
                        for b in &mut s.blocks {
                            if let Some(t) = by_block.remove(&b.id) {
                                b.replicas.push(t);
                            }
                            b.drop_replica(node);
                        }
                    }
                }
            }
        }
        let store = {
            let mut nodes = self.nodes.write();
            let slot = &mut nodes[node.index()];
            slot.status = NodeStatus::Decommissioned;
            Arc::clone(&slot.store)
        };
        store.wipe();
        if let Some(cache) = &self.chain_cache {
            cache.invalidate_node(node);
        }
        self.tracer.instant(
            SpanKind::Event {
                seq: 0,
                label: format!(
                    "dfs.decommission moved={} bytes={} dropped={}",
                    report.blocks_moved, report.bytes_moved, report.blocks_dropped
                ),
            },
            None,
            None,
            Some(node),
        );
        Ok(report)
    }

    // ---------------------------------------------------------------- files

    /// Creates an empty partitioned file.
    pub fn create_file(&self, path: &str, replication: u32, num_partitions: u32) -> Result<()> {
        if replication == 0 {
            return Err(Error::Config("replication factor must be >= 1".into()));
        }
        let mut ns = self.namespace.write();
        if ns.contains_key(path) {
            return Err(Error::FileExists(path.to_string()));
        }
        ns.insert(
            path.to_string(),
            FileMeta::new(path, replication, num_partitions),
        );
        Ok(())
    }

    pub fn file_exists(&self, path: &str) -> bool {
        self.namespace.read().contains_key(path)
    }

    /// A snapshot of the file's metadata.
    pub fn file_meta(&self, path: &str) -> Result<FileMeta> {
        self.namespace
            .read()
            .get(path)
            .cloned()
            .ok_or_else(|| Error::FileNotFound(path.to_string()))
    }

    /// Deletes a file and frees its blocks from every store.
    pub fn delete_file(&self, path: &str) -> Result<()> {
        let meta = {
            let mut ns = self.namespace.write();
            ns.remove(path)
                .ok_or_else(|| Error::FileNotFound(path.to_string()))?
        };
        for p in &meta.partitions {
            self.free_blocks(p);
        }
        if let Some(cache) = &self.chain_cache {
            cache.invalidate_file(path);
        }
        Ok(())
    }

    fn free_blocks(&self, p: &PartitionMeta) {
        for b in p.blocks() {
            for &n in &b.replicas {
                if let Some(store) = self.store(n) {
                    store.remove(b.id);
                }
            }
        }
    }

    // ----------------------------------------------------------- partitions

    /// Appends one writer's segment to a partition, chunked into blocks
    /// at `block_size` boundaries and replicated per the file's
    /// replication factor.
    ///
    /// An unsplit reducer calls this once; `k` splits of a reducer call
    /// it once each, which distributes the partition over their nodes.
    ///
    /// Note: chunking here is byte-oriented. Writers whose data is a
    /// record stream that downstream mappers will read block-by-block
    /// must use [`Dfs::write_partition_chunks`] with record-aligned
    /// chunks instead, or records would straddle block boundaries.
    pub fn write_partition_segment(
        &self,
        path: &str,
        pid: PartitionId,
        data: Bytes,
        writer: NodeId,
        policy: PlacementPolicy,
    ) -> Result<()> {
        let bs = self.cfg.block_size.as_u64() as usize;
        let mut chunks = Vec::new();
        let mut off = 0usize;
        while off < data.len() {
            let end = (off + bs).min(data.len());
            chunks.push(data.slice(off..end));
            off = end;
        }
        self.write_partition_chunks(path, pid, chunks, writer, policy)
    }

    /// Appends one writer's segment whose blocks are exactly the given
    /// chunks (callers guarantee record alignment; chunks may be smaller
    /// than the block size but must not be larger).
    pub fn write_partition_chunks(
        &self,
        path: &str,
        pid: PartitionId,
        chunks: Vec<Bytes>,
        writer: NodeId,
        policy: PlacementPolicy,
    ) -> Result<()> {
        if !self.is_alive(writer) {
            return Err(Error::NodeUnavailable(writer));
        }
        let bs = self.cfg.block_size.as_u64() as usize;
        if let Some(oversize) = chunks.iter().find(|c| c.len() > bs) {
            return Err(Error::Config(format!(
                "chunk of {} bytes exceeds block size {}",
                oversize.len(),
                self.cfg.block_size
            )));
        }
        let replication = {
            let ns = self.namespace.read();
            let meta = ns
                .get(path)
                .ok_or_else(|| Error::FileNotFound(path.to_string()))?;
            if pid.index() >= meta.partitions.len() {
                return Err(Error::Config(format!(
                    "partition {pid} out of range for {path} ({} partitions)",
                    meta.partitions.len()
                )));
            }
            meta.replication
        };

        // Place blocks without holding the namespace lock (payload
        // copies happen here). Feasibility is checked up front so a
        // failing write never leaves earlier chunks orphaned in stores.
        // Only schedulable (Up) nodes are placement targets: a draining
        // writer can finish its in-flight work, but its output lands on
        // nodes that are staying.
        let live = self.placement_targets();
        if (replication as usize) > live.len() {
            return Err(Error::InsufficientReplicaTargets {
                wanted: replication as usize,
                alive: live.len(),
            });
        }
        let open = self.tracer.open();
        let mut payload_bytes = 0u64;
        let mut blocks = Vec::with_capacity(chunks.len());
        for chunk in chunks {
            payload_bytes += chunk.len() as u64;
            let id = BlockId(self.next_block.fetch_add(1, Ordering::Relaxed));
            let targets = {
                let mut rng = self.rng.lock();
                place_block(
                    policy,
                    writer,
                    replication,
                    &live,
                    self.cfg.topology.as_ref(),
                    &mut *rng,
                )?
            };
            let content_hash = rcmp_model::hash::hash_bytes(&chunk);
            for &t in &targets {
                if let Some(store) = self.store(t) {
                    store.put(id, chunk.clone());
                }
            }
            blocks.push(BlockInfo {
                id,
                size: ByteSize::bytes(chunk.len() as u64),
                content_hash,
                replicas: targets,
            });
        }

        self.tracer.close(
            open,
            SpanKind::BlockWrite {
                bytes: payload_bytes,
                blocks: blocks.len() as u32,
                replicas: replication,
            },
            None,
            None,
            Some(writer),
        );
        if let Some(obs) = &self.obs {
            let dur = self.tracer.now_us().saturating_sub(open.start_us);
            obs.write_us.observe(dur);
            obs.profiler.add_us(PhaseKind::DfsWrite, dur);
        }
        let segment = SegmentMeta { writer, blocks };
        let mut ns = self.namespace.write();
        let meta = ns
            .get_mut(path)
            .ok_or_else(|| Error::FileNotFound(path.to_string()))?;
        meta.partitions[pid.index()].segments.push(segment);
        Ok(())
    }

    /// Removes all segments of a partition (before recomputing it), so
    /// stale surviving blocks can never be double-counted downstream.
    pub fn clear_partition(&self, path: &str, pid: PartitionId) -> Result<()> {
        let old = {
            let mut ns = self.namespace.write();
            let meta = ns
                .get_mut(path)
                .ok_or_else(|| Error::FileNotFound(path.to_string()))?;
            if pid.index() >= meta.partitions.len() {
                return Err(Error::Config(format!("partition {pid} out of range")));
            }
            std::mem::replace(&mut meta.partitions[pid.index()], PartitionMeta::new(pid))
        };
        self.free_blocks(&old);
        if let Some(cache) = &self.chain_cache {
            cache.invalidate_partition(path, pid);
        }
        Ok(())
    }

    /// Block locations of one partition (one mapper input split per
    /// block), in segment order.
    pub fn partition_locations(&self, path: &str, pid: PartitionId) -> Result<Vec<BlockLocation>> {
        let ns = self.namespace.read();
        let meta = ns
            .get(path)
            .ok_or_else(|| Error::FileNotFound(path.to_string()))?;
        let p = meta
            .partitions
            .get(pid.index())
            .ok_or_else(|| Error::Config(format!("partition {pid} out of range")))?;
        Ok(p.block_locations())
    }

    /// Reads one block, preferring a replica on `reader` (data
    /// locality), falling back to a random live replica.
    ///
    /// Every read is verified against the block's recorded content hash.
    /// A replica that fails verification is **demoted**: its payload is
    /// dropped from the serving store and the node is removed from the
    /// block's replica set — exactly the state a node death leaves
    /// behind, so corruption flows into the same loss accounting and
    /// recovery planning as replica loss. The read then falls back to
    /// the remaining replicas; only when all are gone or corrupt does it
    /// fail with [`Error::DataLoss`].
    ///
    /// Returns which node served the read alongside the data, so callers
    /// can account remote transfers.
    pub fn read_block(&self, loc: &BlockLocation, reader: NodeId) -> Result<(Bytes, NodeId)> {
        let open = self.tracer.open();
        let live_replicas: Vec<NodeId> = loc
            .replicas
            .iter()
            .copied()
            .filter(|&n| self.is_alive(n))
            .collect();
        if live_replicas.is_empty() {
            return Err(Error::DataLoss {
                path: format!("block {}", loc.id),
                partition: None,
            });
        }
        // Remote-replica choice is a pure function of (seed, block,
        // reader) — NOT a draw from the shared placement RNG. Reads must
        // not advance that stream: the chain cache elides reads, and an
        // elided stateful draw would diverge every later placement
        // between cache-on and cache-off runs, breaking their replica
        // layouts (and thus fault outcomes) apart.
        let preferred = if live_replicas.contains(&reader) {
            reader
        } else {
            let pick = rcmp_model::rng::derive_indexed(
                self.cfg.seed,
                "dfs-read-pick",
                (loc.id.0 << 8) ^ u64::from(reader.raw()),
            ) as usize
                % live_replicas.len();
            live_replicas[pick]
        };
        let mut candidates = vec![preferred];
        candidates.extend(live_replicas.into_iter().filter(|&n| n != preferred));
        for source in candidates {
            let Some(data) = self
                .store(source)
                .and_then(|s| s.get(loc.id, self.cfg.read_delay))
            else {
                continue;
            };
            let verify_started = std::time::Instant::now();
            let verified = rcmp_model::hash::hash_bytes(&data) == loc.content_hash;
            if let Some(obs) = &self.obs {
                obs.profiler.add_ns(
                    PhaseKind::BlockVerify,
                    verify_started.elapsed().as_nanos() as u64,
                );
            }
            if verified {
                self.tracer.close(
                    open,
                    SpanKind::BlockRead {
                        source,
                        bytes: data.len() as u64,
                    },
                    None,
                    None,
                    Some(reader),
                );
                if let Some(obs) = &self.obs {
                    let dur = self.tracer.now_us().saturating_sub(open.start_us);
                    obs.read_us.observe(dur);
                    obs.profiler.add_us(PhaseKind::DfsRead, dur);
                }
                return Ok((data, source));
            }
            self.tracer.instant(
                SpanKind::BlockVerifyFailed { block: loc.id.0 },
                None,
                None,
                Some(source),
            );
            if let Some(obs) = &self.obs {
                obs.recorder
                    .record(EventCode::BlockVerifyFailed, Some(source), loc.id.0, 0);
            }
            self.demote_replica(loc.id, source);
        }
        Err(Error::DataLoss {
            path: format!("block {}", loc.id),
            partition: None,
        })
    }

    /// Drops one replica of a block everywhere: the payload from the
    /// node's store and the node from the block's replica set in the
    /// namespace. Checksum-failed replicas go through here, making a
    /// corrupt copy indistinguishable downstream from one lost to a node
    /// death (`lost_partitions`, loss reports, recovery planning).
    fn demote_replica(&self, id: BlockId, node: NodeId) {
        if let Some(store) = self.store(node) {
            store.remove(id);
        }
        let mut ns = self.namespace.write();
        for meta in ns.values_mut() {
            for p in &mut meta.partitions {
                for s in &mut p.segments {
                    for b in &mut s.blocks {
                        if b.id == id {
                            b.drop_replica(node);
                            return;
                        }
                    }
                }
            }
        }
    }

    /// Fault injection: silently corrupts the payload of one block
    /// replica stored on `node` — the *highest* block id present, i.e.
    /// the most recently written block, which in a running chain is a
    /// job output rather than the (better-replicated) chain input.
    /// Deterministic for a given store state. Namespace metadata —
    /// including the recorded checksum — is untouched; the damage is
    /// discovered by the next verified read. Returns the victim block,
    /// or `None` when the node stores nothing corruptible.
    pub fn corrupt_replica_on(&self, node: NodeId) -> Option<BlockId> {
        let store = self.store(node)?;
        let victim = store
            .block_ids()
            .into_iter()
            .rev()
            .find(|&id| store.corrupt(id))?;
        self.invalidate_cached_block(victim);
        Some(victim)
    }

    /// Fault injection: corrupts a specific block replica on `node`.
    /// Returns false when that node does not store the block (or the
    /// payload is empty).
    pub fn corrupt_block_replica(&self, id: BlockId, node: NodeId) -> bool {
        let hit = self.store(node).is_some_and(|s| s.corrupt(id));
        if hit {
            self.invalidate_cached_block(id);
        }
        hit
    }

    /// Drops the chain-cache entry covering `id`, modelling injected
    /// corruption as node-local damage that reaches the in-memory copy
    /// too: the next read takes the DFS path, hits the corrupt replica,
    /// and flows through the same verify/demote/recover machinery as a
    /// cache-off run — keeping chaos replays byte-identical either way.
    fn invalidate_cached_block(&self, id: BlockId) {
        let Some(cache) = &self.chain_cache else {
            return;
        };
        let covering = {
            let ns = self.namespace.read();
            ns.iter().find_map(|(path, meta)| {
                meta.partitions.iter().find_map(|p| {
                    p.blocks()
                        .any(|b| b.id == id)
                        .then(|| (path.clone(), p.id))
                })
            })
        };
        if let Some((path, pid)) = covering {
            cache.invalidate_partition(&path, pid);
        }
    }

    /// Reads a whole partition (all segments concatenated).
    pub fn read_partition(&self, path: &str, pid: PartitionId, reader: NodeId) -> Result<Bytes> {
        let locs = self.partition_locations(path, pid)?;
        let total: usize = locs.iter().map(|l| l.size.as_u64() as usize).sum();
        let mut buf = BytesMut::with_capacity(total);
        for loc in &locs {
            let (data, _src) = self.read_block(loc, reader).map_err(|e| match e {
                Error::DataLoss { .. } => Error::DataLoss {
                    path: path.to_string(),
                    partition: Some(pid),
                },
                other => other,
            })?;
            buf.extend_from_slice(&data);
        }
        Ok(buf.freeze())
    }

    /// Raises a file's replication to `factor` by copying existing
    /// blocks to additional live nodes (hybrid mode, §IV-C: replicate
    /// the output of every k-th job).
    ///
    /// Plan-then-commit: every block's source and targets are validated
    /// *before* any data is copied, so a lost block or a too-small
    /// cluster fails the whole call without orphaning copies in node
    /// stores (a leak the property suite caught).
    pub fn replicate_file(&self, path: &str, factor: u32) -> Result<()> {
        if factor == 0 {
            return Err(Error::Config("replication factor must be >= 1".into()));
        }
        // Phase 1: plan. No mutation; all errors surface here. New
        // copies land only on schedulable nodes; existing replicas on
        // draining nodes still count as readable sources.
        let meta = self.file_meta(path)?;
        let live = self.placement_targets();
        let mut plan: Vec<(BlockId, u64, Vec<NodeId>, Vec<NodeId>)> = Vec::new();
        for p in &meta.partitions {
            for b in p.blocks() {
                let have: Vec<NodeId> = b
                    .replicas
                    .iter()
                    .copied()
                    .filter(|&n| self.is_alive(n))
                    .collect();
                if have.is_empty() {
                    return Err(Error::DataLoss {
                        path: path.to_string(),
                        partition: Some(p.id),
                    });
                }
                if have.len() >= factor as usize {
                    continue;
                }
                let need = factor as usize - have.len();
                let mut candidates: Vec<NodeId> =
                    live.iter().copied().filter(|n| !have.contains(n)).collect();
                if candidates.len() < need {
                    return Err(Error::InsufficientReplicaTargets {
                        wanted: factor as usize,
                        alive: live.len(),
                    });
                }
                {
                    let mut rng = self.rng.lock();
                    candidates.shuffle(&mut *rng);
                }
                let targets: Vec<NodeId> = candidates.into_iter().take(need).collect();
                plan.push((b.id, b.content_hash, have, targets));
            }
        }
        // Phase 2: copy data per the validated plan, taking the payload
        // from any replica that passes verification (a corrupt source is
        // demoted, never propagated).
        let mut added: Vec<(BlockId, Vec<NodeId>)> = Vec::new();
        for (id, content_hash, have, targets) in plan {
            let mut data = None;
            for source in have {
                let Some(d) = self.store(source).and_then(|s| s.get(id, None)) else {
                    continue;
                };
                if rcmp_model::hash::hash_bytes(&d) == content_hash {
                    data = Some(d);
                    break;
                }
                self.demote_replica(id, source);
            }
            let data = data.ok_or_else(|| Error::DataLoss {
                path: path.to_string(),
                partition: None,
            })?;
            for &t in &targets {
                if let Some(store) = self.store(t) {
                    store.put(id, data.clone());
                }
            }
            added.push((id, targets));
        }
        // Commit metadata updates.
        let mut ns = self.namespace.write();
        let meta = ns
            .get_mut(path)
            .ok_or_else(|| Error::FileNotFound(path.to_string()))?;
        meta.replication = meta.replication.max(factor);
        let mut by_block: HashMap<BlockId, Vec<NodeId>> = added.into_iter().collect();
        for p in &mut meta.partitions {
            for s in &mut p.segments {
                for b in &mut s.blocks {
                    if let Some(extra) = by_block.remove(&b.id) {
                        b.replicas.extend(extra);
                    }
                }
            }
        }
        Ok(())
    }

    // -------------------------------------------------------------- failure

    /// Kills a node: wipes its store and reports every partition that
    /// lost all replicas (irreversible data loss) or some replicas
    /// (under-replication). Idempotent for an already-dead node; a
    /// draining node can also crash (drain offers no immunity).
    pub fn fail_node(&self, node: NodeId) -> LossReport {
        let mut report = LossReport {
            node: Some(node),
            ..Default::default()
        };
        let (was_alive, store) = {
            let mut nodes = self.nodes.write();
            let Some(slot) = nodes.get_mut(node.index()) else {
                return report;
            };
            let was = slot.status.is_readable();
            if was {
                slot.status = NodeStatus::Dead;
            }
            (was, Arc::clone(&slot.store))
        };
        store.wipe();
        if let Some(cache) = &self.chain_cache {
            cache.invalidate_node(node);
        }
        if !was_alive {
            return report;
        }
        let mut ns = self.namespace.write();
        for (path, meta) in ns.iter_mut() {
            let mut lost = Vec::new();
            let mut under = Vec::new();
            for p in &mut meta.partitions {
                let mut touched = false;
                for s in &mut p.segments {
                    for b in &mut s.blocks {
                        touched |= b.drop_replica(node);
                    }
                }
                if !touched {
                    continue;
                }
                if p.is_lost() {
                    lost.push(p.id);
                } else {
                    under.push(p.id);
                }
            }
            if !lost.is_empty() {
                report.lost.insert(path.clone(), lost);
            }
            if !under.is_empty() {
                report.under_replicated.insert(path.clone(), under);
            }
        }
        report
    }

    // -------------------------------------------------------------- metrics

    /// Access counters for one node's store.
    pub fn node_stats(&self, node: NodeId) -> NodeAccessStats {
        self.store(node).map(|s| s.stats()).unwrap_or_default()
    }

    /// Bytes currently stored on one node.
    pub fn node_used(&self, node: NodeId) -> ByteSize {
        self.store(node).map(|s| s.used()).unwrap_or(ByteSize::ZERO)
    }

    /// Bytes currently stored across the cluster.
    pub fn total_used(&self) -> ByteSize {
        let stores: Vec<Arc<NodeStore>> = self
            .nodes
            .read()
            .iter()
            .map(|s| Arc::clone(&s.store))
            .collect();
        stores.iter().map(|s| s.used()).sum()
    }

    /// Number of block replicas currently stored on one node.
    pub fn node_block_count(&self, node: NodeId) -> usize {
        self.store(node).map(|s| s.block_count()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dfs(nodes: u32) -> Dfs {
        Dfs::new(DfsConfig::new(nodes, ByteSize::bytes(64)))
    }

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    #[test]
    fn create_write_read_roundtrip() {
        let d = dfs(4);
        d.create_file("out/1", 1, 2).unwrap();
        let data = payload(200, 7); // 4 blocks of 64 (3 full + remainder)
        d.write_partition_segment(
            "out/1",
            PartitionId(0),
            data.clone(),
            NodeId(1),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let got = d
            .read_partition("out/1", PartitionId(0), NodeId(0))
            .unwrap();
        assert_eq!(got, data);
        let meta = d.file_meta("out/1").unwrap();
        assert_eq!(meta.partitions[0].size(), ByteSize::bytes(200));
        assert!(!meta.is_complete()); // partition 1 unwritten
    }

    #[test]
    fn duplicate_create_rejected() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        assert!(matches!(
            d.create_file("f", 1, 1),
            Err(Error::FileExists(_))
        ));
    }

    #[test]
    fn writer_local_blocks_live_on_writer() {
        let d = dfs(4);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(128, 1),
            NodeId(2),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let meta = d.file_meta("f").unwrap();
        for b in meta.partitions[0].blocks() {
            assert_eq!(b.replicas, vec![NodeId(2)]);
        }
        assert_eq!(d.node_used(NodeId(2)), ByteSize::bytes(128));
    }

    #[test]
    fn replication_places_distinct_nodes() {
        let d = dfs(5);
        d.create_file("f", 3, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let meta = d.file_meta("f").unwrap();
        let b = meta.partitions[0].blocks().next().unwrap();
        assert_eq!(b.replicas.len(), 3);
        let mut r = b.replicas.clone();
        r.sort();
        r.dedup();
        assert_eq!(r.len(), 3);
        assert_eq!(d.total_used(), ByteSize::bytes(64 * 3));
    }

    #[test]
    fn single_replica_failure_is_data_loss() {
        let d = dfs(3);
        d.create_file("f", 1, 2).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(1),
            payload(64, 2),
            NodeId(1),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let report = d.fail_node(NodeId(0));
        assert_eq!(report.node, Some(NodeId(0)));
        assert_eq!(report.lost_in("f"), &[PartitionId(0)]);
        assert!(report.under_replicated.is_empty());
        // Partition 1 still readable, 0 is not.
        assert!(d.read_partition("f", PartitionId(1), NodeId(2)).is_ok());
        let err = d
            .read_partition("f", PartitionId(0), NodeId(2))
            .unwrap_err();
        assert!(matches!(err, Error::DataLoss { partition: Some(p), .. } if p == PartitionId(0)));
    }

    #[test]
    fn replicated_file_survives_single_failure() {
        let d = dfs(4);
        d.create_file("f", 2, 1).unwrap();
        let data = payload(300, 9);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let report = d.fail_node(NodeId(0));
        assert!(report.is_benign());
        assert_eq!(report.under_replicated["f"], vec![PartitionId(0)]);
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(1)).unwrap(),
            data
        );
    }

    #[test]
    fn fail_node_is_idempotent() {
        let d = dfs(3);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let first = d.fail_node(NodeId(0));
        assert!(!first.is_benign());
        let second = d.fail_node(NodeId(0));
        assert!(
            second.is_benign(),
            "second failure of same node reports nothing new"
        );
        assert_eq!(d.live_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn dead_writer_rejected() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        d.fail_node(NodeId(0));
        let err = d
            .write_partition_segment(
                "f",
                PartitionId(0),
                payload(10, 0),
                NodeId(0),
                PlacementPolicy::WriterLocal,
            )
            .unwrap_err();
        assert!(matches!(err, Error::NodeUnavailable(_)));
    }

    #[test]
    fn clear_partition_frees_storage() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(128, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        assert_eq!(d.total_used(), ByteSize::bytes(128));
        d.clear_partition("f", PartitionId(0)).unwrap();
        assert_eq!(d.total_used(), ByteSize::ZERO);
        assert!(!d.file_meta("f").unwrap().partitions[0].is_written());
    }

    #[test]
    fn delete_file_frees_storage() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        d.delete_file("f").unwrap();
        assert_eq!(d.total_used(), ByteSize::ZERO);
        assert!(!d.file_exists("f"));
        assert!(matches!(d.delete_file("f"), Err(Error::FileNotFound(_))));
    }

    #[test]
    fn multi_segment_partition_reads_in_order() {
        let d = dfs(4);
        d.create_file("f", 1, 1).unwrap();
        // Two split writers contribute segments.
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(1),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 2),
            NodeId(2),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let got = d.read_partition("f", PartitionId(0), NodeId(0)).unwrap();
        assert_eq!(&got[..64], &[1u8; 64][..]);
        assert_eq!(&got[64..], &[2u8; 64][..]);
        // The partition's bytes live on two different nodes.
        assert_eq!(d.node_used(NodeId(1)), ByteSize::bytes(64));
        assert_eq!(d.node_used(NodeId(2)), ByteSize::bytes(64));
    }

    #[test]
    fn replicate_file_raises_factor() {
        let d = dfs(4);
        d.create_file("f", 1, 1).unwrap();
        let data = payload(150, 3);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        d.replicate_file("f", 2).unwrap();
        let meta = d.file_meta("f").unwrap();
        for b in meta.partitions[0].blocks() {
            assert_eq!(b.replicas.len(), 2);
        }
        // Now survives losing the original writer.
        let report = d.fail_node(NodeId(0));
        assert!(report.is_benign());
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(1)).unwrap(),
            data
        );
    }

    #[test]
    fn read_prefers_local_replica() {
        let d = dfs(3);
        d.create_file("f", 2, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(1),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let loc = &d.partition_locations("f", PartitionId(0)).unwrap()[0];
        let (_, src) = d.read_block(loc, NodeId(1)).unwrap();
        assert_eq!(src, NodeId(1), "local replica must be preferred");
    }

    #[test]
    fn spread_policy_distributes_first_replicas() {
        let d = dfs(8);
        d.create_file("f", 1, 1).unwrap();
        // 16 blocks written with Spread: first replicas should span nodes.
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64 * 16, 5),
            NodeId(0),
            PlacementPolicy::Spread,
        )
        .unwrap();
        let meta = d.file_meta("f").unwrap();
        let mut holders: Vec<NodeId> = meta.partitions[0].blocks().map(|b| b.replicas[0]).collect();
        holders.sort();
        holders.dedup();
        assert!(holders.len() > 2, "spread placement used {holders:?}");
    }

    #[test]
    fn replication_factor_too_high_fails() {
        let d = dfs(2);
        d.create_file("f", 3, 1).unwrap();
        let err = d
            .write_partition_segment(
                "f",
                PartitionId(0),
                payload(64, 1),
                NodeId(0),
                PlacementPolicy::WriterLocal,
            )
            .unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicaTargets { .. }));
    }

    #[test]
    fn content_hash_reflects_block_contents() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_chunks(
            "f",
            PartitionId(0),
            vec![payload(10, 1), payload(10, 1), payload(10, 2)],
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let meta = d.file_meta("f").unwrap();
        let hashes: Vec<u64> = meta.partitions[0]
            .blocks()
            .map(|b| b.content_hash)
            .collect();
        assert_eq!(hashes.len(), 3);
        assert_eq!(hashes[0], hashes[1], "identical chunks hash identically");
        assert_ne!(hashes[0], hashes[2], "different chunks hash differently");
    }

    #[test]
    fn corrupt_replica_demoted_and_read_from_survivor() {
        let d = dfs(3);
        d.create_file("f", 2, 1).unwrap();
        let data = payload(100, 7); // 2 blocks of 64
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let victim = d.corrupt_replica_on(NodeId(0)).unwrap();
        // The reader prefers its local (corrupt) replica, detects the
        // mismatch, and transparently falls back to the survivor.
        let got = d.read_partition("f", PartitionId(0), NodeId(0)).unwrap();
        assert_eq!(got, data);
        // The corrupt replica was demoted like a lost one.
        let meta = d.file_meta("f").unwrap();
        let b = meta.partitions[0]
            .blocks()
            .find(|b| b.id == victim)
            .unwrap();
        assert!(!b.replicas.contains(&NodeId(0)), "corrupt replica demoted");
        assert!(
            !meta.partitions[0].is_lost(),
            "survivor keeps the data live"
        );
    }

    #[test]
    fn all_replicas_corrupt_is_data_loss() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 3),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let id = d.partition_locations("f", PartitionId(0)).unwrap()[0].id;
        assert!(d.corrupt_block_replica(id, NodeId(0)));
        let err = d
            .read_partition("f", PartitionId(0), NodeId(1))
            .unwrap_err();
        assert!(matches!(err, Error::DataLoss { partition: Some(p), .. } if p == PartitionId(0)));
        // Demotion is durable: the partition now counts as lost, so
        // recovery planning sees the corruption as replica loss.
        let meta = d.file_meta("f").unwrap();
        assert!(meta.partitions[0].is_lost());
        assert_eq!(meta.lost_partitions(), vec![PartitionId(0)]);
    }

    #[test]
    fn replicate_file_skips_corrupt_source() {
        let d = dfs(4);
        d.create_file("f", 2, 1).unwrap();
        let data = payload(64, 9);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let id = d.partition_locations("f", PartitionId(0)).unwrap()[0].id;
        assert!(d.corrupt_block_replica(id, NodeId(0)));
        d.replicate_file("f", 3).unwrap();
        // Every surviving replica serves verified bytes.
        for _ in 0..4 {
            assert_eq!(
                d.read_partition("f", PartitionId(0), NodeId(3)).unwrap(),
                data
            );
        }
        let meta = d.file_meta("f").unwrap();
        let b = meta.partitions[0].blocks().next().unwrap();
        assert!(!b.replicas.contains(&NodeId(0)), "corrupt source demoted");
    }

    #[test]
    fn corrupt_on_empty_node_is_none() {
        let d = dfs(2);
        assert!(d.corrupt_replica_on(NodeId(1)).is_none());
        assert!(!d.corrupt_block_replica(BlockId(42), NodeId(0)));
    }

    #[test]
    fn oversized_chunk_rejected() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        let err = d
            .write_partition_chunks(
                "f",
                PartitionId(0),
                vec![payload(65, 0)], // block size is 64 in tests
                NodeId(0),
                PlacementPolicy::WriterLocal,
            )
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)));
    }

    #[test]
    fn drained_node_keeps_serving_but_stops_accumulating() {
        let d = dfs(4);
        d.create_file("f", 1, 2).unwrap();
        let data = payload(128, 4);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        d.drain_node(NodeId(0)).unwrap();
        assert_eq!(d.node_status(NodeId(0)), Some(NodeStatus::Draining));
        assert_eq!(d.live_nodes().len(), 4, "draining stays readable");
        assert_eq!(d.placement_targets(), vec![NodeId(1), NodeId(2), NodeId(3)]);
        // Existing data still serves.
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(2)).unwrap(),
            data
        );
        // An in-flight writer on the draining node finishes, but its
        // blocks land on nodes that are staying.
        d.write_partition_segment(
            "f",
            PartitionId(1),
            payload(64, 5),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        for b in d.file_meta("f").unwrap().partitions[1].blocks() {
            assert!(!b.replicas.contains(&NodeId(0)), "no new data on drainer");
        }
        // Rejoin restores placement eligibility.
        d.rejoin_node(NodeId(0)).unwrap();
        assert_eq!(d.placement_targets().len(), 4);
    }

    #[test]
    fn decommission_rebalances_then_wipes() {
        let d = dfs(3);
        d.create_file("f", 1, 1).unwrap();
        let data = payload(200, 6); // 4 blocks, all on node 0
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let report = d.decommission_node(NodeId(0)).unwrap();
        assert_eq!(report.node, Some(NodeId(0)));
        assert_eq!(report.blocks_moved, 4);
        assert_eq!(report.bytes_moved, 200);
        assert_eq!(report.blocks_dropped, 0);
        assert_eq!(d.node_used(NodeId(0)), ByteSize::ZERO);
        assert_eq!(d.live_nodes(), vec![NodeId(1), NodeId(2)]);
        // Deterministic target: lowest-id Up node not already holding.
        let meta = d.file_meta("f").unwrap();
        for b in meta.partitions[0].blocks() {
            assert_eq!(b.replicas, vec![NodeId(1)]);
        }
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(2)).unwrap(),
            data
        );
    }

    #[test]
    fn decommission_drops_already_everywhere_blocks() {
        let d = dfs(2);
        d.create_file("f", 2, 1).unwrap();
        let data = payload(64, 8);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        // Both nodes hold the block; node 1 keeps it alive, so node 0's
        // copy is dropped rather than moved.
        let report = d.decommission_node(NodeId(0)).unwrap();
        assert_eq!(report.blocks_moved, 0);
        assert_eq!(report.blocks_dropped, 1);
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(1)).unwrap(),
            data
        );
    }

    #[test]
    fn decommission_with_no_target_for_sole_replica_fails_clean() {
        let d = dfs(1);
        d.create_file("f", 1, 1).unwrap();
        let data = payload(64, 2);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            data.clone(),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let err = d.decommission_node(NodeId(0)).unwrap_err();
        assert!(matches!(err, Error::InsufficientReplicaTargets { .. }));
        // State unchanged: still up, still serving.
        assert_eq!(d.node_status(NodeId(0)), Some(NodeStatus::Up));
        assert_eq!(
            d.read_partition("f", PartitionId(0), NodeId(0)).unwrap(),
            data
        );
    }

    #[test]
    fn joined_node_becomes_placement_target() {
        let d = dfs(2);
        d.create_file("f", 3, 1).unwrap();
        // Factor 3 on 2 nodes is infeasible...
        assert!(d
            .write_partition_segment(
                "f",
                PartitionId(0),
                payload(64, 1),
                NodeId(0),
                PlacementPolicy::WriterLocal,
            )
            .is_err());
        // ...until a third node joins.
        let n = d.join_node();
        assert_eq!(n, NodeId(2));
        assert_eq!(d.num_nodes(), 3);
        d.write_partition_segment(
            "f",
            PartitionId(0),
            payload(64, 1),
            NodeId(0),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
        let b = d.file_meta("f").unwrap().partitions[0]
            .blocks()
            .next()
            .unwrap()
            .replicas
            .clone();
        assert!(b.contains(&NodeId(2)), "joined node holds a replica: {b:?}");
    }

    #[test]
    fn invalid_membership_transitions_are_typed_errors() {
        let d = dfs(2);
        assert!(d.drain_node(NodeId(9)).is_err(), "unknown node");
        assert!(d.rejoin_node(NodeId(0)).is_err(), "up nodes cannot rejoin");
        d.fail_node(NodeId(0));
        assert!(d.drain_node(NodeId(0)).is_err(), "cannot drain the dead");
        assert!(d.decommission_node(NodeId(0)).is_err());
        assert_eq!(d.node_status(NodeId(0)), Some(NodeStatus::Dead));
    }

    #[test]
    fn out_of_range_partition_rejected() {
        let d = dfs(2);
        d.create_file("f", 1, 1).unwrap();
        assert!(d
            .write_partition_segment(
                "f",
                PartitionId(5),
                payload(1, 0),
                NodeId(0),
                PlacementPolicy::WriterLocal
            )
            .is_err());
        assert!(d.partition_locations("f", PartitionId(5)).is_err());
    }
}
