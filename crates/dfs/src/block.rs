//! Block metadata.

use rcmp_model::{BlockId, ByteSize, NodeId};
use serde::{Deserialize, Serialize};

/// Metadata for one replicated block.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    pub id: BlockId,
    pub size: ByteSize,
    /// Fingerprint of the block's contents (see `rcmp_model::hash`).
    /// RCMP's planner compares it against the fingerprint recorded with
    /// a persisted map output to decide whether that output may be
    /// reused — the mechanism behind the paper's Fig.-5 rule.
    pub content_hash: u64,
    /// Nodes currently holding a replica. Order is placement order (the
    /// first entry was the writer-local replica if the policy was
    /// writer-local).
    pub replicas: Vec<NodeId>,
}

impl BlockInfo {
    /// True once every replica is gone: the block is irreversibly lost.
    pub fn is_lost(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Drops `node` from the replica set; returns true if it held one.
    pub fn drop_replica(&mut self, node: NodeId) -> bool {
        let before = self.replicas.len();
        self.replicas.retain(|&n| n != node);
        self.replicas.len() != before
    }
}

/// A block plus where it lives, handed to schedulers for locality
/// decisions (a mapper input split is one block).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockLocation {
    pub id: BlockId,
    pub size: ByteSize,
    /// Content fingerprint (see [`BlockInfo::content_hash`]).
    pub content_hash: u64,
    pub replicas: Vec<NodeId>,
}

impl From<&BlockInfo> for BlockLocation {
    fn from(b: &BlockInfo) -> Self {
        Self {
            id: b.id,
            size: b.size,
            content_hash: b.content_hash,
            replicas: b.replicas.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_replica_tracks_loss() {
        let mut b = BlockInfo {
            id: BlockId(1),
            size: ByteSize::mib(1),
            content_hash: 0,
            replicas: vec![NodeId(0), NodeId(2)],
        };
        assert!(!b.is_lost());
        assert!(b.drop_replica(NodeId(0)));
        assert!(!b.drop_replica(NodeId(0)));
        assert!(!b.is_lost());
        assert!(b.drop_replica(NodeId(2)));
        assert!(b.is_lost());
    }
}
