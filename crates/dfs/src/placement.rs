//! Replica placement policies.

use crate::topology::{rack_aware_order, RackTopology};
use rand::seq::SliceRandom;
use rand::Rng;
use rcmp_model::{Error, NodeId, Result};
use serde::{Deserialize, Serialize};

/// How the first replica of a freshly written block is placed.
///
/// Remote replicas (replication factor > 1) always go to random distinct
/// live nodes, like HDFS's off-node copies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// First replica on the writer node (HDFS default in collocated
    /// clusters — gives the data locality the paper discusses in §III-A).
    WriterLocal,
    /// First replica on a node chosen round-robin/randomly across the
    /// cluster. This is the paper's alternative hot-spot mitigation
    /// (§IV-B2): recomputed reducers "spread their output over many
    /// nodes" instead of writing locally.
    Spread,
}

/// Chooses the replica target nodes for one block.
///
/// Returns `factor` distinct live nodes. The writer is preferred for the
/// first replica under [`PlacementPolicy::WriterLocal`] (if alive).
/// With a [`RackTopology`], remote replicas follow HDFS's rack-aware
/// preference: second replica off the writer's rack, third on the
/// second's rack (randomized within each preference class).
pub fn place_block(
    policy: PlacementPolicy,
    writer: NodeId,
    factor: u32,
    live: &[NodeId],
    topology: Option<&RackTopology>,
    rng: &mut impl Rng,
) -> Result<Vec<NodeId>> {
    if live.is_empty() || (factor as usize) > live.len() {
        return Err(Error::InsufficientReplicaTargets {
            wanted: factor as usize,
            alive: live.len(),
        });
    }
    let mut targets = Vec::with_capacity(factor as usize);
    match policy {
        PlacementPolicy::WriterLocal if live.contains(&writer) => targets.push(writer),
        PlacementPolicy::WriterLocal | PlacementPolicy::Spread => {
            targets.push(*live.choose(rng).expect("non-empty"))
        }
    }
    // Remaining replicas: random distinct live nodes, rack-ordered when
    // a topology is configured.
    let mut rest: Vec<NodeId> = live.iter().copied().filter(|n| *n != targets[0]).collect();
    rest.shuffle(rng);
    if let Some(t) = topology {
        rest = rack_aware_order(t, targets[0], &rest);
    }
    targets.extend(rest.into_iter().take(factor as usize - 1));
    debug_assert_eq!(targets.len(), factor as usize);
    Ok(targets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn writer_local_prefers_writer() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let t = place_block(
            PlacementPolicy::WriterLocal,
            NodeId(3),
            3,
            &nodes(10),
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(t[0], NodeId(3));
        assert_eq!(t.len(), 3);
        let mut d = t.clone();
        d.sort();
        d.dedup();
        assert_eq!(d.len(), 3, "replicas must be distinct");
    }

    #[test]
    fn writer_local_falls_back_when_writer_dead() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(2);
        let live: Vec<NodeId> = nodes(10).into_iter().filter(|n| n.raw() != 3).collect();
        let t = place_block(
            PlacementPolicy::WriterLocal,
            NodeId(3),
            2,
            &live,
            None,
            &mut rng,
        )
        .unwrap();
        assert!(!t.contains(&NodeId(3)));
    }

    #[test]
    fn spread_uses_many_first_targets() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let live = nodes(10);
        let mut firsts = std::collections::HashSet::new();
        for _ in 0..100 {
            let t =
                place_block(PlacementPolicy::Spread, NodeId(0), 1, &live, None, &mut rng).unwrap();
            firsts.insert(t[0]);
        }
        assert!(
            firsts.len() >= 5,
            "spread placement should hit many nodes, hit {}",
            firsts.len()
        );
    }

    #[test]
    fn insufficient_targets_errors() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let err = place_block(
            PlacementPolicy::WriterLocal,
            NodeId(0),
            3,
            &nodes(2),
            None,
            &mut rng,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            Error::InsufficientReplicaTargets {
                wanted: 3,
                alive: 2
            }
        ));
    }

    #[test]
    fn rack_aware_second_replica_leaves_writer_rack() {
        use crate::topology::RackTopology;
        let t = RackTopology::new(9, 3);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(6);
        for _ in 0..50 {
            let targets = place_block(
                PlacementPolicy::WriterLocal,
                NodeId(1),
                3,
                &nodes(9),
                Some(&t),
                &mut rng,
            )
            .unwrap();
            assert_eq!(targets[0], NodeId(1));
            assert!(
                !t.same_rack(targets[0], targets[1]),
                "second replica must leave the writer's rack: {targets:?}"
            );
            assert!(
                t.same_rack(targets[1], targets[2]),
                "third replica shares the second's rack: {targets:?}"
            );
        }
    }

    #[test]
    fn factor_one_single_target() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let t = place_block(
            PlacementPolicy::WriterLocal,
            NodeId(1),
            1,
            &nodes(4),
            None,
            &mut rng,
        )
        .unwrap();
        assert_eq!(t, vec![NodeId(1)]);
    }
}
