//! Rack topology — re-exported from `rcmp-policy`.
//!
//! The node→rack layout used for rack-aware replica placement used to
//! live here; it moved to `rcmp-policy` so the DFS placement path and
//! the rack-aware scheduling kernel share one source of truth. This
//! module stays as a re-export shim for existing `rcmp_dfs::topology`
//! and `rcmp_dfs::RackTopology` users.

pub use rcmp_policy::{rack_aware_order, RackTopology};
