//! Rack topology and rack-aware replica placement.
//!
//! "Current replication strategies protect against the simultaneous
//! failure of two nodes or against single rack-level failures" (§III-A);
//! the DCO cluster's nodes "are distributed in 3 different racks"
//! (§V-A). HDFS's default policy puts the first replica on the writer,
//! the second on a different rack, and the third on the same rack as
//! the second — surviving the loss of any single rack with factor ≥ 2.

use rcmp_model::NodeId;
use serde::{Deserialize, Serialize};

/// Maps nodes to racks: contiguous blocks of `nodes.div_ceil(racks)`
/// nodes per rack (node 0..k−1 → rack 0, etc.).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RackTopology {
    pub nodes: u32,
    pub racks: u32,
}

impl RackTopology {
    pub fn new(nodes: u32, racks: u32) -> Self {
        assert!(racks >= 1 && nodes >= 1, "need at least one node and rack");
        Self { nodes, racks }
    }

    /// A flat (single-rack) topology: rack awareness is a no-op.
    pub fn flat(nodes: u32) -> Self {
        Self::new(nodes, 1)
    }

    /// The DCO layout: 3 racks.
    pub fn dco(nodes: u32) -> Self {
        Self::new(nodes, 3)
    }

    pub fn nodes_per_rack(&self) -> u32 {
        self.nodes.div_ceil(self.racks)
    }

    /// The rack a node lives in.
    pub fn rack_of(&self, node: NodeId) -> u32 {
        (node.raw() / self.nodes_per_rack()).min(self.racks - 1)
    }

    /// Whether two nodes share a rack.
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// All nodes in one rack.
    pub fn rack_members(&self, rack: u32) -> Vec<NodeId> {
        (0..self.nodes)
            .map(NodeId)
            .filter(|&n| self.rack_of(n) == rack)
            .collect()
    }
}

/// Orders placement candidates HDFS-style given a first (writer-local)
/// replica: off-rack nodes first (the second replica must leave the
/// writer's rack), then same-rack-as-second for the third, then anyone.
///
/// Returns the candidates sorted by preference; the caller takes as
/// many as the replication factor requires.
pub fn rack_aware_order(
    topology: &RackTopology,
    first: NodeId,
    candidates: &[NodeId],
) -> Vec<NodeId> {
    let mut off_rack: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| !topology.same_rack(first, n))
        .collect();
    let on_rack: Vec<NodeId> = candidates
        .iter()
        .copied()
        .filter(|&n| topology.same_rack(first, n) && n != first)
        .collect();
    // Third replica prefers the *second* replica's rack: after the
    // first off-rack pick, stable-partition the rest of the off-rack
    // list so the second pick's rack-mates come next.
    if off_rack.len() > 1 {
        let second_rack = topology.rack_of(off_rack[0]);
        let (mut same_as_second, other): (Vec<NodeId>, Vec<NodeId>) = off_rack[1..]
            .iter()
            .copied()
            .partition(|&n| topology.rack_of(n) == second_rack);
        let mut ordered = vec![off_rack[0]];
        ordered.append(&mut same_as_second);
        ordered.extend(other);
        off_rack = ordered;
    }
    off_rack.extend(on_rack);
    off_rack
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rack_of_contiguous_blocks() {
        let t = RackTopology::dco(60);
        assert_eq!(t.nodes_per_rack(), 20);
        assert_eq!(t.rack_of(NodeId(0)), 0);
        assert_eq!(t.rack_of(NodeId(19)), 0);
        assert_eq!(t.rack_of(NodeId(20)), 1);
        assert_eq!(t.rack_of(NodeId(59)), 2);
        assert!(t.same_rack(NodeId(0), NodeId(19)));
        assert!(!t.same_rack(NodeId(19), NodeId(20)));
    }

    #[test]
    fn uneven_division_clamps_last_rack() {
        let t = RackTopology::new(10, 3); // 4+4+2
        assert_eq!(t.rack_of(NodeId(9)), 2);
        assert_eq!(t.rack_members(2), vec![NodeId(8), NodeId(9)]);
        let total: usize = (0..3).map(|r| t.rack_members(r).len()).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn flat_topology_is_one_rack() {
        let t = RackTopology::flat(5);
        for a in 0..5 {
            for b in 0..5 {
                assert!(t.same_rack(NodeId(a), NodeId(b)));
            }
        }
    }

    #[test]
    fn rack_aware_order_prefers_off_rack_then_seconds_rack() {
        let t = RackTopology::new(9, 3); // racks {0,1,2},{3,4,5},{6,7,8}
        let candidates: Vec<NodeId> = (0..9).map(NodeId).collect();
        let order = rack_aware_order(&t, NodeId(0), &candidates);
        // First pick is off-rack.
        assert!(!t.same_rack(NodeId(0), order[0]));
        // Second pick shares the first pick's rack (HDFS third replica).
        assert!(t.same_rack(order[0], order[1]));
        // Writer's rack-mates come last.
        let tail: Vec<u32> = order[order.len() - 2..].iter().map(|n| n.raw()).collect();
        assert_eq!(tail, vec![1, 2]);
    }

    #[test]
    fn order_handles_all_same_rack() {
        let t = RackTopology::flat(4);
        let candidates: Vec<NodeId> = (0..4).map(NodeId).collect();
        let order = rack_aware_order(&t, NodeId(1), &candidates);
        assert_eq!(order.len(), 3, "writer excluded, everyone else listed");
        assert!(!order.contains(&NodeId(1)));
    }
}
