//! File/partition/segment metadata.

use crate::block::{BlockInfo, BlockLocation};
use rcmp_model::{ByteSize, NodeId, PartitionId};
use serde::{Deserialize, Serialize};

/// One writer's contribution to a partition. An unsplit reducer writes
/// exactly one segment; a reducer split `k` ways during recomputation
/// writes `k` segments (one per split), which is how splitting spreads
/// a partition's bytes over many nodes (§IV-B2).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct SegmentMeta {
    /// Node that produced this segment (for provenance/debugging).
    pub writer: NodeId,
    pub blocks: Vec<BlockInfo>,
}

impl SegmentMeta {
    pub fn size(&self) -> ByteSize {
        self.blocks.iter().map(|b| b.size).sum()
    }
}

/// One reducer output partition of a file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PartitionMeta {
    pub id: PartitionId,
    pub segments: Vec<SegmentMeta>,
}

impl PartitionMeta {
    pub fn new(id: PartitionId) -> Self {
        Self {
            id,
            segments: Vec::new(),
        }
    }

    pub fn size(&self) -> ByteSize {
        self.segments.iter().map(SegmentMeta::size).sum()
    }

    /// All blocks of the partition in segment order.
    pub fn blocks(&self) -> impl Iterator<Item = &BlockInfo> {
        self.segments.iter().flat_map(|s| s.blocks.iter())
    }

    /// Locations of all blocks (for locality-aware scheduling).
    pub fn block_locations(&self) -> Vec<BlockLocation> {
        self.blocks().map(BlockLocation::from).collect()
    }

    /// True if any block of the partition has lost all its replicas —
    /// the partition can no longer be read and must be recomputed.
    pub fn is_lost(&self) -> bool {
        self.blocks().any(BlockInfo::is_lost)
    }

    /// True if the partition has been written (has at least one segment).
    pub fn is_written(&self) -> bool {
        !self.segments.is_empty()
    }
}

/// Metadata for one partitioned file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    pub name: String,
    /// Replication factor requested at creation.
    pub replication: u32,
    pub partitions: Vec<PartitionMeta>,
}

impl FileMeta {
    pub fn new(name: impl Into<String>, replication: u32, num_partitions: u32) -> Self {
        Self {
            name: name.into(),
            replication,
            partitions: (0..num_partitions)
                .map(|i| PartitionMeta::new(PartitionId(i)))
                .collect(),
        }
    }

    pub fn size(&self) -> ByteSize {
        self.partitions.iter().map(PartitionMeta::size).sum()
    }

    pub fn num_partitions(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Partitions that are irreversibly lost.
    pub fn lost_partitions(&self) -> Vec<PartitionId> {
        self.partitions
            .iter()
            .filter(|p| p.is_lost())
            .map(|p| p.id)
            .collect()
    }

    /// True once every partition has been written.
    pub fn is_complete(&self) -> bool {
        self.partitions.iter().all(PartitionMeta::is_written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::BlockId;

    fn block(id: u64, size: u64, replicas: &[u32]) -> BlockInfo {
        BlockInfo {
            id: BlockId(id),
            size: ByteSize::bytes(size),
            content_hash: 0,
            replicas: replicas.iter().map(|&n| NodeId(n)).collect(),
        }
    }

    #[test]
    fn file_partition_sizes() {
        let mut f = FileMeta::new("out/1", 1, 2);
        f.partitions[0].segments.push(SegmentMeta {
            writer: NodeId(0),
            blocks: vec![block(1, 100, &[0]), block(2, 50, &[0])],
        });
        f.partitions[1].segments.push(SegmentMeta {
            writer: NodeId(1),
            blocks: vec![block(3, 25, &[1])],
        });
        assert_eq!(f.partitions[0].size(), ByteSize::bytes(150));
        assert_eq!(f.size(), ByteSize::bytes(175));
        assert!(f.is_complete());
    }

    #[test]
    fn loss_detection_is_per_block() {
        let mut p = PartitionMeta::new(PartitionId(0));
        p.segments.push(SegmentMeta {
            writer: NodeId(0),
            blocks: vec![block(1, 10, &[0, 1]), block(2, 10, &[0])],
        });
        assert!(!p.is_lost());
        // Kill node 0: block 2 loses its only replica.
        for s in &mut p.segments {
            for b in &mut s.blocks {
                b.drop_replica(NodeId(0));
            }
        }
        assert!(p.is_lost());
    }

    #[test]
    fn incomplete_file() {
        let f = FileMeta::new("out/2", 3, 4);
        assert!(!f.is_complete());
        assert_eq!(f.num_partitions(), 4);
        assert!(f.lost_partitions().is_empty());
    }
}
