//! The memory-budgeted inter-job block cache (M3R-style chain fast
//! path over RCMP's persisted lineage).
//!
//! RCMP persists every job's output to the DFS so cascading
//! recomputation stays cheap — which makes the *fault-free* chain pay a
//! full DFS round-trip between every pair of jobs. M3R shows chained
//! MapReduce wins big when inter-job data stays memory-resident and
//! partition-stable, at the cost of resilience. This cache resolves the
//! tension: reducer outputs are *staged* here as they are written
//! through to the DFS (checksummed, replicated, lineage untouched), and
//! the next job's mappers consume them from memory when the partition is
//! still resident, valid and cheap to reach. Every cache miss — budget
//! pressure, invalidation, membership churn — falls back to the
//! persisted replicas, so turning the cache on can never change job
//! output bytes, only where fault-free reads come from.
//!
//! ## Consistency rules
//!
//! * **Stage, then commit.** A reducer stages its partition's
//!   record-aligned chunks while writing them to the DFS; nothing is
//!   readable until the whole job *commits* at successful completion, on
//!   the tracker's control thread. Admission order is partition-id
//!   ascending — independent of reduce-task interleaving — so replays
//!   and differential runs see identical cache states.
//! * **Hash-guarded reads.** [`ChainCache::get_chunk`] only hits when
//!   the cached chunk's content hash equals the hash the reader's
//!   `BlockLocation` expects (the same fingerprint verified DFS reads
//!   check). A recomputed partition, a stale entry, or any
//!   misalignment misses and falls through to the DFS.
//! * **LRU with pins.** Committed entries are evicted oldest-first under
//!   budget pressure, except entries of *pinned* files: the engine pins
//!   a job's input file for the duration of the run, so the partitions a
//!   scheduled wave is about to consume can't be evicted under it.
//!   Eviction is pure bookkeeping ("spill-to-DFS"): the bytes were
//!   persisted at write time, nothing is copied out.
//! * **Invalidation.** Node death, drain and decommission drop every
//!   entry (and staged chunk) the node holds; partition clears, file
//!   deletes and injected corruption drop the covering entries. Recovery
//!   reads therefore always come from the DFS's surviving replicas.
//!
//! A budget smaller than one partition degrades to pure spill-through:
//! everything stages, nothing is admitted, every read goes to the DFS —
//! byte-identical to running with the cache off.

use bytes::Bytes;
use parking_lot::Mutex;
use rcmp_model::{ByteSize, NodeId, PartitionId};
use rcmp_obs::{Counter, Gauge, MetricsRegistry};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};

/// One committed partition: its record-aligned chunks (exactly the
/// blocks written to the DFS, hash per chunk) resident on `holder`.
struct Entry {
    holder: NodeId,
    /// `(content_hash, payload)` per block, in write order.
    chunks: Vec<(u64, Bytes)>,
    bytes: u64,
    /// Recency stamp: bumped on commit and on pin, never on read, so
    /// eviction order is independent of read interleaving.
    seq: u64,
}

/// A partition staged by its writing reducer, awaiting job commit.
struct Staged {
    holder: NodeId,
    chunks: Vec<(u64, Bytes)>,
    bytes: u64,
}

#[derive(Default)]
struct Inner {
    /// Committed, readable entries keyed by `(file path, partition)`.
    entries: HashMap<(String, PartitionId), Entry>,
    /// Staged-but-uncommitted partitions per output file. BTreeMap so
    /// commit admits partitions in ascending id order regardless of the
    /// interleaving reduce tasks staged them in.
    pending: HashMap<String, BTreeMap<PartitionId, Staged>>,
    /// Pin counts per file path; a file's entries are evictable only
    /// while its pin count is zero.
    pins: HashMap<String, u32>,
    /// Committed bytes currently resident.
    used: u64,
    /// Monotonic recency clock.
    seq: u64,
}

impl Inner {
    fn bump(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn pinned_bytes(&self) -> u64 {
        self.entries
            .iter()
            .filter(|((path, _), _)| self.pins.get(path).copied().unwrap_or(0) > 0)
            .map(|(_, e)| e.bytes)
            .sum()
    }
}

/// Pre-resolved telemetry handles (resolved once against the cluster
/// registry so the read path never takes the registry lock).
struct ObsHandles {
    hits: Counter,
    hits_local: Counter,
    misses: Counter,
    spills: Counter,
    read_bytes: Counter,
    pinned_bytes: Gauge,
}

/// Point-in-time cache statistics (tests, benches, figures).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChainCacheStats {
    /// Chunk reads served from memory.
    pub hits: u64,
    /// Hits where the reader was the holder node (node-local).
    pub hits_local: u64,
    /// Chunk lookups that fell through to the DFS.
    pub misses: u64,
    /// Staged partitions not admitted at commit (budget pressure); the
    /// data stays DFS-only — it was persisted at write time.
    pub spills: u64,
    /// Bytes served from memory.
    pub read_bytes: u64,
    /// Committed bytes currently resident.
    pub used_bytes: u64,
    /// Committed partitions currently resident.
    pub entries: u64,
}

/// The memory-budgeted inter-job block cache. See the module docs for
/// the consistency rules; see `rcmp_model::ChainCacheConfig` for how it
/// is switched on.
pub struct ChainCache {
    budget: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    hits_local: AtomicU64,
    misses: AtomicU64,
    spills: AtomicU64,
    read_bytes: AtomicU64,
    obs: Option<ObsHandles>,
}

impl ChainCache {
    /// An empty cache with the given committed-byte budget.
    pub fn new(budget: ByteSize) -> Self {
        Self {
            budget: budget.as_u64(),
            inner: Mutex::new(Inner::default()),
            hits: AtomicU64::new(0),
            hits_local: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            spills: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            obs: None,
        }
    }

    /// Attaches pre-resolved metric handles: `cache.hits`,
    /// `cache.hits_local`, `cache.misses`, `cache.spills`,
    /// `cache.read_bytes` counters and the `cache.pinned_bytes` gauge.
    pub fn with_obs(mut self, registry: &MetricsRegistry) -> Self {
        self.obs = Some(ObsHandles {
            hits: registry.counter("cache.hits"),
            hits_local: registry.counter("cache.hits_local"),
            misses: registry.counter("cache.misses"),
            spills: registry.counter("cache.spills"),
            read_bytes: registry.counter("cache.read_bytes"),
            pinned_bytes: registry.gauge("cache.pinned_bytes"),
        });
        self
    }

    /// The committed-byte budget.
    pub fn budget(&self) -> ByteSize {
        ByteSize::bytes(self.budget)
    }

    /// Stages one reducer's whole-partition output (the record-aligned
    /// chunks just written to the DFS) on `holder`, pending job commit.
    /// Re-staging the same partition (a retried task) replaces the
    /// previous staging.
    pub fn stage(&self, path: &str, pid: PartitionId, holder: NodeId, chunks: &[Bytes]) {
        let hashed: Vec<(u64, Bytes)> = chunks
            .iter()
            .map(|c| (rcmp_model::hash::hash_bytes(c), c.clone()))
            .collect();
        let bytes: u64 = hashed.iter().map(|(_, c)| c.len() as u64).sum();
        let mut inner = self.inner.lock();
        inner.pending.entry(path.to_string()).or_default().insert(
            pid,
            Staged {
                holder,
                chunks: hashed,
                bytes,
            },
        );
    }

    /// Commits every partition staged for `path`, admitting them in
    /// ascending partition order while they fit the budget (evicting
    /// unpinned older entries, oldest first). Partitions that don't fit
    /// are counted as spills and stay DFS-only. Runs on the tracker's
    /// control thread at successful job completion — never concurrently
    /// with itself — so cache state after each job is deterministic.
    pub fn commit(&self, path: &str) {
        let mut inner = self.inner.lock();
        let Some(staged) = inner.pending.remove(path) else {
            return;
        };
        let mut spilled = 0u64;
        for (pid, s) in staged {
            // Replacing an existing version of the same partition frees
            // its bytes first.
            if let Some(old) = inner.entries.remove(&(path.to_string(), pid)) {
                inner.used -= old.bytes;
            }
            if s.bytes > self.budget {
                spilled += 1;
                continue;
            }
            while inner.used + s.bytes > self.budget {
                let victim = inner
                    .entries
                    .iter()
                    .filter(|((p, _), _)| inner.pins.get(p).copied().unwrap_or(0) == 0)
                    .min_by_key(|(_, e)| e.seq)
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        let e = inner.entries.remove(&k).expect("victim present");
                        inner.used -= e.bytes;
                    }
                    None => break,
                }
            }
            if inner.used + s.bytes > self.budget {
                spilled += 1;
                continue;
            }
            let seq = inner.bump();
            inner.used += s.bytes;
            inner.entries.insert(
                (path.to_string(), pid),
                Entry {
                    holder: s.holder,
                    chunks: s.chunks,
                    bytes: s.bytes,
                    seq,
                },
            );
        }
        if spilled > 0 {
            self.spills.fetch_add(spilled, Ordering::Relaxed);
            if let Some(obs) = &self.obs {
                obs.spills.add(spilled);
            }
        }
        self.publish_pinned(&inner);
    }

    /// Drops anything staged for `path` without committing it (a failed
    /// or abandoned run).
    pub fn abort(&self, path: &str) {
        self.inner.lock().pending.remove(path);
    }

    /// Serves block `block_idx` of `(path, pid)` from memory, but only
    /// when the cached chunk's content hash equals `expect_hash` (the
    /// fingerprint the reader's `BlockLocation` carries). On a hash
    /// mismatch the stale entry is dropped and the read misses. Returns
    /// the payload and the holder node (for locality accounting).
    pub fn get_chunk(
        &self,
        path: &str,
        pid: PartitionId,
        block_idx: usize,
        expect_hash: u64,
        reader: NodeId,
    ) -> Option<(Bytes, NodeId)> {
        let key = (path.to_string(), pid);
        let mut inner = self.inner.lock();
        let hit = match inner.entries.get(&key) {
            Some(e) => match e.chunks.get(block_idx) {
                Some((h, data)) if *h == expect_hash => Some((data.clone(), e.holder)),
                Some(_) => {
                    // Stale: the partition was rewritten behind us.
                    let e = inner.entries.remove(&key).expect("entry present");
                    inner.used -= e.bytes;
                    None
                }
                None => None,
            },
            None => None,
        };
        drop(inner);
        match hit {
            Some((data, holder)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                self.read_bytes.fetch_add(data.len() as u64, Ordering::Relaxed);
                let local = holder == reader;
                if local {
                    self.hits_local.fetch_add(1, Ordering::Relaxed);
                }
                if let Some(obs) = &self.obs {
                    obs.hits.inc();
                    obs.read_bytes.add(data.len() as u64);
                    if local {
                        obs.hits_local.inc();
                    }
                }
                Some((data, holder))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = &self.obs {
                    obs.misses.inc();
                }
                None
            }
        }
    }

    /// The node holding `(path, pid)` in memory, if committed — the
    /// stable-placement affinity hint. Purely advisory: scheduling to a
    /// non-holder only costs a miss.
    pub fn holder(&self, path: &str, pid: PartitionId) -> Option<NodeId> {
        self.inner
            .lock()
            .entries
            .get(&(path.to_string(), pid))
            .map(|e| e.holder)
    }

    /// Pins `path`: its entries can't be evicted until the matching
    /// [`ChainCache::unpin_file`]. Bumps recency (the file is about to
    /// be consumed). Pins nest.
    pub fn pin_file(&self, path: &str) {
        let mut inner = self.inner.lock();
        *inner.pins.entry(path.to_string()).or_insert(0) += 1;
        let seq = inner.bump();
        for ((p, _), e) in inner.entries.iter_mut() {
            if p == path {
                e.seq = seq;
            }
        }
        self.publish_pinned(&inner);
    }

    /// Releases one pin of `path`.
    pub fn unpin_file(&self, path: &str) {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.pins.get_mut(path) {
            *c = c.saturating_sub(1);
            if *c == 0 {
                inner.pins.remove(path);
            }
        }
        self.publish_pinned(&inner);
    }

    /// Drops every committed entry and staged chunk of `path`.
    pub fn invalidate_file(&self, path: &str) {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner
            .entries
            .keys()
            .filter(|(p, _)| p == path)
            .cloned()
            .collect();
        for k in keys {
            let e = inner.entries.remove(&k).expect("entry present");
            inner.used -= e.bytes;
        }
        inner.pending.remove(path);
        self.publish_pinned(&inner);
    }

    /// Drops the committed entry and staged chunks of one partition.
    pub fn invalidate_partition(&self, path: &str, pid: PartitionId) {
        let mut inner = self.inner.lock();
        if let Some(e) = inner.entries.remove(&(path.to_string(), pid)) {
            inner.used -= e.bytes;
        }
        if let Some(staged) = inner.pending.get_mut(path) {
            staged.remove(&pid);
        }
        self.publish_pinned(&inner);
    }

    /// Drops everything `node` holds — committed and staged. Called on
    /// node death, drain and decommission so recovery (and post-churn
    /// scheduling) falls back to the DFS's persisted replicas.
    pub fn invalidate_node(&self, node: NodeId) {
        let mut inner = self.inner.lock();
        let keys: Vec<_> = inner
            .entries
            .iter()
            .filter(|(_, e)| e.holder == node)
            .map(|(k, _)| k.clone())
            .collect();
        for k in keys {
            let e = inner.entries.remove(&k).expect("entry present");
            inner.used -= e.bytes;
        }
        for staged in inner.pending.values_mut() {
            staged.retain(|_, s| s.holder != node);
        }
        inner.pending.retain(|_, staged| !staged.is_empty());
        self.publish_pinned(&inner);
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> ChainCacheStats {
        let inner = self.inner.lock();
        ChainCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            hits_local: self.hits_local.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            spills: self.spills.load(Ordering::Relaxed),
            read_bytes: self.read_bytes.load(Ordering::Relaxed),
            used_bytes: inner.used,
            entries: inner.entries.len() as u64,
        }
    }

    fn publish_pinned(&self, inner: &Inner) {
        if let Some(obs) = &self.obs {
            obs.pinned_bytes.set(inner.pinned_bytes() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize, fill: u8) -> Bytes {
        Bytes::from(vec![fill; n])
    }

    fn hash(b: &Bytes) -> u64 {
        rcmp_model::hash::hash_bytes(b)
    }

    #[test]
    fn stage_commit_read_roundtrip() {
        let cache = ChainCache::new(ByteSize::bytes(1024));
        let c0 = payload(10, 1);
        let c1 = payload(20, 2);
        cache.stage("out", PartitionId(0), NodeId(2), &[c0.clone(), c1.clone()]);
        // Nothing readable before commit.
        assert!(cache
            .get_chunk("out", PartitionId(0), 0, hash(&c0), NodeId(2))
            .is_none());
        cache.commit("out");
        let (data, holder) = cache
            .get_chunk("out", PartitionId(0), 0, hash(&c0), NodeId(2))
            .expect("hit");
        assert_eq!(data, c0);
        assert_eq!(holder, NodeId(2));
        let (data, _) = cache
            .get_chunk("out", PartitionId(0), 1, hash(&c1), NodeId(0))
            .expect("hit");
        assert_eq!(data, c1);
        let s = cache.stats();
        assert_eq!(s.hits, 2);
        assert_eq!(s.hits_local, 1);
        assert_eq!(s.misses, 1);
        assert_eq!(s.read_bytes, 30);
        assert_eq!(s.used_bytes, 30);
        assert_eq!(cache.holder("out", PartitionId(0)), Some(NodeId(2)));
    }

    #[test]
    fn hash_mismatch_invalidates_and_misses() {
        let cache = ChainCache::new(ByteSize::bytes(1024));
        let c = payload(10, 1);
        cache.stage("out", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.commit("out");
        assert!(cache
            .get_chunk("out", PartitionId(0), 0, hash(&c) ^ 1, NodeId(0))
            .is_none());
        // The stale entry is gone entirely.
        assert!(cache
            .get_chunk("out", PartitionId(0), 0, hash(&c), NodeId(0))
            .is_none());
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn tiny_budget_spills_everything() {
        let cache = ChainCache::new(ByteSize::bytes(5));
        let c = payload(10, 1);
        cache.stage("out", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.stage("out", PartitionId(1), NodeId(1), std::slice::from_ref(&c));
        cache.commit("out");
        let s = cache.stats();
        assert_eq!(s.spills, 2);
        assert_eq!(s.entries, 0);
        assert!(cache
            .get_chunk("out", PartitionId(0), 0, hash(&c), NodeId(0))
            .is_none());
    }

    #[test]
    fn lru_evicts_oldest_unpinned_and_respects_pins() {
        let cache = ChainCache::new(ByteSize::bytes(25));
        let a = payload(10, 1);
        cache.stage("a", PartitionId(0), NodeId(0), std::slice::from_ref(&a));
        cache.commit("a");
        let b = payload(10, 2);
        cache.stage("b", PartitionId(0), NodeId(1), std::slice::from_ref(&b));
        cache.commit("b");
        assert_eq!(cache.stats().entries, 2);

        // Pin "a": committing "c" must evict "b" (oldest unpinned), not "a".
        cache.pin_file("a");
        let c = payload(10, 3);
        cache.stage("c", PartitionId(0), NodeId(2), std::slice::from_ref(&c));
        cache.commit("c");
        assert!(cache.holder("a", PartitionId(0)).is_some());
        assert!(cache.holder("b", PartitionId(0)).is_none());
        assert!(cache.holder("c", PartitionId(0)).is_some());
        cache.unpin_file("a");

        // With everything unpinned, the next commit evicts oldest-first.
        let d = payload(20, 4);
        cache.stage("d", PartitionId(0), NodeId(3), std::slice::from_ref(&d));
        cache.commit("d");
        assert!(cache.holder("d", PartitionId(0)).is_some());
        assert_eq!(cache.stats().used_bytes, 20);
    }

    #[test]
    fn pinned_entries_spill_rather_than_evict() {
        let cache = ChainCache::new(ByteSize::bytes(10));
        let a = payload(10, 1);
        cache.stage("a", PartitionId(0), NodeId(0), std::slice::from_ref(&a));
        cache.commit("a");
        cache.pin_file("a");
        let b = payload(10, 2);
        cache.stage("b", PartitionId(0), NodeId(1), std::slice::from_ref(&b));
        cache.commit("b");
        // "a" is pinned and fills the budget: "b" spills.
        assert!(cache.holder("a", PartitionId(0)).is_some());
        assert!(cache.holder("b", PartitionId(0)).is_none());
        assert_eq!(cache.stats().spills, 1);
        cache.unpin_file("a");
    }

    #[test]
    fn invalidations_drop_committed_and_staged() {
        let cache = ChainCache::new(ByteSize::bytes(1024));
        let c = payload(10, 1);
        cache.stage("x", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.stage("x", PartitionId(1), NodeId(1), std::slice::from_ref(&c));
        cache.commit("x");
        cache.stage("y", PartitionId(0), NodeId(1), std::slice::from_ref(&c));

        cache.invalidate_partition("x", PartitionId(0));
        assert!(cache.holder("x", PartitionId(0)).is_none());
        assert!(cache.holder("x", PartitionId(1)).is_some());

        // Node 1 dies: its committed entry and its staged chunks go.
        cache.invalidate_node(NodeId(1));
        assert!(cache.holder("x", PartitionId(1)).is_none());
        cache.commit("y");
        assert!(cache.holder("y", PartitionId(0)).is_none());

        cache.stage("z", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.commit("z");
        cache.invalidate_file("z");
        assert_eq!(cache.stats().entries, 0);
        assert_eq!(cache.stats().used_bytes, 0);
    }

    #[test]
    fn abort_drops_staged_only() {
        let cache = ChainCache::new(ByteSize::bytes(1024));
        let c = payload(10, 1);
        cache.stage("x", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.commit("x");
        cache.stage("y", PartitionId(0), NodeId(0), std::slice::from_ref(&c));
        cache.abort("y");
        cache.commit("y");
        assert!(cache.holder("y", PartitionId(0)).is_none());
        assert!(cache.holder("x", PartitionId(0)).is_some());
    }

    #[test]
    fn recommit_replaces_previous_version() {
        let cache = ChainCache::new(ByteSize::bytes(1024));
        let v1 = payload(10, 1);
        cache.stage("x", PartitionId(0), NodeId(0), std::slice::from_ref(&v1));
        cache.commit("x");
        let v2 = payload(12, 2);
        cache.stage("x", PartitionId(0), NodeId(1), std::slice::from_ref(&v2));
        cache.commit("x");
        assert_eq!(cache.stats().used_bytes, 12);
        assert!(cache
            .get_chunk("x", PartitionId(0), 0, hash(&v2), NodeId(1))
            .is_some());
        // Probing with the old version's hash misses (and drops the
        // entry — a reader expecting v1 must go to the DFS).
        assert!(cache
            .get_chunk("x", PartitionId(0), 0, hash(&v1), NodeId(0))
            .is_none());
        assert!(cache.holder("x", PartitionId(0)).is_none());
    }
}
