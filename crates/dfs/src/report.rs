//! Data-loss reports emitted when a node fails.

use rcmp_model::{NodeId, PartitionId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// What a node failure destroyed, as seen by the DFS master.
///
/// This is the message the Master forwards to the RCMP middleware
/// (§IV-A): "which files (job outputs) were affected and also which
/// specific reducer outputs were affected".
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossReport {
    /// The failed node.
    pub node: Option<NodeId>,
    /// Partitions that lost *all* replicas, per file: irreversible loss.
    pub lost: BTreeMap<String, Vec<PartitionId>>,
    /// Partitions that lost *some* replicas but still have at least one:
    /// readable, merely under-replicated.
    pub under_replicated: BTreeMap<String, Vec<PartitionId>>,
}

impl LossReport {
    /// True if no partition was irreversibly lost (replication absorbed
    /// the failure).
    pub fn is_benign(&self) -> bool {
        self.lost.is_empty()
    }

    /// Total number of irreversibly lost partitions across all files.
    pub fn lost_partition_count(&self) -> usize {
        self.lost.values().map(Vec::len).sum()
    }

    /// Lost partitions of one file, if any.
    pub fn lost_in(&self, file: &str) -> &[PartitionId] {
        self.lost.get(file).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Merges another report into this one (for multiple failures
    /// serviced by a single recomputation, §IV-A: "RCMP only needs to
    /// be careful and tag the submitted recomputation job with the
    /// reducer outputs damaged by all failures").
    pub fn merge(&mut self, other: &LossReport) {
        for (f, parts) in &other.lost {
            let entry = self.lost.entry(f.clone()).or_default();
            for p in parts {
                if !entry.contains(p) {
                    entry.push(*p);
                }
            }
            entry.sort();
        }
        for (f, parts) in &other.under_replicated {
            let entry = self.under_replicated.entry(f.clone()).or_default();
            for p in parts {
                if !entry.contains(p) {
                    entry.push(*p);
                }
            }
            entry.sort();
        }
    }
}

/// What a graceful decommission moved, as seen by the DFS master — the
/// benign counterpart of [`LossReport`]: nothing is ever lost, replicas
/// are copied off the leaving node before its store is wiped.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RebalanceReport {
    /// The decommissioned node.
    pub node: Option<NodeId>,
    /// Block replicas copied to a new holder before the wipe.
    pub blocks_moved: usize,
    /// Payload bytes copied.
    pub bytes_moved: u64,
    /// Block replicas simply dropped because every placement target
    /// already held a copy (the block stays readable elsewhere, merely
    /// less replicated).
    pub blocks_dropped: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_report() {
        let mut r = LossReport::default();
        assert!(r.is_benign());
        r.under_replicated
            .insert("out/1".into(), vec![PartitionId(0)]);
        assert!(r.is_benign());
        r.lost.insert("out/2".into(), vec![PartitionId(3)]);
        assert!(!r.is_benign());
        assert_eq!(r.lost_partition_count(), 1);
        assert_eq!(r.lost_in("out/2"), &[PartitionId(3)]);
        assert_eq!(r.lost_in("nope"), &[] as &[PartitionId]);
    }

    #[test]
    fn merge_dedups_and_sorts() {
        let mut a = LossReport {
            node: Some(NodeId(1)),
            ..Default::default()
        };
        a.lost.insert("f".into(), vec![PartitionId(2)]);
        let mut b = LossReport::default();
        b.lost
            .insert("f".into(), vec![PartitionId(0), PartitionId(2)]);
        b.lost.insert("g".into(), vec![PartitionId(1)]);
        a.merge(&b);
        assert_eq!(a.lost["f"], vec![PartitionId(0), PartitionId(2)]);
        assert_eq!(a.lost["g"], vec![PartitionId(1)]);
        assert_eq!(a.lost_partition_count(), 3);
    }
}
