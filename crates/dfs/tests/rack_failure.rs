//! §III-A: "current replication strategies protect … against single
//! rack-level failures" — but only with rack-aware placement. This test
//! kills an entire rack and shows rack-aware factor-2 placement
//! surviving where rack-oblivious placement can lose data.

use bytes::Bytes;
use rcmp_dfs::{Dfs, DfsConfig, PlacementPolicy, RackTopology};
use rcmp_model::{ByteSize, NodeId, PartitionId};

const NODES: u32 = 9;
const RACKS: u32 = 3;

fn write_everywhere(dfs: &Dfs, partitions: u32) {
    dfs.create_file("data", 2, partitions).unwrap();
    for p in 0..partitions {
        dfs.write_partition_segment(
            "data",
            PartitionId(p),
            Bytes::from(vec![p as u8; 300]),
            NodeId(p % NODES),
            PlacementPolicy::WriterLocal,
        )
        .unwrap();
    }
}

fn kill_rack(dfs: &Dfs, topo: &RackTopology, rack: u32) -> usize {
    let mut lost = 0;
    for node in topo.rack_members(rack) {
        lost += dfs.fail_node(node).lost_partition_count();
    }
    lost
}

#[test]
fn rack_aware_factor2_survives_rack_failure() {
    let topo = RackTopology::new(NODES, RACKS);
    let dfs = Dfs::new(DfsConfig::new(NODES, ByteSize::bytes(128)).with_topology(topo));
    write_everywhere(&dfs, 27);
    for rack in 0..RACKS {
        // Fresh instance per rack so each kill starts from full health.
        let dfs = Dfs::new(DfsConfig::new(NODES, ByteSize::bytes(128)).with_topology(topo));
        write_everywhere(&dfs, 27);
        let lost = kill_rack(&dfs, &topo, rack);
        assert_eq!(
            lost, 0,
            "rack-aware placement must survive losing rack {rack}"
        );
        // Every partition still readable from the survivors.
        let reader = dfs.live_nodes()[0];
        for p in 0..27 {
            dfs.read_partition("data", PartitionId(p), reader).unwrap();
        }
    }
}

#[test]
fn rack_oblivious_factor2_can_lose_a_rack() {
    // Without a topology, the second replica lands uniformly at random;
    // with 27 partitions and 9 nodes in 3 racks, the chance that *no*
    // partition has both replicas in the victim rack is negligible.
    let topo = RackTopology::new(NODES, RACKS);
    let mut any_loss = false;
    for rack in 0..RACKS {
        let dfs = Dfs::new(DfsConfig::new(NODES, ByteSize::bytes(128)));
        write_everywhere(&dfs, 27);
        if kill_rack(&dfs, &topo, rack) > 0 {
            any_loss = true;
        }
    }
    assert!(
        any_loss,
        "rack-oblivious placement should lose data in some rack failure"
    );
}

#[test]
fn rack_aware_triple_replication_spreads_two_racks_minimum() {
    let topo = RackTopology::new(NODES, RACKS);
    let dfs = Dfs::new(DfsConfig::new(NODES, ByteSize::bytes(128)).with_topology(topo));
    dfs.create_file("f", 3, 1).unwrap();
    dfs.write_partition_segment(
        "f",
        PartitionId(0),
        Bytes::from(vec![7u8; 500]),
        NodeId(4),
        PlacementPolicy::WriterLocal,
    )
    .unwrap();
    let meta = dfs.file_meta("f").unwrap();
    for b in meta.partitions[0].blocks() {
        let racks: std::collections::HashSet<u32> =
            b.replicas.iter().map(|&n| topo.rack_of(n)).collect();
        assert!(
            racks.len() >= 2,
            "3 replicas must span at least 2 racks: {:?}",
            b.replicas
        );
    }
}
