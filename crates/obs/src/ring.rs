//! The always-on flight recorder.
//!
//! The [`crate::Tracer`] keeps *everything* and is meant for offline
//! figure generation; a production service cannot afford unbounded
//! retention. The [`FlightRecorder`] is the bounded complement: a set
//! of fixed-capacity per-shard ring buffers of compact, fixed-size
//! [`FlightEvent`] records. Recording is lock-light (each thread
//! appends to its own shard behind an uncontended mutex), eviction is
//! oldest-first within a shard, and every eviction is counted — the
//! invariant `recorded == retained + dropped` holds exactly at any
//! snapshot. The recorder also measures its own cost (sampled
//! record-path nanoseconds, bytes retained, drop rate) so the overhead
//! budget is a number the layer itself reports rather than a promise.

use crate::clock::Clock;
use parking_lot::Mutex;
use rcmp_model::NodeId;
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Default number of ring shards.
pub const DEFAULT_SHARDS: usize = 16;

/// Default per-shard capacity (events retained per shard).
pub const DEFAULT_CAPACITY: usize = 4096;

/// Self-measurement sampling: one in `2^SAMPLE_SHIFT` records is timed.
const SAMPLE_SHIFT: u64 = 6;

thread_local! {
    /// This thread's ring shard, assigned round-robin on first record.
    static MY_RING_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Round-robin counter for ring-shard assignment.
static NEXT_RING_SHARD: AtomicUsize = AtomicUsize::new(0);

/// What a flight-recorder event describes. Codes are compact on
/// purpose: the recorder trades the tracer's rich payloads for a
/// fixed-size record that can be retained by the million.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventCode {
    /// A job run started (`a` = run seq, `b` = 1 for recompute runs).
    JobStart,
    /// A job run finished (`a` = run seq, `b` = 1 on success).
    JobEnd,
    /// A scheduling wave started (`a` = wave index, `b` = tasks).
    WaveStart,
    /// A scheduling wave finished (`a` = wave index, `b` = tasks).
    WaveEnd,
    /// A task attempt finished (`a` = raw task id, `b` = 1 on success).
    TaskDone,
    /// A task attempt is being retried (`a` = raw task id, `b` = attempt).
    TaskRetry,
    /// A shuffle fetch hit a transient failure (`a` = source node).
    ShuffleRetry,
    /// A retry slept its backoff (`a` = milliseconds, `b` = attempt).
    BackoffWait,
    /// A fault was injected (`a` = run seq).
    FaultInjected,
    /// Irreversible partition loss was observed (`a` = run seq,
    /// `b` = partitions lost).
    PartitionsLost,
    /// A cascading recovery was planned (`a` = steps, `b` = partitions).
    RecoveryPlanned,
    /// A recomputation run was submitted (`a` = run seq, `b` = job).
    RecomputeStarted,
    /// A block replica failed checksum verification (`a` = raw block id).
    BlockVerifyFailed,
    /// The adaptive policy switched its replication cadence
    /// (`a` = new interval, 0 = never; `b` = rate estimate, ppm).
    CadenceSwitched,
    /// Free-form probe point (`a`/`b` site-defined).
    Probe,
}

/// One compact flight-recorder record. Fixed size — no heap payload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Global record sequence number (total order across shards).
    pub seq: u64,
    /// Timestamp, microseconds on the recorder's [`Clock`].
    pub t_us: u64,
    /// Node the event is attributed to (`u32::MAX` = none).
    pub node: u32,
    /// Event code.
    pub code: EventCode,
    /// First payload word (meaning per [`EventCode`]).
    pub a: u64,
    /// Second payload word (meaning per [`EventCode`]).
    pub b: u64,
}

impl FlightEvent {
    /// The node this event is attributed to, if any.
    pub fn node_id(&self) -> Option<NodeId> {
        (self.node != u32::MAX).then_some(NodeId(self.node))
    }
}

/// One shard: a bounded deque plus exact local accounting.
struct RingShard {
    buf: VecDeque<FlightEvent>,
    recorded: u64,
    dropped: u64,
}

/// Point-in-time contents of the recorder, merged across shards.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct FlightLog {
    /// Retained events in global `seq` order (oldest first).
    pub events: Vec<FlightEvent>,
    /// Total events ever recorded.
    pub recorded: u64,
    /// Events evicted oldest-first to stay within capacity.
    pub dropped: u64,
}

/// The recorder's self-measured cost.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RecorderStats {
    /// Total events ever recorded.
    pub recorded: u64,
    /// Events currently retained across all shards.
    pub retained: u64,
    /// Events evicted to stay within capacity.
    pub dropped: u64,
    /// Bytes currently retained (`retained × sizeof(FlightEvent)`).
    pub bytes_retained: u64,
    /// Mean nanoseconds per record call, from sampled timings
    /// (0 when nothing was sampled yet).
    pub record_ns_per_op: u64,
    /// How many record calls were timed for the mean.
    pub samples: u64,
}

impl RecorderStats {
    /// Fraction of recorded events that were dropped, in [0, 1].
    pub fn drop_rate(&self) -> f64 {
        if self.recorded == 0 {
            0.0
        } else {
            self.dropped as f64 / self.recorded as f64
        }
    }
}

/// Lock-light, fixed-capacity, always-on event recorder.
pub struct FlightRecorder {
    clock: Clock,
    enabled: AtomicBool,
    seq: AtomicU64,
    capacity_per_shard: usize,
    shards: Vec<Mutex<RingShard>>,
    sampled_ns: AtomicU64,
    samples: AtomicU64,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        Self::new(Clock::monotonic(), DEFAULT_CAPACITY, DEFAULT_SHARDS)
    }
}

impl FlightRecorder {
    /// Creates a recorder with `capacity_per_shard` retained events per
    /// shard across `shards` shards (use `shards = 1` for tests that
    /// assert exact eviction order regardless of calling thread).
    pub fn new(clock: Clock, capacity_per_shard: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let capacity_per_shard = capacity_per_shard.max(1);
        Self {
            clock,
            enabled: AtomicBool::new(true),
            seq: AtomicU64::new(0),
            capacity_per_shard,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(RingShard {
                        buf: VecDeque::with_capacity(capacity_per_shard),
                        recorded: 0,
                        dropped: 0,
                    })
                })
                .collect(),
            sampled_ns: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }

    /// A recorder with default capacity and sharding timestamping
    /// through `clock` (the production configuration).
    pub fn with_defaults(clock: Clock) -> Self {
        Self::new(clock, DEFAULT_CAPACITY, DEFAULT_SHARDS)
    }

    /// A recorder that discards everything at the cost of one relaxed
    /// atomic load per call — the A/B baseline for the overhead bench.
    pub fn disabled() -> Self {
        let r = Self::default();
        r.enabled.store(false, Ordering::Relaxed);
        r
    }

    /// Turns recording on or off at runtime.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether the recorder currently retains events.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// The clock this recorder timestamps with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Records one event. Lock-light: one global sequence fetch-add
    /// plus this thread's shard lock.
    pub fn record(&self, code: EventCode, node: Option<NodeId>, a: u64, b: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let timed = seq & ((1 << SAMPLE_SHIFT) - 1) == 0;
        let t0 = timed.then(Instant::now);
        let ev = FlightEvent {
            seq,
            t_us: self.clock.now_us(),
            node: node.map_or(u32::MAX, |n| n.0),
            code,
            a,
            b,
        };
        self.push(ev);
        if let Some(t0) = t0 {
            self.sampled_ns
                .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            self.samples.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records an event with an explicit timestamp (used by replay and
    /// by the simulator, where time is virtual).
    pub fn record_at(&self, t_us: u64, code: EventCode, node: Option<NodeId>, a: u64, b: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.push(FlightEvent {
            seq,
            t_us,
            node: node.map_or(u32::MAX, |n| n.0),
            code,
            a,
            b,
        });
    }

    fn push(&self, ev: FlightEvent) {
        let idx = MY_RING_SHARD.with(|c| {
            let mut idx = c.get();
            if idx == usize::MAX {
                idx = NEXT_RING_SHARD.fetch_add(1, Ordering::Relaxed) % self.shards.len();
                c.set(idx);
            }
            idx % self.shards.len()
        });
        let mut shard = self.shards[idx].lock();
        if shard.buf.len() == self.capacity_per_shard {
            shard.buf.pop_front();
            shard.dropped += 1;
        }
        shard.buf.push_back(ev);
        shard.recorded += 1;
    }

    /// Merges all shards into a [`FlightLog`] ordered by global `seq`.
    /// Non-destructive.
    pub fn snapshot(&self) -> FlightLog {
        let mut events = Vec::new();
        let mut recorded = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let s = shard.lock();
            events.extend(s.buf.iter().copied());
            recorded += s.recorded;
            dropped += s.dropped;
        }
        events.sort_unstable_by_key(|e| e.seq);
        FlightLog {
            events,
            recorded,
            dropped,
        }
    }

    /// The recorder's self-measured cost right now.
    pub fn stats(&self) -> RecorderStats {
        let mut recorded = 0;
        let mut retained = 0;
        let mut dropped = 0;
        for shard in &self.shards {
            let s = shard.lock();
            recorded += s.recorded;
            retained += s.buf.len() as u64;
            dropped += s.dropped;
        }
        let samples = self.samples.load(Ordering::Relaxed);
        let record_ns_per_op = self
            .sampled_ns
            .load(Ordering::Relaxed)
            .checked_div(samples)
            .unwrap_or(0);
        RecorderStats {
            recorded,
            retained,
            dropped,
            bytes_retained: retained * std::mem::size_of::<FlightEvent>() as u64,
            record_ns_per_op,
            samples,
        }
    }
}

impl FlightLog {
    /// The last `n` retained events (most recent portion of the log).
    pub fn last(&self, n: usize) -> &[FlightEvent] {
        let start = self.events.len().saturating_sub(n);
        &self.events[start..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_shard(cap: usize) -> FlightRecorder {
        FlightRecorder::new(Clock::monotonic(), cap, 1)
    }

    #[test]
    fn retains_everything_under_capacity() {
        let r = single_shard(8);
        for i in 0..5 {
            r.record(EventCode::Probe, None, i, 0);
        }
        let log = r.snapshot();
        assert_eq!(log.recorded, 5);
        assert_eq!(log.dropped, 0);
        let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn overflow_evicts_oldest_first_with_exact_drop_accounting() {
        let r = single_shard(4);
        for i in 0..10 {
            r.record(EventCode::Probe, None, i, 0);
        }
        let log = r.snapshot();
        assert_eq!(log.recorded, 10);
        assert_eq!(log.dropped, 6);
        assert_eq!(log.recorded, log.dropped + log.events.len() as u64);
        // The four newest survive, oldest-first within the window.
        let payloads: Vec<u64> = log.events.iter().map(|e| e.a).collect();
        assert_eq!(payloads, vec![6, 7, 8, 9]);
    }

    #[test]
    fn disabled_recorder_retains_nothing() {
        let r = FlightRecorder::disabled();
        r.record(EventCode::Probe, None, 1, 2);
        let log = r.snapshot();
        assert_eq!(log.recorded, 0);
        assert!(log.events.is_empty());
        let stats = r.stats();
        assert_eq!(stats.recorded, 0);
        assert_eq!(stats.drop_rate(), 0.0);
    }

    #[test]
    fn stats_account_bytes_and_invariant_across_threads() {
        use std::sync::Arc;
        let r = Arc::new(FlightRecorder::new(Clock::monotonic(), 16, 4));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..100 {
                        r.record(EventCode::TaskDone, Some(NodeId(1)), i, 1);
                    }
                });
            }
        });
        let stats = r.stats();
        assert_eq!(stats.recorded, 800);
        assert_eq!(stats.recorded, stats.retained + stats.dropped);
        assert_eq!(
            stats.bytes_retained,
            stats.retained * std::mem::size_of::<FlightEvent>() as u64
        );
        assert!(stats.samples > 0, "sampled self-measurement ran");
    }

    #[test]
    fn manual_clock_timestamps_are_deterministic() {
        let (clock, hand) = Clock::manual();
        let r = FlightRecorder::new(clock, 8, 1);
        r.record(EventCode::Probe, None, 0, 0);
        hand.advance_us(500);
        r.record(EventCode::Probe, None, 1, 0);
        let log = r.snapshot();
        assert_eq!(log.events[0].t_us, 0);
        assert_eq!(log.events[1].t_us, 500);
    }
}
