//! A small metrics registry: counters, gauges and fixed-bucket
//! histograms.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap `Arc`s over
//! atomics — created once (typically when a component is constructed)
//! and updated lock-free from hot paths like the wave executor and the
//! shuffle. The registry itself is only locked on registration and
//! snapshot.

use parking_lot::Mutex;
use serde::Serialize;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// Monotonically increasing counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed value (e.g. busy slots on a node).
#[derive(Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`; one implicit overflow bucket catches the rest.
#[derive(Clone)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    counts: Arc<Vec<AtomicU64>>,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        let mut b = bounds.to_vec();
        b.sort_unstable();
        b.dedup();
        let counts = (0..=b.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: Arc::new(b),
            counts: Arc::new(counts),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Bucket upper bounds (the final overflow bucket is implicit).
    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    /// Per-bucket counts, overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Shared registry of named metrics.
///
/// `counter`/`gauge`/`histogram` are get-or-create: the first
/// registration under a name wins; asking for an existing name with a
/// different type returns a fresh *detached* handle (functional but not
/// part of snapshots), so hot paths never panic over naming collisions.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<BTreeMap<String, Metric>>,
}

thread_local! {
    /// Depth of active hot scopes on *this thread* (waves this thread
    /// is driving). Non-zero depth makes by-name resolution a
    /// debug-assertion failure: hot paths must use pre-resolved
    /// handles. Per-thread on purpose — a multi-tenant service starts
    /// new chains (which legitimately resolve their handles by name at
    /// construction) while other chains' waves are in flight on other
    /// threads.
    static HOT_DEPTH: std::cell::Cell<usize> = const { std::cell::Cell::new(0) };
}

/// RAII marker from [`MetricsRegistry::enter_hot_scope`]: while alive,
/// by-name metric resolution *on the owning thread* debug-asserts.
/// Metric *handles* (already resolved) stay usable — they never touch
/// the registry. Deliberately `!Send`: the depth is thread-local, so
/// the guard must drop on the thread that created it.
pub struct HotScopeGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

impl Drop for HotScopeGuard {
    fn drop(&mut self) {
        HOT_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

/// Snapshot value of one metric.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum SnapshotValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram: bucket upper bounds, per-bucket counts (overflow
    /// last), and the total observation count.
    Histogram {
        /// Inclusive bucket upper bounds.
        bounds: Vec<u64>,
        /// Per-bucket counts, overflow bucket last.
        counts: Vec<u64>,
        /// Total observations.
        total: u64,
    },
}

/// A point-in-time, name-ordered view of every registered metric.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs in ascending name order.
    pub entries: Vec<(String, SnapshotValue)>,
}

impl MetricsSnapshot {
    /// Looks a metric up by name.
    pub fn get(&self, name: &str) -> Option<&SnapshotValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: the value of a counter, or `None` when absent or of
    /// another type.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            SnapshotValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Deterministic text rendering. Histograms render their total
    /// observation count only — bucket spreads depend on wall-clock
    /// timing, and this output is used in byte-identical example runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.entries {
            match v {
                SnapshotValue::Counter(c) => out.push_str(&format!("{name} = {c}\n")),
                SnapshotValue::Gauge(g) => out.push_str(&format!("{name} = {g}\n")),
                SnapshotValue::Histogram { total, .. } => {
                    out.push_str(&format!("{name} = {total} observations\n"))
                }
            }
        }
        out
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks the start of a hot region (a wave in flight on this
    /// thread): until the returned guard drops, by-name metric
    /// resolution *from this thread* debug-asserts. Pre-resolve handles
    /// before entering; this catches the regression where a hot path
    /// quietly reintroduces a registry lock mid-wave. The scope is
    /// per-thread so that other chains' control planes (which resolve
    /// their handles at construction) may run concurrently.
    pub fn enter_hot_scope(&self) -> HotScopeGuard {
        HOT_DEPTH.with(|d| d.set(d.get() + 1));
        HotScopeGuard {
            _not_send: std::marker::PhantomData,
        }
    }

    #[track_caller]
    fn assert_not_hot(&self, name: &str) {
        debug_assert_eq!(
            HOT_DEPTH.with(std::cell::Cell::get),
            0,
            "by-name metric resolution of {name:?} inside a hot scope (a wave is in flight); \
             pre-resolve the handle at construction time",
        );
    }

    /// Gets or creates a counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.assert_not_hot(name);
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => Counter::default(),
        }
    }

    /// Gets or creates a gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.assert_not_hot(name);
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::default(),
        }
    }

    /// Gets or creates a fixed-bucket histogram. `bounds` only applies
    /// on first registration.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.assert_not_hot(name);
        let mut inner = self.inner.lock();
        match inner
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(bounds),
        }
    }

    /// Point-in-time view of every registered metric, name-ordered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock();
        MetricsSnapshot {
            entries: inner
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                        Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                        Metric::Histogram(h) => SnapshotValue::Histogram {
                            bounds: h.bounds().to_vec(),
                            counts: h.bucket_counts(),
                            total: h.count(),
                        },
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_share_state_across_handles() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.inc();
        b.add(2);
        assert_eq!(reg.snapshot().counter("c"), Some(3));

        let g = reg.gauge("g");
        g.set(5);
        g.add(-2);
        assert_eq!(reg.snapshot().get("g"), Some(&SnapshotValue::Gauge(3)));
    }

    #[test]
    fn histogram_buckets_observations() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("h", &[10, 100]);
        h.observe(5);
        h.observe(10);
        h.observe(50);
        h.observe(1000);
        assert_eq!(h.count(), 4);
        assert_eq!(h.bucket_counts(), vec![2, 1, 1]);
        match reg.snapshot().get("h").unwrap() {
            SnapshotValue::Histogram { total, counts, .. } => {
                assert_eq!(*total, 4);
                assert_eq!(counts, &vec![2, 1, 1]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn type_collision_returns_detached_handle() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("x");
        c.inc();
        let g = reg.gauge("x"); // wrong type: detached
        g.set(99);
        assert_eq!(reg.snapshot().counter("x"), Some(1));
    }

    #[test]
    fn hot_scope_permits_handle_use_and_nested_guards() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("pre.resolved");
        let outer = reg.enter_hot_scope();
        {
            let _inner = reg.enter_hot_scope();
            c.add(5); // handles never touch the registry
        }
        drop(outer);
        // All guards dropped: by-name resolution is legal again.
        assert_eq!(reg.counter("pre.resolved").get(), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "inside a hot scope")]
    fn by_name_resolution_inside_hot_scope_panics_in_debug() {
        let reg = MetricsRegistry::new();
        let _guard = reg.enter_hot_scope();
        let _ = reg.counter("late.lookup");
    }

    #[test]
    fn hot_scope_is_per_thread() {
        // A wave in flight on this thread must not block another
        // chain's control plane (a different thread) from resolving
        // its handles by name.
        let reg = Arc::new(MetricsRegistry::new());
        let _guard = reg.enter_hot_scope();
        let reg2 = Arc::clone(&reg);
        let other = std::thread::spawn(move || {
            reg2.counter("other.chain").inc();
        });
        other.join().expect("no panic on the other thread");
        drop(_guard);
        assert_eq!(reg.snapshot().counter("other.chain"), Some(1));
    }

    #[test]
    fn render_is_sorted_and_total_only_for_histograms() {
        let reg = MetricsRegistry::new();
        reg.counter("b.count").add(2);
        reg.histogram("a.lat", &[1]).observe(7);
        let text = reg.snapshot().render();
        assert_eq!(text, "a.lat = 1 observations\nb.count = 2\n");
    }
}
