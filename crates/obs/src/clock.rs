//! The clock seam.
//!
//! Everything in this crate that timestamps (the [`crate::Tracer`], the
//! flight recorder, the phase profiler) reads time through a [`Clock`]
//! instead of calling [`Instant::now`] directly. Production code uses
//! [`Clock::monotonic`]; tests and the simulator use [`Clock::manual`],
//! which is driven explicitly (the sim advances it from virtual time),
//! so ordering assertions and phase-timer arithmetic are deterministic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A monotonic microsecond clock, cloneable and thread-safe.
///
/// Clones share the same time source: two clones of a manual clock see
/// every [`ManualClock::advance_us`] identically, and two clones of a
/// monotonic clock share one epoch.
#[derive(Clone)]
pub struct Clock(Source);

#[derive(Clone)]
enum Source {
    Monotonic(Instant),
    Manual(Arc<AtomicU64>),
}

impl Default for Clock {
    fn default() -> Self {
        Self::monotonic()
    }
}

impl Clock {
    /// Real wall-clock time; the epoch is the creation instant.
    pub fn monotonic() -> Self {
        Self(Source::Monotonic(Instant::now()))
    }

    /// A manually driven clock starting at 0 µs, plus the handle that
    /// advances it.
    pub fn manual() -> (Self, ManualClock) {
        let cell = Arc::new(AtomicU64::new(0));
        (Self(Source::Manual(cell.clone())), ManualClock { cell })
    }

    /// Microseconds since the clock's epoch.
    pub fn now_us(&self) -> u64 {
        match &self.0 {
            Source::Monotonic(epoch) => epoch.elapsed().as_micros() as u64,
            Source::Manual(cell) => cell.load(Ordering::SeqCst),
        }
    }

    /// True when this clock is driven manually (virtual time).
    pub fn is_manual(&self) -> bool {
        matches!(self.0, Source::Manual(_))
    }
}

/// Writer handle for a manual [`Clock`].
#[derive(Clone)]
pub struct ManualClock {
    cell: Arc<AtomicU64>,
}

impl ManualClock {
    /// Advances the clock by `us` microseconds.
    pub fn advance_us(&self, us: u64) {
        self.cell.fetch_add(us, Ordering::SeqCst);
    }

    /// Jumps the clock to an absolute microsecond timestamp. Only moves
    /// forward: a target earlier than the current reading is ignored so
    /// the clock stays monotonic.
    pub fn set_us(&self, us: u64) {
        self.cell.fetch_max(us, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_deterministic_and_shared() {
        let (clock, hand) = Clock::manual();
        let clone = clock.clone();
        assert_eq!(clock.now_us(), 0);
        hand.advance_us(250);
        assert_eq!(clock.now_us(), 250);
        assert_eq!(clone.now_us(), 250);
        hand.set_us(1_000);
        assert_eq!(clock.now_us(), 1_000);
        // set_us never rewinds.
        hand.set_us(10);
        assert_eq!(clock.now_us(), 1_000);
        assert!(clock.is_manual());
    }

    #[test]
    fn monotonic_clock_advances() {
        let clock = Clock::monotonic();
        let a = clock.now_us();
        let b = clock.now_us();
        assert!(b >= a);
        assert!(!clock.is_manual());
    }
}
