//! Trace analyzers reproducing the paper's observability figures.
//!
//! * [`slot_occupancy`] — per-run wave occupancy (Fig. 4: recomputation
//!   runs cannot fill the cluster's slots, so their average occupancy
//!   is well below a full run's).
//! * [`hotspot_report`] — per-node read-load concentration over a run
//!   window (Fig. 6: after a failure, the node holding the recomputed
//!   output serves a disproportionate share of reads), with a
//!   Gini-style index.
//! * [`recomputation_critical_path`] — the cascade chain (grouped by
//!   causal lineage) whose total duration bounded recovery time.

use crate::span::{Span, SpanId, SpanKind, Trace};
use rcmp_model::{JobId, NodeId, TenantId};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Occupancy of one scheduling wave.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WaveOccupancy {
    /// True for map waves, false for reduce waves.
    pub map: bool,
    /// Wave index within its phase.
    pub index: u32,
    /// Tasks scheduled in the wave.
    pub tasks: u32,
    /// Slot capacity at assignment time.
    pub capacity: u32,
}

impl WaveOccupancy {
    /// Fraction of available slots this wave used.
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            f64::from(self.tasks) / f64::from(self.capacity)
        }
    }
}

/// Slot-occupancy profile of one job run.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOccupancy {
    /// Global run sequence number.
    pub seq: u64,
    /// Logical job.
    pub job: JobId,
    /// True for recomputation runs.
    pub recompute: bool,
    /// Per-wave occupancy, in execution order.
    pub waves: Vec<WaveOccupancy>,
}

impl RunOccupancy {
    /// Mean occupancy across the run's waves (0.0 when it ran none).
    pub fn avg_occupancy(&self) -> f64 {
        if self.waves.is_empty() {
            0.0
        } else {
            self.waves.iter().map(WaveOccupancy::occupancy).sum::<f64>() / self.waves.len() as f64
        }
    }
}

/// Extracts the per-run slot-occupancy profile (Fig. 4) from `Wave`
/// spans, ordered by run sequence number.
pub fn slot_occupancy(trace: &Trace) -> Vec<RunOccupancy> {
    let mut runs: BTreeMap<u64, RunOccupancy> = BTreeMap::new();
    let mut run_ids: HashMap<SpanId, u64> = HashMap::new();
    for s in trace.spans() {
        if let SpanKind::JobRun {
            seq,
            job,
            recompute,
            ..
        } = s.kind
        {
            run_ids.insert(s.id, seq);
            runs.insert(
                seq,
                RunOccupancy {
                    seq,
                    job,
                    recompute,
                    waves: Vec::new(),
                },
            );
        }
    }
    for s in trace.spans() {
        if let SpanKind::Wave {
            phase,
            index,
            tasks,
            capacity,
        } = s.kind
        {
            let Some(seq) = s.parent.and_then(|p| run_ids.get(&p)) else {
                continue;
            };
            if let Some(run) = runs.get_mut(seq) {
                run.waves.push(WaveOccupancy {
                    map: matches!(phase, crate::span::Phase::Map),
                    index,
                    tasks,
                    capacity,
                });
            }
        }
    }
    runs.into_values().collect()
}

/// Restricts a trace to one tenant's runs: keeps every `JobRun` span
/// tagged with `tenant` plus all spans contained in them (via `parent`
/// links). The result is a plain [`Trace`], so every existing analyzer
/// ([`slot_occupancy`], [`hotspot_report`],
/// [`recomputation_critical_path`]) filters by tenant without a schema
/// fork. Spans outside any run (cluster-level events) are dropped.
pub fn tenant_view(trace: &Trace, tenant: TenantId) -> Trace {
    let mut keep: HashSet<SpanId> = trace
        .spans()
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                SpanKind::JobRun { tenant: Some(t), .. } if t == tenant
            )
        })
        .map(|s| s.id)
        .collect();
    // Containment is parent-before-child in span-id issue order, but be
    // robust to arbitrary ordering: iterate until the closure is stable.
    loop {
        let before = keep.len();
        for s in trace.spans() {
            if let Some(p) = s.parent {
                if keep.contains(&p) {
                    keep.insert(s.id);
                }
            }
        }
        if keep.len() == before {
            break;
        }
    }
    Trace {
        spans: trace
            .spans()
            .iter()
            .filter(|s| keep.contains(&s.id))
            .cloned()
            .collect(),
    }
}

/// Read load attributed to one node over a run window.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct NodeLoad {
    /// The serving node.
    pub node: NodeId,
    /// Map-input reads this node served.
    pub map_reads: u64,
    /// Map-input bytes this node served.
    pub map_bytes: u64,
    /// Shuffle fetches this node served.
    pub shuffle_fetches: u64,
    /// Shuffle bytes this node served.
    pub shuffle_bytes: u64,
}

impl NodeLoad {
    /// Total bytes served (map input + shuffle).
    pub fn total_bytes(&self) -> u64 {
        self.map_bytes + self.shuffle_bytes
    }
}

/// Per-node read-load concentration over a run window (Fig. 6).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HotspotReport {
    /// Loads sorted by total bytes descending, then node ascending.
    pub loads: Vec<NodeLoad>,
    /// Gini-style concentration index over total bytes: 0.0 = perfectly
    /// even, approaching 1.0 = one node serves everything.
    pub gini: f64,
}

impl HotspotReport {
    /// The hottest node (most total bytes served), if any load at all.
    pub fn top(&self) -> Option<NodeId> {
        self.loads.first().map(|l| l.node)
    }

    /// Deterministic text table of the report.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "node | map reads | map bytes | shuffle fetches | shuffle bytes | total bytes\n",
        );
        for l in &self.loads {
            out.push_str(&format!(
                "{:>4} | {:>9} | {:>9} | {:>15} | {:>13} | {:>11}\n",
                l.node.0,
                l.map_reads,
                l.map_bytes,
                l.shuffle_fetches,
                l.shuffle_bytes,
                l.total_bytes()
            ));
        }
        out.push_str(&format!("gini = {:.3}\n", self.gini));
        out
    }
}

/// Builds the hot-spot report from `Task` (map-input attribution) and
/// `ShuffleFetch` (shuffle-source attribution) spans whose enclosing
/// run's sequence number lies in `[min_seq, max_seq]`.
pub fn hotspot_report(trace: &Trace, min_seq: u64, max_seq: u64) -> HotspotReport {
    fn run_seq<'a>(index: &HashMap<SpanId, &'a Span>, mut s: &'a Span) -> Option<u64> {
        loop {
            if let SpanKind::JobRun { seq, .. } = s.kind {
                return Some(seq);
            }
            s = index.get(&s.parent?)?;
        }
    }
    let index: HashMap<SpanId, &Span> = trace.spans().iter().map(|s| (s.id, s)).collect();
    let mut loads: BTreeMap<NodeId, NodeLoad> = BTreeMap::new();
    for s in trace.spans() {
        let Some(seq) = run_seq(&index, s) else {
            continue;
        };
        if seq < min_seq || seq > max_seq {
            continue;
        }
        match &s.kind {
            SpanKind::Task {
                bytes_in,
                input_source: Some(src),
                ok: true,
                ..
            } => {
                let l = loads.entry(*src).or_insert_with(|| NodeLoad {
                    node: *src,
                    ..NodeLoad::default()
                });
                l.map_reads += 1;
                l.map_bytes += bytes_in;
            }
            SpanKind::ShuffleFetch { source, bytes } => {
                let l = loads.entry(*source).or_insert_with(|| NodeLoad {
                    node: *source,
                    ..NodeLoad::default()
                });
                l.shuffle_fetches += 1;
                l.shuffle_bytes += bytes;
            }
            _ => {}
        }
    }
    let mut loads: Vec<NodeLoad> = loads.into_values().collect();
    let gini = gini_index(&loads.iter().map(NodeLoad::total_bytes).collect::<Vec<_>>());
    loads.sort_by(|a, b| {
        b.total_bytes()
            .cmp(&a.total_bytes())
            .then(a.node.0.cmp(&b.node.0))
    });
    HotspotReport { loads, gini }
}

/// Gini concentration index of a set of non-negative values.
fn gini_index(values: &[u64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let total: u64 = values.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let mut abs_diff_sum = 0.0f64;
    for &a in values {
        for &b in values {
            abs_diff_sum += (a as f64 - b as f64).abs();
        }
    }
    abs_diff_sum / (2.0 * (n as f64) * (n as f64) * (total as f64 / n as f64))
}

/// One step of a recomputation cascade.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PathStep {
    /// Global run sequence number of the recomputation run.
    pub seq: u64,
    /// Job that was recomputed.
    pub job: JobId,
    /// The run's duration in microseconds.
    pub dur_us: u64,
}

/// The cascade chain that bounded recovery time.
#[derive(Clone, Debug, PartialEq)]
pub struct CriticalPath {
    /// The lineage root the cascade links to (a loss or recovery-plan
    /// span), when causal links were recorded.
    pub cause: Option<SpanId>,
    /// Total duration of the cascade's runs, microseconds.
    pub total_us: u64,
    /// The cascade's recomputation runs in sequence order.
    pub steps: Vec<PathStep>,
}

impl CriticalPath {
    /// Deterministic text rendering: the step structure only (run
    /// timings live in the exported trace files, not in this output,
    /// which is used in byte-identical example runs).
    pub fn render(&self) -> String {
        let mut out = format!(
            "recomputation critical path: {} step(s)\n",
            self.steps.len()
        );
        for s in &self.steps {
            out.push_str(&format!("  seq {:>3}  recompute job {}\n", s.seq, s.job));
        }
        out
    }
}

/// Groups recomputation `JobRun` spans by their causal lineage root and
/// returns the group with the largest total duration — the cascade that
/// bounded recovery time. Returns `None` when the trace holds no
/// recomputation runs.
pub fn recomputation_critical_path(trace: &Trace) -> Option<CriticalPath> {
    let index: HashMap<SpanId, &Span> = trace.spans().iter().map(|s| (s.id, s)).collect();
    // Resolve a recompute run's cause chain to its root (loss/fault).
    let root_of = |mut id: SpanId| -> SpanId {
        loop {
            match index.get(&id).and_then(|s| s.cause) {
                Some(up) if up != id => id = up,
                _ => return id,
            }
        }
    };
    let mut groups: BTreeMap<Option<SpanId>, Vec<PathStep>> = BTreeMap::new();
    for s in trace.spans() {
        if let SpanKind::JobRun {
            seq,
            job,
            recompute: true,
            ..
        } = s.kind
        {
            let root = s.cause.map(root_of);
            groups.entry(root).or_default().push(PathStep {
                seq,
                job,
                dur_us: s.duration_us(),
            });
        }
    }
    groups
        .into_iter()
        .map(|(cause, mut steps)| {
            steps.sort_by_key(|s| s.seq);
            CriticalPath {
                cause,
                total_us: steps.iter().map(|s| s.dur_us).sum(),
                steps,
            }
        })
        .max_by_key(|p| (p.total_us, p.steps.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Phase;

    fn job_run(id: u64, seq: u64, recompute: bool, cause: Option<u64>, dur: u64) -> Span {
        Span {
            id: SpanId(id),
            parent: None,
            cause: cause.map(SpanId),
            node: None,
            start_us: 0,
            end_us: dur,
            kind: SpanKind::JobRun {
                seq,
                job: JobId(seq as u32),
                recompute,
                live_nodes: 4,
                map_slots: 1,
                reduce_slots: 1,
                ok: true,
                tenant: None,
            },
        }
    }

    fn wave(id: u64, parent: u64, tasks: u32, capacity: u32) -> Span {
        Span {
            id: SpanId(id),
            parent: Some(SpanId(parent)),
            cause: None,
            node: None,
            start_us: 0,
            end_us: 1,
            kind: SpanKind::Wave {
                phase: Phase::Map,
                index: 0,
                tasks,
                capacity,
            },
        }
    }

    #[test]
    fn occupancy_gap_between_full_and_recompute_runs() {
        let t = Trace {
            spans: vec![
                job_run(1, 1, false, None, 10),
                wave(2, 1, 4, 4),
                wave(3, 1, 4, 4),
                job_run(4, 2, true, None, 10),
                wave(5, 4, 1, 4),
            ],
        };
        let occ = slot_occupancy(&t);
        assert_eq!(occ.len(), 2);
        assert!((occ[0].avg_occupancy() - 1.0).abs() < 1e-9);
        assert!((occ[1].avg_occupancy() - 0.25).abs() < 1e-9);
        assert!(occ[1].recompute);
    }

    #[test]
    fn hotspot_attributes_reads_and_window_filters() {
        let mk_task = |id: u64, parent: u64, src: u32, bytes: u64| Span {
            id: SpanId(id),
            parent: Some(SpanId(parent)),
            cause: None,
            node: Some(NodeId(0)),
            start_us: 0,
            end_us: 1,
            kind: SpanKind::Task {
                id: rcmp_model::MapTaskId::new(JobId(1), id as u32).into(),
                bytes_in: bytes,
                bytes_out: 0,
                input_source: Some(NodeId(src)),
                ok: true,
            },
        };
        let t = Trace {
            spans: vec![
                job_run(1, 1, false, None, 10),
                mk_task(2, 1, 0, 100),
                job_run(3, 2, true, None, 10),
                mk_task(4, 3, 2, 500),
                mk_task(5, 3, 1, 100),
                Span {
                    id: SpanId(6),
                    parent: Some(SpanId(3)),
                    cause: None,
                    node: None,
                    start_us: 0,
                    end_us: 0,
                    kind: SpanKind::ShuffleFetch {
                        source: NodeId(2),
                        bytes: 50,
                    },
                },
            ],
        };
        let report = hotspot_report(&t, 2, 2);
        assert_eq!(report.top(), Some(NodeId(2)));
        let top = &report.loads[0];
        assert_eq!((top.map_reads, top.map_bytes), (1, 500));
        assert_eq!((top.shuffle_fetches, top.shuffle_bytes), (1, 50));
        // Run 1 was outside the window.
        assert!(report.loads.iter().all(|l| l.node != NodeId(0)));
        assert!(report.gini > 0.0);
        assert!(report.render().contains("gini"));
    }

    #[test]
    fn gini_extremes() {
        assert!(gini_index(&[]).abs() < 1e-9);
        assert!(gini_index(&[5, 5, 5, 5]).abs() < 1e-9);
        // All mass on one of many nodes approaches (n-1)/n.
        let g = gini_index(&[100, 0, 0, 0]);
        assert!((g - 0.75).abs() < 1e-9);
    }

    #[test]
    fn critical_path_picks_longest_cascade() {
        let t = Trace {
            spans: vec![
                job_run(1, 1, false, None, 100),
                job_run(2, 5, true, Some(10), 30),
                job_run(3, 6, true, Some(10), 40),
                job_run(4, 7, true, Some(11), 5),
            ],
        };
        let p = recomputation_critical_path(&t).unwrap();
        assert_eq!(p.total_us, 70);
        assert_eq!(p.steps.len(), 2);
        assert_eq!(p.steps[0].seq, 5);
        assert!(p.render().contains("2 step(s)"));
    }

    #[test]
    fn tenant_view_keeps_only_that_tenants_runs() {
        let tag = |mut s: Span, t: u32| {
            if let SpanKind::JobRun { tenant, .. } = &mut s.kind {
                *tenant = Some(TenantId(t));
            }
            s
        };
        let t = Trace {
            spans: vec![
                tag(job_run(1, 1, false, None, 10), 0),
                wave(2, 1, 4, 4),
                tag(job_run(3, 2, false, None, 10), 1),
                wave(4, 3, 2, 4),
                // Untenanted run: invisible to every tenant view.
                job_run(5, 3, false, None, 10),
            ],
        };
        let v0 = tenant_view(&t, TenantId(0));
        assert_eq!(v0.spans.len(), 2);
        let occ = slot_occupancy(&v0);
        assert_eq!(occ.len(), 1);
        assert_eq!(occ[0].waves.len(), 1);
        assert_eq!(occ[0].waves[0].tasks, 4);
        let v1 = tenant_view(&t, TenantId(1));
        assert_eq!(v1.spans.len(), 2);
        assert!(tenant_view(&t, TenantId(7)).spans.is_empty());
    }

    #[test]
    fn critical_path_none_without_recomputes() {
        let t = Trace {
            spans: vec![job_run(1, 1, false, None, 100)],
        };
        assert!(recomputation_critical_path(&t).is_none());
    }
}
