//! Snapshot deltas and rate views over [`MetricsSnapshot`].
//!
//! The future `rcmp-serve` per-tenant scrape sits on this seam: a
//! scraper keeps the previous [`MetricsSnapshot`], takes a new one,
//! and derives what changed ([`MetricsSnapshot::delta`]) or how fast
//! ([`MetricsDelta::rates`]) without the registry growing any
//! scrape-specific state.

use crate::metrics::{MetricsSnapshot, SnapshotValue};
use serde::Serialize;

/// What one metric did between two snapshots.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub enum DeltaValue {
    /// Counter increase (saturating at 0 — counters are monotone).
    Counter(u64),
    /// Gauge movement (signed) and its current value.
    Gauge {
        /// `current − earlier`.
        change: i64,
        /// Value at the later snapshot.
        current: i64,
    },
    /// Histogram: new observations between the snapshots, with the
    /// per-bucket increase (overflow bucket last).
    Histogram {
        /// Total new observations.
        observed: u64,
        /// Per-bucket count increase.
        bucket_deltas: Vec<u64>,
    },
}

/// The change between two metric snapshots, name-ordered.
///
/// Metrics present only in the later snapshot are treated as starting
/// from zero; metrics that disappeared (impossible today — the
/// registry never unregisters) are skipped.
#[derive(Clone, Debug, Default, PartialEq, Serialize)]
pub struct MetricsDelta {
    /// Seconds the delta spans, when the caller supplied an interval
    /// (0.0 = unknown; rates are then unavailable).
    pub interval_secs: f64,
    /// `(name, change)` pairs in ascending name order.
    pub entries: Vec<(String, DeltaValue)>,
}

impl MetricsDelta {
    /// Looks one metric's change up by name.
    pub fn get(&self, name: &str) -> Option<&DeltaValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: a counter's increase (`None` for other types).
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            DeltaValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Per-second rates for every counter (and histogram observation
    /// stream), computed over `interval_secs`. Empty when the delta
    /// carries no interval.
    pub fn rates(&self) -> Vec<(String, f64)> {
        if self.interval_secs <= 0.0 {
            return Vec::new();
        }
        self.entries
            .iter()
            .filter_map(|(name, v)| {
                let events = match v {
                    DeltaValue::Counter(c) => *c,
                    DeltaValue::Histogram { observed, .. } => *observed,
                    DeltaValue::Gauge { .. } => return None,
                };
                Some((name.clone(), events as f64 / self.interval_secs))
            })
            .collect()
    }
}

impl MetricsSnapshot {
    /// The change from `earlier` to `self`. `interval_secs` is the
    /// wall-clock (or virtual) seconds between the two snapshots; pass
    /// 0.0 when unknown (deltas still work, rates become empty).
    pub fn delta(&self, earlier: &MetricsSnapshot, interval_secs: f64) -> MetricsDelta {
        let entries = self
            .entries
            .iter()
            .filter_map(|(name, cur)| {
                let prev = earlier.get(name);
                let v = match (cur, prev) {
                    (SnapshotValue::Counter(c), Some(SnapshotValue::Counter(p))) => {
                        DeltaValue::Counter(c.saturating_sub(*p))
                    }
                    (SnapshotValue::Counter(c), None) => DeltaValue::Counter(*c),
                    (SnapshotValue::Gauge(g), Some(SnapshotValue::Gauge(p))) => DeltaValue::Gauge {
                        change: g - p,
                        current: *g,
                    },
                    (SnapshotValue::Gauge(g), None) => DeltaValue::Gauge {
                        change: *g,
                        current: *g,
                    },
                    (
                        SnapshotValue::Histogram { counts, total, .. },
                        Some(SnapshotValue::Histogram {
                            counts: pc,
                            total: pt,
                            ..
                        }),
                    ) => DeltaValue::Histogram {
                        observed: total.saturating_sub(*pt),
                        bucket_deltas: counts
                            .iter()
                            .enumerate()
                            .map(|(i, c)| c.saturating_sub(pc.get(i).copied().unwrap_or(0)))
                            .collect(),
                    },
                    (SnapshotValue::Histogram { counts, total, .. }, None) => {
                        DeltaValue::Histogram {
                            observed: *total,
                            bucket_deltas: counts.clone(),
                        }
                    }
                    // Same name changed type between snapshots: the
                    // registry cannot produce this; skip defensively.
                    _ => return None,
                };
                Some((name.clone(), v))
            })
            .collect();
        MetricsDelta {
            interval_secs,
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn counter_and_histogram_deltas() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shuffle.bytes");
        let h = reg.histogram("shuffle.us", &[10, 100]);
        c.add(100);
        h.observe(5);
        let before = reg.snapshot();
        c.add(40);
        h.observe(50);
        h.observe(5_000);
        let d = reg.snapshot().delta(&before, 2.0);
        assert_eq!(d.counter("shuffle.bytes"), Some(40));
        assert_eq!(
            d.get("shuffle.us"),
            Some(&DeltaValue::Histogram {
                observed: 2,
                bucket_deltas: vec![0, 1, 1],
            })
        );
    }

    #[test]
    fn gauge_delta_carries_change_and_current() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("exec.workers");
        g.set(4);
        let before = reg.snapshot();
        g.set(7);
        let d = reg.snapshot().delta(&before, 0.0);
        assert_eq!(
            d.get("exec.workers"),
            Some(&DeltaValue::Gauge {
                change: 3,
                current: 7
            })
        );
        // No interval → no rates.
        assert!(d.rates().is_empty());
    }

    #[test]
    fn new_metric_counts_from_zero_and_rates_divide_by_interval() {
        let reg = MetricsRegistry::new();
        let before = reg.snapshot();
        reg.counter("tasks.done").add(10);
        let d = reg.snapshot().delta(&before, 5.0);
        assert_eq!(d.counter("tasks.done"), Some(10));
        let rates = d.rates();
        assert_eq!(rates, vec![("tasks.done".to_string(), 2.0)]);
    }
}
