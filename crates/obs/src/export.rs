//! Trace exporters: JSONL, Chrome `trace_event` JSON (Perfetto), and a
//! deterministic text summary.

use crate::span::{Span, SpanKind, Trace};
use serde::{Serialize, Value};

/// One JSON object per span, one span per line — easy to grep and to
/// stream-process.
pub fn to_jsonl(trace: &Trace) -> String {
    let mut out = String::new();
    for span in trace.spans() {
        out.push_str(&serde_json::to_string(span).unwrap_or_default());
        out.push('\n');
    }
    out
}

/// Short human-readable event name for the Chrome trace.
fn event_name(span: &Span) -> String {
    match &span.kind {
        SpanKind::JobRun {
            seq,
            job,
            recompute,
            ..
        } => {
            if *recompute {
                format!("recompute {job} (seq {seq})")
            } else {
                format!("run {job} (seq {seq})")
            }
        }
        SpanKind::Wave {
            phase,
            index,
            tasks,
            ..
        } => format!("{phase:?} wave {index} ({tasks} tasks)"),
        SpanKind::Task { id, .. } => format!("{id}"),
        SpanKind::ShuffleFetch { source, .. } => format!("fetch from {source}"),
        SpanKind::BlockRead { source, .. } => format!("read from {source}"),
        SpanKind::BlockWrite { blocks, .. } => format!("write {blocks} block(s)"),
        SpanKind::BlockVerifyFailed { block } => format!("checksum fail block {block}"),
        SpanKind::Fault { kind, .. } => format!("fault {kind:?}"),
        SpanKind::Loss {
            lost_partitions, ..
        } => format!("loss ({lost_partitions} partitions)"),
        SpanKind::RecoveryPlan { target, steps, .. } => {
            format!("plan recovery of {target} ({steps} steps)")
        }
        SpanKind::ExecutorWave {
            backend,
            tasks,
            workers,
            ..
        } => format!("{backend} wave ({tasks} tasks / {workers} workers)"),
        SpanKind::AdaptationPoint {
            interval, switched, ..
        } => match (interval, switched) {
            (Some(k), true) => format!("adapt -> k={k}"),
            (None, true) => "adapt -> never".to_string(),
            (Some(k), false) => format!("adapt k={k}"),
            (None, false) => "adapt never".to_string(),
        },
        SpanKind::Event { label, .. } => label.clone(),
    }
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds the Chrome `trace_event` value tree for a trace.
///
/// Layout: `pid` is the node the work ran on (+1; pid 0 is the
/// driver/master), duration spans are `ph:"X"` complete events and
/// instantaneous spans are `ph:"i"` global instants. Each duration span
/// gets its own `tid` (its span id) so overlapping tasks render as
/// parallel tracks; the kind payload and the parent/cause links ride in
/// `args`. The resulting JSON opens directly in Perfetto
/// (<https://ui.perfetto.dev>) or `chrome://tracing`.
pub fn chrome_trace_value(trace: &Trace) -> Value {
    let mut events = Vec::with_capacity(trace.len());
    for span in trace.spans() {
        let pid = span.node.map(|n| u64::from(n.0) + 1).unwrap_or(0);
        let mut fields: Vec<(&str, Value)> = vec![
            ("name", Value::String(event_name(span))),
            ("cat", Value::String(span.kind.name().to_string())),
            ("ts", Value::U64(span.start_us)),
            ("pid", Value::U64(pid)),
        ];
        if span.is_instant() {
            fields.push(("ph", Value::String("i".into())));
            fields.push(("tid", Value::U64(0)));
            fields.push(("s", Value::String("g".into())));
        } else {
            fields.push(("ph", Value::String("X".into())));
            fields.push(("tid", Value::U64(span.id.0)));
            fields.push(("dur", Value::U64(span.duration_us())));
        }
        let mut args: Vec<(String, Value)> = vec![("kind".into(), span.kind.to_value())];
        if let Some(p) = span.parent {
            args.push(("parent".into(), Value::U64(p.0)));
        }
        if let Some(c) = span.cause {
            args.push(("cause".into(), Value::U64(c.0)));
        }
        fields.push(("args", Value::Object(args)));
        events.push(obj(fields));
    }
    obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::String("ms".into())),
    ])
}

/// Renders [`chrome_trace_value`] to a JSON string.
pub fn to_chrome_json(trace: &Trace) -> String {
    serde_json::to_string(&chrome_trace_value(trace)).unwrap_or_default()
}

/// Deterministic text summary of a trace: span-kind counts and a
/// per-run table. Contains no wall-clock quantities, so the output is
/// byte-identical across repeated runs of the same scenario (the
/// examples' determinism probe relies on this).
pub fn summary(trace: &Trace) -> String {
    let mut out = String::from("span kind         count\n");
    let kinds = [
        "JobRun",
        "Wave",
        "Task",
        "ShuffleFetch",
        "BlockRead",
        "BlockWrite",
        "BlockVerifyFailed",
        "Fault",
        "Loss",
        "RecoveryPlan",
        "ExecutorWave",
        "AdaptationPoint",
        "Event",
    ];
    for k in kinds {
        let n = trace.of_kind(k).count();
        if n > 0 {
            out.push_str(&format!("{k:<17} {n:>5}\n"));
        }
    }
    out.push_str("\nseq | job | kind      | waves | tasks | ok\n");
    let occ = crate::analyze::slot_occupancy(trace);
    for run in &occ {
        let (ok, tasks) = run_stats(trace, run.seq);
        out.push_str(&format!(
            "{:>3} | {:>3} | {:<9} | {:>5} | {:>5} | {}\n",
            run.seq,
            run.job.0,
            if run.recompute { "recompute" } else { "full" },
            run.waves.len(),
            tasks,
            if ok { "yes" } else { "no" }
        ));
    }
    out
}

/// `(ok, task-span count)` for the run with sequence number `seq`.
fn run_stats(trace: &Trace, seq: u64) -> (bool, usize) {
    let mut ok = false;
    for s in trace.spans() {
        if let SpanKind::JobRun {
            seq: s_seq,
            ok: s_ok,
            ..
        } = s.kind
        {
            if s_seq == seq {
                ok = s_ok;
            }
        }
    }
    let tasks = trace
        .spans()
        .iter()
        .filter(|s| matches!(s.kind, SpanKind::Task { .. }) && trace.run_seq_of(s.id) == Some(seq))
        .count();
    (ok, tasks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Phase, SpanId};
    use rcmp_model::{JobId, NodeId};

    fn sample() -> Trace {
        Trace {
            spans: vec![
                Span {
                    id: SpanId(1),
                    parent: None,
                    cause: None,
                    node: None,
                    start_us: 0,
                    end_us: 100,
                    kind: SpanKind::JobRun {
                        seq: 1,
                        job: JobId(1),
                        recompute: false,
                        live_nodes: 2,
                        map_slots: 1,
                        reduce_slots: 1,
                        ok: true,
                        tenant: None,
                    },
                },
                Span {
                    id: SpanId(2),
                    parent: Some(SpanId(1)),
                    cause: None,
                    node: Some(NodeId(0)),
                    start_us: 1,
                    end_us: 50,
                    kind: SpanKind::Wave {
                        phase: Phase::Map,
                        index: 0,
                        tasks: 2,
                        capacity: 2,
                    },
                },
                Span {
                    id: SpanId(3),
                    parent: Some(SpanId(1)),
                    cause: None,
                    node: Some(NodeId(1)),
                    start_us: 60,
                    end_us: 60,
                    kind: SpanKind::Fault {
                        seq: 1,
                        kind: crate::span::FaultKind::NodeCrash,
                        at: "JobStart".into(),
                    },
                },
            ],
        }
    }

    #[test]
    fn jsonl_one_line_per_span() {
        let text = to_jsonl(&sample());
        assert_eq!(text.lines().count(), 3);
        assert!(text.lines().all(|l| l.starts_with('{')));
        assert!(text.contains("\"JobRun\""));
    }

    #[test]
    fn chrome_trace_structure() {
        let v = chrome_trace_value(&sample());
        let Value::Object(fields) = &v else {
            panic!("expected object")
        };
        let events = fields
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| v)
            .unwrap();
        let Value::Array(events) = events else {
            panic!("expected array")
        };
        assert_eq!(events.len(), 3);
        // Duration spans are ph:"X" with a dur; instants are ph:"i".
        let phs: Vec<String> = events
            .iter()
            .map(|e| match e {
                Value::Object(f) => f
                    .iter()
                    .find(|(k, _)| k == "ph")
                    .map(|(_, v)| match v {
                        Value::String(s) => s.clone(),
                        _ => String::new(),
                    })
                    .unwrap(),
                _ => String::new(),
            })
            .collect();
        assert_eq!(phs, vec!["X", "X", "i"]);
        let json = to_chrome_json(&sample());
        assert!(json.starts_with('{'));
        assert!(json.contains("traceEvents"));
        assert!(json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn summary_counts_and_run_table() {
        let text = summary(&sample());
        assert!(text.contains("JobRun"));
        assert!(text.contains("Fault"));
        assert!(!text.contains("ShuffleFetch"), "zero-count kinds omitted");
        assert!(text.contains("full"));
        assert!(text.contains("yes"));
    }
}
