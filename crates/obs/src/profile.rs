//! The phase profiler: pre-resolved hierarchical timers around the
//! engine's real execution phases.
//!
//! The paper's evaluation (Fig. 7) decomposes chain completion into
//! compute, shuffle and cascading-recomputation time; this module makes
//! that decomposition a first-class, always-on observable. A
//! [`PhaseProfiler`] holds one atomic accumulator pair (total
//! nanoseconds, event count) per [`PhaseKind`] — no registry lookups,
//! no locks, no allocation on the hot path. Hot loops accumulate
//! locally and flush once per task; coarse phases use the
//! [`PhaseProfiler::span`] guard. A [`PhaseBreakdown`] snapshot always
//! lists *every* phase in a fixed order, so the engine and the
//! simulator emit byte-compatible schemas even for phases one of them
//! never exercises.

use crate::clock::Clock;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// The engine's (and simulator's) instrumented execution phases.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Mapper input read + UDF + in-memory sort.
    MapCompute,
    /// Map-side combiner passes.
    Combine,
    /// Encoding and inserting indexed map-output buckets.
    MapOutputWrite,
    /// Reducer-side shuffle planning and bucket fetches.
    ShuffleFetch,
    /// K-way streaming merge of fetched runs.
    StreamingMerge,
    /// Reduce UDF execution.
    ReduceUdf,
    /// DFS block reads (verified).
    DfsRead,
    /// DFS partition writes (all chunks, all replicas).
    DfsWrite,
    /// Checksum verification of block payloads.
    BlockVerify,
    /// Middleware recovery planning (lineage walk + plan build).
    RecoveryPlanning,
    /// Waves executed by recomputation runs (the cascade itself).
    RecomputeWave,
    /// Seeded retry backoff sleeps.
    RetryBackoff,
    /// Reactor time spent polling task futures (`rcmp-exec` async
    /// backend).
    ReactorPoll,
    /// Reactor time workers spent parked waiting for ready tasks.
    ReactorPark,
    /// Map input served from the in-memory inter-job chain cache
    /// (replaces a `DfsRead` on a cache hit).
    ChainCacheRead,
}

impl PhaseKind {
    /// Every phase, in the fixed schema order breakdowns use.
    pub const ALL: [PhaseKind; 15] = [
        PhaseKind::MapCompute,
        PhaseKind::Combine,
        PhaseKind::MapOutputWrite,
        PhaseKind::ShuffleFetch,
        PhaseKind::StreamingMerge,
        PhaseKind::ReduceUdf,
        PhaseKind::DfsRead,
        PhaseKind::DfsWrite,
        PhaseKind::BlockVerify,
        PhaseKind::RecoveryPlanning,
        PhaseKind::RecomputeWave,
        PhaseKind::RetryBackoff,
        PhaseKind::ReactorPoll,
        PhaseKind::ReactorPark,
        PhaseKind::ChainCacheRead,
    ];

    /// Stable snake_case name used in breakdowns and JSON.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::MapCompute => "map_compute",
            PhaseKind::Combine => "combine",
            PhaseKind::MapOutputWrite => "map_output_write",
            PhaseKind::ShuffleFetch => "shuffle_fetch",
            PhaseKind::StreamingMerge => "streaming_merge",
            PhaseKind::ReduceUdf => "reduce_udf",
            PhaseKind::DfsRead => "dfs_read",
            PhaseKind::DfsWrite => "dfs_write",
            PhaseKind::BlockVerify => "block_verify",
            PhaseKind::RecoveryPlanning => "recovery_planning",
            PhaseKind::RecomputeWave => "recompute_wave",
            PhaseKind::RetryBackoff => "retry_backoff",
            PhaseKind::ReactorPoll => "reactor_poll",
            PhaseKind::ReactorPark => "reactor_park",
            PhaseKind::ChainCacheRead => "chain_cache_read",
        }
    }

    /// This phase's position in [`PhaseKind::ALL`] (and in every
    /// [`PhaseBreakdown::entries`] vector).
    pub const fn index(self) -> usize {
        self as usize
    }
}

/// Lock-free per-phase time accumulator.
pub struct PhaseProfiler {
    clock: Clock,
    totals_ns: [AtomicU64; PhaseKind::ALL.len()],
    counts: [AtomicU64; PhaseKind::ALL.len()],
}

impl Default for PhaseProfiler {
    fn default() -> Self {
        Self::new(Clock::monotonic())
    }
}

impl PhaseProfiler {
    /// Creates a zeroed profiler timing coarse spans with `clock`.
    pub fn new(clock: Clock) -> Self {
        Self {
            clock,
            totals_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The clock [`PhaseProfiler::span`] guards read.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Adds `ns` nanoseconds to a phase (one event). Hot loops should
    /// accumulate locally and call this once per task.
    pub fn add_ns(&self, kind: PhaseKind, ns: u64) {
        self.totals_ns[kind.index()].fetch_add(ns, Ordering::Relaxed);
        self.counts[kind.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `us` microseconds to a phase (one event).
    pub fn add_us(&self, kind: PhaseKind, us: u64) {
        self.add_ns(kind, us.saturating_mul(1_000));
    }

    /// Adds `ns` nanoseconds across `events` events in one call.
    pub fn add_many_ns(&self, kind: PhaseKind, ns: u64, events: u64) {
        self.totals_ns[kind.index()].fetch_add(ns, Ordering::Relaxed);
        self.counts[kind.index()].fetch_add(events, Ordering::Relaxed);
    }

    /// Times a coarse phase with the profiler's clock: the returned
    /// guard adds the elapsed time on drop. Microsecond resolution —
    /// use [`PhaseProfiler::add_ns`] with local accumulation for
    /// sub-microsecond work.
    pub fn span(&self, kind: PhaseKind) -> PhaseTimer<'_> {
        PhaseTimer {
            profiler: self,
            kind,
            start_us: self.clock.now_us(),
        }
    }

    /// Total nanoseconds accumulated for one phase.
    pub fn total_ns(&self, kind: PhaseKind) -> u64 {
        self.totals_ns[kind.index()].load(Ordering::Relaxed)
    }

    /// Point-in-time breakdown covering every phase in schema order.
    pub fn snapshot(&self) -> PhaseBreakdown {
        PhaseBreakdown {
            entries: PhaseKind::ALL
                .iter()
                .map(|&k| PhaseEntry {
                    phase: k.name().to_string(),
                    total_us: self.totals_ns[k.index()].load(Ordering::Relaxed) / 1_000,
                    count: self.counts[k.index()].load(Ordering::Relaxed),
                })
                .collect(),
        }
    }
}

/// RAII guard from [`PhaseProfiler::span`].
pub struct PhaseTimer<'a> {
    profiler: &'a PhaseProfiler,
    kind: PhaseKind,
    start_us: u64,
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        let us = self.profiler.clock.now_us().saturating_sub(self.start_us);
        self.profiler.add_us(self.kind, us);
    }
}

/// One phase's accumulated time and event count.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseEntry {
    /// Stable phase name ([`PhaseKind::name`]).
    pub phase: String,
    /// Accumulated microseconds.
    pub total_us: u64,
    /// Number of timed events.
    pub count: u64,
}

/// A per-phase time-budget breakdown — the Fig.-7-style recovery
/// decomposition. Always lists every [`PhaseKind`] in [`PhaseKind::ALL`]
/// order, so engine- and sim-produced breakdowns share one schema.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseBreakdown {
    /// One entry per phase, in schema order.
    pub entries: Vec<PhaseEntry>,
}

impl PhaseBreakdown {
    /// Builds a breakdown directly from `(phase, total_us, count)`
    /// contributions (the simulator's path: virtual durations, no
    /// profiler). Phases not contributed appear with zeros.
    pub fn from_parts(parts: &[(PhaseKind, u64, u64)]) -> Self {
        let mut totals = [0u64; PhaseKind::ALL.len()];
        let mut counts = [0u64; PhaseKind::ALL.len()];
        for &(k, us, n) in parts {
            totals[k.index()] += us;
            counts[k.index()] += n;
        }
        Self {
            entries: PhaseKind::ALL
                .iter()
                .map(|&k| PhaseEntry {
                    phase: k.name().to_string(),
                    total_us: totals[k.index()],
                    count: counts[k.index()],
                })
                .collect(),
        }
    }

    /// The accumulated microseconds of one phase (0 when absent).
    pub fn total_us(&self, kind: PhaseKind) -> u64 {
        self.entries
            .iter()
            .find(|e| e.phase == kind.name())
            .map_or(0, |e| e.total_us)
    }

    /// Sum of every phase's accumulated time, microseconds.
    pub fn grand_total_us(&self) -> u64 {
        self.entries.iter().map(|e| e.total_us).sum()
    }

    /// The phase names, in order — the schema the engine and the sim
    /// must agree on.
    pub fn schema(&self) -> Vec<&str> {
        self.entries.iter().map(|e| e.phase.as_str()).collect()
    }

    /// Per-phase difference `self − earlier` (saturating), for
    /// per-job deltas from cumulative snapshots.
    pub fn delta(&self, earlier: &PhaseBreakdown) -> PhaseBreakdown {
        PhaseBreakdown {
            entries: self
                .entries
                .iter()
                .map(|e| {
                    let prev = earlier
                        .entries
                        .iter()
                        .find(|p| p.phase == e.phase)
                        .map_or((0, 0), |p| (p.total_us, p.count));
                    PhaseEntry {
                        phase: e.phase.clone(),
                        total_us: e.total_us.saturating_sub(prev.0),
                        count: e.count.saturating_sub(prev.1),
                    }
                })
                .collect(),
        }
    }

    /// Deterministic text table: phase, total ms, share of the grand
    /// total, event count. Zero phases are elided from the rendering
    /// (not from the schema).
    pub fn render(&self) -> String {
        let grand = self.grand_total_us().max(1);
        let mut out = String::from("phase              |   total ms | share | events\n");
        for e in &self.entries {
            if e.total_us == 0 && e.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<18} | {:>10.3} | {:>4.1}% | {}\n",
                e.phase,
                e.total_us as f64 / 1_000.0,
                e.total_us as f64 * 100.0 / grand as f64,
                e.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_snapshots_in_schema_order() {
        let p = PhaseProfiler::default();
        p.add_us(PhaseKind::MapCompute, 1_500);
        p.add_ns(PhaseKind::MapCompute, 500_000);
        p.add_many_ns(PhaseKind::StreamingMerge, 3_000_000, 42);
        let b = p.snapshot();
        assert_eq!(b.entries.len(), PhaseKind::ALL.len());
        assert_eq!(b.total_us(PhaseKind::MapCompute), 2_000);
        assert_eq!(b.total_us(PhaseKind::StreamingMerge), 3_000);
        assert_eq!(b.total_us(PhaseKind::ReduceUdf), 0);
        let names: Vec<&str> = PhaseKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(b.schema(), names);
    }

    #[test]
    fn span_guard_times_with_manual_clock() {
        let (clock, hand) = Clock::manual();
        let p = PhaseProfiler::new(clock);
        {
            let _t = p.span(PhaseKind::RecoveryPlanning);
            hand.advance_us(750);
        }
        assert_eq!(p.total_ns(PhaseKind::RecoveryPlanning), 750_000);
    }

    #[test]
    fn delta_subtracts_per_phase() {
        let p = PhaseProfiler::default();
        p.add_us(PhaseKind::ReduceUdf, 100);
        let before = p.snapshot();
        p.add_us(PhaseKind::ReduceUdf, 40);
        p.add_us(PhaseKind::RetryBackoff, 7);
        let d = p.snapshot().delta(&before);
        assert_eq!(d.total_us(PhaseKind::ReduceUdf), 40);
        assert_eq!(d.total_us(PhaseKind::RetryBackoff), 7);
        assert_eq!(d.total_us(PhaseKind::MapCompute), 0);
    }

    #[test]
    fn from_parts_matches_profiler_schema() {
        let sim = PhaseBreakdown::from_parts(&[
            (PhaseKind::MapCompute, 5_000, 3),
            (PhaseKind::RecomputeWave, 9_000, 1),
        ]);
        let engine = PhaseProfiler::default().snapshot();
        assert_eq!(sim.schema(), engine.schema());
        assert_eq!(sim.total_us(PhaseKind::RecomputeWave), 9_000);
        assert!(sim.render().contains("map_compute"));
    }
}
