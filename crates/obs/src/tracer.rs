//! The span recorder.
//!
//! One [`Tracer`] lives on the cluster (engine) or simulation and is
//! shared by every thread that executes work. Recording is
//! contention-free in the common case: each thread is assigned one of a
//! fixed set of shards on first use and appends to it behind its own
//! lock, so task executor threads never contend with each other or with
//! the driver. [`Tracer::snapshot`] merges the shards into a single
//! time-ordered [`Trace`].
//!
//! Lineage between failure and recovery flows through the **cause
//! register**: when a loss is recorded the tracer remembers its span id
//! (`mark_cause`), and when the middleware later plans recovery or
//! submits a recomputation run it reads the register (`current_cause`)
//! to link the new span to the loss that provoked it — without any
//! plumbing through the `JobTracker` / `ChainDriver` call signatures.

use crate::clock::Clock;
use crate::span::{Span, SpanId, SpanKind, Trace};
use parking_lot::Mutex;
use rcmp_model::NodeId;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of independent recording shards. Threads are assigned
/// round-robin; more threads than shards only means occasional sharing.
const SHARDS: usize = 16;

thread_local! {
    /// This thread's shard index, assigned on first record.
    static MY_SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// Global round-robin counter for shard assignment (shared across
/// tracers; only fairness matters, not identity).
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

/// A started-but-not-finished span: holds the id and start timestamp
/// until [`Tracer::close`] supplies the kind and links.
#[derive(Clone, Copy, Debug)]
pub struct OpenSpan {
    /// The id the finished span will carry.
    pub id: SpanId,
    /// Start timestamp, microseconds since the tracer epoch.
    pub start_us: u64,
}

/// Shared, thread-safe span recorder.
pub struct Tracer {
    clock: Clock,
    next_id: AtomicU64,
    /// Lineage register: id of the most recent loss-like span, 0 = none.
    cause: AtomicU64,
    shards: Vec<Mutex<Vec<Span>>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates an empty tracer; its epoch is the creation instant.
    pub fn new() -> Self {
        Self::with_clock(Clock::monotonic())
    }

    /// Creates an empty tracer timestamping through `clock` (the clock
    /// seam: tests and the simulator pass a manual clock).
    pub fn with_clock(clock: Clock) -> Self {
        Self {
            clock,
            next_id: AtomicU64::new(1),
            cause: AtomicU64::new(0),
            shards: (0..SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
        }
    }

    /// The clock this tracer timestamps with.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Microseconds since the tracer epoch.
    pub fn now_us(&self) -> u64 {
        self.clock.now_us()
    }

    /// Starts a span: allocates its id and records the start time.
    pub fn open(&self) -> OpenSpan {
        OpenSpan {
            id: self.alloc_id(),
            start_us: self.now_us(),
        }
    }

    /// Finishes a span opened with [`Tracer::open`].
    pub fn close(
        &self,
        open: OpenSpan,
        kind: SpanKind,
        parent: Option<SpanId>,
        cause: Option<SpanId>,
        node: Option<NodeId>,
    ) {
        let end_us = self.now_us();
        self.push(Span {
            id: open.id,
            parent,
            cause,
            node,
            start_us: open.start_us,
            end_us,
            kind,
        });
    }

    /// Records an instantaneous span at the current time.
    pub fn instant(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        cause: Option<SpanId>,
        node: Option<NodeId>,
    ) -> SpanId {
        let now = self.now_us();
        self.record(kind, parent, cause, node, now, now)
    }

    /// Records a span with explicit timestamps (used for retroactive
    /// spans like per-source shuffle fetches, and by the simulator
    /// where time is virtual).
    pub fn record(
        &self,
        kind: SpanKind,
        parent: Option<SpanId>,
        cause: Option<SpanId>,
        node: Option<NodeId>,
        start_us: u64,
        end_us: u64,
    ) -> SpanId {
        let id = self.alloc_id();
        self.push(Span {
            id,
            parent,
            cause,
            node,
            start_us,
            end_us,
            kind,
        });
        id
    }

    /// Sets the lineage register to `id`: subsequent recovery plans and
    /// recomputation runs will link to it via [`Tracer::current_cause`].
    pub fn mark_cause(&self, id: SpanId) {
        self.cause.store(id.0, Ordering::SeqCst);
    }

    /// The most recently marked cause span, if any.
    pub fn current_cause(&self) -> Option<SpanId> {
        match self.cause.load(Ordering::SeqCst) {
            0 => None,
            id => Some(SpanId(id)),
        }
    }

    /// Total spans recorded so far.
    pub fn span_count(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Merges all shards into a single trace ordered by
    /// `(start_us, id)`. Non-destructive: recording can continue and a
    /// later snapshot will include everything again.
    pub fn snapshot(&self) -> Trace {
        let mut spans: Vec<Span> = Vec::with_capacity(self.span_count());
        for shard in &self.shards {
            spans.extend(shard.lock().iter().cloned());
        }
        spans.sort_by_key(|s| (s.start_us, s.id));
        Trace { spans }
    }

    fn alloc_id(&self) -> SpanId {
        SpanId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    fn push(&self, span: Span) {
        let idx = MY_SHARD.with(|c| {
            let mut idx = c.get();
            if idx == usize::MAX {
                idx = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
                c.set(idx);
            }
            idx
        });
        self.shards[idx].lock().push(span);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(label: &str) -> SpanKind {
        SpanKind::Event {
            seq: 0,
            label: label.to_string(),
        }
    }

    #[test]
    fn open_close_produces_ordered_trace() {
        let t = Tracer::new();
        let a = t.open();
        let inner = t.instant(ev("inner"), Some(a.id), None, None);
        t.close(a, ev("outer"), None, None, None);
        let trace = t.snapshot();
        assert_eq!(trace.len(), 2);
        assert!(trace.spans[0].start_us <= trace.spans[1].start_us);
        assert_eq!(trace.get(inner).unwrap().parent, Some(a.id));
    }

    #[test]
    fn cause_register_round_trips() {
        let t = Tracer::new();
        assert_eq!(t.current_cause(), None);
        let id = t.instant(ev("loss"), None, None, None);
        t.mark_cause(id);
        assert_eq!(t.current_cause(), Some(id));
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let t = Arc::new(Tracer::new());
        let threads = 8;
        let per = 200;
        std::thread::scope(|s| {
            for _ in 0..threads {
                let t = t.clone();
                s.spawn(move || {
                    for i in 0..per {
                        t.instant(ev(&format!("e{i}")), None, None, None);
                    }
                });
            }
        });
        let trace = t.snapshot();
        assert_eq!(trace.len(), threads * per);
        // Ids are unique.
        let mut ids: Vec<u64> = trace.spans.iter().map(|s| s.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), threads * per);
    }

    #[test]
    fn manual_clock_drives_span_timestamps() {
        let (clock, hand) = crate::clock::Clock::manual();
        let t = Tracer::with_clock(clock);
        let open = t.open();
        hand.advance_us(1_234);
        t.close(open, ev("timed"), None, None, None);
        let trace = t.snapshot();
        assert_eq!(trace.spans[0].start_us, 0);
        assert_eq!(trace.spans[0].end_us, 1_234);
    }

    #[test]
    fn snapshot_is_non_destructive() {
        let t = Tracer::new();
        t.instant(ev("a"), None, None, None);
        assert_eq!(t.snapshot().len(), 1);
        t.instant(ev("b"), None, None, None);
        assert_eq!(t.snapshot().len(), 2);
    }
}
