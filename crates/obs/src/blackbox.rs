//! Post-mortem blackbox dumps.
//!
//! When a chain dies with a typed error (or a chaos soak fails its
//! assertion), the pieces needed to explain the death are scattered
//! across the flight recorder (the last-N compact events), the tracer
//! (the causal fault → loss → plan → recompute lineage), the metrics
//! registry and the phase profiler. A [`BlackboxDump`] gathers all
//! four into one serializable artifact at the moment of failure — the
//! Recovery-Oriented-Computing stance that a production failure must
//! be triageable *after the fact*, from the dump alone.

use crate::metrics::MetricsSnapshot;
use crate::profile::PhaseBreakdown;
use crate::ring::{FlightLog, FlightRecorder};
use crate::span::{Span, SpanId, SpanKind, Trace};
use serde::Serialize;
use std::collections::BTreeSet;

/// How many of the newest flight-recorder events a dump retains.
pub const RECENT_EVENTS: usize = 512;

/// Everything needed to triage one failure, frozen at dump time.
#[derive(Clone, Debug, Serialize)]
pub struct BlackboxDump {
    /// Why the dump was taken (typically the typed error's rendering).
    pub reason: String,
    /// The newest flight-recorder events (≤ [`RECENT_EVENTS`]),
    /// oldest first.
    pub recent: Vec<crate::ring::FlightEvent>,
    /// Total events the recorder ever recorded.
    pub recorded: u64,
    /// Events the recorder evicted to stay within capacity.
    pub dropped: u64,
    /// The causal failure lineage: every span participating in a
    /// `cause` chain (faults, losses, recovery plans, recomputation
    /// runs), in trace order.
    pub lineage: Vec<Span>,
    /// Metric values at dump time.
    pub metrics: MetricsSnapshot,
    /// Phase time-budget at dump time.
    pub phases: PhaseBreakdown,
}

/// Extracts the causal failure lineage from a trace: the set of spans
/// reachable by following `cause` links, closed over transitively.
/// Fault spans seed the walk even when nothing referenced them yet
/// (a fault that killed the chain before recovery could be planned).
pub fn causal_lineage(trace: &Trace) -> Vec<Span> {
    let mut keep: BTreeSet<SpanId> = BTreeSet::new();
    // Seeds: every span that carries a cause link, plus every fault
    // and loss marker.
    for s in trace.spans() {
        if s.cause.is_some() || matches!(s.kind, SpanKind::Fault { .. } | SpanKind::Loss { .. }) {
            keep.insert(s.id);
        }
    }
    // Close over cause targets until the set stops growing (chains are
    // short — fault → loss → plan → run — so this converges fast).
    loop {
        let mut grew = false;
        for s in trace.spans() {
            if keep.contains(&s.id) {
                if let Some(c) = s.cause {
                    grew |= keep.insert(c);
                }
            }
        }
        if !grew {
            break;
        }
    }
    trace
        .spans()
        .iter()
        .filter(|s| keep.contains(&s.id))
        .cloned()
        .collect()
}

impl BlackboxDump {
    /// Builds a dump from the live observability surfaces.
    pub fn capture(
        reason: impl Into<String>,
        recorder: &FlightRecorder,
        trace: &Trace,
        metrics: MetricsSnapshot,
        phases: PhaseBreakdown,
    ) -> Self {
        let log: FlightLog = recorder.snapshot();
        Self {
            reason: reason.into(),
            recent: log.last(RECENT_EVENTS).to_vec(),
            recorded: log.recorded,
            dropped: log.dropped,
            lineage: causal_lineage(trace),
            metrics,
            phases,
        }
    }

    /// Spans of one kind in the lineage, in trace order.
    pub fn lineage_of_kind<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.lineage.iter().filter(move |s| s.kind.name() == name)
    }

    /// True when the lineage holds the full fault → loss → plan →
    /// recompute chain: at least one fault, a loss caused by it, and a
    /// recovery plan whose cause chain reaches that loss.
    pub fn lineage_is_complete(&self) -> bool {
        let fault = match self.lineage_of_kind("Fault").next() {
            Some(f) => f.id,
            None => return false,
        };
        let loss = self
            .lineage
            .iter()
            .find(|s| matches!(s.kind, SpanKind::Loss { .. }) && s.cause == Some(fault));
        let loss = match loss {
            Some(l) => l.id,
            None => return false,
        };
        self.lineage
            .iter()
            .any(|s| matches!(s.kind, SpanKind::RecoveryPlan { .. }) && s.cause == Some(loss))
    }

    /// Serializes the dump to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"))
    }

    /// Deterministic text triage view: reason, drop accounting, the
    /// lineage chain, and the non-zero phase rows.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== blackbox dump ===\nreason: {}\nflight recorder: {} recorded, {} retained here, {} dropped\nlineage ({} spans):\n",
            self.reason,
            self.recorded,
            self.recent.len(),
            self.dropped,
            self.lineage.len(),
        );
        for s in &self.lineage {
            out.push_str(&format!(
                "  #{:<4} {:<18} cause={:<6} node={:<6} {:?}\n",
                s.id.0,
                s.kind.name(),
                s.cause.map_or_else(|| "-".to_string(), |c| c.0.to_string()),
                s.node.map_or_else(|| "-".to_string(), |n| n.to_string()),
                s.kind,
            ));
        }
        out.push_str("phases:\n");
        out.push_str(&self.phases.render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use crate::metrics::MetricsRegistry;
    use crate::ring::EventCode;
    use crate::span::FaultKind;
    use crate::tracer::Tracer;
    use rcmp_model::JobId;

    /// Builds a trace with a fault→loss→plan→recompute chain plus
    /// unrelated noise spans.
    fn chained_trace(t: &Tracer) -> Trace {
        t.instant(
            SpanKind::Event {
                seq: 0,
                label: "noise".into(),
            },
            None,
            None,
            None,
        );
        let fault = t.instant(
            SpanKind::Fault {
                seq: 3,
                kind: FaultKind::NodeCrash,
                at: "JobStart".into(),
            },
            None,
            None,
            None,
        );
        let loss = t.instant(
            SpanKind::Loss {
                seq: 3,
                lost_partitions: 4,
            },
            None,
            Some(fault),
            None,
        );
        let plan = t.instant(
            SpanKind::RecoveryPlan {
                target: JobId(2),
                steps: 2,
                partitions: 4,
            },
            None,
            Some(loss),
            None,
        );
        t.instant(
            SpanKind::JobRun {
                seq: 4,
                job: JobId(1),
                recompute: true,
                live_nodes: 3,
                map_slots: 1,
                reduce_slots: 1,
                ok: true,
                tenant: None,
            },
            None,
            Some(plan),
            None,
        );
        t.snapshot()
    }

    #[test]
    fn lineage_extracts_full_causal_chain_without_noise() {
        let t = Tracer::new();
        let trace = chained_trace(&t);
        let lineage = causal_lineage(&trace);
        assert_eq!(lineage.len(), 4, "fault, loss, plan, recompute run");
        assert!(lineage.iter().all(|s| s.kind.name() != "Event"));
    }

    #[test]
    fn capture_bundles_all_surfaces_and_detects_completeness() {
        let t = Tracer::new();
        let trace = chained_trace(&t);
        let recorder = FlightRecorder::new(Clock::monotonic(), 8, 1);
        recorder.record(EventCode::FaultInjected, None, 3, 0);
        let reg = MetricsRegistry::new();
        reg.counter("task.retries").add(2);
        let dump = BlackboxDump::capture(
            "recovery budget exhausted",
            &recorder,
            &trace,
            reg.snapshot(),
            PhaseBreakdown::from_parts(&[]),
        );
        assert!(dump.lineage_is_complete());
        assert_eq!(dump.recent.len(), 1);
        assert_eq!(dump.recorded, 1);
        assert_eq!(dump.metrics.counter("task.retries"), Some(2));
        assert!(dump.render().contains("recovery budget exhausted"));
        assert!(dump.to_json().contains("RecoveryPlan"));
    }

    #[test]
    fn incomplete_lineage_is_reported_as_such() {
        let t = Tracer::new();
        t.instant(
            SpanKind::Fault {
                seq: 1,
                kind: FaultKind::NodeCrash,
                at: "JobStart".into(),
            },
            None,
            None,
            None,
        );
        let recorder = FlightRecorder::new(Clock::monotonic(), 8, 1);
        let dump = BlackboxDump::capture(
            "died before planning",
            &recorder,
            &t.snapshot(),
            MetricsSnapshot::default(),
            PhaseBreakdown::default(),
        );
        assert_eq!(dump.lineage.len(), 1);
        assert!(!dump.lineage_is_complete());
    }
}
