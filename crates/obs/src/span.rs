//! The span schema shared by the real engine and the simulator.
//!
//! A [`Span`] is one timed (or instantaneous) unit of work with two
//! kinds of links: `parent` expresses *containment* (a task belongs to
//! a wave, a wave to a job run) and `cause` expresses *lineage* (a
//! recomputation run was caused by a loss, a loss by an injected
//! fault). The same schema is produced by `rcmp-engine` (real wall
//! clock) and `rcmp-sim` (simulated clock), so traces from both can be
//! diffed and fed to the same analyzers and exporters.

use rcmp_model::{JobId, NodeId, TaskId, TenantId};
use serde::{Deserialize, Serialize};

/// Unique identifier of a span within one [`Trace`].
///
/// `SpanId(0)` is never issued; it is reserved as the "no span" value
/// in the tracer's atomic cause register.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct SpanId(pub u64);

/// Which task phase a wave belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Phase {
    /// Mapper wave.
    Map,
    /// Reducer wave.
    Reduce,
}

/// The shape of an injected fault (mirrors `rcmp-engine`'s `Fault`
/// without depending on the engine crate).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// A node was killed (blocks and map outputs lost with it).
    NodeCrash,
    /// One block replica was silently corrupted on disk.
    CorruptReplica,
    /// The node's next partition write commits a strict prefix and the
    /// writer dies mid-write.
    TornWrite,
    /// The node's shuffle path fails transiently.
    ShuffleFlake,
    /// The node was gracefully drained: no new tasks or replicas, data
    /// still readable (the benign counterpart of `NodeCrash`).
    NodeDrain,
}

/// What a span describes, with its kind-specific payload.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// One job submission driven to completion (or failure).
    JobRun {
        /// Global run sequence number (the paper's job numbering).
        seq: u64,
        /// Logical job identity.
        job: JobId,
        /// True for recomputation runs.
        recompute: bool,
        /// Live nodes when the run started.
        live_nodes: u32,
        /// Configured mapper slots per node.
        map_slots: u32,
        /// Configured reducer slots per node.
        reduce_slots: u32,
        /// Whether the run completed successfully.
        ok: bool,
        /// Owning tenant when the run was admitted through the job
        /// service (`rcmp-serve`); `None` for single-tenant drivers.
        tenant: Option<TenantId>,
    },
    /// One scheduling wave within a job run.
    Wave {
        /// Map or reduce wave.
        phase: Phase,
        /// Wave index within its phase.
        index: u32,
        /// Tasks scheduled in this wave.
        tasks: u32,
        /// Slot capacity at assignment time (live nodes × slots).
        capacity: u32,
    },
    /// One task attempt (map or reduce).
    Task {
        /// Task identity.
        id: TaskId,
        /// Bytes read (map input, or total shuffle volume for reducers).
        bytes_in: u64,
        /// Bytes written to the DFS (reducers; zero for mappers).
        bytes_out: u64,
        /// For mappers: the node that served the input block.
        input_source: Option<NodeId>,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// One reducer's fetch volume from a single map-output source node.
    ShuffleFetch {
        /// Node the bucket bytes were served from.
        source: NodeId,
        /// Bucket bytes fetched from that source.
        bytes: u64,
    },
    /// A verified DFS block read.
    BlockRead {
        /// Node that served the block.
        source: NodeId,
        /// Block payload size.
        bytes: u64,
    },
    /// A DFS partition write (all chunks of one segment).
    BlockWrite {
        /// Total payload bytes written (before replication).
        bytes: u64,
        /// Number of blocks the payload was chunked into.
        blocks: u32,
        /// Replication factor applied.
        replicas: u32,
    },
    /// A block replica failed checksum verification and was demoted.
    BlockVerifyFailed {
        /// Raw id of the damaged block.
        block: u64,
    },
    /// An injected fault was applied.
    Fault {
        /// Run sequence number the fault landed in.
        seq: u64,
        /// Fault shape.
        kind: FaultKind,
        /// Trigger point description (e.g. `MidMapWave(1)`).
        at: String,
    },
    /// Irreversible data loss was observed (node death, torn write).
    Loss {
        /// Run sequence number the loss was observed in.
        seq: u64,
        /// Partitions irreversibly lost across all files.
        lost_partitions: u32,
    },
    /// The middleware planned a cascading recovery.
    RecoveryPlan {
        /// Job whose input the plan restores.
        target: JobId,
        /// Recomputation steps in the plan.
        steps: u32,
        /// Total partitions the plan regenerates.
        partitions: u32,
    },
    /// One wave executed by a wave-executor backend, with reactor
    /// health counters (emitted by `rcmp-exec`'s async backend; the
    /// threaded backend stays byte-identical to the pre-executor code
    /// and records nothing extra).
    ExecutorWave {
        /// Backend name (`"async"`).
        backend: String,
        /// Logical slot tasks the wave carried.
        tasks: u32,
        /// OS worker threads that multiplexed them.
        workers: u32,
        /// Total future polls across the wave.
        polls: u64,
        /// Tasks cooperatively cancelled before running.
        cancelled: u32,
    },
    /// The closed-loop adaptive policy re-derived its replication
    /// interval after a job completed (`rcmp_policy::adapt`). The
    /// `cause` link points at the Fault span that moved the estimate,
    /// when one did.
    AdaptationPoint {
        /// Run sequence number of the job whose completion triggered
        /// the re-derivation.
        seq: u64,
        /// Failure-rate estimate at the decision, parts per million.
        rate_ppm: u64,
        /// Replication interval chosen (`None` = pure RCMP, never
        /// replicate).
        interval: Option<u32>,
        /// Whether the interval changed from the previous decision.
        switched: bool,
    },
    /// A structured middleware event that has no richer span shape
    /// (chain restarts, replication points, storage reclaim, ...).
    Event {
        /// Run sequence number, when the event carries one (else 0).
        seq: u64,
        /// Compact human-readable description.
        label: String,
    },
}

impl SpanKind {
    /// Stable kind name, used for grouping in summaries and exports.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::JobRun { .. } => "JobRun",
            SpanKind::Wave { .. } => "Wave",
            SpanKind::Task { .. } => "Task",
            SpanKind::ShuffleFetch { .. } => "ShuffleFetch",
            SpanKind::BlockRead { .. } => "BlockRead",
            SpanKind::BlockWrite { .. } => "BlockWrite",
            SpanKind::BlockVerifyFailed { .. } => "BlockVerifyFailed",
            SpanKind::Fault { .. } => "Fault",
            SpanKind::Loss { .. } => "Loss",
            SpanKind::RecoveryPlan { .. } => "RecoveryPlan",
            SpanKind::ExecutorWave { .. } => "ExecutorWave",
            SpanKind::AdaptationPoint { .. } => "AdaptationPoint",
            SpanKind::Event { .. } => "Event",
        }
    }
}

/// One recorded unit of work.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Unique id within the trace.
    pub id: SpanId,
    /// Containment link: the span this one executed inside of.
    pub parent: Option<SpanId>,
    /// Lineage link: the span that *caused* this one (loss → fault,
    /// recovery plan → loss, recomputation run → recovery plan).
    pub cause: Option<SpanId>,
    /// Node the work ran on, when attributable to one.
    pub node: Option<NodeId>,
    /// Start, microseconds since the tracer's epoch.
    pub start_us: u64,
    /// End, microseconds since the tracer's epoch. Equal to `start_us`
    /// for instantaneous spans.
    pub end_us: u64,
    /// What the span describes.
    pub kind: SpanKind,
}

impl Span {
    /// Span duration in microseconds (zero for instants).
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// True when the span is an instantaneous marker.
    pub fn is_instant(&self) -> bool {
        self.start_us == self.end_us
    }
}

/// A merged, time-ordered collection of spans from one execution.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Spans ordered by `(start_us, id)`.
    pub spans: Vec<Span>,
}

impl Trace {
    /// All spans, in `(start_us, id)` order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Looks a span up by id.
    pub fn get(&self, id: SpanId) -> Option<&Span> {
        self.spans.iter().find(|s| s.id == id)
    }

    /// Walks `parent` links from `id` up to the enclosing `JobRun`
    /// span, if the span sits inside one.
    pub fn run_of(&self, id: SpanId) -> Option<&Span> {
        let mut cur = self.get(id)?;
        loop {
            if matches!(cur.kind, SpanKind::JobRun { .. }) {
                return Some(cur);
            }
            cur = self.get(cur.parent?)?;
        }
    }

    /// The run sequence number a span executed under, via [`run_of`].
    ///
    /// [`run_of`]: Trace::run_of
    pub fn run_seq_of(&self, id: SpanId) -> Option<u64> {
        match self.run_of(id)?.kind {
            SpanKind::JobRun { seq, .. } => Some(seq),
            _ => None,
        }
    }

    /// Spans of a given kind name, in trace order.
    pub fn of_kind<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Span> {
        self.spans.iter().filter(move |s| s.kind.name() == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: Option<u64>, kind: SpanKind) -> Span {
        Span {
            id: SpanId(id),
            parent: parent.map(SpanId),
            cause: None,
            node: None,
            start_us: id,
            end_us: id + 1,
            kind,
        }
    }

    #[test]
    fn run_of_walks_parent_chain() {
        let t = Trace {
            spans: vec![
                span(
                    1,
                    None,
                    SpanKind::JobRun {
                        seq: 7,
                        job: JobId(3),
                        recompute: false,
                        live_nodes: 4,
                        map_slots: 1,
                        reduce_slots: 1,
                        ok: true,
                        tenant: None,
                    },
                ),
                span(
                    2,
                    Some(1),
                    SpanKind::Wave {
                        phase: Phase::Map,
                        index: 0,
                        tasks: 3,
                        capacity: 4,
                    },
                ),
                span(
                    3,
                    Some(2),
                    SpanKind::Task {
                        id: rcmp_model::MapTaskId::new(JobId(3), 0).into(),
                        bytes_in: 10,
                        bytes_out: 0,
                        input_source: Some(NodeId(1)),
                        ok: true,
                    },
                ),
            ],
        };
        assert_eq!(t.run_seq_of(SpanId(3)), Some(7));
        assert_eq!(t.run_seq_of(SpanId(1)), Some(7));
        assert_eq!(t.of_kind("Wave").count(), 1);
    }

    #[test]
    fn duration_and_instant() {
        let mut s = span(
            1,
            None,
            SpanKind::Event {
                seq: 0,
                label: "x".into(),
            },
        );
        assert_eq!(s.duration_us(), 1);
        assert!(!s.is_instant());
        s.end_us = s.start_us;
        assert!(s.is_instant());
    }
}
