//! Unified observability for the RCMP reproduction.
//!
//! The paper's core claims are *observability claims*: Fig. 4 shows
//! under-utilized compute slots during recomputation, Fig. 6 shows one
//! node's disk saturating while a cascade replays, and the STIC/DCO
//! breakdowns are per-phase timing decompositions. This crate makes
//! those observables first-class for every run of the real engine (and
//! the simulator), instead of leaving them to ad-hoc test assertions:
//!
//! * [`span`] / [`tracer`] — a causal **span tracer**: every job run,
//!   wave, task attempt, shuffle fetch, DFS block access, recovery plan
//!   and injected fault becomes a [`span::Span`] with parent links
//!   (job → wave → task → fetch) and *lineage* links (a recomputation
//!   run → the loss that caused it). Spans are recorded through
//!   contention-free per-thread shards and merged into a [`span::Trace`]
//!   at the driver.
//! * [`metrics`] — a **metrics registry** of counters, gauges and
//!   fixed-bucket histograms with cheap atomic handles usable from the
//!   scheduler/tracker/shuffle hot paths.
//! * [`analyze`] — trace **analyzers**: the per-run slot-occupancy
//!   profile (Fig. 4's parallelism gap), the shuffle-source / map-input
//!   hot-spot report with a Gini-style concentration index (Fig. 6),
//!   and recomputation critical-path extraction (which cascade chain
//!   bounded recovery time).
//! * [`export`] — **exporters**: JSONL span dump, Chrome `trace_event`
//!   JSON (opens directly in Perfetto / `chrome://tracing`), and a
//!   deterministic text summary table.
//!
//! The production telemetry tier sits next to the full-fidelity tracer:
//!
//! * [`clock`] — the **clock seam**: every timestamp in this crate goes
//!   through an injectable [`clock::Clock`], so tests and the simulator
//!   can drive virtual time deterministically.
//! * [`ring`] — the always-on **flight recorder**: fixed-capacity
//!   per-shard ring buffers of compact events with exact drop
//!   accounting and self-measured record cost.
//! * [`profile`] — the **phase profiler**: pre-resolved atomic timers
//!   around the engine's real phases, emitting a Fig.-7-style
//!   [`profile::PhaseBreakdown`] with one schema for engine and sim.
//! * [`snapshot`] — **snapshot deltas and rate views** over
//!   [`metrics::MetricsSnapshot`], the seam a per-tenant scrape sits on.
//! * [`blackbox`] — **post-mortem dumps**: last-N flight events + the
//!   causal failure lineage + metrics + phases, frozen when a chain
//!   dies.

#![deny(missing_docs)]

pub mod analyze;
pub mod blackbox;
pub mod clock;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod snapshot;
pub mod span;
pub mod tracer;

pub use analyze::{
    hotspot_report, recomputation_critical_path, slot_occupancy, tenant_view, CriticalPath,
    HotspotReport, NodeLoad, PathStep, RunOccupancy, WaveOccupancy,
};
pub use blackbox::{causal_lineage, BlackboxDump};
pub use clock::{Clock, ManualClock};
pub use export::{chrome_trace_value, summary, to_chrome_json, to_jsonl};
pub use metrics::{
    Counter, Gauge, Histogram, HotScopeGuard, MetricsRegistry, MetricsSnapshot, SnapshotValue,
};
pub use profile::{PhaseBreakdown, PhaseEntry, PhaseKind, PhaseProfiler, PhaseTimer};
pub use ring::{EventCode, FlightEvent, FlightLog, FlightRecorder, RecorderStats};
pub use snapshot::{DeltaValue, MetricsDelta};
pub use span::{FaultKind, Phase, Span, SpanId, SpanKind, Trace};
pub use tracer::{OpenSpan, Tracer};
