//! Failure injection.
//!
//! The paper injects failures by killing a node's TaskTracker and
//! DataNode processes 15 s into a job (§V-A). The engine's equivalent
//! is an injector consulted at deterministic execution points — job
//! start and wave boundaries — that names the nodes to kill there.
//! Deterministic injection points make every failure experiment exactly
//! reproducible, which the paper's wall-clock injection is not.

use parking_lot::Mutex;
use rcmp_model::{JobId, NodeId};
use serde::{Deserialize, Serialize};

/// Where in a job's execution the injector is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TriggerPoint {
    /// Right after JobInit, before the first map wave (the paper's
    /// "15 s after the start of some job" lands here or in the first
    /// map wave for our workloads).
    JobStart,
    /// After the given map wave (0-based) completes.
    AfterMapWave(u32),
    /// After the given reduce wave (0-based) completes. The paper's
    /// "just before the job completes" (Fig. 1) is the last reduce wave.
    AfterReduceWave(u32),
}

/// Execution-progress event reported to the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Global run sequence number (the paper's job numbering: every run,
    /// initial or recomputation, gets the next integer).
    pub seq: u64,
    /// The logical job being run.
    pub job: JobId,
    pub point: TriggerPoint,
}

/// Decides which nodes die at a given execution point.
pub trait FailureInjector: Send + Sync {
    /// Returns the nodes to kill at this point (usually empty).
    fn poll(&self, event: &ProgressEvent) -> Vec<NodeId>;
}

/// Injector that never fails anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFailures;

impl FailureInjector for NoFailures {
    fn poll(&self, _event: &ProgressEvent) -> Vec<NodeId> {
        Vec::new()
    }
}

/// One scripted kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// Fire during the run with this sequence number.
    pub seq: u64,
    pub point: TriggerPoint,
    pub node: NodeId,
}

/// Kills scripted (seq, point) → node. Each trigger fires at most once.
///
/// Triggers at a point the run never reaches (e.g. `AfterMapWave(5)` of
/// a 3-wave job) simply never fire; tests assert on `unfired()` to catch
/// mis-scripted scenarios.
#[derive(Debug, Default)]
pub struct ScriptedInjector {
    triggers: Mutex<Vec<Trigger>>,
}

impl ScriptedInjector {
    pub fn new(triggers: impl IntoIterator<Item = Trigger>) -> Self {
        Self {
            triggers: Mutex::new(triggers.into_iter().collect()),
        }
    }

    /// Convenience: kill `node` at `point` of run `seq`.
    pub fn single(seq: u64, point: TriggerPoint, node: NodeId) -> Self {
        Self::new([Trigger { seq, point, node }])
    }

    /// Adds another trigger (e.g. a second failure scheduled later).
    pub fn add(&self, trigger: Trigger) {
        self.triggers.lock().push(trigger);
    }

    /// Triggers that have not fired yet.
    pub fn unfired(&self) -> Vec<Trigger> {
        self.triggers.lock().clone()
    }
}

impl FailureInjector for ScriptedInjector {
    fn poll(&self, event: &ProgressEvent) -> Vec<NodeId> {
        let mut triggers = self.triggers.lock();
        let mut fired = Vec::new();
        triggers.retain(|t| {
            if t.seq == event.seq && t.point == event.point {
                fired.push(t.node);
                false
            } else {
                true
            }
        });
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, point: TriggerPoint) -> ProgressEvent {
        ProgressEvent {
            seq,
            job: JobId(1),
            point,
        }
    }

    #[test]
    fn no_failures_is_silent() {
        assert!(NoFailures.poll(&ev(1, TriggerPoint::JobStart)).is_empty());
    }

    #[test]
    fn scripted_fires_once_at_exact_point() {
        let inj = ScriptedInjector::single(2, TriggerPoint::AfterMapWave(1), NodeId(3));
        assert!(inj.poll(&ev(1, TriggerPoint::AfterMapWave(1))).is_empty());
        assert!(inj.poll(&ev(2, TriggerPoint::AfterMapWave(0))).is_empty());
        assert_eq!(
            inj.poll(&ev(2, TriggerPoint::AfterMapWave(1))),
            vec![NodeId(3)]
        );
        assert!(inj.poll(&ev(2, TriggerPoint::AfterMapWave(1))).is_empty());
        assert!(inj.unfired().is_empty());
    }

    #[test]
    fn multiple_triggers_same_point() {
        let inj = ScriptedInjector::new([
            Trigger {
                seq: 1,
                point: TriggerPoint::JobStart,
                node: NodeId(0),
            },
            Trigger {
                seq: 1,
                point: TriggerPoint::JobStart,
                node: NodeId(1),
            },
        ]);
        let killed = inj.poll(&ev(1, TriggerPoint::JobStart));
        assert_eq!(killed, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn add_appends_trigger() {
        let inj = ScriptedInjector::default();
        inj.add(Trigger {
            seq: 4,
            point: TriggerPoint::AfterReduceWave(0),
            node: NodeId(2),
        });
        assert_eq!(inj.unfired().len(), 1);
        assert_eq!(
            inj.poll(&ev(4, TriggerPoint::AfterReduceWave(0))),
            vec![NodeId(2)]
        );
    }
}
