//! Failure injection.
//!
//! The paper injects failures by killing a node's TaskTracker and
//! DataNode processes 15 s into a job (§V-A). The engine's equivalent
//! is an injector consulted at deterministic execution points — job
//! start, before and after every wave — that names the faults to raise
//! there. Deterministic injection points make every failure experiment
//! exactly reproducible, which the paper's wall-clock injection is not.
//!
//! The fault set (one variant per detection/recovery mechanism, see
//! DESIGN.md "Fault model"):
//!
//! * [`Fault::NodeCrash`] — fail-stop kill; recovered by the
//!   loss-report → recomputation path.
//! * [`Fault::CorruptReplica`] — silent bit-flip in one stored replica;
//!   caught by checksum verification on read.
//! * [`Fault::TornWrite`] — a node dies mid-write after committing a
//!   strict prefix of its output chunks; healed by the tracker's
//!   torn-partition re-enqueue.
//! * [`Fault::ShuffleFlake`] — transient shuffle-fetch failures;
//!   absorbed by bounded retry.
//! * [`Fault::NodeDrain`] — graceful membership removal (the benign
//!   counterpart of a crash): the node stops taking tasks and replicas
//!   but its data stays readable, so nothing needs recovery at all.
//!
//! The [`RandomizedInjector`] turns these into seeded chaos schedules
//! for soak testing.

use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rcmp_model::{JobId, NodeId};
use serde::{Deserialize, Serialize};

/// Where in a job's execution the injector is consulted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TriggerPoint {
    /// Right after JobInit, before the first map wave (the paper's
    /// "15 s after the start of some job" lands here or in the first
    /// map wave for our workloads).
    JobStart,
    /// During the given map wave (0-based): fired after the wave's tasks
    /// are assigned but before they execute, so a node killed here dies
    /// with map tasks of that wave in flight.
    MidMapWave(u32),
    /// After the given map wave (0-based) completes.
    AfterMapWave(u32),
    /// During the given reduce wave (0-based): fired after assignment,
    /// before execution — a kill here fails in-flight reducers.
    MidReduceWave(u32),
    /// After the given reduce wave (0-based) completes. The paper's
    /// "just before the job completes" (Fig. 1) is the last reduce wave.
    AfterReduceWave(u32),
}

/// Execution-progress event reported to the injector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Global run sequence number (the paper's job numbering: every run,
    /// initial or recomputation, gets the next integer).
    pub seq: u64,
    /// The logical job being run.
    pub job: JobId,
    pub point: TriggerPoint,
}

/// A fault raised at a trigger point.
///
/// Each shape is detected and recovered by a different mechanism (see
/// DESIGN.md "Fault model"): kills by the loss-report → recomputation
/// path, corruption by checksum verification on read, torn writes by
/// the tracker's torn-partition re-enqueue, and flakes by bounded
/// shuffle retry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Kill the node outright: its DFS block replicas and persisted map
    /// outputs are gone immediately.
    NodeCrash(NodeId),
    /// Silently flip bits in one DFS block replica stored on the node.
    /// Namespace metadata (including the recorded checksum) is left
    /// untouched, so the damage surfaces on the next verified read.
    CorruptReplica { node: NodeId },
    /// Arm a torn write: the next partition write performed by this node
    /// commits only a strict prefix of its chunks and the node dies
    /// mid-write.
    TornWrite { node: NodeId },
    /// Arm transient shuffle failures: the next `times` shuffle attempts
    /// by reducers running on this node fail retryably.
    ShuffleFlake { node: NodeId, times: u32 },
    /// Gracefully drain the node (Up → Draining): it stops receiving
    /// tasks and new replicas, but everything it stores stays readable.
    /// The tracker skips the drain when the node is not Up or when it is
    /// the last schedulable node, so a drain can never strand a chain.
    NodeDrain { node: NodeId },
}

impl Fault {
    /// The node this fault targets.
    pub fn node(&self) -> NodeId {
        match *self {
            Fault::NodeCrash(n)
            | Fault::CorruptReplica { node: n }
            | Fault::TornWrite { node: n }
            | Fault::ShuffleFlake { node: n, .. }
            | Fault::NodeDrain { node: n } => n,
        }
    }
}

/// Decides which faults are raised at a given execution point.
pub trait FailureInjector: Send + Sync {
    /// Returns the nodes to kill at this point (usually empty).
    fn poll(&self, event: &ProgressEvent) -> Vec<NodeId>;

    /// Returns the faults to raise at this point. The default wraps
    /// [`FailureInjector::poll`], so plain node-kill injectors only
    /// implement that.
    fn poll_faults(&self, event: &ProgressEvent) -> Vec<Fault> {
        self.poll(event).into_iter().map(Fault::NodeCrash).collect()
    }

    /// Called by the driver once the chain completes. An injector whose
    /// script did not fully play out returns a description of what never
    /// fired, so mis-scripted scenarios fail loudly instead of silently
    /// testing nothing.
    fn finish(&self) -> std::result::Result<(), String> {
        Ok(())
    }
}

/// Injector that never fails anything.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoFailures;

impl FailureInjector for NoFailures {
    fn poll(&self, _event: &ProgressEvent) -> Vec<NodeId> {
        Vec::new()
    }
}

/// One scripted kill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trigger {
    /// Fire during the run with this sequence number.
    pub seq: u64,
    pub point: TriggerPoint,
    pub node: NodeId,
}

/// One scripted non-kill fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultTrigger {
    /// Fire during the run with this sequence number.
    pub seq: u64,
    pub point: TriggerPoint,
    pub fault: Fault,
}

/// Raises scripted (seq, point) → fault. Each trigger fires at most
/// once.
///
/// By default [`ScriptedInjector::finish`] reports triggers that never
/// fired (e.g. `AfterMapWave(5)` of a 3-wave job) as an error, so a
/// mis-scripted scenario fails instead of silently testing nothing.
/// Scenarios that intentionally script possibly-unreachable points opt
/// out with [`ScriptedInjector::tolerate_unfired`].
#[derive(Debug, Default)]
pub struct ScriptedInjector {
    triggers: Mutex<Vec<Trigger>>,
    faults: Mutex<Vec<FaultTrigger>>,
    tolerate_unfired: bool,
}

impl ScriptedInjector {
    pub fn new(triggers: impl IntoIterator<Item = Trigger>) -> Self {
        Self {
            triggers: Mutex::new(triggers.into_iter().collect()),
            faults: Mutex::new(Vec::new()),
            tolerate_unfired: false,
        }
    }

    /// Convenience: kill `node` at `point` of run `seq`.
    pub fn single(seq: u64, point: TriggerPoint, node: NodeId) -> Self {
        Self::new([Trigger { seq, point, node }])
    }

    /// Convenience: raise one fault at `point` of run `seq`.
    pub fn single_fault(seq: u64, point: TriggerPoint, fault: Fault) -> Self {
        let inj = Self::default();
        inj.add_fault(FaultTrigger { seq, point, fault });
        inj
    }

    /// Adds another kill trigger (e.g. a second failure scheduled later).
    pub fn add(&self, trigger: Trigger) {
        self.triggers.lock().push(trigger);
    }

    /// Adds a non-kill fault trigger.
    pub fn add_fault(&self, trigger: FaultTrigger) {
        self.faults.lock().push(trigger);
    }

    /// Accept triggers that never fire: `finish()` succeeds even with
    /// leftovers. For scenarios that intentionally script points the
    /// run may never reach.
    pub fn tolerate_unfired(mut self) -> Self {
        self.tolerate_unfired = true;
        self
    }

    /// Kill triggers that have not fired yet.
    pub fn unfired(&self) -> Vec<Trigger> {
        self.triggers.lock().clone()
    }

    /// Fault triggers that have not fired yet.
    pub fn unfired_faults(&self) -> Vec<FaultTrigger> {
        self.faults.lock().clone()
    }
}

impl FailureInjector for ScriptedInjector {
    fn poll(&self, event: &ProgressEvent) -> Vec<NodeId> {
        let mut triggers = self.triggers.lock();
        let mut fired = Vec::new();
        triggers.retain(|t| {
            if t.seq == event.seq && t.point == event.point {
                fired.push(t.node);
                false
            } else {
                true
            }
        });
        fired
    }

    fn poll_faults(&self, event: &ProgressEvent) -> Vec<Fault> {
        let mut fired: Vec<Fault> = self.poll(event).into_iter().map(Fault::NodeCrash).collect();
        let mut faults = self.faults.lock();
        faults.retain(|t| {
            if t.seq == event.seq && t.point == event.point {
                fired.push(t.fault);
                false
            } else {
                true
            }
        });
        fired
    }

    fn finish(&self) -> std::result::Result<(), String> {
        if self.tolerate_unfired {
            return Ok(());
        }
        let kills = self.unfired();
        let faults = self.unfired_faults();
        if kills.is_empty() && faults.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "scripted triggers never fired (mis-scripted scenario?): kills {kills:?}, faults {faults:?}"
            ))
        }
    }
}

/// Seeded chaos injector: raises randomized faults with per-shape
/// budgets.
///
/// Every decision is a pure function of `(seed, event)` plus monotone
/// budget counters, so the same seed over the same execution produces
/// the same fault schedule — chaos runs are exactly replayable from
/// their seed. The kill budget exists so a schedule can never wipe out
/// the cluster; the chain then either converges to the golden output or
/// surfaces a typed recovery error.
pub struct RandomizedInjector {
    seed: u64,
    nodes: u32,
    kill_prob: f64,
    fault_prob: f64,
    max_kills: u32,
    max_other: u32,
    with_drains: bool,
    kills_used: Mutex<u32>,
    others_used: Mutex<u32>,
}

impl RandomizedInjector {
    /// A chaos injector over `nodes` nodes with default probabilities
    /// and budgets (at most 2 kills and 6 partial faults per chain).
    pub fn new(seed: u64, nodes: u32) -> Self {
        Self {
            seed,
            nodes,
            kill_prob: 0.04,
            fault_prob: 0.12,
            max_kills: 2,
            max_other: 6,
            with_drains: false,
            kills_used: Mutex::new(0),
            others_used: Mutex::new(0),
        }
    }

    /// Adds graceful node drains to the fault mix (a fourth non-kill
    /// shape). Opt-in so existing seeded schedules replay unchanged:
    /// without drains the shape draw keeps its historical 0..3 range.
    pub fn with_drains(mut self) -> Self {
        self.with_drains = true;
        self
    }

    /// Per-event probability of a node kill (budget permitting).
    /// Clamped to [0, 1]: an out-of-range value must not turn into a
    /// panic mid-chain.
    pub fn kill_probability(mut self, p: f64) -> Self {
        self.kill_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Per-event probability of a non-kill fault (budget permitting).
    /// Clamped to [0, 1] like [`Self::kill_probability`].
    pub fn fault_probability(mut self, p: f64) -> Self {
        self.fault_prob = p.clamp(0.0, 1.0);
        self
    }

    /// Caps total node kills. Keep this below the replica count the
    /// chain input needs to survive, or schedules can make the input
    /// itself unrecoverable.
    pub fn max_kills(mut self, n: u32) -> Self {
        self.max_kills = n;
        self
    }

    /// Caps total corruption/torn-write/flake faults.
    pub fn max_other_faults(mut self, n: u32) -> Self {
        self.max_other = n;
        self
    }

    /// Faults raised so far as (kills, other).
    pub fn faults_raised(&self) -> (u32, u32) {
        (*self.kills_used.lock(), *self.others_used.lock())
    }

    /// Deterministic per-event RNG: independent of poll order across
    /// threads or runs, dependent only on the seed and the event.
    fn event_rng(&self, event: &ProgressEvent) -> SmallRng {
        let (tag, wave) = match event.point {
            TriggerPoint::JobStart => (0u64, 0u64),
            TriggerPoint::MidMapWave(w) => (1, w as u64),
            TriggerPoint::AfterMapWave(w) => (2, w as u64),
            TriggerPoint::MidReduceWave(w) => (3, w as u64),
            TriggerPoint::AfterReduceWave(w) => (4, w as u64),
        };
        let mut bytes = Vec::with_capacity(32);
        bytes.extend_from_slice(&self.seed.to_le_bytes());
        bytes.extend_from_slice(&event.seq.to_le_bytes());
        bytes.extend_from_slice(&u64::from(event.job.raw()).to_le_bytes());
        bytes.extend_from_slice(&tag.to_le_bytes());
        bytes.extend_from_slice(&wave.to_le_bytes());
        SmallRng::seed_from_u64(rcmp_model::hash::hash_bytes(&bytes))
    }
}

impl FailureInjector for RandomizedInjector {
    fn poll(&self, _event: &ProgressEvent) -> Vec<NodeId> {
        Vec::new()
    }

    fn poll_faults(&self, event: &ProgressEvent) -> Vec<Fault> {
        let mut rng = self.event_rng(event);
        // Fixed draw order keeps the schedule a function of the seed
        // alone; the budgets only gate whether a decided fault fires.
        let node = NodeId(rng.gen_range(0..self.nodes));
        let kill_roll = rng.gen_bool(self.kill_prob);
        let fault_roll = rng.gen_bool(self.fault_prob);
        let shapes = if self.with_drains { 4u32 } else { 3 };
        let shape = rng.gen_range(0..shapes);
        let times = rng.gen_range(1..4u32);
        if kill_roll {
            let mut used = self.kills_used.lock();
            if *used < self.max_kills {
                *used += 1;
                return vec![Fault::NodeCrash(node)];
            }
        }
        if fault_roll {
            let mut used = self.others_used.lock();
            if *used < self.max_other {
                *used += 1;
                let fault = match shape {
                    0 => Fault::CorruptReplica { node },
                    1 => Fault::TornWrite { node },
                    2 => Fault::ShuffleFlake { node, times },
                    _ => Fault::NodeDrain { node },
                };
                return vec![fault];
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, point: TriggerPoint) -> ProgressEvent {
        ProgressEvent {
            seq,
            job: JobId(1),
            point,
        }
    }

    #[test]
    fn no_failures_is_silent() {
        assert!(NoFailures.poll(&ev(1, TriggerPoint::JobStart)).is_empty());
        assert!(NoFailures
            .poll_faults(&ev(1, TriggerPoint::JobStart))
            .is_empty());
        assert!(NoFailures.finish().is_ok());
    }

    #[test]
    fn scripted_fires_once_at_exact_point() {
        let inj = ScriptedInjector::single(2, TriggerPoint::AfterMapWave(1), NodeId(3));
        assert!(inj.poll(&ev(1, TriggerPoint::AfterMapWave(1))).is_empty());
        assert!(inj.poll(&ev(2, TriggerPoint::AfterMapWave(0))).is_empty());
        assert_eq!(
            inj.poll(&ev(2, TriggerPoint::AfterMapWave(1))),
            vec![NodeId(3)]
        );
        assert!(inj.poll(&ev(2, TriggerPoint::AfterMapWave(1))).is_empty());
        assert!(inj.unfired().is_empty());
    }

    #[test]
    fn multiple_triggers_same_point() {
        let inj = ScriptedInjector::new([
            Trigger {
                seq: 1,
                point: TriggerPoint::JobStart,
                node: NodeId(0),
            },
            Trigger {
                seq: 1,
                point: TriggerPoint::JobStart,
                node: NodeId(1),
            },
        ]);
        let killed = inj.poll(&ev(1, TriggerPoint::JobStart));
        assert_eq!(killed, vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn add_appends_trigger() {
        let inj = ScriptedInjector::default();
        inj.add(Trigger {
            seq: 4,
            point: TriggerPoint::AfterReduceWave(0),
            node: NodeId(2),
        });
        assert_eq!(inj.unfired().len(), 1);
        assert_eq!(
            inj.poll(&ev(4, TriggerPoint::AfterReduceWave(0))),
            vec![NodeId(2)]
        );
    }

    #[test]
    fn fault_triggers_fire_once_alongside_kills() {
        let inj = ScriptedInjector::single(1, TriggerPoint::JobStart, NodeId(0));
        inj.add_fault(FaultTrigger {
            seq: 1,
            point: TriggerPoint::JobStart,
            fault: Fault::CorruptReplica { node: NodeId(2) },
        });
        let fired = inj.poll_faults(&ev(1, TriggerPoint::JobStart));
        assert_eq!(
            fired,
            vec![
                Fault::NodeCrash(NodeId(0)),
                Fault::CorruptReplica { node: NodeId(2) }
            ]
        );
        assert!(inj.poll_faults(&ev(1, TriggerPoint::JobStart)).is_empty());
        assert!(inj.finish().is_ok());
    }

    #[test]
    fn finish_reports_unfired_by_default_and_tolerates_on_request() {
        let strict = ScriptedInjector::single(9, TriggerPoint::AfterMapWave(7), NodeId(0));
        let err = strict.finish().unwrap_err();
        assert!(err.contains("never fired"), "got: {err}");

        let tolerant = ScriptedInjector::single(9, TriggerPoint::AfterMapWave(7), NodeId(0))
            .tolerate_unfired();
        assert!(tolerant.finish().is_ok());
    }

    #[test]
    fn randomized_same_seed_same_schedule() {
        let events: Vec<ProgressEvent> = (1..=20u64)
            .flat_map(|seq| {
                [
                    ev(seq, TriggerPoint::JobStart),
                    ev(seq, TriggerPoint::MidMapWave(0)),
                    ev(seq, TriggerPoint::AfterMapWave(0)),
                    ev(seq, TriggerPoint::MidReduceWave(1)),
                    ev(seq, TriggerPoint::AfterReduceWave(1)),
                ]
            })
            .collect();
        let a = RandomizedInjector::new(42, 5)
            .kill_probability(0.2)
            .fault_probability(0.5);
        let b = RandomizedInjector::new(42, 5)
            .kill_probability(0.2)
            .fault_probability(0.5);
        let sched_a: Vec<Vec<Fault>> = events.iter().map(|e| a.poll_faults(e)).collect();
        let sched_b: Vec<Vec<Fault>> = events.iter().map(|e| b.poll_faults(e)).collect();
        assert_eq!(sched_a, sched_b, "same seed must replay identically");
        assert!(
            sched_a.iter().any(|f| !f.is_empty()),
            "schedule at these probabilities must contain faults"
        );

        let c = RandomizedInjector::new(43, 5)
            .kill_probability(0.2)
            .fault_probability(0.5);
        let sched_c: Vec<Vec<Fault>> = events.iter().map(|e| c.poll_faults(e)).collect();
        assert_ne!(sched_a, sched_c, "different seeds diverge");
    }

    #[test]
    fn drains_are_opt_in() {
        let events: Vec<ProgressEvent> = (1..=50u64)
            .flat_map(|seq| {
                [
                    ev(seq, TriggerPoint::JobStart),
                    ev(seq, TriggerPoint::MidMapWave(0)),
                ]
            })
            .collect();
        let plain = RandomizedInjector::new(11, 5)
            .fault_probability(1.0)
            .max_other_faults(100);
        let drains = RandomizedInjector::new(11, 5)
            .fault_probability(1.0)
            .max_other_faults(100)
            .with_drains();
        let is_drain = |f: &Fault| matches!(f, Fault::NodeDrain { .. });
        let plain_sched: Vec<Fault> = events.iter().flat_map(|e| plain.poll_faults(e)).collect();
        let drain_sched: Vec<Fault> = events.iter().flat_map(|e| drains.poll_faults(e)).collect();
        assert!(
            !plain_sched.iter().any(is_drain),
            "default shape range excludes drains"
        );
        assert!(
            drain_sched.iter().any(is_drain),
            "opt-in injector mixes in drains"
        );
    }

    #[test]
    fn randomized_respects_budgets() {
        let inj = RandomizedInjector::new(7, 4)
            .kill_probability(1.0)
            .fault_probability(1.0)
            .max_kills(2)
            .max_other_faults(3);
        for seq in 1..100u64 {
            inj.poll_faults(&ev(seq, TriggerPoint::JobStart));
            inj.poll_faults(&ev(seq, TriggerPoint::AfterMapWave(0)));
        }
        let (kills, others) = inj.faults_raised();
        assert_eq!(kills, 2);
        assert_eq!(others, 3);
        assert!(inj.finish().is_ok(), "nothing scripted, nothing unfired");
    }
}
