//! Record-aligned chunking of output streams.
//!
//! Reducers write their output partition as a sequence of DFS blocks;
//! the next job's mappers read one block each. Blocks must therefore
//! start and end on record boundaries — [`ChunkingWriter`] packs encoded
//! records greedily into chunks no larger than the block size.

use bytes::{Bytes, BytesMut};
use rcmp_model::Record;

/// Packs records into record-aligned chunks of at most `chunk_size` bytes.
///
/// Each record is sized once (`encoded_len`) for the roll decision and
/// then serialized exactly once, straight into the chunk's final buffer
/// via [`Record::encode_into`] — there is no intermediate per-record
/// encode-and-copy pass.
pub struct ChunkingWriter {
    chunk_size: usize,
    current: BytesMut,
    chunks: Vec<Bytes>,
    records: usize,
    bytes: u64,
}

impl ChunkingWriter {
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size >= 12, "chunk size must fit at least a header");
        Self {
            chunk_size,
            current: BytesMut::new(),
            chunks: Vec::new(),
            records: 0,
            bytes: 0,
        }
    }

    /// Appends one record, starting a new chunk if it would overflow.
    ///
    /// Panics if a single record exceeds the chunk size — callers must
    /// size blocks above the maximum record size (the DFS would reject
    /// the oversized chunk anyway).
    pub fn push(&mut self, rec: &Record) {
        let enc = rec.encoded_len();
        assert!(
            enc <= self.chunk_size,
            "record of {enc} bytes exceeds chunk size {}",
            self.chunk_size
        );
        if self.current.len() + enc > self.chunk_size {
            let full = std::mem::take(&mut self.current);
            self.chunks.push(full.freeze());
        }
        rec.encode_into(&mut self.current);
        self.records += 1;
        self.bytes += enc as u64;
    }

    /// Number of records pushed.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Total encoded bytes pushed.
    pub fn byte_count(&self) -> u64 {
        self.bytes
    }

    /// Finishes, returning the chunk list (possibly empty).
    pub fn finish(mut self) -> Vec<Bytes> {
        if !self.current.is_empty() {
            self.chunks.push(self.current.freeze());
        }
        self.chunks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::RecordReader;

    #[test]
    fn chunks_respect_size_and_roundtrip() {
        let mut w = ChunkingWriter::new(64);
        let recs: Vec<Record> = (0..20)
            .map(|i| Record::new(i, vec![i as u8; 10])) // 22 bytes encoded
            .collect();
        for r in &recs {
            w.push(r);
        }
        assert_eq!(w.record_count(), 20);
        assert_eq!(w.byte_count(), 20 * 22);
        let chunks = w.finish();
        assert!(chunks.len() > 1);
        let mut decoded = Vec::new();
        for c in &chunks {
            assert!(c.len() <= 64, "chunk too big: {}", c.len());
            decoded.extend(RecordReader::decode_all(c.clone()).unwrap());
        }
        assert_eq!(decoded, recs);
    }

    #[test]
    fn empty_writer_yields_no_chunks() {
        assert!(ChunkingWriter::new(64).finish().is_empty());
    }

    #[test]
    fn exact_fit_does_not_split() {
        // Two records of 32 bytes exactly fill one 64-byte chunk.
        let mut w = ChunkingWriter::new(64);
        for i in 0..2 {
            w.push(&Record::new(i, vec![0u8; 20])); // 32 bytes each
        }
        assert_eq!(w.finish().len(), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds chunk size")]
    fn oversized_record_panics() {
        let mut w = ChunkingWriter::new(16);
        w.push(&Record::new(0, vec![0u8; 100]));
    }
}
