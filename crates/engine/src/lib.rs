//! A real, multi-threaded MapReduce execution engine.
//!
//! This crate is the Hadoop-equivalent substrate the RCMP paper modifies:
//! jobs with user-defined [`udf::Mapper`]s and [`udf::Reducer`]s run over
//! a replicated DFS (`rcmp-dfs`) on a cluster of node executors with
//! mapper/reducer **slots**, **wave** scheduling, an all-to-all
//! **shuffle**, and **failure injection** at wave boundaries.
//!
//! RCMP-specific mechanisms live here as *mechanism*, with the *policy*
//! in `rcmp-core`:
//!
//! * the [`mapstore::MapOutputStore`] persists map outputs across jobs,
//!   keyed by the input block's position and content fingerprint — the
//!   fingerprint check is what makes persisted-output reuse safe in the
//!   presence of reducer splitting (the paper's Fig.-5 rule);
//! * a [`job::RunMode::Recompute`] run executes only the minimum task
//!   set: the reducers named in the instructions (optionally split
//!   `k`-ways) plus the mappers whose persisted outputs are missing or
//!   invalidated;
//! * split reducers fetch from persisted whole-partition buckets with
//!   server-side filtering by the second-level hash, and write their
//!   output as separate partition *segments*, which spreads the
//!   partition over many nodes (the hot-spot mitigation of §IV-B2).
//!
//! Everything executes for real — real bytes through real threads — so
//! correctness properties (exact output equivalence under arbitrary
//! failure/recovery sequences) are checked on actual data paths. Timing
//! at paper scale is the job of `rcmp-sim`.

pub mod cluster;
pub mod codec;
pub mod failure;
pub mod job;
pub mod mapstore;
pub mod metrics;
pub mod scheduler;
pub mod shuffle;
pub mod task;
pub mod tracker;
pub mod udf;

pub use cluster::Cluster;
pub use failure::{
    FailureInjector, Fault, FaultTrigger, NoFailures, ProgressEvent, RandomizedInjector,
    ScriptedInjector, TriggerPoint,
};
pub use job::{JobRun, JobSpec, RecomputeInstructions, RunMode};
pub use mapstore::{BucketIndex, MapInputKey, MapOutputStore};
pub use metrics::{IoBytes, JobReport, ShuffleMetrics, TaskRecord};
pub use shuffle::{MergeStats, ShuffleFailure, ShuffleResult, StreamingShuffle};
pub use tracker::JobTracker;
pub use udf::{
    Combiner, FnCombiner, FnMapper, FnReducer, IdentityMapper, IdentityReducer, Mapper, Reducer,
};
