//! The Master: JobInit, wave execution, intra-job failure recovery.
//!
//! `run` executes one job submission to completion or to an
//! unrecoverable data-loss error:
//!
//! * **JobInit** enumerates the input file's blocks (one mapper per
//!   block) and the reduce task set. For a [`RunMode::Recompute`]
//!   submission it readies only the minimum necessary tasks: the tagged
//!   reducer partitions (split if instructed) and the mappers whose
//!   persisted outputs are missing or whose input fingerprints no longer
//!   match (§IV-A) — Hadoop, by contrast, "treats each job submitted to
//!   the system as a brand new job and re-executes it entirely", which
//!   is what [`RunMode::Full`] does.
//! * **Execution** proceeds in slot-constrained waves; the failure
//!   injector is consulted at job start and after every wave, and killed
//!   nodes lose their DFS blocks and map outputs immediately.
//! * **Intra-job recovery** is Hadoop-style task re-execution: lost map
//!   outputs re-run their mappers from surviving input replicas; lost
//!   output partitions are cleared and their reducers re-run. When a
//!   needed input partition has lost all replicas the job cannot
//!   continue and `run` returns [`Error::JobInputLost`] — the signal
//!   that makes the RCMP middleware cancel the job and start cascading
//!   recomputation.

use crate::cluster::Cluster;
use crate::codec::ChunkingWriter;
use crate::failure::{FailureInjector, Fault, ProgressEvent, TriggerPoint};
use crate::job::{JobRun, JobSpec, RunMode};
use crate::mapstore::{BucketIndex, MapInputKey};
use crate::metrics::{IoBytes, JobReport, ShuffleMetrics, TaskRecord};
use crate::scheduler::{
    assign_map_waves_kernel, assign_reduce_waves_kernel, ReduceAssignment, Waves,
};
use crate::shuffle::{shuffle_for_reduce, ShuffleFailure, StreamingShuffle};
use crate::task::{MapTask, ReduceTask};
use crate::udf::Combiner;
use bytes::Bytes;
use parking_lot::Mutex;
use rcmp_dfs::{ChainCache, LossReport, PlacementPolicy};
use rcmp_exec::{BackendExecutor, SessionExecutor, SlotOutcome, SlotTask, TaskCtx, WaveSpec};
use rcmp_model::rng::derive_indexed;
use rcmp_model::{
    Error, HashPartitioner, JobId, MapTaskId, NodeId, PartitionId, PlacementKernel, Record,
    RecordReader, RecordWriter, ReduceTaskId, Result, SplitId, SplitPartitioner, TaskId, TenantId,
};
use rcmp_obs::{
    Counter, EventCode, FaultKind, FlightRecorder, Histogram, Phase, PhaseKind, PhaseProfiler,
    SpanId, SpanKind, Tracer,
};
use rcmp_policy::PolicyCtx;
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

/// Maximum phase-recovery iterations before declaring the job stuck
/// (defensive; real scenarios converge in a handful).
const MAX_RECOVERY_ROUNDS: u32 = 1000;

/// RAII pin on one file's chain-cache entries: held for the duration of
/// a job run so the input partitions its mappers read cannot be evicted
/// by the same run's staged output, released on every exit path.
struct ChainCachePin {
    cache: Arc<ChainCache>,
    path: String,
}

impl ChainCachePin {
    fn new(cache: Arc<ChainCache>, path: String) -> Self {
        cache.pin_file(&path);
        Self { cache, path }
    }
}

impl Drop for ChainCachePin {
    fn drop(&mut self) {
        self.cache.unpin_file(&self.path);
    }
}

// Shuffle-attempt and task-retry budgets live in
// `ClusterConfig::retry` (`rcmp_model::RetryPolicy`), together with the
// seeded full-jitter backoff that paces the retries.

/// The per-job master.
pub struct JobTracker<'a> {
    cluster: &'a Cluster,
    injector: Arc<dyn FailureInjector>,
    /// Owning tenant when driven by the job service; stamped on the
    /// `JobRun` span so analyzers can filter per tenant.
    tenant: Option<TenantId>,
    /// Per-chain executor session override (the job service leases each
    /// admitted chain its own reactor session from a global worker
    /// budget). `None` runs on the cluster's shared executor.
    executor: Option<Arc<BackendExecutor>>,
    /// Nodes armed for a torn write: their next partition write commits
    /// only a strict prefix of its chunks and the node dies mid-write.
    torn: Mutex<BTreeSet<NodeId>>,
    tracer: Arc<Tracer>,
    /// Always-on flight recorder (compact events, ring-buffered).
    recorder: Arc<FlightRecorder>,
    /// Phase profiler fed by the map/reduce task bodies and wave loops.
    profiler: Arc<PhaseProfiler>,
    /// Hot-path metric handles, resolved once at tracker construction.
    m_task_retries: Counter,
    m_shuffle_transients: Counter,
    m_shuffle_bytes: Counter,
    m_shuffle_us: Histogram,
    m_backoff_ms: Histogram,
    m_shuffle: ShuffleMetrics,
}

enum ReduceOutcome {
    Done(ReduceTask, TaskRecord),
    /// Shuffle found map outputs missing (lost to a failure, or dropped
    /// because their payload failed to decode); the task stays pending
    /// and the phase loop re-runs the mappers first.
    Missing,
    /// Execution failed for a retryable reason (e.g. writer node died,
    /// or transient shuffle failures exhausted their attempt budget);
    /// the task stays pending and is reassigned next round.
    Retry(ReduceTaskId),
    /// The writer died mid-write leaving a strict prefix of the
    /// partition's chunks committed. The partition may look healthy
    /// (written, replicated) while silently missing records, so the
    /// phase loop must clear and fully re-reduce it.
    Torn {
        task: ReduceTask,
        loss: LossReport,
    },
    /// The wave was cooperatively cancelled before the task started
    /// (`ExecutorConfig::cancel_on_fatal`); the task stays pending and
    /// is reassigned next round without counting against its retry
    /// budget — it never ran.
    Cancelled,
}

impl<'a> JobTracker<'a> {
    pub fn new(cluster: &'a Cluster, injector: Arc<dyn FailureInjector>) -> Self {
        let metrics = cluster.metrics();
        Self {
            injector,
            tenant: None,
            executor: None,
            torn: Mutex::new(BTreeSet::new()),
            tracer: cluster.tracer().clone(),
            recorder: cluster.recorder().clone(),
            profiler: cluster.profiler().clone(),
            m_task_retries: metrics.counter("tracker.task_retries"),
            m_shuffle_transients: metrics.counter("tracker.shuffle_transient_failures"),
            m_shuffle_bytes: metrics.counter("tracker.shuffle_fetch_bytes"),
            m_shuffle_us: metrics.histogram(
                "tracker.shuffle_fetch_us",
                &[100, 1_000, 10_000, 100_000, 1_000_000],
            ),
            m_backoff_ms: metrics.histogram("retry.backoff_ms", &[1, 2, 4, 8, 16, 32, 64]),
            m_shuffle: ShuffleMetrics::register(metrics),
            cluster,
        }
    }

    /// Attributes this tracker's runs to a tenant: every `JobRun` span
    /// it closes carries the tag.
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = Some(tenant);
        self
    }

    /// Runs every wave on `executor` instead of the cluster's shared
    /// backend (per-chain reactor sessions under the job service).
    pub fn with_executor(mut self, executor: Arc<BackendExecutor>) -> Self {
        self.executor = Some(executor);
        self
    }

    /// The wave-executor backend this tracker submits to: the per-chain
    /// override when one was leased, else the cluster's shared backend.
    fn wave_executor(&self) -> &BackendExecutor {
        match &self.executor {
            Some(e) => e,
            None => self.cluster.executor(),
        }
    }

    /// Runs one job submission. `seq` is the global run sequence number
    /// (the paper's job numbering: recomputations get fresh numbers).
    ///
    /// Wraps the whole run in a `JobRun` span. A recompute submission is
    /// causally linked to the tracer's current cause (the recovery plan
    /// or loss that triggered it), captured *before* execution so faults
    /// injected during this run don't retroactively re-attribute it.
    pub fn run(&self, run: &JobRun, seq: u64) -> Result<JobReport> {
        let cause = if run.mode.is_recompute() {
            self.tracer.current_cause()
        } else {
            None
        };
        let live_nodes = self.cluster.live_nodes().len() as u32;
        self.recorder.record(
            EventCode::JobStart,
            None,
            seq,
            u64::from(run.spec.job.0) | (u64::from(run.mode.is_recompute()) << 32),
        );
        let open = self.tracer.open();
        // Pin the input file's cached partitions for the duration of the
        // run: memory pressure from this job's own staged output must
        // not evict the very partitions its mappers are still reading.
        let _input_pin = self
            .cluster
            .dfs()
            .chain_cache()
            .map(|cache| ChainCachePin::new(cache.clone(), run.spec.input.clone()));
        let result = self.run_inner(run, seq, open.id);
        if result.is_err() {
            // A failed/cancelled run never publishes partial output: drop
            // anything its reducers staged (the DFS restart path will
            // delete and rewrite the file anyway).
            if let Some(cache) = self.cluster.dfs().chain_cache() {
                cache.abort(&run.spec.output);
            }
        }
        self.recorder
            .record(EventCode::JobEnd, None, seq, u64::from(result.is_ok()));
        let slots = self.cluster.config().slots;
        self.tracer.close(
            open,
            SpanKind::JobRun {
                seq,
                job: run.spec.job,
                recompute: run.mode.is_recompute(),
                live_nodes,
                map_slots: slots.map,
                reduce_slots: slots.reduce,
                ok: result.is_ok(),
                tenant: self.tenant,
            },
            None,
            cause,
            None,
        );
        if let Ok(report) = &result {
            self.m_task_retries.add(report.task_retries as u64);
        }
        result
    }

    fn run_inner(&self, run: &JobRun, seq: u64, job_span: SpanId) -> Result<JobReport> {
        let spec = &run.spec;
        let started = Instant::now();
        if spec.num_reducers == 0 {
            return Err(Error::Config("job needs at least one reducer".into()));
        }
        if spec.output_replication == 0 {
            return Err(Error::Config("output replication must be >= 1".into()));
        }
        let instructions = match &run.mode {
            RunMode::Full => None,
            RunMode::Recompute(i) => {
                if let Some(k) = i.split {
                    if k == 0 {
                        return Err(Error::Config("split factor must be >= 1".into()));
                    }
                    if k > 1 && !spec.splittable {
                        return Err(Error::UnsplittableJob(spec.job));
                    }
                }
                if i.partitions.iter().any(|p| p.raw() >= spec.num_reducers) {
                    return Err(Error::Config(format!(
                        "recompute partition out of range for {} reducers",
                        spec.num_reducers
                    )));
                }
                Some(i.clone())
            }
        };

        let mut report = JobReport {
            job: spec.job,
            seq,
            ..JobReport::default()
        };

        self.fire(seq, spec.job, TriggerPoint::JobStart, job_span, &mut report);

        // ----- mapper reuse decision (pre-flight) -----------------------
        // Computed *before* any destructive output mutation (deleting a
        // Full run's old output, clearing a recompute's target
        // partitions): if the input is not readable the job must cancel
        // leaving the cluster exactly as it found it — otherwise
        // recovery planning would see partitions this run cleared
        // itself as empty-but-not-lost.
        let reuse = instructions.as_ref().is_some_and(|i| i.reuse_map_outputs);
        let ignore_fp = instructions
            .as_ref()
            .is_some_and(|i| i.unsafe_ignore_fingerprints);
        self.check_input_complete(spec)?;
        let mut inputs = self.enumerate_inputs(spec)?;
        let mut pending_maps: Vec<MapTask> = Vec::new();
        for t in &inputs {
            if self.map_output_ok(t, reuse, ignore_fp) {
                report.map_tasks_reused += 1;
            } else {
                pending_maps.push(t.clone());
            }
        }
        self.check_inputs_available(spec, &pending_maps)?;

        // ----- output file + reduce task set ---------------------------
        let dfs = self.cluster.dfs();
        let mut pending_reduces: Vec<ReduceTask> = match &instructions {
            None => {
                if dfs.file_exists(&spec.output) {
                    // A restarted job discards partial results (§V-A).
                    dfs.delete_file(&spec.output)?;
                }
                self.cluster.map_outputs().clear_job(spec.job);
                dfs.create_file(&spec.output, spec.output_replication, spec.num_reducers)?;
                (0..spec.num_reducers)
                    .map(|p| ReduceTask::new(ReduceTaskId::whole(spec.job, PartitionId(p))))
                    .collect()
            }
            Some(i) => {
                dfs.file_meta(&spec.output)?; // must exist
                for &p in &i.partitions {
                    dfs.clear_partition(&spec.output, p)?;
                }
                i.partitions
                    .iter()
                    .flat_map(|&p| -> Vec<ReduceTask> {
                        match i.split {
                            None | Some(1) => {
                                vec![ReduceTask::new(ReduceTaskId::whole(spec.job, p))]
                            }
                            Some(k) => (0..k)
                                .map(|s| {
                                    ReduceTask::new(ReduceTaskId::split(spec.job, p, SplitId(s), k))
                                })
                                .collect(),
                        }
                    })
                    .collect()
            }
        };
        // Partitions this run is responsible for (damage re-checks).
        let target_partitions: BTreeSet<PartitionId> = match &instructions {
            None => (0..spec.num_reducers).map(PartitionId).collect(),
            Some(i) => i.partitions.clone(),
        };
        let split_plan: Option<(BTreeSet<PartitionId>, u32)> =
            instructions.as_ref().and_then(|i| match i.split {
                Some(k) if k > 1 => Some((i.partitions.clone(), k)),
                _ => None,
            });
        // §IV-B2 spread-output mitigation: the plan scatters this run's
        // recomputed reducer output blocks over all nodes instead of
        // using the job's configured placement.
        let placement = match &instructions {
            Some(i) if i.spread_output => PlacementPolicy::Spread,
            _ => spec.placement,
        };

        // ----- phase loop ------------------------------------------------
        // The whole loop runs under one executor session: the async
        // backend spawns its worker pool once per *job* here, instead of
        // rebuilding it for every wave (`exec.worker_starts` stays at
        // the pool size while `exec.waves` climbs).
        let mut map_wave_counter = 0u32;
        let mut reduce_wave_counter = 0u32;
        let mut reduce_retry_counts: HashMap<ReduceTaskId, u32> = HashMap::new();
        self.wave_executor().with_session(|session| -> Result<()> {
            for _round in 0..MAX_RECOVERY_ROUNDS {
                // MAP PHASE: ensure every needed map output exists.
                while !pending_maps.is_empty() {
                    self.check_inputs_available(spec, &pending_maps)?;
                    let live = self.live_or_fail()?;
                    let membership = self.cluster.membership();
                    // Partition-stable placement: under the `stable`
                    // kernel, route each map task to the node whose chain
                    // cache holds its input partition in memory (job i's
                    // reducer output read by job i+1's mappers). A holder
                    // that is no longer live yields no affinity and the
                    // kernel degrades to replica locality.
                    let cached: Vec<Option<NodeId>> =
                        if self.cluster.config().placement == PlacementKernel::Stable {
                            match self.cluster.dfs().chain_cache() {
                                Some(cache) => pending_maps
                                    .iter()
                                    .map(|t| {
                                        cache
                                            .holder(&spec.input, t.key.pid)
                                            .filter(|h| live.contains(h))
                                    })
                                    .collect(),
                                None => Vec::new(),
                            }
                        } else {
                            Vec::new()
                        };
                    let waves = assign_map_waves_kernel(
                        pending_maps.clone(),
                        &live,
                        self.cluster.config().slots.map,
                        self.cluster.config().placement,
                        &membership,
                        &cached,
                        PolicyCtx::new(&self.tracer, Some(job_span)),
                    )?;
                    let mut interrupted = false;
                    for wave in waves {
                        // Mid-wave kills land after assignment, before
                        // execution: tasks placed on the victim fail with it.
                        let mid_kills = self.fire(
                            seq,
                            spec.job,
                            TriggerPoint::MidMapWave(map_wave_counter),
                            job_span,
                            &mut report,
                        );
                        let wave_open = self.tracer.open();
                        let wave_kind = SpanKind::Wave {
                            phase: Phase::Map,
                            index: map_wave_counter,
                            tasks: wave.len() as u32,
                            capacity: live.len() as u32 * self.cluster.config().slots.map,
                        };
                        self.recorder.record(
                            EventCode::WaveStart,
                            None,
                            u64::from(map_wave_counter),
                            wave.len() as u64,
                        );
                        let had_failures = self.execute_map_wave(
                            session,
                            wave,
                            spec,
                            &split_plan,
                            seq,
                            map_wave_counter,
                            wave_open.id,
                            &mut report,
                        );
                        self.tracer
                            .close(wave_open, wave_kind, Some(job_span), None, None);
                        let wave_us = self.tracer.now_us().saturating_sub(wave_open.start_us);
                        if run.mode.is_recompute() {
                            self.profiler.add_us(PhaseKind::RecomputeWave, wave_us);
                        }
                        self.recorder.record(
                            EventCode::WaveEnd,
                            None,
                            u64::from(map_wave_counter),
                            wave_us,
                        );
                        let had_failures = had_failures?;
                        let point = TriggerPoint::AfterMapWave(map_wave_counter);
                        map_wave_counter += 1;
                        let kills = self.fire(seq, spec.job, point, job_span, &mut report);
                        if had_failures || !kills.is_empty() || !mid_kills.is_empty() {
                            interrupted = true;
                            break;
                        }
                    }
                    // Refresh: which map outputs are still missing?
                    inputs = self.enumerate_inputs(spec)?;
                    pending_maps = inputs
                        .iter()
                        .filter(|t| !self.map_output_present(t, ignore_fp))
                        .cloned()
                        .collect();
                    if !interrupted && !pending_maps.is_empty() {
                        // Defensive: tasks ran without interruption but
                        // outputs still missing would mean a bug.
                        report.task_retries += pending_maps.len();
                    }
                }

                // REDUCE PHASE.
                if pending_reduces.is_empty() {
                    break;
                }
                let live = self.live_or_fail()?;
                let style = if run.mode.is_recompute() {
                    ReduceAssignment::Balance
                } else {
                    ReduceAssignment::RoundRobinByPartition
                };
                let membership = self.cluster.membership();
                let waves: Waves<ReduceTask> = assign_reduce_waves_kernel(
                    pending_reduces.clone(),
                    &live,
                    self.cluster.config().slots.reduce,
                    style,
                    self.cluster.config().placement,
                    &membership,
                    PolicyCtx::new(&self.tracer, Some(job_span)),
                )?;
                // Owned by `Arc` because session workers may briefly outlive
                // one wave's call frame: the slot closures clone the handle
                // instead of borrowing this round-local vector.
                let input_keys: Arc<Vec<MapInputKey>> =
                    Arc::new(inputs.iter().map(|t| t.key).collect());
                let mut interrupted = false;
                let mut torn_partitions: BTreeSet<PartitionId> = BTreeSet::new();
                for wave in waves {
                    let mid_kills = self.fire(
                        seq,
                        spec.job,
                        TriggerPoint::MidReduceWave(reduce_wave_counter),
                        job_span,
                        &mut report,
                    );
                    let wave_open = self.tracer.open();
                    let wave_kind = SpanKind::Wave {
                        phase: Phase::Reduce,
                        index: reduce_wave_counter,
                        tasks: wave.len() as u32,
                        capacity: live.len() as u32 * self.cluster.config().slots.reduce,
                    };
                    self.recorder.record(
                        EventCode::WaveStart,
                        None,
                        u64::from(reduce_wave_counter),
                        wave.len() as u64,
                    );
                    let outcomes = self.execute_reduce_wave(
                        session,
                        wave,
                        &input_keys,
                        spec,
                        placement,
                        seq,
                        reduce_wave_counter,
                        wave_open.id,
                    );
                    self.tracer
                        .close(wave_open, wave_kind, Some(job_span), None, None);
                    let wave_us = self.tracer.now_us().saturating_sub(wave_open.start_us);
                    if run.mode.is_recompute() {
                        self.profiler.add_us(PhaseKind::RecomputeWave, wave_us);
                    }
                    self.recorder.record(
                        EventCode::WaveEnd,
                        None,
                        u64::from(reduce_wave_counter),
                        wave_us,
                    );
                    let outcomes = outcomes?;
                    let mut wave_had_failures = false;
                    for outcome in outcomes {
                        match outcome {
                            ReduceOutcome::Done(task, rec) => {
                                report.io += rec.io;
                                report.tasks.push(rec);
                                report.reduce_tasks_run += 1;
                                pending_reduces.retain(|t| t.id != task.id);
                            }
                            ReduceOutcome::Missing => {
                                wave_had_failures = true;
                                report.task_retries += 1;
                            }
                            ReduceOutcome::Retry(id) => {
                                wave_had_failures = true;
                                report.task_retries += 1;
                                let count = reduce_retry_counts.entry(id).or_insert(0);
                                *count += 1;
                                if *count > self.cluster.config().retry.task_retries {
                                    return Err(Error::RecoveryExhausted {
                                        job: spec.job,
                                        attempts: *count,
                                        reason: format!("reduce task {id} kept failing retryably"),
                                    });
                                }
                            }
                            ReduceOutcome::Cancelled => {
                                wave_had_failures = true;
                                report.tasks_cancelled += 1;
                            }
                            ReduceOutcome::Torn { task, loss } => {
                                wave_had_failures = true;
                                report.task_retries += 1;
                                // A torn write silently damaged the output
                                // partition — a loss in its own right.
                                let loss_span = self.tracer.instant(
                                    SpanKind::Loss {
                                        seq,
                                        lost_partitions: 1,
                                    },
                                    Some(job_span),
                                    None,
                                    loss.node,
                                );
                                self.tracer.mark_cause(loss_span);
                                report.losses.push(loss);
                                torn_partitions.insert(task.id.partition);
                            }
                        }
                    }
                    let point = TriggerPoint::AfterReduceWave(reduce_wave_counter);
                    reduce_wave_counter += 1;
                    let kills = self.fire(seq, spec.job, point, job_span, &mut report);
                    if wave_had_failures || !kills.is_empty() || !mid_kills.is_empty() {
                        interrupted = true;
                        break;
                    }
                }

                // Damage check: target partitions that lost blocks — or were
                // left half-written by a torn write (which may look healthy:
                // the committed prefix chunks can still be fully replicated)
                // — must be cleared and fully re-reduced.
                let meta = dfs.file_meta(&spec.output)?;
                for &p in &target_partitions {
                    if meta.partitions[p.index()].is_lost() || torn_partitions.contains(&p) {
                        dfs.clear_partition(&spec.output, p)?;
                        let tasks: Vec<ReduceTask> = match &split_plan {
                            Some((set, k)) if set.contains(&p) => (0..*k)
                                .map(|s| {
                                    ReduceTask::new(ReduceTaskId::split(
                                        spec.job,
                                        p,
                                        SplitId(s),
                                        *k,
                                    ))
                                })
                                .collect(),
                            _ => vec![ReduceTask::new(ReduceTaskId::whole(spec.job, p))],
                        };
                        for t in tasks {
                            if !pending_reduces.iter().any(|x| x.id == t.id) {
                                pending_reduces.push(t);
                            }
                        }
                    }
                }

                // Refresh missing map outputs for the next round.
                inputs = self.enumerate_inputs(spec)?;
                pending_maps = inputs
                    .iter()
                    .filter(|t| !self.map_output_present(t, ignore_fp))
                    .cloned()
                    .collect();

                if pending_reduces.is_empty() && pending_maps.is_empty() {
                    break;
                }
                let _ = interrupted;
            }
            Ok(())
        })?;

        if !pending_reduces.is_empty() {
            return Err(Error::JobFailed {
                job: spec.job,
                reason: "recovery did not converge".into(),
            });
        }

        if !run.persist_map_outputs {
            self.cluster.map_outputs().clear_job(spec.job);
        }
        // The job converged: atomically admit its staged reducer outputs
        // into the chain cache (control thread, ascending partition
        // order — admission never depends on worker interleaving).
        if let Some(cache) = self.cluster.dfs().chain_cache() {
            cache.commit(&spec.output);
        }
        report.map_waves = map_wave_counter;
        report.reduce_waves = reduce_wave_counter;
        report.duration = started.elapsed();
        Ok(report)
    }

    // ------------------------------------------------------------ helpers

    /// Consults the injector at an execution point and applies whatever
    /// faults it raises. Returns the nodes that were killed (the only
    /// fault shape the wave loop must react to immediately; the others
    /// surface through their own detection paths).
    ///
    /// Every injected fault becomes a `Fault` instant span; a node crash
    /// that irreversibly lost partitions additionally emits a `Loss`
    /// span caused by the fault, and marks it as the tracer's current
    /// cause so the recomputation run it triggers is causally linked.
    fn fire(
        &self,
        seq: u64,
        job: JobId,
        point: TriggerPoint,
        job_span: SpanId,
        report: &mut JobReport,
    ) -> Vec<NodeId> {
        let faults = self
            .injector
            .poll_faults(&ProgressEvent { seq, job, point });
        let mut kills = Vec::new();
        for fault in faults {
            let (kind, at_node) = match &fault {
                Fault::NodeCrash(node) => (FaultKind::NodeCrash, *node),
                Fault::CorruptReplica { node } => (FaultKind::CorruptReplica, *node),
                Fault::TornWrite { node } => (FaultKind::TornWrite, *node),
                Fault::ShuffleFlake { node, .. } => (FaultKind::ShuffleFlake, *node),
                Fault::NodeDrain { node } => (FaultKind::NodeDrain, *node),
            };
            let fault_code = match kind {
                FaultKind::NodeCrash => 0,
                FaultKind::CorruptReplica => 1,
                FaultKind::TornWrite => 2,
                FaultKind::ShuffleFlake => 3,
                FaultKind::NodeDrain => 4,
            };
            self.recorder
                .record(EventCode::FaultInjected, Some(at_node), seq, fault_code);
            let fault_span = self.tracer.instant(
                SpanKind::Fault {
                    seq,
                    kind,
                    at: format!("{point:?}"),
                },
                Some(job_span),
                None,
                Some(at_node),
            );
            match fault {
                Fault::NodeCrash(node) => {
                    let loss = self.cluster.fail_node(node);
                    self.recorder.record(
                        EventCode::PartitionsLost,
                        Some(node),
                        seq,
                        loss.lost_partition_count() as u64,
                    );
                    let loss_span = self.tracer.instant(
                        SpanKind::Loss {
                            seq,
                            lost_partitions: loss.lost_partition_count() as u32,
                        },
                        Some(job_span),
                        Some(fault_span),
                        Some(node),
                    );
                    self.tracer.mark_cause(loss_span);
                    report.losses.push(loss);
                    kills.push(node);
                }
                Fault::CorruptReplica { node } => {
                    // Silent on-disk damage: nothing observes it here.
                    // The checksum verification on the next read of this
                    // replica demotes it to a lost replica.
                    let _ = self.cluster.dfs().corrupt_replica_on(node);
                }
                Fault::TornWrite { node } => {
                    self.torn.lock().insert(node);
                }
                Fault::ShuffleFlake { node, times } => {
                    self.cluster.map_outputs().arm_flake(node, times);
                }
                Fault::NodeDrain { node } => {
                    // Graceful membership change, not a failure: the
                    // drain is skipped when the node is not currently
                    // schedulable or is the last schedulable node, so an
                    // injected drain can never strand the chain. Data on
                    // the drained node stays readable — no recovery runs.
                    let schedulable = self.cluster.schedulable_nodes();
                    if schedulable.len() > 1 && schedulable.contains(&node) {
                        let _ = self.cluster.drain_node(node);
                    }
                }
            }
        }
        kills
    }

    /// Nodes the next wave may be scheduled on (Up only — draining
    /// nodes keep serving data but take no new tasks).
    fn live_or_fail(&self) -> Result<Vec<NodeId>> {
        let live = self.cluster.schedulable_nodes();
        if live.is_empty() {
            return Err(Error::NoLiveNodes);
        }
        Ok(live)
    }

    /// One mapper per input block, enumerated from current metadata.
    fn enumerate_inputs(&self, spec: &JobSpec) -> Result<Vec<MapTask>> {
        let meta = self.cluster.dfs().file_meta(&spec.input)?;
        let mut tasks = Vec::new();
        let mut index = 0u32;
        for p in &meta.partitions {
            for (bi, loc) in p.block_locations().into_iter().enumerate() {
                tasks.push(MapTask {
                    id: MapTaskId::new(spec.job, index),
                    key: MapInputKey::new(spec.job, p.id, bi as u32),
                    block: loc,
                });
                index += 1;
            }
        }
        Ok(tasks)
    }

    /// Does a valid persisted output exist for this mapper (reuse path)?
    fn map_output_ok(&self, task: &MapTask, reuse: bool, ignore_fp: bool) -> bool {
        reuse && self.map_output_present(task, ignore_fp)
    }

    /// Does the store hold an output for this mapper matching the
    /// current input block fingerprint?
    fn map_output_present(&self, task: &MapTask, ignore_fp: bool) -> bool {
        match self.cluster.map_outputs().lookup(&task.key) {
            Some(meta) => ignore_fp || meta.input_hash == task.block.content_hash,
            None => false,
        }
    }

    /// Errors with [`Error::JobInputLost`] if any input partition was
    /// never (re)written — e.g. cleared by a recomputation run that a
    /// nested failure cancelled. Such a partition has no blocks, so it
    /// would otherwise be silently skipped, dropping its records from
    /// every downstream job.
    fn check_input_complete(&self, spec: &JobSpec) -> Result<()> {
        let meta = self.cluster.dfs().file_meta(&spec.input)?;
        let unwritten: Vec<PartitionId> = meta
            .partitions
            .iter()
            .filter(|p| !p.is_written())
            .map(|p| p.id)
            .collect();
        if unwritten.is_empty() {
            Ok(())
        } else {
            Err(Error::JobInputLost {
                job: spec.job,
                lost_partitions: unwritten,
            })
        }
    }

    /// Errors with [`Error::JobInputLost`] if any pending mapper's input
    /// block has no live replica.
    fn check_inputs_available(&self, spec: &JobSpec, pending: &[MapTask]) -> Result<()> {
        let mut lost: Vec<PartitionId> = pending
            .iter()
            .filter(|t| !t.block.replicas.iter().any(|&n| self.cluster.is_alive(n)))
            .map(|t| t.key.pid)
            .collect();
        if lost.is_empty() {
            Ok(())
        } else {
            lost.sort();
            lost.dedup();
            Err(Error::JobInputLost {
                job: spec.job,
                lost_partitions: lost,
            })
        }
    }

    /// Runs one wave of mappers on the job's executor session.
    /// Returns whether any task failed (triggering reassignment);
    /// errors only when the executor abandoned a task (contained
    /// panic), which escalates as [`Error::ExecutorShutdown`].
    #[allow(clippy::too_many_arguments)]
    fn execute_map_wave<'env>(
        &'env self,
        session: &SessionExecutor<'_, 'env>,
        wave: Vec<(NodeId, MapTask)>,
        spec: &'env JobSpec,
        split_plan: &'env Option<(BTreeSet<PartitionId>, u32)>,
        seq: u64,
        wave_idx: u32,
        wave_span: SpanId,
        report: &mut JobReport,
    ) -> Result<bool> {
        let exec_spec = self.wave_spec("map-wave", seq, wave_idx, wave_span);
        let cancel_on_fatal = self.cluster.config().executor.cancel_on_fatal;
        let tasks: Vec<SlotTask<'env, std::result::Result<TaskRecord, Error>>> = wave
            .into_iter()
            .map(|(node, task)| {
                SlotTask::new(move |ctx: &TaskCtx| {
                    let result =
                        self.run_map_task(node, task, spec, split_plan, wave_idx, wave_span);
                    if cancel_on_fatal && result.is_err() {
                        ctx.cancel_wave();
                    }
                    result
                })
            })
            .collect();
        let outcomes = {
            // Wave in flight: by-name metric resolution debug-asserts
            // until the guard drops — hot paths must use the handles
            // resolved at construction time.
            let _hot = self.cluster.metrics().enter_hot_scope();
            session.run_wave(&exec_spec, tasks)
        };
        let mut had_failures = false;
        for outcome in outcomes {
            match outcome {
                SlotOutcome::Completed(Ok(rec)) => {
                    self.recorder.record(
                        EventCode::TaskDone,
                        Some(rec.node),
                        u64::from(rec.id.job().0),
                        u64::from(wave_idx),
                    );
                    report.io += rec.io;
                    report.tasks.push(rec);
                    report.map_tasks_run += 1;
                }
                SlotOutcome::Completed(Err(_)) => {
                    self.recorder
                        .record(EventCode::TaskRetry, None, 0, u64::from(wave_idx));
                    had_failures = true;
                    report.task_retries += 1;
                }
                SlotOutcome::Cancelled => {
                    had_failures = true;
                    report.tasks_cancelled += 1;
                }
                SlotOutcome::Abandoned => {
                    return Err(Error::ExecutorShutdown {
                        reason: format!("map task panicked in wave {wave_idx}"),
                    });
                }
            }
        }
        Ok(had_failures)
    }

    /// Span wrapper around [`Self::map_task_inner`]: one `Task` span per
    /// attempt, parented under the wave, failed attempts included.
    fn run_map_task(
        &self,
        node: NodeId,
        task: MapTask,
        spec: &JobSpec,
        split_plan: &Option<(BTreeSet<PartitionId>, u32)>,
        wave_idx: u32,
        wave_span: SpanId,
    ) -> std::result::Result<TaskRecord, Error> {
        let tid: TaskId = task.id.into();
        let open = self.tracer.open();
        let result = self.map_task_inner(node, task, spec, split_plan, wave_idx);
        let kind = match &result {
            Ok(rec) => SpanKind::Task {
                id: tid,
                bytes_in: rec.io.map_input_total(),
                bytes_out: 0,
                input_source: rec.input_source,
                ok: true,
            },
            Err(_) => SpanKind::Task {
                id: tid,
                bytes_in: 0,
                bytes_out: 0,
                input_source: None,
                ok: false,
            },
        };
        self.tracer
            .close(open, kind, Some(wave_span), None, Some(node));
        result
    }

    fn map_task_inner(
        &self,
        node: NodeId,
        task: MapTask,
        spec: &JobSpec,
        split_plan: &Option<(BTreeSet<PartitionId>, u32)>,
        wave_idx: u32,
    ) -> std::result::Result<TaskRecord, Error> {
        let t0 = Instant::now();
        // Inter-job chain cache first: serve the input chunk from memory
        // when the previous job's reducer output is still resident and
        // its hash matches this block's fingerprint. Any miss — budget
        // spill, invalidation, recomputed partition — falls through to
        // the verified DFS read below.
        let cached = self.cluster.dfs().chain_cache().and_then(|cache| {
            let lookup_started = Instant::now();
            let hit = cache.get_chunk(
                &spec.input,
                task.key.pid,
                task.key.block_idx as usize,
                task.block.content_hash,
                node,
            );
            if hit.is_some() {
                self.profiler.add_ns(
                    PhaseKind::ChainCacheRead,
                    lookup_started.elapsed().as_nanos() as u64,
                );
            }
            hit
        });
        let (data, source) = match cached {
            Some(hit) => hit,
            None => self.cluster.dfs().read_block(&task.block, node)?,
        };
        let input_bytes = data.len() as u64;
        let hp = HashPartitioner::new(spec.num_reducers);
        let sp = split_plan
            .as_ref()
            .map(|(set, k)| (set, SplitPartitioner::new(*k), *k));
        let mut raw: HashMap<ReduceTaskId, Vec<Record>> = HashMap::new();
        let job = spec.job;
        // Phase accounting: local accumulators, flushed to the profiler
        // once per task (three clock reads per bucket, none per record).
        let mut compute_ns;
        let mut combine_ns = 0u64;
        let mut write_ns = 0u64;
        let mark = Instant::now();
        for rec in RecordReader::new(data) {
            let rec = rec?;
            spec.mapper.map(rec, &mut |out: Record| {
                let pid = hp.partition_of(out.key);
                let rtid = match &sp {
                    Some((set, part, k)) if set.contains(&pid) => {
                        ReduceTaskId::split(job, pid, part.split_of(out.key), *k)
                    }
                    _ => ReduceTaskId::whole(job, pid),
                };
                raw.entry(rtid).or_default().push(out);
            });
        }
        compute_ns = mark.elapsed().as_nanos() as u64;
        let mut buckets: HashMap<ReduceTaskId, (Bytes, BucketIndex)> =
            HashMap::with_capacity(raw.len());
        let mut output_bytes = 0u64;
        for (rtid, mut recs) in raw {
            let bucket_start = Instant::now();
            recs.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
            let sorted_at = Instant::now();
            compute_ns += (sorted_at - bucket_start).as_nanos() as u64;
            // Map-side combine, whole-partition buckets only: a split
            // task's regenerated partition must stay byte-identical to
            // the whole run's (the Fig.-5 reuse rule), so split-keyed
            // buckets always carry the raw record stream.
            if let Some(c) = &spec.combiner {
                if rtid.split.is_none() {
                    recs = self.combine_bucket(c.as_ref(), recs);
                }
            }
            let combined_at = Instant::now();
            combine_ns += (combined_at - sorted_at).as_nanos() as u64;
            let mut w = RecordWriter::default();
            for r in &recs {
                w.push(r);
            }
            let index = BucketIndex {
                records: recs.len() as u64,
                bytes: w.byte_len() as u64,
                min_key: recs.first().map_or(0, |r| r.key),
                max_key: recs.last().map_or(0, |r| r.key),
                sorted: true,
            };
            output_bytes += index.bytes;
            buckets.insert(rtid, (w.finish(), index));
            write_ns += combined_at.elapsed().as_nanos() as u64;
        }
        // Storing on a node that died mid-wave is pointless but harmless:
        // the kill's drop_node already ran or will never run again for
        // this node; re-check liveness to keep semantics crisp.
        if !self.cluster.is_alive(node) {
            return Err(Error::NodeUnavailable(node));
        }
        let insert_start = Instant::now();
        self.cluster
            .map_outputs()
            .insert_indexed(task.key, node, task.block.content_hash, buckets);
        write_ns += insert_start.elapsed().as_nanos() as u64;
        self.profiler.add_ns(PhaseKind::MapCompute, compute_ns);
        if combine_ns > 0 {
            self.profiler.add_ns(PhaseKind::Combine, combine_ns);
        }
        self.profiler.add_ns(PhaseKind::MapOutputWrite, write_ns);
        let mut io = IoBytes::default();
        if source == node {
            io.map_input_local = input_bytes;
        } else {
            io.map_input_remote = input_bytes;
        }
        let _ = output_bytes; // map outputs are not DFS writes; not in IoBytes
        Ok(TaskRecord {
            id: task.id.into(),
            node,
            wave: wave_idx,
            io,
            duration: t0.elapsed(),
            input_source: Some(source),
        })
    }

    /// Applies the map-side combiner to one sorted whole-partition
    /// bucket. Records arrive (key, value)-sorted and are grouped by
    /// key; the combiner's emissions are re-sorted so the stored bucket
    /// keeps the sorted-run invariant the streaming merge relies on.
    fn combine_bucket(&self, combiner: &dyn Combiner, recs: Vec<Record>) -> Vec<Record> {
        self.m_shuffle.combiner_records_in.add(recs.len() as u64);
        let mut out: Vec<Record> = Vec::with_capacity(recs.len());
        let mut values: Vec<Bytes> = Vec::new();
        let mut i = 0usize;
        while i < recs.len() {
            let key = recs[i].key;
            let mut j = i;
            while j < recs.len() && recs[j].key == key {
                values.push(recs[j].value.clone());
                j += 1;
            }
            combiner.combine(key, &values, &mut |rec: Record| out.push(rec));
            values.clear();
            i = j;
        }
        out.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
        self.m_shuffle.combiner_records_out.add(out.len() as u64);
        out
    }

    /// Emits the per-source shuffle accounting: one `ShuffleFetch` span
    /// and a byte-counter bump per map-output source node.
    fn record_fetches(
        &self,
        per_source: &[(NodeId, u64)],
        node: NodeId,
        task_span: SpanId,
        start: u64,
        end: u64,
    ) {
        for &(source, bytes) in per_source {
            self.m_shuffle_bytes.add(bytes);
            self.tracer.record(
                SpanKind::ShuffleFetch { source, bytes },
                Some(task_span),
                None,
                Some(node),
                start,
                end,
            );
        }
    }

    /// Seed and span identity for one wave submission: the queue order
    /// of the async backend is a pure function of the cluster seed, the
    /// run sequence number and the wave index, so replays are
    /// bit-identical.
    fn wave_spec(
        &self,
        label: &'static str,
        seq: u64,
        wave_idx: u32,
        wave_span: SpanId,
    ) -> WaveSpec {
        let seed = derive_indexed(
            self.cluster.config().seed,
            label,
            (seq << 32) | u64::from(wave_idx),
        );
        WaveSpec::new(label, seed).with_parent(wave_span)
    }

    /// Runs one wave of reducers on the job's executor session.
    /// Errors only when the executor abandoned a task (contained
    /// panic), which escalates as [`Error::ExecutorShutdown`].
    #[allow(clippy::too_many_arguments)]
    fn execute_reduce_wave<'env>(
        &'env self,
        session: &SessionExecutor<'_, 'env>,
        wave: Vec<(NodeId, ReduceTask)>,
        input_keys: &Arc<Vec<MapInputKey>>,
        spec: &'env JobSpec,
        placement: PlacementPolicy,
        seq: u64,
        wave_idx: u32,
        wave_span: SpanId,
    ) -> Result<Vec<ReduceOutcome>> {
        let exec_spec = self.wave_spec("reduce-wave", seq, wave_idx, wave_span);
        let cancel_on_fatal = self.cluster.config().executor.cancel_on_fatal;
        let tasks: Vec<SlotTask<'env, ReduceOutcome>> = wave
            .into_iter()
            .map(|(node, task)| {
                let input_keys = Arc::clone(input_keys);
                SlotTask::new(move |ctx: &TaskCtx| {
                    let outcome = self.run_reduce_task(
                        node,
                        task,
                        input_keys.as_slice(),
                        spec,
                        placement,
                        wave_idx,
                        wave_span,
                    );
                    // A torn write is a node death observed mid-task —
                    // the wave's fatal-fault signal.
                    if cancel_on_fatal && matches!(outcome, ReduceOutcome::Torn { .. }) {
                        ctx.cancel_wave();
                    }
                    outcome
                })
            })
            .collect();
        // Wave in flight: by-name metric resolution debug-asserts until
        // the guard drops.
        let _hot = self.cluster.metrics().enter_hot_scope();
        session
            .run_wave(&exec_spec, tasks)
            .into_iter()
            .map(|o| match o {
                SlotOutcome::Completed(outcome) => Ok(outcome),
                SlotOutcome::Cancelled => Ok(ReduceOutcome::Cancelled),
                SlotOutcome::Abandoned => Err(Error::ExecutorShutdown {
                    reason: format!("reduce task panicked in wave {wave_idx}"),
                }),
            })
            .collect()
    }

    /// Span wrapper around [`Self::reduce_task_inner`]: one `Task` span
    /// per attempt under the wave, with per-source `ShuffleFetch` child
    /// spans emitted by the inner function.
    #[allow(clippy::too_many_arguments)]
    fn run_reduce_task(
        &self,
        node: NodeId,
        task: ReduceTask,
        input_keys: &[MapInputKey],
        spec: &JobSpec,
        placement: PlacementPolicy,
        wave_idx: u32,
        wave_span: SpanId,
    ) -> ReduceOutcome {
        let tid: TaskId = task.id.into();
        let open = self.tracer.open();
        let outcome =
            self.reduce_task_inner(node, task, input_keys, spec, placement, wave_idx, open.id);
        let (ok, bytes_in, bytes_out) = match &outcome {
            ReduceOutcome::Done(_, rec) => (true, rec.io.shuffle_total(), rec.io.output_written),
            _ => (false, 0, 0),
        };
        self.tracer.close(
            open,
            SpanKind::Task {
                id: tid,
                bytes_in,
                bytes_out,
                input_source: None,
                ok,
            },
            Some(wave_span),
            None,
            Some(node),
        );
        outcome
    }

    #[allow(clippy::too_many_arguments)]
    /// Stable per-retry-site seed for shuffle backoff: distinct reduce
    /// tasks (including distinct splits of one partition) derive
    /// distinct jitter schedules from the one cluster seed, so a storm
    /// of concurrent transient failures de-synchronises instead of
    /// retrying as a herd — while a replay of the same seed reproduces
    /// every delay exactly.
    fn backoff_site_seed(&self, id: ReduceTaskId) -> u64 {
        let mut site = derive_indexed(
            self.cluster.config().seed,
            "shuffle-backoff",
            (u64::from(id.job.raw()) << 32) | u64::from(id.partition.raw()),
        );
        if let Some((split, of)) = id.split {
            site = derive_indexed(
                site,
                "split",
                (u64::from(split.raw()) << 32) | u64::from(of),
            );
        }
        site
    }

    /// Sleeps the policy's full-jitter delay before retry `attempt` and
    /// records it in the `retry.backoff_ms` histogram, the flight
    /// recorder and the [`PhaseKind::RetryBackoff`] budget.
    fn backoff(&self, retry: &rcmp_model::RetryPolicy, site_seed: u64, attempt: u32) {
        let delay = retry.backoff_ms(site_seed, attempt);
        self.m_backoff_ms.observe(delay);
        self.recorder
            .record(EventCode::BackoffWait, None, delay, u64::from(attempt));
        if delay > 0 {
            let slept = Instant::now();
            std::thread::sleep(std::time::Duration::from_millis(delay));
            self.profiler
                .add_ns(PhaseKind::RetryBackoff, slept.elapsed().as_nanos() as u64);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn reduce_task_inner(
        &self,
        node: NodeId,
        task: ReduceTask,
        input_keys: &[MapInputKey],
        spec: &JobSpec,
        placement: PlacementPolicy,
        wave_idx: u32,
        task_span: SpanId,
    ) -> ReduceOutcome {
        let t0 = Instant::now();
        let store = self.cluster.map_outputs();
        let shuffle_cfg = self.cluster.config().shuffle;
        let retry = self.cluster.config().retry;
        let backoff_site = self.backoff_site_seed(task.id);
        let block_size = self.cluster.config().block_size.as_u64() as usize;
        let mut out = ChunkingWriter::new(block_size);
        let shuffle_start = self.tracer.now_us();
        let (local_bytes, remote_bytes) = if shuffle_cfg.streaming {
            // Streaming path: plan the fetches via the bucket indexes,
            // then k-way-merge the per-mapper sorted runs straight into
            // the reducer — no collect-all-then-sort pass.
            let mut attempt = 0u32;
            let mut merge = loop {
                attempt += 1;
                match StreamingShuffle::plan(
                    store,
                    input_keys,
                    task.id,
                    node,
                    shuffle_cfg.max_merge_width,
                ) {
                    Ok(m) => break m,
                    Err(ShuffleFailure::MissingMapOutputs(_)) => return ReduceOutcome::Missing,
                    Err(ShuffleFailure::Corrupt { key, .. }) => {
                        // The stored copy is permanently bad: retrying
                        // the fetch returns the same bytes. Drop the
                        // entry so the phase loop re-runs that mapper
                        // from its input block, then report missing.
                        store.remove(&key);
                        return ReduceOutcome::Missing;
                    }
                    Err(ShuffleFailure::Transient { .. }) => {
                        self.m_shuffle_transients.inc();
                        self.recorder.record(
                            EventCode::ShuffleRetry,
                            Some(node),
                            u64::from(task.id.partition.0),
                            u64::from(attempt),
                        );
                        // Retryable in place, but not forever: a path
                        // this flaky needs the task rescheduled.
                        if attempt >= retry.shuffle_attempts {
                            return ReduceOutcome::Retry(task.id);
                        }
                        // Seeded full-jitter backoff: concurrent
                        // failing fetches spread out instead of
                        // hammering the flaky path in lockstep.
                        self.backoff(&retry, backoff_site, attempt);
                    }
                }
            };
            let shuffle_end = self.tracer.now_us();
            self.m_shuffle_us
                .observe(shuffle_end.saturating_sub(shuffle_start));
            self.profiler.add_us(
                PhaseKind::ShuffleFetch,
                shuffle_end.saturating_sub(shuffle_start),
            );
            self.record_fetches(
                &merge.per_source,
                node,
                task_span,
                shuffle_start,
                shuffle_end,
            );
            let (local, remote) = (merge.local_bytes, merge.remote_bytes);
            // Merge vs UDF attribution: the loop interleaves both, so
            // the UDF is timed per group and the remainder of the loop
            // is the merge (two clock reads per group, flushed once).
            let merge_started = Instant::now();
            let mut udf_ns = 0u64;
            for group in merge.by_ref() {
                match group {
                    Ok((key, values)) => {
                        let udf_start = Instant::now();
                        spec.reducer.reduce(key, &values, &mut |rec: Record| {
                            out.push(&rec);
                        });
                        udf_ns += udf_start.elapsed().as_nanos() as u64;
                    }
                    // A lazily-decoded run can surface corruption
                    // mid-merge; treat it exactly like plan-time
                    // corruption.
                    Err(ShuffleFailure::Corrupt { key, .. }) => {
                        store.remove(&key);
                        return ReduceOutcome::Missing;
                    }
                    Err(ShuffleFailure::MissingMapOutputs(_)) => return ReduceOutcome::Missing,
                    Err(ShuffleFailure::Transient { .. }) => return ReduceOutcome::Retry(task.id),
                }
            }
            let loop_ns = merge_started.elapsed().as_nanos() as u64;
            self.profiler
                .add_ns(PhaseKind::StreamingMerge, loop_ns.saturating_sub(udf_ns));
            self.profiler.add_ns(PhaseKind::ReduceUdf, udf_ns);
            self.m_shuffle.observe_merge(&merge.stats());
            (local, remote)
        } else {
            // Legacy oracle path: fetch everything, then sort-and-group.
            let mut attempt = 0u32;
            let shuffled = loop {
                attempt += 1;
                match shuffle_for_reduce(store, input_keys, task.id, node) {
                    Ok(r) => break r,
                    Err(ShuffleFailure::MissingMapOutputs(_)) => return ReduceOutcome::Missing,
                    Err(ShuffleFailure::Corrupt { key, .. }) => {
                        store.remove(&key);
                        return ReduceOutcome::Missing;
                    }
                    Err(ShuffleFailure::Transient { .. }) => {
                        self.m_shuffle_transients.inc();
                        self.recorder.record(
                            EventCode::ShuffleRetry,
                            Some(node),
                            u64::from(task.id.partition.0),
                            u64::from(attempt),
                        );
                        if attempt >= retry.shuffle_attempts {
                            return ReduceOutcome::Retry(task.id);
                        }
                        self.backoff(&retry, backoff_site, attempt);
                    }
                }
            };
            let shuffle_end = self.tracer.now_us();
            self.m_shuffle_us
                .observe(shuffle_end.saturating_sub(shuffle_start));
            self.profiler.add_us(
                PhaseKind::ShuffleFetch,
                shuffle_end.saturating_sub(shuffle_start),
            );
            self.record_fetches(
                &shuffled.per_source,
                node,
                task_span,
                shuffle_start,
                shuffle_end,
            );
            let udf_start = Instant::now();
            for (key, values) in &shuffled.groups {
                spec.reducer.reduce(*key, values, &mut |rec: Record| {
                    out.push(&rec);
                });
            }
            self.profiler
                .add_ns(PhaseKind::ReduceUdf, udf_start.elapsed().as_nanos() as u64);
            (shuffled.local_bytes, shuffled.remote_bytes)
        };
        let output_bytes = out.byte_count();
        let chunks = out.finish();
        if self.torn.lock().remove(&node) {
            // Armed torn write: commit only a strict prefix of the
            // chunks, then die mid-write. The committed prefix can look
            // like a healthy written partition — the Torn outcome is
            // what forces the phase loop to clear and re-reduce it.
            let keep = chunks.len() / 2;
            let prefix: Vec<_> = chunks.into_iter().take(keep).collect();
            let _ = self.cluster.dfs().write_partition_chunks(
                &spec.output,
                task.id.partition,
                prefix,
                node,
                placement,
            );
            let loss = self.cluster.fail_node(node);
            return ReduceOutcome::Torn { task, loss };
        }
        // Stage whole-reducer output in the chain cache alongside the
        // durable DFS write (write-behind keeps lineage intact: every
        // byte is still checksummed + replicated on disk). Split outputs
        // are never cached — a split writes only a segment of the
        // partition, and the cache is keyed by whole partitions.
        // `Bytes` clones are refcount bumps, so staging is free.
        let stage = self
            .cluster
            .dfs()
            .chain_cache()
            .filter(|_| task.id.split.is_none())
            .map(|cache| (cache.clone(), chunks.clone()));
        match self.cluster.dfs().write_partition_chunks(
            &spec.output,
            task.id.partition,
            chunks,
            node,
            placement,
        ) {
            Ok(()) => {
                if let Some((cache, staged)) = stage {
                    cache.stage(&spec.output, task.id.partition, node, &staged);
                }
            }
            Err(_) => return ReduceOutcome::Retry(task.id),
        }
        let io = IoBytes {
            shuffle_local: local_bytes,
            shuffle_remote: remote_bytes,
            output_written: output_bytes,
            replication_written: output_bytes * (spec.output_replication as u64 - 1),
            ..IoBytes::default()
        };
        ReduceOutcome::Done(
            task,
            TaskRecord {
                id: task.id.into(),
                node,
                wave: wave_idx,
                io,
                duration: t0.elapsed(),
                input_source: None,
            },
        )
    }
}
