//! The persisted map-output store.
//!
//! Hadoop stores mapper outputs on the mapper's local disk for the
//! duration of the job. RCMP's key extension is to **persist them across
//! jobs** (§IV-A), so a recomputation run can reuse them instead of
//! re-running mappers.
//!
//! Entries are keyed by the mapper's *input block position* (job, input
//! partition, block index) and carry the input block's content
//! fingerprint. A persisted output is reusable only while the current
//! block at that position has the same fingerprint — regenerating an
//! input partition with split reducers redistributes records across
//! blocks, changes the fingerprints, and thereby invalidates exactly the
//! map outputs the paper's Fig.-5 rule says must not be reused.
//!
//! Each entry lives on the node that computed the mapper (map outputs
//! are "stored outside of the distributed file system, on the node that
//! computed the mapper", §II) — killing a node drops its entries.

use bytes::Bytes;
use parking_lot::Mutex;
use rcmp_model::{
    JobId, NodeId, PartitionId, Record, RecordReader, RecordWriter, ReduceTaskId, Result,
    SplitPartitioner,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Position of a mapper's input block within a job's input file.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MapInputKey {
    /// The job whose mapper consumed this block.
    pub job: JobId,
    /// Input-file partition the block belongs to.
    pub pid: PartitionId,
    /// Block index within that partition.
    pub block_idx: u32,
}

impl MapInputKey {
    pub fn new(job: JobId, pid: PartitionId, block_idx: u32) -> Self {
        Self {
            job,
            pid,
            block_idx,
        }
    }
}

/// Metadata of a stored map output (no payload).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MapOutputMeta {
    /// Node holding the output.
    pub node: NodeId,
    /// Fingerprint of the input block the mapper consumed.
    pub input_hash: u64,
    /// Encoded size per bucket.
    pub bucket_sizes: BTreeMap<ReduceTaskId, u64>,
}

/// Per-bucket summary written by the map side so reducers can plan a
/// fetch without decoding the payload: the key range bounds the merge,
/// `sorted` attests the bucket is already in `(key, value)` order, and
/// the counts let the merge pre-size its cursors.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BucketIndex {
    /// Records in the bucket.
    pub records: u64,
    /// Encoded payload bytes.
    pub bytes: u64,
    /// Smallest key in the bucket (0 when empty).
    pub min_key: u64,
    /// Largest key in the bucket (0 when empty).
    pub max_key: u64,
    /// The payload is sorted by `(key, value)`; reducers may stream it
    /// as a merge run without a decode-and-sort pass.
    pub sorted: bool,
}

impl BucketIndex {
    /// Index of an empty bucket.
    pub fn empty() -> Self {
        Self {
            records: 0,
            bytes: 0,
            min_key: 0,
            max_key: 0,
            sorted: true,
        }
    }
}

struct IndexedBucket {
    data: Bytes,
    /// `None` for buckets stored through the legacy [`MapOutputStore::insert`]
    /// path (including deliberately corrupt chaos payloads, which must
    /// not be scanned at insert time).
    index: Option<BucketIndex>,
}

struct StoredMapOutput {
    node: NodeId,
    input_hash: u64,
    buckets: HashMap<ReduceTaskId, IndexedBucket>,
}

/// Cluster-wide registry + payload store for map outputs.
#[derive(Default)]
pub struct MapOutputStore {
    inner: Mutex<HashMap<MapInputKey, StoredMapOutput>>,
    /// Armed transient shuffle failures: reducers running on these nodes
    /// fail their next N shuffle attempts retryably (fault injection).
    flakes: Mutex<HashMap<NodeId, u32>>,
}

impl MapOutputStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (replacing) the output of one mapper. Buckets stored this
    /// way carry no index — the payload is never scanned, so arbitrary
    /// (even corrupt) bytes are accepted and reducers fall back to the
    /// decode-and-sort path for them.
    pub fn insert(
        &self,
        key: MapInputKey,
        node: NodeId,
        input_hash: u64,
        buckets: HashMap<ReduceTaskId, Bytes>,
    ) {
        let buckets = buckets
            .into_iter()
            .map(|(k, data)| (k, IndexedBucket { data, index: None }))
            .collect();
        self.inner.lock().insert(
            key,
            StoredMapOutput {
                node,
                input_hash,
                buckets,
            },
        );
    }

    /// Stores (replacing) the output of one mapper together with the
    /// per-bucket index the map side computed while encoding.
    pub fn insert_indexed(
        &self,
        key: MapInputKey,
        node: NodeId,
        input_hash: u64,
        buckets: HashMap<ReduceTaskId, (Bytes, BucketIndex)>,
    ) {
        let buckets = buckets
            .into_iter()
            .map(|(k, (data, index))| {
                (
                    k,
                    IndexedBucket {
                        data,
                        index: Some(index),
                    },
                )
            })
            .collect();
        self.inner.lock().insert(
            key,
            StoredMapOutput {
                node,
                input_hash,
                buckets,
            },
        );
    }

    /// Metadata lookup (for the planner / tracker reuse decision).
    pub fn lookup(&self, key: &MapInputKey) -> Option<MapOutputMeta> {
        self.inner.lock().get(key).map(|s| MapOutputMeta {
            node: s.node,
            input_hash: s.input_hash,
            bucket_sizes: s
                .buckets
                .iter()
                .map(|(k, v)| (*k, v.data.len() as u64))
                .collect(),
        })
    }

    /// Fetches the bucket a reduce task needs from one map output.
    ///
    /// For a *split* reduce task whose exact bucket is absent (the map
    /// output was persisted from a run without splitting), the whole
    /// bucket of the task's partition is filtered by the second-level
    /// hash **at the serving side**, so only matching records count as
    /// transferred — mirroring a map-side serve that filters segments.
    ///
    /// Returns `(payload, serving_node)`; `None` only if the map output
    /// entry itself does not exist (mapper never ran, or its node died).
    /// An existing entry without a bucket for `reduce` means the mapper
    /// emitted no record for that reducer: an **empty** bucket.
    pub fn fetch_bucket(&self, key: &MapInputKey, reduce: ReduceTaskId) -> Option<(Bytes, NodeId)> {
        self.fetch_bucket_indexed(key, reduce)
            .map(|(payload, node, _)| (payload, node))
    }

    /// Like [`MapOutputStore::fetch_bucket`], additionally returning the
    /// bucket's index when the map side recorded one. A split fallback
    /// inherits sortedness from the whole bucket's index (filtering a
    /// sorted stream preserves order), so the re-encoded payload gets a
    /// freshly computed index instead of losing it.
    pub fn fetch_bucket_indexed(
        &self,
        key: &MapInputKey,
        reduce: ReduceTaskId,
    ) -> Option<(Bytes, NodeId, Option<BucketIndex>)> {
        let inner = self.inner.lock();
        let stored = inner.get(key)?;
        if let Some(b) = stored.buckets.get(&reduce) {
            return Some((b.data.clone(), stored.node, b.index));
        }
        // Split task falling back to the persisted whole bucket.
        if let Some((split_id, split_of)) = reduce.split {
            let whole = ReduceTaskId::whole(reduce.job, reduce.partition);
            if let Some(bucket) = stored.buckets.get(&whole) {
                let part = SplitPartitioner::new(split_of);
                let mut w = RecordWriter::new();
                let mut idx = BucketIndex::empty();
                idx.sorted = bucket.index.is_some_and(|i| i.sorted);
                for rec in RecordReader::new(bucket.data.clone()) {
                    let rec = rec.expect("stored buckets are well-formed");
                    if part.split_of(rec.key) == split_id {
                        if idx.records == 0 {
                            idx.min_key = rec.key;
                        }
                        idx.max_key = rec.key;
                        idx.records += 1;
                        w.push(&rec);
                    }
                }
                idx.bytes = w.byte_len() as u64;
                let index = bucket.index.map(|_| idx);
                return Some((w.finish(), stored.node, index));
            }
        }
        // Entry exists but the mapper produced nothing for this reducer.
        Some((Bytes::new(), stored.node, Some(BucketIndex::empty())))
    }

    /// Decodes a fetched bucket into records (helper for reducers).
    pub fn decode(bucket: Bytes) -> Result<Vec<Record>> {
        RecordReader::decode_all(bucket)
    }

    /// Removes one entry (storage reclamation / eviction). Returns true
    /// if it existed.
    pub fn remove(&self, key: &MapInputKey) -> bool {
        self.inner.lock().remove(key).is_some()
    }

    /// Drops every map output stored on a failed node; returns how many
    /// entries were lost.
    pub fn drop_node(&self, node: NodeId) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.len();
        inner.retain(|_, s| s.node != node);
        before - inner.len()
    }

    /// Drops every map output of one job (Hadoop's end-of-job cleanup,
    /// and RCMP's storage reclamation after a replication point, §IV-C).
    pub fn clear_job(&self, job: JobId) -> usize {
        let mut inner = self.inner.lock();
        let before = inner.len();
        inner.retain(|k, _| k.job != job);
        before - inner.len()
    }

    /// All keys currently stored for one job.
    pub fn keys_for_job(&self, job: JobId) -> Vec<MapInputKey> {
        let mut v: Vec<MapInputKey> = self
            .inner
            .lock()
            .keys()
            .filter(|k| k.job == job)
            .copied()
            .collect();
        v.sort();
        v
    }

    /// Total payload bytes currently persisted.
    pub fn total_bytes(&self) -> u64 {
        self.inner
            .lock()
            .values()
            .map(|s| s.buckets.values().map(|b| b.data.len() as u64).sum::<u64>())
            .sum()
    }

    /// Number of stored map outputs.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Arms `times` transient shuffle failures against reducers running
    /// on `node` (fault injection: a flaky network path or a serving
    /// node briefly refusing connections).
    pub fn arm_flake(&self, node: NodeId, times: u32) {
        if times == 0 {
            return;
        }
        *self.flakes.lock().entry(node).or_insert(0) += times;
    }

    /// Consumes one armed flake for `node`. Returns true when the
    /// caller's shuffle attempt must fail transiently.
    pub fn take_flake(&self, node: NodeId) -> bool {
        let mut flakes = self.flakes.lock();
        match flakes.get_mut(&node) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    flakes.remove(&node);
                }
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::SplitId;

    fn bucket(recs: &[(u64, &[u8])]) -> Bytes {
        let mut w = RecordWriter::new();
        for &(k, v) in recs {
            w.push(&Record::new(k, v.to_vec()));
        }
        w.finish()
    }

    fn store_one(store: &MapOutputStore, job: u32, node: u32, hash: u64) -> MapInputKey {
        let key = MapInputKey::new(JobId(job), PartitionId(0), 0);
        let whole = ReduceTaskId::whole(JobId(job), PartitionId(1));
        let mut buckets = HashMap::new();
        buckets.insert(whole, bucket(&[(1, b"a"), (2, b"b"), (3, b"c"), (4, b"d")]));
        store.insert(key, NodeId(node), hash, buckets);
        key
    }

    #[test]
    fn insert_lookup_fetch() {
        let s = MapOutputStore::new();
        let key = store_one(&s, 1, 2, 99);
        let meta = s.lookup(&key).unwrap();
        assert_eq!(meta.node, NodeId(2));
        assert_eq!(meta.input_hash, 99);
        let whole = ReduceTaskId::whole(JobId(1), PartitionId(1));
        let (payload, src) = s.fetch_bucket(&key, whole).unwrap();
        assert_eq!(src, NodeId(2));
        assert_eq!(RecordReader::decode_all(payload).unwrap().len(), 4);
    }

    #[test]
    fn absent_bucket_is_empty_but_absent_entry_is_none() {
        let s = MapOutputStore::new();
        let key = store_one(&s, 1, 0, 0);
        // Entry exists, bucket doesn't: the mapper emitted nothing for
        // this reducer → empty payload, not a loss.
        let other = ReduceTaskId::whole(JobId(1), PartitionId(7));
        let (payload, src) = s.fetch_bucket(&key, other).unwrap();
        assert!(payload.is_empty());
        assert_eq!(src, NodeId(0));
        // Entry itself missing: the map output is lost.
        assert!(s
            .fetch_bucket(&MapInputKey::new(JobId(9), PartitionId(0), 0), other)
            .is_none());
    }

    #[test]
    fn split_fetch_filters_whole_bucket() {
        let s = MapOutputStore::new();
        let key = store_one(&s, 1, 0, 0);
        let k = 4u32;
        let part = SplitPartitioner::new(k);
        let mut seen = Vec::new();
        for i in 0..k {
            let split = ReduceTaskId::split(JobId(1), PartitionId(1), SplitId(i), k);
            let (payload, _) = s.fetch_bucket(&key, split).unwrap();
            for rec in RecordReader::decode_all(payload).unwrap() {
                assert_eq!(part.split_of(rec.key), SplitId(i));
                seen.push(rec.key);
            }
        }
        seen.sort();
        assert_eq!(seen, vec![1, 2, 3, 4], "splits exactly cover the bucket");
    }

    #[test]
    fn drop_node_loses_its_outputs() {
        let s = MapOutputStore::new();
        store_one(&s, 1, 0, 0);
        store_one(&s, 2, 1, 0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.drop_node(NodeId(0)), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.drop_node(NodeId(0)), 0);
    }

    #[test]
    fn clear_job_and_keys_for_job() {
        let s = MapOutputStore::new();
        store_one(&s, 1, 0, 0);
        store_one(&s, 2, 1, 0);
        assert_eq!(s.keys_for_job(JobId(1)).len(), 1);
        assert_eq!(s.clear_job(JobId(1)), 1);
        assert!(s.keys_for_job(JobId(1)).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn total_bytes_accounts_payloads() {
        let s = MapOutputStore::new();
        assert!(s.is_empty());
        store_one(&s, 1, 0, 0);
        assert!(s.total_bytes() > 0);
    }

    #[test]
    fn flakes_decrement_and_clear() {
        let s = MapOutputStore::new();
        assert!(!s.take_flake(NodeId(0)), "nothing armed");
        s.arm_flake(NodeId(0), 2);
        s.arm_flake(NodeId(0), 1); // stacks
        s.arm_flake(NodeId(1), 0); // no-op
        assert!(!s.take_flake(NodeId(1)));
        for _ in 0..3 {
            assert!(s.take_flake(NodeId(0)));
        }
        assert!(!s.take_flake(NodeId(0)), "budget consumed");
    }

    #[test]
    fn indexed_insert_round_trips_index_and_split_inherits_sortedness() {
        let s = MapOutputStore::new();
        let key = MapInputKey::new(JobId(1), PartitionId(0), 0);
        let whole = ReduceTaskId::whole(JobId(1), PartitionId(1));
        let payload = bucket(&[(1, b"a"), (2, b"b"), (3, b"c"), (4, b"d")]);
        let idx = BucketIndex {
            records: 4,
            bytes: payload.len() as u64,
            min_key: 1,
            max_key: 4,
            sorted: true,
        };
        let mut buckets = HashMap::new();
        buckets.insert(whole, (payload, idx));
        s.insert_indexed(key, NodeId(0), 7, buckets);

        let (_, _, got) = s.fetch_bucket_indexed(&key, whole).unwrap();
        assert_eq!(got, Some(idx));

        // Split fallback recomputes the filtered bucket's index and
        // inherits sortedness from the whole bucket.
        let split = ReduceTaskId::split(JobId(1), PartitionId(1), SplitId(0), 2);
        let (payload, _, sub) = s.fetch_bucket_indexed(&key, split).unwrap();
        let sub = sub.expect("indexed whole bucket yields indexed split");
        assert!(sub.sorted);
        assert_eq!(sub.bytes, payload.len() as u64);
        assert_eq!(
            sub.records as usize,
            RecordReader::decode_all(payload).unwrap().len()
        );

        // Legacy (unindexed) inserts surface no index.
        let s2 = MapOutputStore::new();
        let k2 = store_one(&s2, 1, 0, 0);
        let (_, _, none) = s2.fetch_bucket_indexed(&k2, whole).unwrap();
        assert_eq!(none, None);
    }

    #[test]
    fn replacement_overwrites() {
        let s = MapOutputStore::new();
        let key = store_one(&s, 1, 0, 5);
        store_one(&s, 1, 3, 6); // same key, new node+hash
        let meta = s.lookup(&key).unwrap();
        assert_eq!(meta.node, NodeId(3));
        assert_eq!(meta.input_hash, 6);
        assert_eq!(s.len(), 1);
    }
}
