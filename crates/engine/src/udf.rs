//! User-defined functions: the map and reduce hooks.
//!
//! UDFs must be **deterministic**: recomputation-based failure
//! resilience regenerates lost data by re-running the same function on
//! the same input, so a UDF that consults a stateful RNG or wall clock
//! would make recomputed output diverge from the lost original. The
//! workload crate derives any "randomness" (e.g. key scattering) from
//! record content for exactly this reason.

use bytes::Bytes;
use rcmp_model::Record;

/// Output callback handed to UDFs.
pub type Emit<'a> = &'a mut dyn FnMut(Record);

/// The map UDF: applied to each input record (§II).
pub trait Mapper: Send + Sync {
    fn map(&self, record: Record, emit: Emit<'_>);
}

/// The reduce UDF: applied once per key with all the key's values (§II).
///
/// Values arrive sorted (byte-wise), making the invocation deterministic
/// regardless of shuffle fetch order — a requirement for recomputation
/// to regenerate byte-identical partitions.
pub trait Reducer: Send + Sync {
    fn reduce(&self, key: u64, values: &[Bytes], emit: Emit<'_>);
}

/// Passes every record through unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityMapper;

impl Mapper for IdentityMapper {
    fn map(&self, record: Record, emit: Emit<'_>) {
        emit(record);
    }
}

/// Re-emits every (key, value) pair unchanged.
#[derive(Clone, Copy, Debug, Default)]
pub struct IdentityReducer;

impl Reducer for IdentityReducer {
    fn reduce(&self, key: u64, values: &[Bytes], emit: Emit<'_>) {
        for v in values {
            emit(Record::new(key, v.clone()));
        }
    }
}

/// Adapts a plain function/closure into a [`Mapper`].
pub struct FnMapper<F>(pub F);

impl<F> Mapper for FnMapper<F>
where
    F: Fn(Record, Emit<'_>) + Send + Sync,
{
    fn map(&self, record: Record, emit: Emit<'_>) {
        (self.0)(record, emit)
    }
}

/// Adapts a plain function/closure into a [`Reducer`].
pub struct FnReducer<F>(pub F);

impl<F> Reducer for FnReducer<F>
where
    F: Fn(u64, &[Bytes], Emit<'_>) + Send + Sync,
{
    fn reduce(&self, key: u64, values: &[Bytes], emit: Emit<'_>) {
        (self.0)(key, values, emit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collect_map(m: &dyn Mapper, rec: Record) -> Vec<Record> {
        let mut out = Vec::new();
        m.map(rec, &mut |r| out.push(r));
        out
    }

    #[test]
    fn identity_mapper_passthrough() {
        let rec = Record::new(5, &b"v"[..]);
        assert_eq!(collect_map(&IdentityMapper, rec.clone()), vec![rec]);
    }

    #[test]
    fn identity_reducer_emits_all_values() {
        let mut out = Vec::new();
        let values = vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")];
        IdentityReducer.reduce(9, &values, &mut |r| out.push(r));
        assert_eq!(
            out,
            vec![Record::new(9, &b"a"[..]), Record::new(9, &b"b"[..])]
        );
    }

    #[test]
    fn fn_adapters() {
        let doubler = FnMapper(|r: Record, emit: Emit<'_>| {
            emit(r.clone());
            emit(r);
        });
        assert_eq!(collect_map(&doubler, Record::new(1, &b"x"[..])).len(), 2);

        let counter = FnReducer(|key, values: &[Bytes], emit: Emit<'_>| {
            emit(Record::new(
                key,
                (values.len() as u32).to_le_bytes().to_vec(),
            ));
        });
        let mut out = Vec::new();
        counter.reduce(3, &[Bytes::from_static(b"a")], &mut |r| out.push(r));
        assert_eq!(out[0].value.as_ref(), 1u32.to_le_bytes());
    }
}
