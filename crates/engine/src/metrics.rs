//! Execution metrics.
//!
//! The engine reports exact I/O accounting per task and per job. These
//! volumes are what the simulator's cost model must agree with
//! (validation strategy #3 in DESIGN.md), and what the hot-spot tests
//! assert on.

use rcmp_dfs::LossReport;
use rcmp_model::{JobId, NodeId, TaskId};
use rcmp_obs::{Counter, Gauge, MetricsRegistry};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Pre-resolved handles for the `shuffle.*` metric family, registered
/// once per tracker so the reducer hot path never touches the registry
/// map. Mirrors [`crate::shuffle::MergeStats`] plus the combiner
/// volume counters.
#[derive(Clone)]
pub struct ShuffleMetrics {
    /// `shuffle.runs_merged`: sorted runs fed through the k-way heap.
    pub runs_merged: Counter,
    /// `shuffle.runs_presorted`: runs streamed straight from an
    /// index-attested sorted bucket (no decode-and-sort pass).
    pub runs_presorted: Counter,
    /// `shuffle.index_bytes_skipped`: payload bytes of those runs.
    pub index_bytes_skipped: Counter,
    /// `shuffle.empty_runs_skipped`: empty buckets skipped via index.
    pub empty_runs_skipped: Counter,
    /// `shuffle.runs_coalesced`: runs pre-merged to respect the fan-in.
    pub runs_coalesced: Counter,
    /// `shuffle.heap_peak`: peak merge-heap size of the latest reducer.
    pub heap_peak: Gauge,
    /// `shuffle.combiner_records_in`: records entering map-side combine.
    pub combiner_records_in: Counter,
    /// `shuffle.combiner_records_out`: records left after combining.
    pub combiner_records_out: Counter,
}

impl ShuffleMetrics {
    /// Resolves every handle against `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        Self {
            runs_merged: registry.counter("shuffle.runs_merged"),
            runs_presorted: registry.counter("shuffle.runs_presorted"),
            index_bytes_skipped: registry.counter("shuffle.index_bytes_skipped"),
            empty_runs_skipped: registry.counter("shuffle.empty_runs_skipped"),
            runs_coalesced: registry.counter("shuffle.runs_coalesced"),
            heap_peak: registry.gauge("shuffle.heap_peak"),
            combiner_records_in: registry.counter("shuffle.combiner_records_in"),
            combiner_records_out: registry.counter("shuffle.combiner_records_out"),
        }
    }

    /// Folds one reducer's merge counters into the registry handles.
    pub fn observe_merge(&self, stats: &crate::shuffle::MergeStats) {
        self.runs_merged.add(stats.runs_merged);
        self.runs_presorted.add(stats.runs_presorted);
        self.index_bytes_skipped.add(stats.index_bytes_skipped);
        self.empty_runs_skipped.add(stats.empty_runs_skipped);
        self.runs_coalesced.add(stats.runs_coalesced);
        self.heap_peak.set(stats.heap_peak as i64);
    }
}

/// I/O volume accounting, in bytes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoBytes {
    /// Mapper input read from a replica on the mapper's own node.
    pub map_input_local: u64,
    /// Mapper input fetched from another node (non-local mappers).
    pub map_input_remote: u64,
    /// Shuffle bytes served from the reducer's own node.
    pub shuffle_local: u64,
    /// Shuffle bytes transferred across the network.
    pub shuffle_remote: u64,
    /// Reducer output written to the DFS (before replication).
    pub output_written: u64,
    /// Extra bytes written for replication (factor − 1 additional
    /// copies of every output block).
    pub replication_written: u64,
}

impl IoBytes {
    /// Accumulates `other` into `self`. Kept for API compatibility;
    /// prefer `+=` ([`AddAssign`]) or summing an iterator ([`Sum`]).
    ///
    /// [`AddAssign`]: std::ops::AddAssign
    /// [`Sum`]: std::iter::Sum
    pub fn add(&mut self, other: &IoBytes) {
        *self += *other;
    }

    /// Total shuffle volume.
    pub fn shuffle_total(&self) -> u64 {
        self.shuffle_local + self.shuffle_remote
    }

    /// Total mapper input volume.
    pub fn map_input_total(&self) -> u64 {
        self.map_input_local + self.map_input_remote
    }
}

impl std::ops::AddAssign for IoBytes {
    fn add_assign(&mut self, o: IoBytes) {
        self.map_input_local += o.map_input_local;
        self.map_input_remote += o.map_input_remote;
        self.shuffle_local += o.shuffle_local;
        self.shuffle_remote += o.shuffle_remote;
        self.output_written += o.output_written;
        self.replication_written += o.replication_written;
    }
}

impl std::ops::Add for IoBytes {
    type Output = IoBytes;
    fn add(mut self, o: IoBytes) -> IoBytes {
        self += o;
        self
    }
}

impl std::iter::Sum for IoBytes {
    fn sum<I: Iterator<Item = IoBytes>>(iter: I) -> IoBytes {
        iter.fold(IoBytes::default(), std::ops::Add::add)
    }
}

impl<'a> std::iter::Sum<&'a IoBytes> for IoBytes {
    fn sum<I: Iterator<Item = &'a IoBytes>>(iter: I) -> IoBytes {
        iter.copied().sum()
    }
}

/// Per-task execution record.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TaskRecord {
    pub id: TaskId,
    /// Node the task ran on.
    pub node: NodeId,
    /// Wave index within its phase.
    pub wave: u32,
    pub io: IoBytes,
    /// Wall-clock task duration (meaningful only with an artificial DFS
    /// read delay; at memory speed it is noise).
    pub duration: Duration,
    /// For mappers: the node the input block was read from.
    pub input_source: Option<NodeId>,
}

/// Outcome of one job run.
#[derive(Clone, Debug, Default)]
pub struct JobReport {
    pub job: JobId,
    /// Global run sequence number.
    pub seq: u64,
    /// Mappers actually executed this run.
    pub map_tasks_run: usize,
    /// Mappers whose persisted output was reused (skipped).
    pub map_tasks_reused: usize,
    /// Reduce tasks executed (splits count individually).
    pub reduce_tasks_run: usize,
    /// Map waves executed (max over nodes).
    pub map_waves: u32,
    /// Reduce waves executed (max over nodes).
    pub reduce_waves: u32,
    pub io: IoBytes,
    pub tasks: Vec<TaskRecord>,
    /// Data-loss events that occurred during this run (node kills).
    pub losses: Vec<LossReport>,
    /// Tasks that failed and were re-executed within this run
    /// (Hadoop-style task-level recovery).
    pub task_retries: usize,
    /// Tasks skipped by cooperative wave cancellation
    /// (`ExecutorConfig::cancel_on_fatal`); they stay pending and are
    /// reassigned in the next round, like retried tasks, but never ran.
    pub tasks_cancelled: usize,
    pub duration: Duration,
}

impl JobReport {
    /// Records of mapper tasks only.
    pub fn map_records(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(|t| t.id.is_map())
    }

    /// Records of reduce tasks only.
    pub fn reduce_records(&self) -> impl Iterator<Item = &TaskRecord> {
        self.tasks.iter().filter(|t| !t.id.is_map())
    }

    /// Nodes that served mapper input, with how many reads each served —
    /// the hot-spot observable (Fig. 6/12).
    pub fn input_sources(&self) -> std::collections::BTreeMap<NodeId, usize> {
        let mut m = std::collections::BTreeMap::new();
        for t in self.map_records() {
            if let Some(src) = t.input_source {
                *m.entry(src).or_insert(0) += 1;
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::{MapTaskId, PartitionId, ReduceTaskId};

    #[test]
    fn io_bytes_aggregation() {
        let mut a = IoBytes {
            map_input_local: 1,
            map_input_remote: 2,
            shuffle_local: 3,
            shuffle_remote: 4,
            output_written: 5,
            replication_written: 6,
        };
        a += a;
        assert_eq!(a.map_input_total(), 6);
        assert_eq!(a.shuffle_total(), 14);
        assert_eq!(a.output_written, 10);
    }

    #[test]
    fn io_bytes_sum_matches_manual_fold() {
        let parts = [
            IoBytes {
                map_input_local: 1,
                output_written: 10,
                ..IoBytes::default()
            },
            IoBytes {
                map_input_remote: 2,
                replication_written: 3,
                ..IoBytes::default()
            },
            IoBytes {
                shuffle_local: 4,
                shuffle_remote: 5,
                ..IoBytes::default()
            },
        ];
        let by_value: IoBytes = parts.iter().copied().sum();
        let by_ref: IoBytes = parts.iter().sum();
        let mut manual = IoBytes::default();
        for p in &parts {
            manual.add(p);
        }
        assert_eq!(by_value, manual);
        assert_eq!(by_ref, manual);
        assert_eq!(by_value.map_input_total(), 3);
        assert_eq!((parts[0] + parts[1]).output_written, 10);
    }

    #[test]
    fn report_filters_and_sources() {
        let mut r = JobReport::default();
        r.tasks.push(TaskRecord {
            id: MapTaskId::new(JobId(1), 0).into(),
            node: NodeId(0),
            wave: 0,
            io: IoBytes::default(),
            duration: Duration::ZERO,
            input_source: Some(NodeId(2)),
        });
        r.tasks.push(TaskRecord {
            id: ReduceTaskId::whole(JobId(1), PartitionId(0)).into(),
            node: NodeId(1),
            wave: 0,
            io: IoBytes::default(),
            duration: Duration::ZERO,
            input_source: None,
        });
        assert_eq!(r.map_records().count(), 1);
        assert_eq!(r.reduce_records().count(), 1);
        assert_eq!(r.input_sources()[&NodeId(2)], 1);
    }
}
