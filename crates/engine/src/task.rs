//! Task descriptors.

use crate::mapstore::MapInputKey;
use rcmp_dfs::BlockLocation;
use rcmp_model::{MapTaskId, ReduceTaskId};

/// One mapper: processes one input block.
#[derive(Clone, Debug)]
pub struct MapTask {
    pub id: MapTaskId,
    /// Stable position of the input block (registry key for the
    /// persisted output).
    pub key: MapInputKey,
    /// Current location/fingerprint of the input block.
    pub block: BlockLocation,
}

/// One reducer (whole or one split of a recomputed reducer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReduceTask {
    pub id: ReduceTaskId,
}

impl ReduceTask {
    pub fn new(id: ReduceTaskId) -> Self {
        Self { id }
    }
}
