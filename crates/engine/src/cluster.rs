//! The collocated cluster: DFS + map-output store + liveness.

use crate::mapstore::MapOutputStore;
use parking_lot::Mutex;
use rcmp_dfs::{Dfs, DfsConfig, LossReport};
use rcmp_exec::BackendExecutor;
use rcmp_model::{ClusterConfig, NodeId};
use rcmp_obs::{BlackboxDump, Clock, FlightRecorder, MetricsRegistry, PhaseProfiler, Tracer};
use std::sync::Arc;
use std::time::Duration;

/// A collocated cluster (§II): every node is both a storage node (DFS
/// blocks + persisted map outputs) and a compute node (task slots).
/// Killing a node therefore loses computation *and* data — the scenario
/// that makes recomputation-based resilience challenging.
///
/// The cluster owns the run's observability state: one [`Tracer`]
/// shared with the DFS (so block spans and task spans merge into a
/// single trace), one [`MetricsRegistry`] the tracker registers its
/// hot-path counters in, plus the production telemetry tier — an
/// always-on [`FlightRecorder`], a [`PhaseProfiler`] fed by the
/// tracker, the DFS and the reactor, and a slot the driver parks a
/// post-mortem [`BlackboxDump`] in when a chain dies. All timestamps
/// flow through one shared [`Clock`].
pub struct Cluster {
    cfg: ClusterConfig,
    dfs: Arc<Dfs>,
    map_outputs: MapOutputStore,
    tracer: Arc<Tracer>,
    metrics: Arc<MetricsRegistry>,
    executor: BackendExecutor,
    recorder: Arc<FlightRecorder>,
    profiler: Arc<PhaseProfiler>,
    blackbox: Mutex<Option<BlackboxDump>>,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::build(cfg, None, None)
    }

    /// Like [`Cluster::new`] but with a rack topology: remote replicas
    /// are placed rack-aware (HDFS-style, §III-A).
    pub fn with_topology(cfg: ClusterConfig, topology: rcmp_dfs::RackTopology) -> Self {
        Self::build(cfg, None, Some(topology))
    }

    /// Like [`Cluster::new`] but with an artificial per-MiB DFS read
    /// latency so concurrent reads overlap in wall-clock time (hot-spot
    /// experiments on the real engine).
    pub fn with_read_delay(cfg: ClusterConfig, delay: Duration) -> Self {
        Self::build(cfg, Some(delay), None)
    }

    fn build(
        cfg: ClusterConfig,
        read_delay: Option<Duration>,
        topology: Option<rcmp_dfs::RackTopology>,
    ) -> Self {
        cfg.validate().expect("invalid cluster config");
        // One clock for the whole run: tracer spans, flight-recorder
        // timestamps and phase-profiler guards all agree on an epoch.
        let clock = Clock::monotonic();
        let tracer = Arc::new(Tracer::with_clock(clock.clone()));
        let metrics = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(FlightRecorder::with_defaults(clock.clone()));
        let profiler = Arc::new(PhaseProfiler::new(clock));
        let executor = BackendExecutor::from_config(&cfg.executor)
            .with_obs(tracer.clone(), &metrics)
            .with_profiler(profiler.clone());
        let dfs_cfg = DfsConfig {
            nodes: cfg.nodes,
            block_size: cfg.block_size,
            seed: cfg.seed,
            read_delay,
            topology,
            store_shards: cfg.shuffle.store_shards,
        };
        let dfs = Dfs::new_traced(dfs_cfg, tracer.clone()).with_obs(
            &metrics,
            profiler.clone(),
            recorder.clone(),
        );
        Self {
            cfg,
            dfs: Arc::new(dfs),
            map_outputs: MapOutputStore::new(),
            tracer,
            metrics,
            executor,
            recorder,
            profiler,
            blackbox: Mutex::new(None),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cluster-wide span tracer (shared with the DFS). Snapshot it
    /// after a run to analyze or export the trace.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The cluster-wide metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The always-on flight recorder: compact events from the tracker,
    /// the DFS and the driver, retained in fixed-capacity rings.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The phase profiler: the cluster-wide time-budget decomposition
    /// the tracker, the DFS and the reactor accumulate into.
    pub fn profiler(&self) -> &Arc<PhaseProfiler> {
        &self.profiler
    }

    /// Parks a post-mortem dump on the cluster (the driver calls this
    /// when a chain dies with a typed error). A later failure replaces
    /// an unclaimed earlier dump — newest death wins.
    pub fn store_blackbox(&self, dump: BlackboxDump) {
        *self.blackbox.lock() = Some(dump);
    }

    /// Takes the parked post-mortem dump, if a chain death produced one.
    pub fn take_blackbox(&self) -> Option<BlackboxDump> {
        self.blackbox.lock().take()
    }

    /// The wave-executor backend selected by
    /// `ClusterConfig::executor` — the tracker runs every map and
    /// reduce wave through it.
    pub fn executor(&self) -> &BackendExecutor {
        &self.executor
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn map_outputs(&self) -> &MapOutputStore {
        &self.map_outputs
    }

    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.dfs.live_nodes()
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.dfs.is_alive(node)
    }

    /// Kills a node: DFS blocks *and* persisted map outputs on it are
    /// gone. Returns the DFS loss report (irreversibly lost partitions
    /// per file).
    pub fn fail_node(&self, node: NodeId) -> LossReport {
        let report = self.dfs.fail_node(node);
        self.map_outputs.drop_node(node);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapstore::MapInputKey;
    use bytes::Bytes;
    use rcmp_dfs::PlacementPolicy;
    use rcmp_model::{ByteSize, JobId, PartitionId, ReduceTaskId};
    use std::collections::HashMap;

    #[test]
    fn failure_hits_both_stores() {
        let cl = Cluster::new(ClusterConfig::small_test(3));
        cl.dfs().create_file("f", 1, 1).unwrap();
        cl.dfs()
            .write_partition_segment(
                "f",
                PartitionId(0),
                Bytes::from(vec![1u8; 100]),
                NodeId(1),
                PlacementPolicy::WriterLocal,
            )
            .unwrap();
        let key = MapInputKey::new(JobId(1), PartitionId(0), 0);
        let mut buckets = HashMap::new();
        buckets.insert(
            ReduceTaskId::whole(JobId(1), PartitionId(0)),
            Bytes::from_static(b""),
        );
        cl.map_outputs().insert(key, NodeId(1), 0, buckets);

        let report = cl.fail_node(NodeId(1));
        assert_eq!(report.lost_in("f"), &[PartitionId(0)]);
        assert!(cl.map_outputs().lookup(&key).is_none());
        assert_eq!(cl.live_nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(!cl.is_alive(NodeId(1)));
    }

    #[test]
    fn config_accessible() {
        let cl = Cluster::new(ClusterConfig::small_test(2));
        assert_eq!(cl.config().nodes, 2);
        assert_eq!(cl.config().block_size, ByteSize::mib(1));
    }
}
