//! The collocated cluster: DFS + map-output store + liveness.

use crate::mapstore::MapOutputStore;
use parking_lot::Mutex;
use rcmp_dfs::{Dfs, DfsConfig, LossReport, RebalanceReport};
use rcmp_exec::BackendExecutor;
use rcmp_model::{ClusterConfig, NodeId, Result};
use rcmp_obs::{
    BlackboxDump, Clock, FlightRecorder, Gauge, MetricsRegistry, PhaseProfiler, SpanKind, Tracer,
};
use rcmp_policy::Membership;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// A collocated cluster (§II): every node is both a storage node (DFS
/// blocks + persisted map outputs) and a compute node (task slots).
/// Killing a node therefore loses computation *and* data — the scenario
/// that makes recomputation-based resilience challenging.
///
/// The cluster owns the run's observability state: one [`Tracer`]
/// shared with the DFS (so block spans and task spans merge into a
/// single trace), one [`MetricsRegistry`] the tracker registers its
/// hot-path counters in, plus the production telemetry tier — an
/// always-on [`FlightRecorder`], a [`PhaseProfiler`] fed by the
/// tracker, the DFS and the reactor, and a slot the driver parks a
/// post-mortem [`BlackboxDump`] in when a chain dies. All timestamps
/// flow through one shared [`Clock`].
pub struct Cluster {
    cfg: ClusterConfig,
    dfs: Arc<Dfs>,
    map_outputs: MapOutputStore,
    membership: Mutex<Membership>,
    epoch_gauge: Gauge,
    live_gauge: Gauge,
    tracer: Arc<Tracer>,
    metrics: Arc<MetricsRegistry>,
    executor: BackendExecutor,
    recorder: Arc<FlightRecorder>,
    profiler: Arc<PhaseProfiler>,
    blackbox: Mutex<HashMap<String, BlackboxDump>>,
}

impl Cluster {
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::build(cfg, None, None)
    }

    /// Like [`Cluster::new`] but with a rack topology: remote replicas
    /// are placed rack-aware (HDFS-style, §III-A).
    pub fn with_topology(cfg: ClusterConfig, topology: rcmp_dfs::RackTopology) -> Self {
        Self::build(cfg, None, Some(topology))
    }

    /// Like [`Cluster::new`] but with an artificial per-MiB DFS read
    /// latency so concurrent reads overlap in wall-clock time (hot-spot
    /// experiments on the real engine).
    pub fn with_read_delay(cfg: ClusterConfig, delay: Duration) -> Self {
        Self::build(cfg, Some(delay), None)
    }

    fn build(
        cfg: ClusterConfig,
        read_delay: Option<Duration>,
        topology: Option<rcmp_dfs::RackTopology>,
    ) -> Self {
        cfg.validate().expect("invalid cluster config");
        // One clock for the whole run: tracer spans, flight-recorder
        // timestamps and phase-profiler guards all agree on an epoch.
        let clock = Clock::monotonic();
        let tracer = Arc::new(Tracer::with_clock(clock.clone()));
        let metrics = Arc::new(MetricsRegistry::new());
        let recorder = Arc::new(FlightRecorder::with_defaults(clock.clone()));
        let profiler = Arc::new(PhaseProfiler::new(clock));
        let executor = BackendExecutor::from_config(&cfg.executor)
            .with_obs(tracer.clone(), &metrics)
            .with_profiler(profiler.clone());
        let dfs_cfg = DfsConfig {
            nodes: cfg.nodes,
            block_size: cfg.block_size,
            seed: cfg.seed,
            read_delay,
            topology,
            store_shards: cfg.shuffle.store_shards,
        };
        let mut dfs = Dfs::new_traced(dfs_cfg, tracer.clone()).with_obs(
            &metrics,
            profiler.clone(),
            recorder.clone(),
        );
        if cfg.chain_cache.enabled {
            dfs = dfs.with_chain_cache(Arc::new(
                rcmp_dfs::ChainCache::new(cfg.chain_cache.budget).with_obs(&metrics),
            ));
        }
        // The authoritative membership record both backends schedule
        // against: same node→rack layout as the DFS placement topology.
        let membership = match &dfs.config().topology {
            Some(t) => Membership::with_racks(cfg.nodes, t.racks),
            None => Membership::uniform(cfg.nodes),
        };
        let epoch_gauge = metrics.gauge("membership.epoch");
        let live_gauge = metrics.gauge("membership.live_nodes");
        live_gauge.set(membership.schedulable().len() as i64);
        Self {
            cfg,
            dfs: Arc::new(dfs),
            map_outputs: MapOutputStore::new(),
            membership: Mutex::new(membership),
            epoch_gauge,
            live_gauge,
            tracer,
            metrics,
            executor,
            recorder,
            profiler,
            blackbox: Mutex::new(HashMap::new()),
        }
    }

    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The cluster-wide span tracer (shared with the DFS). Snapshot it
    /// after a run to analyze or export the trace.
    pub fn tracer(&self) -> &Arc<Tracer> {
        &self.tracer
    }

    /// The cluster-wide metrics registry.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// The always-on flight recorder: compact events from the tracker,
    /// the DFS and the driver, retained in fixed-capacity rings.
    pub fn recorder(&self) -> &Arc<FlightRecorder> {
        &self.recorder
    }

    /// The phase profiler: the cluster-wide time-budget decomposition
    /// the tracker, the DFS and the reactor accumulate into.
    pub fn profiler(&self) -> &Arc<PhaseProfiler> {
        &self.profiler
    }

    /// Parks a post-mortem dump on the cluster under the dying chain's
    /// key (the driver calls this when a chain dies with a typed
    /// error). Dumps are keyed so concurrent chains — e.g. different
    /// tenants on the job service — can neither clobber nor steal each
    /// other's post-mortems; a later failure of the *same* chain
    /// replaces its unclaimed earlier dump (newest death wins).
    pub fn store_blackbox(&self, chain: &str, dump: BlackboxDump) {
        self.blackbox.lock().insert(chain.to_string(), dump);
    }

    /// Takes the parked post-mortem dump for one chain key, if that
    /// chain's death produced one.
    pub fn take_blackbox(&self, chain: &str) -> Option<BlackboxDump> {
        self.blackbox.lock().remove(chain)
    }

    /// Takes any parked post-mortem dump (smallest chain key first, so
    /// the choice is deterministic). Single-chain drivers that don't
    /// track chain keys use this.
    pub fn take_any_blackbox(&self) -> Option<BlackboxDump> {
        let mut parked = self.blackbox.lock();
        let key = parked.keys().min().cloned()?;
        parked.remove(&key)
    }

    /// The wave-executor backend selected by
    /// `ClusterConfig::executor` — the tracker runs every map and
    /// reduce wave through it.
    pub fn executor(&self) -> &BackendExecutor {
        &self.executor
    }

    pub fn dfs(&self) -> &Arc<Dfs> {
        &self.dfs
    }

    pub fn map_outputs(&self) -> &MapOutputStore {
        &self.map_outputs
    }

    /// Nodes whose data is reachable (Up or Draining), ascending.
    pub fn live_nodes(&self) -> Vec<NodeId> {
        self.dfs.live_nodes()
    }

    /// Nodes tasks may be scheduled on (Up only), ascending. A draining
    /// node keeps serving its data but takes no new work.
    pub fn schedulable_nodes(&self) -> Vec<NodeId> {
        self.dfs.placement_targets()
    }

    pub fn is_alive(&self, node: NodeId) -> bool {
        self.dfs.is_alive(node)
    }

    // ----------------------------------------------------------- membership

    /// A snapshot of the authoritative membership record. Every
    /// scheduling decision is made against such a snapshot; the
    /// simulator builds the identical record from the same transition
    /// sequence, which is what keeps engine and sim schedules
    /// byte-identical across membership epochs.
    pub fn membership(&self) -> Membership {
        self.membership.lock().clone()
    }

    /// Current membership epoch: bumped by every join / drain /
    /// decommission / rejoin / death.
    pub fn membership_epoch(&self) -> u64 {
        self.membership.lock().epoch()
    }

    /// Updates the membership gauges and emits a `membership.*` span
    /// after a successful transition.
    fn note_transition(&self, what: &str, node: NodeId) {
        let (epoch, live) = {
            let m = self.membership.lock();
            (m.epoch(), m.schedulable().len())
        };
        self.epoch_gauge.set(epoch as i64);
        self.live_gauge.set(live as i64);
        self.tracer.instant(
            SpanKind::Event {
                seq: 0,
                label: format!("membership.{what} epoch={epoch} live={live}"),
            },
            None,
            None,
            Some(node),
        );
    }

    /// Adds a fresh node (Up, empty) and returns its id. Bumps the
    /// membership epoch.
    pub fn join_node(&self, capacity: u32, rack: u32) -> NodeId {
        let id = self.dfs.join_node();
        let idx = self.membership.lock().join(capacity, rack);
        debug_assert_eq!(idx, id.raw(), "dfs and membership indices agree");
        self.note_transition("join", id);
        id
    }

    /// Starts draining `node` (Up → Draining): no new tasks or replicas,
    /// data stays readable. Bumps the membership epoch.
    pub fn drain_node(&self, node: NodeId) -> Result<()> {
        self.dfs.drain_node(node)?;
        self.membership.lock().drain(node.raw())?;
        self.note_transition("drain", node);
        Ok(())
    }

    /// Brings a drained or decommissioned node back (→ Up). Bumps the
    /// membership epoch.
    pub fn rejoin_node(&self, node: NodeId) -> Result<()> {
        self.dfs.rejoin_node(node)?;
        self.membership.lock().rejoin(node.raw())?;
        self.note_transition("rejoin", node);
        Ok(())
    }

    /// Gracefully removes `node`: its DFS replicas are rebalanced onto
    /// the remaining Up nodes first (preserving the persisted-output
    /// lineage — nothing is lost, nothing recomputed), then its store is
    /// wiped and its persisted map outputs dropped. Bumps the membership
    /// epoch.
    pub fn decommission_node(&self, node: NodeId) -> Result<RebalanceReport> {
        let report = self.dfs.decommission_node(node)?;
        self.membership.lock().decommission(node.raw())?;
        self.map_outputs.drop_node(node);
        self.note_transition("decommission", node);
        Ok(report)
    }

    /// Kills a node: DFS blocks *and* persisted map outputs on it are
    /// gone. Returns the DFS loss report (irreversibly lost partitions
    /// per file).
    pub fn fail_node(&self, node: NodeId) -> LossReport {
        let report = self.dfs.fail_node(node);
        self.map_outputs.drop_node(node);
        if self.membership.lock().mark_dead(node.raw()).is_ok() {
            self.note_transition("dead", node);
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapstore::MapInputKey;
    use bytes::Bytes;
    use rcmp_dfs::PlacementPolicy;
    use rcmp_model::{ByteSize, JobId, PartitionId, ReduceTaskId};
    use std::collections::HashMap;

    #[test]
    fn failure_hits_both_stores() {
        let cl = Cluster::new(ClusterConfig::small_test(3));
        cl.dfs().create_file("f", 1, 1).unwrap();
        cl.dfs()
            .write_partition_segment(
                "f",
                PartitionId(0),
                Bytes::from(vec![1u8; 100]),
                NodeId(1),
                PlacementPolicy::WriterLocal,
            )
            .unwrap();
        let key = MapInputKey::new(JobId(1), PartitionId(0), 0);
        let mut buckets = HashMap::new();
        buckets.insert(
            ReduceTaskId::whole(JobId(1), PartitionId(0)),
            Bytes::from_static(b""),
        );
        cl.map_outputs().insert(key, NodeId(1), 0, buckets);

        let report = cl.fail_node(NodeId(1));
        assert_eq!(report.lost_in("f"), &[PartitionId(0)]);
        assert!(cl.map_outputs().lookup(&key).is_none());
        assert_eq!(cl.live_nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(!cl.is_alive(NodeId(1)));
    }

    #[test]
    fn membership_transitions_track_epoch_and_gauges() {
        let cl = Cluster::new(ClusterConfig::small_test(3));
        assert_eq!(cl.membership_epoch(), 0);
        assert_eq!(cl.schedulable_nodes().len(), 3);

        cl.drain_node(NodeId(1)).unwrap();
        assert_eq!(cl.membership_epoch(), 1);
        assert_eq!(cl.schedulable_nodes(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(cl.live_nodes().len(), 3, "draining stays readable");

        let joined = cl.join_node(1, 0);
        assert_eq!(joined, NodeId(3));
        assert_eq!(cl.membership_epoch(), 2);

        cl.rejoin_node(NodeId(1)).unwrap();
        assert_eq!(cl.schedulable_nodes().len(), 4);

        cl.fail_node(NodeId(2));
        assert_eq!(cl.membership_epoch(), 4);
        let snap = cl.metrics().snapshot();
        assert!(snap.get("membership.epoch").is_some());
        assert_eq!(
            cl.schedulable_nodes(),
            vec![NodeId(0), NodeId(1), NodeId(3)]
        );
        // The membership snapshot agrees with the DFS view.
        let m = cl.membership();
        assert_eq!(
            m.schedulable(),
            cl.schedulable_nodes()
                .iter()
                .map(|n| n.raw())
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn decommission_preserves_lineage() {
        let cl = Cluster::new(ClusterConfig::small_test(3));
        cl.dfs().create_file("f", 1, 1).unwrap();
        let data = Bytes::from(vec![5u8; 200]);
        cl.dfs()
            .write_partition_segment(
                "f",
                PartitionId(0),
                data.clone(),
                NodeId(0),
                PlacementPolicy::WriterLocal,
            )
            .unwrap();
        let report = cl.decommission_node(NodeId(0)).unwrap();
        assert!(report.blocks_moved > 0);
        assert_eq!(
            cl.dfs()
                .read_partition("f", PartitionId(0), NodeId(1))
                .unwrap(),
            data,
            "rebalanced data reads back byte-identical"
        );
        assert_eq!(cl.schedulable_nodes(), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn config_accessible() {
        let cl = Cluster::new(ClusterConfig::small_test(2));
        assert_eq!(cl.config().nodes, 2);
        assert_eq!(cl.config().block_size, ByteSize::mib(1));
    }
}
