//! The shuffle: reducers fetch their buckets from every map output.
//!
//! Each reducer copies, from every completed mapper, the key-value pairs
//! for the keys it is responsible for (§II). In this engine the "copy"
//! is a fetch from the [`MapOutputStore`]; bytes served by the reducer's
//! own node count as local, everything else as remote — the volumes the
//! simulator's network model is validated against.

use crate::mapstore::{MapInputKey, MapOutputStore};
use bytes::Bytes;
use rcmp_model::{NodeId, Record, RecordReader, ReduceTaskId, Result};

/// Outcome of one reducer's shuffle + sort + group.
#[derive(Debug)]
pub struct ShuffleResult {
    /// Key groups in ascending key order; each group's values are sorted
    /// byte-wise so the reduce invocation is deterministic regardless of
    /// fetch order.
    pub groups: Vec<(u64, Vec<Bytes>)>,
    pub local_bytes: u64,
    pub remote_bytes: u64,
    /// Bytes fetched per serving node, ascending by node — the
    /// shuffle-source attribution behind the Fig. 6 hot-spot report.
    pub per_source: Vec<(NodeId, u64)>,
}

/// Why a shuffle could not complete.
#[derive(Debug)]
pub enum ShuffleFailure {
    /// These map outputs are gone (node death); the mappers must be
    /// re-executed before the reducer can run.
    MissingMapOutputs(Vec<MapInputKey>),
    /// This map output's payload failed to decode. Permanent for the
    /// stored copy: retrying the fetch returns the same bytes. The
    /// tracker drops the entry and re-runs the mapper.
    Corrupt {
        key: MapInputKey,
        source: rcmp_model::Error,
    },
    /// The fetch failed transiently (flaky network path, serving node
    /// briefly unreachable). Retrying the shuffle is expected to
    /// succeed.
    Transient { node: NodeId },
}

/// Fetches, sorts and groups everything reduce task `reduce` needs.
///
/// `inputs` is the complete list of map-input keys of the job — a
/// reducer needs a bucket from *every* mapper, including persisted ones
/// (which is why the paper notes the shuffle stays a bottleneck even
/// when few mappers are recomputed, §IV-B2).
pub fn shuffle_for_reduce(
    store: &MapOutputStore,
    inputs: &[MapInputKey],
    reduce: ReduceTaskId,
    node: NodeId,
) -> std::result::Result<ShuffleResult, ShuffleFailure> {
    if store.take_flake(node) {
        return Err(ShuffleFailure::Transient { node });
    }

    let mut missing = Vec::new();
    let mut payloads: Vec<(MapInputKey, Bytes, NodeId)> = Vec::with_capacity(inputs.len());
    for key in inputs {
        match store.fetch_bucket(key, reduce) {
            Some((payload, source)) => payloads.push((*key, payload, source)),
            None => missing.push(*key),
        }
    }
    if !missing.is_empty() {
        return Err(ShuffleFailure::MissingMapOutputs(missing));
    }

    let mut local_bytes = 0u64;
    let mut remote_bytes = 0u64;
    let mut per_source: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
    let mut records: Vec<Record> = Vec::new();
    for (key, payload, source) in payloads {
        if source == node {
            local_bytes += payload.len() as u64;
        } else {
            remote_bytes += payload.len() as u64;
        }
        *per_source.entry(source).or_insert(0) += payload.len() as u64;
        for rec in RecordReader::new(payload) {
            match rec {
                Ok(r) => records.push(r),
                Err(e) => return Err(ShuffleFailure::Corrupt { key, source: e }),
            }
        }
    }

    Ok(ShuffleResult {
        groups: sort_and_group(records),
        local_bytes,
        remote_bytes,
        per_source: per_source.into_iter().collect(),
    })
}

/// Sorts records by (key, value) and groups values per key.
pub fn sort_and_group(mut records: Vec<Record>) -> Vec<(u64, Vec<Bytes>)> {
    records.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
    let mut groups: Vec<(u64, Vec<Bytes>)> = Vec::new();
    for rec in records {
        match groups.last_mut() {
            Some((k, vals)) if *k == rec.key => vals.push(rec.value),
            _ => groups.push((rec.key, vec![rec.value])),
        }
    }
    groups
}

/// Decodes a whole partition's bytes into records (used by tests and
/// output validation).
pub fn decode_partition(data: Bytes) -> Result<Vec<Record>> {
    RecordReader::decode_all(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::{JobId, PartitionId, RecordWriter};
    use std::collections::HashMap;

    fn bucket(recs: &[(u64, &[u8])]) -> Bytes {
        let mut w = RecordWriter::new();
        for &(k, v) in recs {
            w.push(&Record::new(k, v.to_vec()));
        }
        w.finish()
    }

    #[test]
    fn sort_and_group_orders_keys_and_values() {
        let recs = vec![
            Record::new(2, &b"b"[..]),
            Record::new(1, &b"z"[..]),
            Record::new(2, &b"a"[..]),
            Record::new(1, &b"a"[..]),
        ];
        let groups = sort_and_group(recs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
        assert_eq!(
            groups[0].1,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"z")]
        );
        assert_eq!(groups[1].0, 2);
        assert_eq!(
            groups[1].1,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]
        );
    }

    #[test]
    fn shuffle_accounts_locality_and_merges() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        for (i, node) in [(0u32, 0u32), (1, 5)] {
            let key = MapInputKey::new(job, PartitionId(0), i);
            let mut buckets = HashMap::new();
            buckets.insert(r, bucket(&[(i as u64, b"v")]));
            store.insert(key, NodeId(node), 0, buckets);
        }
        let inputs = vec![
            MapInputKey::new(job, PartitionId(0), 0),
            MapInputKey::new(job, PartitionId(0), 1),
        ];
        let res = shuffle_for_reduce(&store, &inputs, r, NodeId(0)).unwrap();
        assert_eq!(res.groups.len(), 2);
        assert!(res.local_bytes > 0, "bucket from node 0 is local");
        assert!(res.remote_bytes > 0, "bucket from node 5 is remote");
        assert_eq!(
            res.per_source,
            vec![(NodeId(0), res.local_bytes), (NodeId(5), res.remote_bytes)],
            "per-source attribution matches the locality split"
        );
    }

    #[test]
    fn missing_outputs_reported() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let inputs = vec![MapInputKey::new(job, PartitionId(0), 0)];
        match shuffle_for_reduce(&store, &inputs, r, NodeId(0)) {
            Err(ShuffleFailure::MissingMapOutputs(m)) => assert_eq!(m, inputs),
            other => panic!("expected missing outputs, got {other:?}"),
        }
    }

    #[test]
    fn armed_flake_fails_transiently_then_clears() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        store.arm_flake(NodeId(0), 1);
        match shuffle_for_reduce(&store, &[], r, NodeId(0)) {
            Err(ShuffleFailure::Transient { node }) => assert_eq!(node, NodeId(0)),
            other => panic!("expected transient failure, got {other:?}"),
        }
        // The flake is consumed; the retry succeeds.
        assert!(shuffle_for_reduce(&store, &[], r, NodeId(0)).is_ok());
        // Other nodes were never affected.
        assert!(shuffle_for_reduce(&store, &[], r, NodeId(1)).is_ok());
    }

    #[test]
    fn corrupt_payload_names_the_map_output() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let key = MapInputKey::new(job, PartitionId(0), 0);
        let mut buckets = HashMap::new();
        buckets.insert(r, Bytes::from_static(&[0xde, 0xad])); // truncated frame
        store.insert(key, NodeId(2), 0, buckets);
        match shuffle_for_reduce(&store, &[key], r, NodeId(0)) {
            Err(ShuffleFailure::Corrupt { key: k, .. }) => assert_eq!(k, key),
            other => panic!("expected corrupt failure, got {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_empty_result() {
        let store = MapOutputStore::new();
        let r = ReduceTaskId::whole(JobId(1), PartitionId(0));
        let res = shuffle_for_reduce(&store, &[], r, NodeId(0)).unwrap();
        assert!(res.groups.is_empty());
        assert_eq!(res.local_bytes + res.remote_bytes, 0);
    }
}
