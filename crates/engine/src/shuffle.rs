//! The shuffle: reducers fetch their buckets from every map output.
//!
//! Each reducer copies, from every completed mapper, the key-value pairs
//! for the keys it is responsible for (§II). In this engine the "copy"
//! is a fetch from the [`MapOutputStore`]; bytes served by the reducer's
//! own node count as local, everything else as remote — the volumes the
//! simulator's network model is validated against.

use crate::mapstore::{MapInputKey, MapOutputStore};
use bytes::Bytes;
use rcmp_model::{NodeId, Record, RecordReader, ReduceTaskId, Result};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Outcome of one reducer's shuffle + sort + group.
#[derive(Debug)]
pub struct ShuffleResult {
    /// Key groups in ascending key order; each group's values are sorted
    /// byte-wise so the reduce invocation is deterministic regardless of
    /// fetch order.
    pub groups: Vec<(u64, Vec<Bytes>)>,
    pub local_bytes: u64,
    pub remote_bytes: u64,
    /// Bytes fetched per serving node, ascending by node — the
    /// shuffle-source attribution behind the Fig. 6 hot-spot report.
    pub per_source: Vec<(NodeId, u64)>,
}

/// Why a shuffle could not complete.
#[derive(Debug)]
pub enum ShuffleFailure {
    /// These map outputs are gone (node death); the mappers must be
    /// re-executed before the reducer can run.
    MissingMapOutputs(Vec<MapInputKey>),
    /// This map output's payload failed to decode. Permanent for the
    /// stored copy: retrying the fetch returns the same bytes. The
    /// tracker drops the entry and re-runs the mapper.
    Corrupt {
        key: MapInputKey,
        source: rcmp_model::Error,
    },
    /// The fetch failed transiently (flaky network path, serving node
    /// briefly unreachable). Retrying the shuffle is expected to
    /// succeed.
    Transient { node: NodeId },
}

/// Fetches, sorts and groups everything reduce task `reduce` needs.
///
/// `inputs` is the complete list of map-input keys of the job — a
/// reducer needs a bucket from *every* mapper, including persisted ones
/// (which is why the paper notes the shuffle stays a bottleneck even
/// when few mappers are recomputed, §IV-B2).
pub fn shuffle_for_reduce(
    store: &MapOutputStore,
    inputs: &[MapInputKey],
    reduce: ReduceTaskId,
    node: NodeId,
) -> std::result::Result<ShuffleResult, ShuffleFailure> {
    if store.take_flake(node) {
        return Err(ShuffleFailure::Transient { node });
    }

    let mut missing = Vec::new();
    let mut payloads: Vec<(MapInputKey, Bytes, NodeId)> = Vec::with_capacity(inputs.len());
    for key in inputs {
        match store.fetch_bucket(key, reduce) {
            Some((payload, source)) => payloads.push((*key, payload, source)),
            None => missing.push(*key),
        }
    }
    if !missing.is_empty() {
        return Err(ShuffleFailure::MissingMapOutputs(missing));
    }

    let mut local_bytes = 0u64;
    let mut remote_bytes = 0u64;
    let mut per_source: std::collections::BTreeMap<NodeId, u64> = std::collections::BTreeMap::new();
    let mut records: Vec<Record> = Vec::new();
    for (key, payload, source) in payloads {
        if source == node {
            local_bytes += payload.len() as u64;
        } else {
            remote_bytes += payload.len() as u64;
        }
        *per_source.entry(source).or_insert(0) += payload.len() as u64;
        for rec in RecordReader::new(payload) {
            match rec {
                Ok(r) => records.push(r),
                Err(e) => return Err(ShuffleFailure::Corrupt { key, source: e }),
            }
        }
    }

    Ok(ShuffleResult {
        groups: sort_and_group(records),
        local_bytes,
        remote_bytes,
        per_source: per_source.into_iter().collect(),
    })
}

/// Counters a [`StreamingShuffle`] accumulates while planning and
/// merging, mirrored into the `shuffle.*` metrics by the tracker.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Runs merged through the heap (after coalescing).
    pub runs_merged: u64,
    /// Runs whose bucket index attested sortedness, streamed without a
    /// decode-and-sort pass.
    pub runs_presorted: u64,
    /// Payload bytes of those pre-sorted runs — bytes the index let the
    /// reducer skip re-sorting.
    pub index_bytes_skipped: u64,
    /// Empty buckets skipped without decoding anything.
    pub empty_runs_skipped: u64,
    /// Runs pre-merged pairwise because the fan-in exceeded the
    /// configured `max_merge_width`.
    pub runs_coalesced: u64,
    /// Peak heap size during the merge (bounded by the merge width).
    pub heap_peak: u64,
}

/// One sorted run feeding the k-way merge.
enum Run {
    /// Records already materialized and sorted (either decoded + sorted
    /// at plan time, or produced by coalescing).
    Sorted(VecDeque<Record>),
    /// A bucket whose index attests `(key, value)` order: decoded
    /// lazily, one record per heap pop, never buffered as a whole.
    Lazy {
        reader: RecordReader,
        key: MapInputKey,
    },
}

impl Run {
    fn next(&mut self) -> std::result::Result<Option<Record>, ShuffleFailure> {
        match self {
            Run::Sorted(q) => Ok(q.pop_front()),
            Run::Lazy { reader, key } => match reader.next() {
                None => Ok(None),
                Some(Ok(rec)) => Ok(Some(rec)),
                Some(Err(e)) => Err(ShuffleFailure::Corrupt {
                    key: *key,
                    source: e,
                }),
            },
        }
    }
}

/// Heap entry: the head record of one run. Ordered by `(key, value)`
/// with the run index as a total-order tie-break (equal `(key, value)`
/// entries are byte-identical, so the tie-break cannot change output).
#[derive(PartialEq, Eq)]
struct Head {
    key: u64,
    value: Bytes,
    run: usize,
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key
            .cmp(&other.key)
            .then_with(|| self.value.cmp(&other.value))
            .then_with(|| self.run.cmp(&other.run))
    }
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// A planned reducer shuffle that yields key groups **incrementally**
/// from a binary-heap merge over per-mapper sorted runs, instead of
/// collecting and sorting the whole reducer input (§IV-B2's bottleneck).
///
/// Peak memory is bounded by the runs (and the fan-in cap coalesces
/// excess runs first), not by the reducer's total input: pre-sorted
/// buckets stream record-at-a-time straight out of the fetched payload.
///
/// Byte-identity invariant: the concatenation of the yielded groups is
/// exactly [`sort_and_group`] of the same records — the legacy path
/// remains available as the differential-testing oracle.
pub struct StreamingShuffle {
    runs: Vec<Run>,
    heap: BinaryHeap<Reverse<Head>>,
    stats: MergeStats,
    /// Locality accounting, identical to the legacy path's.
    pub local_bytes: u64,
    pub remote_bytes: u64,
    pub per_source: Vec<(NodeId, u64)>,
    failed: bool,
}

impl StreamingShuffle {
    /// Fetches every bucket, accounts locality exactly like
    /// [`shuffle_for_reduce`], and prepares the merge runs. Unsorted
    /// (unindexed) buckets are decoded and sorted here, so corruption in
    /// them surfaces at plan time, as on the legacy path.
    pub fn plan(
        store: &MapOutputStore,
        inputs: &[MapInputKey],
        reduce: ReduceTaskId,
        node: NodeId,
        max_merge_width: u32,
    ) -> std::result::Result<Self, ShuffleFailure> {
        if store.take_flake(node) {
            return Err(ShuffleFailure::Transient { node });
        }

        let mut missing = Vec::new();
        let mut payloads = Vec::with_capacity(inputs.len());
        for key in inputs {
            match store.fetch_bucket_indexed(key, reduce) {
                Some((payload, source, index)) => payloads.push((*key, payload, source, index)),
                None => missing.push(*key),
            }
        }
        if !missing.is_empty() {
            return Err(ShuffleFailure::MissingMapOutputs(missing));
        }

        let mut local_bytes = 0u64;
        let mut remote_bytes = 0u64;
        let mut per_source: std::collections::BTreeMap<NodeId, u64> =
            std::collections::BTreeMap::new();
        let mut stats = MergeStats::default();
        let mut runs = Vec::new();
        for (key, payload, source, index) in payloads {
            if source == node {
                local_bytes += payload.len() as u64;
            } else {
                remote_bytes += payload.len() as u64;
            }
            *per_source.entry(source).or_insert(0) += payload.len() as u64;
            if payload.is_empty() {
                stats.empty_runs_skipped += 1;
                continue;
            }
            if index.is_some_and(|i| i.sorted) {
                stats.runs_presorted += 1;
                stats.index_bytes_skipped += payload.len() as u64;
                runs.push(Run::Lazy {
                    reader: RecordReader::new(payload),
                    key,
                });
            } else {
                let mut records = match RecordReader::decode_all(payload) {
                    Ok(r) => r,
                    Err(e) => return Err(ShuffleFailure::Corrupt { key, source: e }),
                };
                records
                    .sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
                runs.push(Run::Sorted(records.into()));
            }
        }

        // Cap the fan-in: coalesce the smallest runs into one
        // materialized run until at most `max_merge_width` remain.
        let width = (max_merge_width.max(2)) as usize;
        if runs.len() > width {
            let excess = runs.len() - width + 1;
            // Smallest-first so the cheap runs pay the pre-merge.
            runs.sort_by_key(|r| match r {
                Run::Sorted(q) => q.iter().map(Record::encoded_len).sum::<usize>(),
                Run::Lazy { .. } => usize::MAX,
            });
            let mut merged: Vec<Record> = Vec::new();
            for mut run in runs.drain(..excess) {
                while let Some(rec) = run.next()? {
                    merged.push(rec);
                }
            }
            merged.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
            stats.runs_coalesced += excess as u64;
            runs.push(Run::Sorted(merged.into()));
        }
        stats.runs_merged = runs.len() as u64;

        let mut this = Self {
            runs,
            heap: BinaryHeap::new(),
            stats,
            local_bytes,
            remote_bytes,
            per_source: per_source.into_iter().collect(),
            failed: false,
        };
        for i in 0..this.runs.len() {
            this.push_head(i)?;
        }
        this.stats.heap_peak = this.heap.len() as u64;
        Ok(this)
    }

    /// Merge counters accumulated so far (complete once the iterator is
    /// drained).
    pub fn stats(&self) -> MergeStats {
        self.stats
    }

    fn push_head(&mut self, run: usize) -> std::result::Result<(), ShuffleFailure> {
        if let Some(rec) = self.runs[run].next()? {
            self.heap.push(Reverse(Head {
                key: rec.key,
                value: rec.value,
                run,
            }));
        }
        Ok(())
    }
}

impl Iterator for StreamingShuffle {
    type Item = std::result::Result<(u64, Vec<Bytes>), ShuffleFailure>;

    /// Yields the next key group: ascending keys, values sorted
    /// byte-wise within the group.
    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        let Self {
            runs, heap, failed, ..
        } = self;
        let key = heap.peek()?.0.key;
        let mut values = Vec::new();
        while let Some(mut top) = heap.peek_mut() {
            if top.0.key != key {
                break;
            }
            // Replace the head in place with its run's next record: one
            // sift-down instead of a pop + push (runs are sorted, so
            // the replacement can only move down).
            match runs[top.0.run].next() {
                Ok(Some(rec)) => {
                    values.push(std::mem::replace(&mut top.0.value, rec.value));
                    top.0.key = rec.key;
                }
                Ok(None) => {
                    let Reverse(head) = std::collections::binary_heap::PeekMut::pop(top);
                    values.push(head.value);
                }
                Err(e) => {
                    *failed = true;
                    return Some(Err(e));
                }
            }
        }
        Some(Ok((key, values)))
    }
}

/// The streaming equivalent of [`shuffle_for_reduce`]: same fetches,
/// same accounting, same groups — collected into a [`ShuffleResult`]
/// (tests and the differential oracle; the tracker consumes the
/// iterator incrementally instead).
pub fn shuffle_for_reduce_streaming(
    store: &MapOutputStore,
    inputs: &[MapInputKey],
    reduce: ReduceTaskId,
    node: NodeId,
    max_merge_width: u32,
) -> std::result::Result<ShuffleResult, ShuffleFailure> {
    let mut merge = StreamingShuffle::plan(store, inputs, reduce, node, max_merge_width)?;
    let mut groups = Vec::new();
    for group in &mut merge {
        groups.push(group?);
    }
    Ok(ShuffleResult {
        groups,
        local_bytes: merge.local_bytes,
        remote_bytes: merge.remote_bytes,
        per_source: merge.per_source,
    })
}

/// Sorts records by (key, value) and groups values per key.
pub fn sort_and_group(mut records: Vec<Record>) -> Vec<(u64, Vec<Bytes>)> {
    records.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
    let mut groups: Vec<(u64, Vec<Bytes>)> = Vec::new();
    for rec in records {
        match groups.last_mut() {
            Some((k, vals)) if *k == rec.key => vals.push(rec.value),
            _ => groups.push((rec.key, vec![rec.value])),
        }
    }
    groups
}

/// Decodes a whole partition's bytes into records (used by tests and
/// output validation).
pub fn decode_partition(data: Bytes) -> Result<Vec<Record>> {
    RecordReader::decode_all(data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::{JobId, PartitionId, RecordWriter};
    use std::collections::HashMap;

    fn bucket(recs: &[(u64, &[u8])]) -> Bytes {
        let mut w = RecordWriter::new();
        for &(k, v) in recs {
            w.push(&Record::new(k, v.to_vec()));
        }
        w.finish()
    }

    #[test]
    fn sort_and_group_orders_keys_and_values() {
        let recs = vec![
            Record::new(2, &b"b"[..]),
            Record::new(1, &b"z"[..]),
            Record::new(2, &b"a"[..]),
            Record::new(1, &b"a"[..]),
        ];
        let groups = sort_and_group(recs);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].0, 1);
        assert_eq!(
            groups[0].1,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"z")]
        );
        assert_eq!(groups[1].0, 2);
        assert_eq!(
            groups[1].1,
            vec![Bytes::from_static(b"a"), Bytes::from_static(b"b")]
        );
    }

    #[test]
    fn shuffle_accounts_locality_and_merges() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        for (i, node) in [(0u32, 0u32), (1, 5)] {
            let key = MapInputKey::new(job, PartitionId(0), i);
            let mut buckets = HashMap::new();
            buckets.insert(r, bucket(&[(i as u64, b"v")]));
            store.insert(key, NodeId(node), 0, buckets);
        }
        let inputs = vec![
            MapInputKey::new(job, PartitionId(0), 0),
            MapInputKey::new(job, PartitionId(0), 1),
        ];
        let res = shuffle_for_reduce(&store, &inputs, r, NodeId(0)).unwrap();
        assert_eq!(res.groups.len(), 2);
        assert!(res.local_bytes > 0, "bucket from node 0 is local");
        assert!(res.remote_bytes > 0, "bucket from node 5 is remote");
        assert_eq!(
            res.per_source,
            vec![(NodeId(0), res.local_bytes), (NodeId(5), res.remote_bytes)],
            "per-source attribution matches the locality split"
        );
    }

    #[test]
    fn missing_outputs_reported() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let inputs = vec![MapInputKey::new(job, PartitionId(0), 0)];
        match shuffle_for_reduce(&store, &inputs, r, NodeId(0)) {
            Err(ShuffleFailure::MissingMapOutputs(m)) => assert_eq!(m, inputs),
            other => panic!("expected missing outputs, got {other:?}"),
        }
    }

    #[test]
    fn armed_flake_fails_transiently_then_clears() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        store.arm_flake(NodeId(0), 1);
        match shuffle_for_reduce(&store, &[], r, NodeId(0)) {
            Err(ShuffleFailure::Transient { node }) => assert_eq!(node, NodeId(0)),
            other => panic!("expected transient failure, got {other:?}"),
        }
        // The flake is consumed; the retry succeeds.
        assert!(shuffle_for_reduce(&store, &[], r, NodeId(0)).is_ok());
        // Other nodes were never affected.
        assert!(shuffle_for_reduce(&store, &[], r, NodeId(1)).is_ok());
    }

    #[test]
    fn corrupt_payload_names_the_map_output() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let key = MapInputKey::new(job, PartitionId(0), 0);
        let mut buckets = HashMap::new();
        buckets.insert(r, Bytes::from_static(&[0xde, 0xad])); // truncated frame
        store.insert(key, NodeId(2), 0, buckets);
        match shuffle_for_reduce(&store, &[key], r, NodeId(0)) {
            Err(ShuffleFailure::Corrupt { key: k, .. }) => assert_eq!(k, key),
            other => panic!("expected corrupt failure, got {other:?}"),
        }
    }

    #[test]
    fn empty_inputs_empty_result() {
        let store = MapOutputStore::new();
        let r = ReduceTaskId::whole(JobId(1), PartitionId(0));
        let res = shuffle_for_reduce(&store, &[], r, NodeId(0)).unwrap();
        assert!(res.groups.is_empty());
        assert_eq!(res.local_bytes + res.remote_bytes, 0);
    }

    /// Builds a store with a mix of indexed (sorted) and legacy
    /// (unsorted, unindexed) buckets for one reducer.
    fn mixed_store(mappers: u32) -> (MapOutputStore, Vec<MapInputKey>, ReduceTaskId) {
        use crate::mapstore::BucketIndex;
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let mut inputs = Vec::new();
        for i in 0..mappers {
            let key = MapInputKey::new(job, PartitionId(0), i);
            inputs.push(key);
            let base = u64::from(i);
            if i % 3 == 0 {
                // Unsorted legacy bucket: decoded + sorted at plan time.
                let payload = bucket(&[(base + 7, b"z"), (base, b"m"), (base + 3, b"a")]);
                let mut buckets = HashMap::new();
                buckets.insert(r, payload);
                store.insert(key, NodeId(i % 4), 0, buckets);
            } else {
                // Sorted, indexed bucket: streamed as a lazy run.
                let payload = bucket(&[(base, b"a"), (base, b"b"), (base + 5, b"c")]);
                let idx = BucketIndex {
                    records: 3,
                    bytes: payload.len() as u64,
                    min_key: base,
                    max_key: base + 5,
                    sorted: true,
                };
                let mut buckets = HashMap::new();
                buckets.insert(r, (payload, idx));
                store.insert_indexed(key, NodeId(i % 4), 0, buckets);
            }
        }
        (store, inputs, r)
    }

    #[test]
    fn streaming_merge_matches_legacy_oracle() {
        let (store, inputs, r) = mixed_store(9);
        let legacy = shuffle_for_reduce(&store, &inputs, r, NodeId(0)).unwrap();
        let streamed = shuffle_for_reduce_streaming(&store, &inputs, r, NodeId(0), 64).unwrap();
        assert_eq!(legacy.groups, streamed.groups);
        assert_eq!(legacy.local_bytes, streamed.local_bytes);
        assert_eq!(legacy.remote_bytes, streamed.remote_bytes);
        assert_eq!(legacy.per_source, streamed.per_source);
    }

    #[test]
    fn streaming_coalesces_beyond_merge_width_and_stays_exact() {
        let (store, inputs, r) = mixed_store(12);
        let legacy = shuffle_for_reduce(&store, &inputs, r, NodeId(1)).unwrap();
        let mut merge = StreamingShuffle::plan(&store, &inputs, r, NodeId(1), 3).unwrap();
        let mut groups = Vec::new();
        for g in &mut merge {
            groups.push(g.unwrap());
        }
        let stats = merge.stats();
        assert_eq!(legacy.groups, groups);
        assert!(stats.runs_coalesced > 0, "12 runs at width 3 must coalesce");
        assert!(stats.runs_merged <= 3);
        assert!(stats.heap_peak <= 3);
        assert!(stats.runs_presorted > 0);
        assert!(stats.index_bytes_skipped > 0);
    }

    #[test]
    fn streaming_reports_missing_and_transient_like_legacy() {
        let (store, mut inputs, r) = mixed_store(3);
        inputs.push(MapInputKey::new(JobId(1), PartitionId(0), 99));
        match shuffle_for_reduce_streaming(&store, &inputs, r, NodeId(0), 64) {
            Err(ShuffleFailure::MissingMapOutputs(m)) => {
                assert_eq!(m, vec![MapInputKey::new(JobId(1), PartitionId(0), 99)]);
            }
            other => panic!("expected missing outputs, got {other:?}"),
        }
        store.arm_flake(NodeId(0), 1);
        match shuffle_for_reduce_streaming(&store, &inputs[..3], r, NodeId(0), 64) {
            Err(ShuffleFailure::Transient { node }) => assert_eq!(node, NodeId(0)),
            other => panic!("expected transient failure, got {other:?}"),
        }
    }

    #[test]
    fn streaming_surfaces_corruption_at_plan_time() {
        let store = MapOutputStore::new();
        let job = JobId(1);
        let r = ReduceTaskId::whole(job, PartitionId(0));
        let key = MapInputKey::new(job, PartitionId(0), 0);
        let mut buckets = HashMap::new();
        buckets.insert(r, Bytes::from_static(&[0xde, 0xad]));
        store.insert(key, NodeId(2), 0, buckets);
        match shuffle_for_reduce_streaming(&store, &[key], r, NodeId(0), 64) {
            Err(ShuffleFailure::Corrupt { key: k, .. }) => assert_eq!(k, key),
            other => panic!("expected corrupt failure, got {other:?}"),
        }
    }
}
