//! Job specifications and run modes.

use crate::udf::{Combiner, Mapper, Reducer};
use rcmp_dfs::PlacementPolicy;
use rcmp_model::JobId;
use std::fmt;
use std::sync::Arc;

/// Static description of one MapReduce job in a multi-job computation.
#[derive(Clone)]
pub struct JobSpec {
    /// Position in the chain/DAG (stable across recomputations).
    pub job: JobId,
    /// DFS path of the (partitioned) input file.
    pub input: String,
    /// DFS path of the output file; one partition per reducer.
    pub output: String,
    /// Number of reducers (= output partitions) in a full run.
    pub num_reducers: u32,
    /// Replication factor for the output file (1 for RCMP, 2–3 for the
    /// Hadoop baselines, k-th jobs raised post-hoc in hybrid mode).
    pub output_replication: u32,
    /// Where reducer output blocks are placed ([`PlacementPolicy::Spread`]
    /// is the paper's alternative hot-spot mitigation).
    pub placement: PlacementPolicy,
    pub mapper: Arc<dyn Mapper>,
    pub reducer: Arc<dyn Reducer>,
    /// Optional map-side combiner ([`Combiner`]): must be associative
    /// and commutative; never applied to split reduce tasks' buckets.
    pub combiner: Option<Arc<dyn Combiner>>,
    /// Whether the application logic permits reducer splitting (§IV-B1:
    /// e.g. a top-k reducer may not be split).
    pub splittable: bool,
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("job", &self.job)
            .field("input", &self.input)
            .field("output", &self.output)
            .field("num_reducers", &self.num_reducers)
            .field("output_replication", &self.output_replication)
            .field("splittable", &self.splittable)
            .field("combiner", &self.combiner.is_some())
            .finish_non_exhaustive()
    }
}

/// Instructions for a recomputation run, produced by the RCMP planner
/// (`rcmp-core`) and tagged onto the resubmitted job (§IV-A: the
/// middleware "tags it with the reducer outputs that need to be
/// recomputed"). This is the policy kernel's unified
/// [`rcmp_policy::RecomputePlan`]; the simulator consumes the same type
/// as `rcmp_sim::RecomputeSpec`.
pub use rcmp_policy::RecomputePlan as RecomputeInstructions;

/// How a submitted job should be executed.
#[derive(Clone, Debug)]
pub enum RunMode {
    /// Run everything (initial runs, and Hadoop's treatment of any
    /// resubmission: "it treats each job submitted to the system as a
    /// brand new job and re-executes it entirely").
    Full,
    /// RCMP recomputation: run only the minimum necessary tasks.
    Recompute(RecomputeInstructions),
}

impl RunMode {
    pub fn is_recompute(&self) -> bool {
        matches!(self, RunMode::Recompute(_))
    }
}

/// One submission of a job to the tracker.
#[derive(Clone, Debug)]
pub struct JobRun {
    pub spec: JobSpec,
    pub mode: RunMode,
    /// Keep map outputs in the store after the job completes (RCMP
    /// persists across jobs; the Hadoop baselines discard).
    pub persist_map_outputs: bool,
}

impl JobRun {
    pub fn full(spec: JobSpec) -> Self {
        Self {
            spec,
            mode: RunMode::Full,
            persist_map_outputs: true,
        }
    }

    pub fn recompute(spec: JobSpec, instructions: RecomputeInstructions) -> Self {
        Self {
            spec,
            mode: RunMode::Recompute(instructions),
            persist_map_outputs: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcmp_model::PartitionId;

    #[test]
    fn reduce_task_count_accounts_splits() {
        let r = RecomputeInstructions::new([PartitionId(0), PartitionId(3)], Some(4));
        assert_eq!(r.reduce_task_count(), 8);
        let r = RecomputeInstructions::new([PartitionId(0)], None);
        assert_eq!(r.reduce_task_count(), 1);
    }

    #[test]
    fn run_mode_predicates() {
        assert!(!RunMode::Full.is_recompute());
        assert!(RunMode::Recompute(RecomputeInstructions::empty()).is_recompute());
    }
}
