//! Slot-constrained wave scheduling — thin adapter over the shared
//! policy kernel.
//!
//! The actual assignment policies (Hadoop slot-pull with
//! primary→replica→steal preference for mappers, round-robin /
//! balanced placement for reducers, wave arithmetic) live in
//! `rcmp-policy`; see that crate's docs for the paper phenomena they
//! reproduce (§II waves, §III-A locality, §IV-B hot-spots). This module
//! only translates the engine's `MapTask`/`ReduceTask` structs into the
//! kernel's index-based task-set view and maps the returned indices
//! back onto tasks.

use crate::task::{MapTask, ReduceTask};
use rcmp_model::{NodeId, PlacementKernel, Result};
use rcmp_policy::{
    CacheAffinity, FnReduceTasks, KernelTopology, MapTaskSet, Membership, PolicyCtx, SliceTopology,
    WaveAssignment,
};

pub use rcmp_policy::ReduceAssignment;

/// Tasks grouped into waves: `waves[w]` is the list of `(node, task)`
/// pairs running concurrently in wave `w`.
pub type Waves<T> = Vec<Vec<(NodeId, T)>>;

/// The kernel's view of a slice of engine map tasks: the primary holder
/// is the block's first replica (the writer-local copy, see
/// `rcmp-dfs`'s placement), any listed replica is local.
struct MapTaskSlice<'a>(&'a [MapTask]);

impl MapTaskSet<NodeId> for MapTaskSlice<'_> {
    fn len(&self) -> usize {
        self.0.len()
    }

    fn is_primary_holder(&self, task: usize, node: NodeId) -> bool {
        self.0[task].block.replicas.first() == Some(&node)
    }

    fn holds_replica(&self, task: usize, node: NodeId) -> bool {
        self.0[task].block.replicas.contains(&node)
    }
}

/// Reifies an index-based kernel assignment back onto owned tasks.
fn resolve<T>(assignment: WaveAssignment<NodeId>, tasks: Vec<T>) -> Waves<T> {
    let mut slots: Vec<Option<T>> = tasks.into_iter().map(Some).collect();
    assignment
        .into_iter()
        .map(|wave| {
            wave.into_iter()
                .map(|(n, t)| (n, slots[t].take().expect("kernel assigns each task once")))
                .collect()
        })
        .collect()
}

/// Assigns map tasks to waves over the live nodes via the shared
/// kernel. Errors with [`rcmp_model::Error::NoLiveNodes`] when the
/// cluster has no survivors.
pub fn assign_map_waves(
    tasks: Vec<MapTask>,
    live: &[NodeId],
    slots: u32,
    ctx: PolicyCtx<'_>,
) -> Result<Waves<MapTask>> {
    let topo = SliceTopology::uniform(live, slots);
    let assignment = rcmp_policy::assign_map_waves(&topo, &MapTaskSlice(&tasks), ctx)?;
    Ok(resolve(assignment, tasks))
}

/// Like [`assign_map_waves`] but through the configured placement
/// kernel, with per-node capacity and rack hints drawn from a
/// membership snapshot (aligned position-for-position with `live`).
///
/// `cached` is the chain-cache affinity map, aligned with `tasks`:
/// `cached[t]` names the node holding task `t`'s input partition in
/// memory, if any. Only the `Stable` kernel consults it; pass an empty
/// slice when the cache is off (every kernel then behaves exactly as
/// before the cache existed).
pub fn assign_map_waves_kernel(
    tasks: Vec<MapTask>,
    live: &[NodeId],
    slots: u32,
    kernel: PlacementKernel,
    membership: &Membership,
    cached: &[Option<NodeId>],
    ctx: PolicyCtx<'_>,
) -> Result<Waves<MapTask>> {
    let raw: Vec<u32> = live.iter().map(|n| n.raw()).collect();
    let caps = membership.caps_for(&raw);
    let racks = membership.racks_for(&raw);
    let topo = KernelTopology::uniform(live, slots, &caps, &racks);
    let set = CacheAffinity::new(MapTaskSlice(&tasks), |t: usize| {
        cached.get(t).copied().flatten()
    });
    let assignment = rcmp_policy::assign_map_waves_kernel(&topo, &set, kernel, ctx)?;
    Ok(resolve(assignment, tasks))
}

/// Assigns reduce tasks to waves over the live nodes via the shared
/// kernel. Errors with [`rcmp_model::Error::NoLiveNodes`] when the
/// cluster has no survivors.
pub fn assign_reduce_waves(
    tasks: Vec<ReduceTask>,
    live: &[NodeId],
    slots: u32,
    style: ReduceAssignment,
    ctx: PolicyCtx<'_>,
) -> Result<Waves<ReduceTask>> {
    let topo = SliceTopology::uniform(live, slots);
    let set = FnReduceTasks::new(tasks.len(), |t| tasks[t].id.partition.index());
    let assignment = rcmp_policy::assign_reduce_waves(&topo, &set, style, ctx)?;
    Ok(resolve(assignment, tasks))
}

/// Like [`assign_reduce_waves`] but through the configured placement
/// kernel, with capacity/rack hints from a membership snapshot.
pub fn assign_reduce_waves_kernel(
    tasks: Vec<ReduceTask>,
    live: &[NodeId],
    slots: u32,
    style: ReduceAssignment,
    kernel: PlacementKernel,
    membership: &Membership,
    ctx: PolicyCtx<'_>,
) -> Result<Waves<ReduceTask>> {
    let raw: Vec<u32> = live.iter().map(|n| n.raw()).collect();
    let caps = membership.caps_for(&raw);
    let racks = membership.racks_for(&raw);
    let topo = KernelTopology::uniform(live, slots, &caps, &racks);
    let set = FnReduceTasks::new(tasks.len(), |t| tasks[t].id.partition.index());
    let assignment = rcmp_policy::assign_reduce_waves_kernel(&topo, &set, style, kernel, ctx)?;
    Ok(resolve(assignment, tasks))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapstore::MapInputKey;
    use rcmp_dfs::BlockLocation;
    use rcmp_model::{BlockId, ByteSize, Error, JobId, MapTaskId, PartitionId, ReduceTaskId};

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn map_task(idx: u32, replicas: &[u32]) -> MapTask {
        MapTask {
            id: MapTaskId::new(JobId(1), idx),
            key: MapInputKey::new(JobId(1), PartitionId(0), idx),
            block: BlockLocation {
                id: BlockId(idx as u64),
                size: ByteSize::mib(1),
                content_hash: 0,
                replicas: replicas.iter().map(|&n| NodeId(n)).collect(),
            },
        }
    }

    fn reduce_task(p: u32) -> ReduceTask {
        ReduceTask::new(ReduceTaskId::whole(JobId(1), PartitionId(p)))
    }

    #[test]
    fn balanced_map_tasks_prefer_local() {
        // 4 tasks, 4 nodes, 1 replica each on its "own" node.
        let tasks: Vec<MapTask> = (0..4).map(|i| map_task(i, &[i])).collect();
        let waves = assign_map_waves(tasks, &nodes(4), 1, PolicyCtx::disabled()).unwrap();
        assert_eq!(waves.len(), 1);
        for (node, task) in &waves[0] {
            assert!(
                task.block.replicas.contains(node),
                "task should be local: {task:?} on {node}"
            );
        }
    }

    #[test]
    fn few_tasks_spread_over_nodes_not_piled_on_replica_holder() {
        // The hot-spot scenario: 3 blocks all on node 0, 4 live nodes.
        let tasks: Vec<MapTask> = (0..3).map(|i| map_task(i, &[0])).collect();
        let waves = assign_map_waves(tasks, &nodes(4), 1, PolicyCtx::disabled()).unwrap();
        // All three run in a single wave on three different nodes.
        assert_eq!(waves.len(), 1);
        let used: std::collections::HashSet<NodeId> = waves[0].iter().map(|(n, _)| *n).collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn waves_respect_slots() {
        let tasks: Vec<MapTask> = (0..8).map(|i| map_task(i, &[])).collect();
        let waves = assign_map_waves(tasks, &nodes(2), 2, PolicyCtx::disabled()).unwrap();
        // 8 tasks / (2 nodes * 2 slots) = 2 waves.
        assert_eq!(waves.len(), 2);
        for wave in &waves {
            let mut per_node = std::collections::HashMap::new();
            for (n, _) in wave {
                *per_node.entry(*n).or_insert(0) += 1;
            }
            assert!(per_node.values().all(|&c| c <= 2));
        }
    }

    #[test]
    fn initial_reducers_round_robin() {
        // 10 reducers, 10 nodes, 1 slot: exactly 1 wave (WR = 1).
        let tasks: Vec<ReduceTask> = (0..10).map(reduce_task).collect();
        let waves = assign_reduce_waves(
            tasks,
            &nodes(10),
            1,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        for (node, task) in &waves[0] {
            assert_eq!(node.raw(), task.id.partition.raw() % 10);
        }
    }

    #[test]
    fn round_robin_gives_paper_wave_count() {
        // 40 reducers, 10 nodes, 1 slot: WR = 4 waves.
        let tasks: Vec<ReduceTask> = (0..40).map(reduce_task).collect();
        let waves = assign_reduce_waves(
            tasks,
            &nodes(10),
            1,
            ReduceAssignment::RoundRobinByPartition,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn balance_spreads_splits_over_all_nodes() {
        use rcmp_model::SplitId;
        // 1 recomputed reducer split 8 ways, 9 surviving nodes (Fig. 4b).
        let tasks: Vec<ReduceTask> = (0..8)
            .map(|i| ReduceTask::new(ReduceTaskId::split(JobId(1), PartitionId(0), SplitId(i), 8)))
            .collect();
        let waves = assign_reduce_waves(
            tasks,
            &nodes(9),
            1,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1, "all splits fit one wave across nodes");
        let used: std::collections::HashSet<NodeId> = waves[0].iter().map(|(n, _)| *n).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn no_split_recompute_uses_one_node_per_reducer() {
        // 1 recomputed whole reducer, 9 nodes: 1 task on 1 node — the
        // paper's under-utilization (Fig. 4a).
        let waves = assign_reduce_waves(
            vec![reduce_task(0)],
            &nodes(9),
            1,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
    }

    #[test]
    fn empty_task_list_zero_waves() {
        let waves = assign_map_waves(Vec::new(), &nodes(2), 1, PolicyCtx::disabled()).unwrap();
        assert!(waves.is_empty());
        let waves = assign_reduce_waves(
            Vec::new(),
            &nodes(2),
            1,
            ReduceAssignment::Balance,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert!(waves.is_empty());
    }

    #[test]
    fn default_kernel_matches_plain_assignment() {
        let m = Membership::uniform(4);
        let mk = |i| map_task(i, &[i % 4]);
        let tasks: Vec<MapTask> = (0..7).map(mk).collect();
        let plain = assign_map_waves(tasks.clone(), &nodes(4), 1, PolicyCtx::disabled()).unwrap();
        let kernel = assign_map_waves_kernel(
            tasks,
            &nodes(4),
            1,
            PlacementKernel::Default,
            &m,
            &[],
            PolicyCtx::disabled(),
        )
        .unwrap();
        let ids = |w: &Waves<MapTask>| -> Vec<Vec<(NodeId, u32)>> {
            w.iter()
                .map(|wave| wave.iter().map(|(n, t)| (*n, t.id.index)).collect())
                .collect()
        };
        assert_eq!(ids(&plain), ids(&kernel));
    }

    #[test]
    fn capacity_weighted_kernel_uses_membership_caps() {
        let mut m = Membership::uniform(1);
        m.join(3, 0); // node 1 weighs 3×
        let tasks: Vec<MapTask> = (0..8).map(|i| map_task(i, &[])).collect();
        let waves = assign_map_waves_kernel(
            tasks,
            &nodes(2),
            1,
            PlacementKernel::CapacityWeighted,
            &m,
            &[],
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(
            waves.len(),
            2,
            "3×-weighted node packs the job into 2 waves"
        );
        let on_big = waves
            .iter()
            .flatten()
            .filter(|(n, _)| *n == NodeId(1))
            .count();
        assert_eq!(on_big, 6);
    }

    #[test]
    fn stable_kernel_follows_cache_affinity() {
        let m = Membership::uniform(4);
        // Every block's DFS replica sits on node 0, but each task's
        // partition is cached on its "own" node.
        let tasks: Vec<MapTask> = (0..4).map(|i| map_task(i, &[0])).collect();
        let cached: Vec<Option<NodeId>> = (0..4).map(|i| Some(NodeId(i))).collect();
        let waves = assign_map_waves_kernel(
            tasks,
            &nodes(4),
            1,
            PlacementKernel::Stable,
            &m,
            &cached,
            PolicyCtx::disabled(),
        )
        .unwrap();
        assert_eq!(waves.len(), 1);
        for (node, task) in &waves[0] {
            assert_eq!(*node, NodeId(task.id.index), "task follows its cached copy");
        }
    }

    #[test]
    fn dead_cluster_is_a_typed_error() {
        let err =
            assign_map_waves(vec![map_task(0, &[0])], &[], 1, PolicyCtx::disabled()).unwrap_err();
        assert_eq!(err, Error::NoLiveNodes);
    }
}
