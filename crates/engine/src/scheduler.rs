//! Slot-constrained wave scheduling.
//!
//! A node runs at most `slots` tasks of a phase concurrently; a phase
//! with more tasks per node runs in multiple **waves** (§II). The
//! assignment policy mirrors Hadoop's slot scheduler at the fidelity the
//! paper's phenomena need:
//!
//! * tasks balance across live nodes (shortest queue first), so a
//!   recomputation's few tasks spread over *all* survivors — unless the
//!   caller pins them, this is what makes the hot-spot of §IV-B2 appear:
//!   recomputed mappers land on many nodes but all read from the one
//!   node holding the recomputed input;
//! * among equally-loaded nodes, mappers prefer a node holding a replica
//!   of their input block (data locality via tie-breaking, §III-A);
//! * initial-run reducers are placed round-robin by partition id, giving
//!   the deterministic `WR = R/(N·S)` waves of the paper's model.

use crate::task::{MapTask, ReduceTask};
use rcmp_model::NodeId;

/// Tasks grouped into waves: `waves[w]` is the list of `(node, task)`
/// pairs running concurrently in wave `w`.
pub type Waves<T> = Vec<Vec<(NodeId, T)>>;

/// How reduce tasks pick nodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceAssignment {
    /// Partition `p` goes to `live[p % N]` — the initial-run layout.
    RoundRobinByPartition,
    /// Shortest-queue balancing — used for recomputation runs, where
    /// the task list is small and should use every survivor (Fig. 4).
    Balance,
}

fn queues_to_waves<T>(queues: Vec<Vec<T>>, live: &[NodeId], slots: u32) -> Waves<T> {
    let slots = slots.max(1) as usize;
    let num_waves = queues
        .iter()
        .map(|q| q.len().div_ceil(slots))
        .max()
        .unwrap_or(0);
    let mut waves: Vec<Vec<(NodeId, T)>> = (0..num_waves).map(|_| Vec::new()).collect();
    for (ni, queue) in queues.into_iter().enumerate() {
        for (ti, task) in queue.into_iter().enumerate() {
            waves[ti / slots].push((live[ni], task));
        }
    }
    waves
}

/// Assigns map tasks to waves over the live nodes, with Hadoop's
/// slot-pull semantics: nodes claim tasks in rounds, each preferring a
/// task whose input block it holds and stealing a non-local one
/// otherwise. Balanced data runs (almost) fully local; a handful of
/// recomputed tasks spreads over all nodes in one wave — the behaviours
/// behind the paper's locality and hot-spot observations.
pub fn assign_map_waves(tasks: Vec<MapTask>, live: &[NodeId], slots: u32) -> Waves<MapTask> {
    assert!(!live.is_empty(), "no live nodes to schedule on");
    let mut pending = tasks;
    let mut queues: Vec<Vec<MapTask>> = (0..live.len()).map(|_| Vec::new()).collect();
    while !pending.is_empty() {
        for (i, &n) in live.iter().enumerate() {
            if pending.is_empty() {
                break;
            }
            let pos = pending
                .iter()
                .position(|t| t.block.replicas.contains(&n))
                .unwrap_or(0);
            queues[i].push(pending.remove(pos));
        }
    }
    queues_to_waves(queues, live, slots)
}

/// Assigns reduce tasks to waves over the live nodes.
pub fn assign_reduce_waves(
    tasks: Vec<ReduceTask>,
    live: &[NodeId],
    slots: u32,
    style: ReduceAssignment,
) -> Waves<ReduceTask> {
    assert!(!live.is_empty(), "no live nodes to schedule on");
    let mut queues: Vec<Vec<ReduceTask>> = (0..live.len()).map(|_| Vec::new()).collect();
    match style {
        ReduceAssignment::RoundRobinByPartition => {
            for task in tasks {
                let i = task.id.partition.index() % live.len();
                queues[i].push(task);
            }
        }
        ReduceAssignment::Balance => {
            for task in tasks {
                let (i, _) = queues
                    .iter()
                    .enumerate()
                    .min_by_key(|(i, q)| (q.len(), *i))
                    .unwrap();
                queues[i].push(task);
            }
        }
    }
    queues_to_waves(queues, live, slots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapstore::MapInputKey;
    use rcmp_dfs::BlockLocation;
    use rcmp_model::{BlockId, ByteSize, JobId, MapTaskId, PartitionId, ReduceTaskId};

    fn nodes(n: u32) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    fn map_task(idx: u32, replicas: &[u32]) -> MapTask {
        MapTask {
            id: MapTaskId::new(JobId(1), idx),
            key: MapInputKey::new(JobId(1), PartitionId(0), idx),
            block: BlockLocation {
                id: BlockId(idx as u64),
                size: ByteSize::mib(1),
                content_hash: 0,
                replicas: replicas.iter().map(|&n| NodeId(n)).collect(),
            },
        }
    }

    fn reduce_task(p: u32) -> ReduceTask {
        ReduceTask::new(ReduceTaskId::whole(JobId(1), PartitionId(p)))
    }

    #[test]
    fn balanced_map_tasks_prefer_local() {
        // 4 tasks, 4 nodes, 1 replica each on its "own" node.
        let tasks: Vec<MapTask> = (0..4).map(|i| map_task(i, &[i])).collect();
        let waves = assign_map_waves(tasks, &nodes(4), 1);
        assert_eq!(waves.len(), 1);
        for (node, task) in &waves[0] {
            assert!(
                task.block.replicas.contains(node),
                "task should be local: {task:?} on {node}"
            );
        }
    }

    #[test]
    fn few_tasks_spread_over_nodes_not_piled_on_replica_holder() {
        // The hot-spot scenario: 3 blocks all on node 0, 4 live nodes.
        let tasks: Vec<MapTask> = (0..3).map(|i| map_task(i, &[0])).collect();
        let waves = assign_map_waves(tasks, &nodes(4), 1);
        // All three run in a single wave on three different nodes.
        assert_eq!(waves.len(), 1);
        let used: std::collections::HashSet<NodeId> =
            waves[0].iter().map(|(n, _)| *n).collect();
        assert_eq!(used.len(), 3);
    }

    #[test]
    fn waves_respect_slots() {
        let tasks: Vec<MapTask> = (0..8).map(|i| map_task(i, &[])).collect();
        let waves = assign_map_waves(tasks, &nodes(2), 2);
        // 8 tasks / (2 nodes * 2 slots) = 2 waves.
        assert_eq!(waves.len(), 2);
        for wave in &waves {
            let mut per_node = std::collections::HashMap::new();
            for (n, _) in wave {
                *per_node.entry(*n).or_insert(0) += 1;
            }
            assert!(per_node.values().all(|&c| c <= 2));
        }
    }

    #[test]
    fn initial_reducers_round_robin() {
        // 10 reducers, 10 nodes, 1 slot: exactly 1 wave (WR = 1).
        let tasks: Vec<ReduceTask> = (0..10).map(reduce_task).collect();
        let waves =
            assign_reduce_waves(tasks, &nodes(10), 1, ReduceAssignment::RoundRobinByPartition);
        assert_eq!(waves.len(), 1);
        for (node, task) in &waves[0] {
            assert_eq!(node.raw(), task.id.partition.raw() % 10);
        }
    }

    #[test]
    fn round_robin_gives_paper_wave_count() {
        // 40 reducers, 10 nodes, 1 slot: WR = 4 waves.
        let tasks: Vec<ReduceTask> = (0..40).map(reduce_task).collect();
        let waves =
            assign_reduce_waves(tasks, &nodes(10), 1, ReduceAssignment::RoundRobinByPartition);
        assert_eq!(waves.len(), 4);
    }

    #[test]
    fn balance_spreads_splits_over_all_nodes() {
        use rcmp_model::SplitId;
        // 1 recomputed reducer split 8 ways, 9 surviving nodes (Fig. 4b).
        let tasks: Vec<ReduceTask> = (0..8)
            .map(|i| {
                ReduceTask::new(ReduceTaskId::split(
                    JobId(1),
                    PartitionId(0),
                    SplitId(i),
                    8,
                ))
            })
            .collect();
        let waves = assign_reduce_waves(tasks, &nodes(9), 1, ReduceAssignment::Balance);
        assert_eq!(waves.len(), 1, "all splits fit one wave across nodes");
        let used: std::collections::HashSet<NodeId> =
            waves[0].iter().map(|(n, _)| *n).collect();
        assert_eq!(used.len(), 8);
    }

    #[test]
    fn no_split_recompute_uses_one_node_per_reducer() {
        // 1 recomputed whole reducer, 9 nodes: 1 task on 1 node — the
        // paper's under-utilization (Fig. 4a).
        let waves = assign_reduce_waves(
            vec![reduce_task(0)],
            &nodes(9),
            1,
            ReduceAssignment::Balance,
        );
        assert_eq!(waves.len(), 1);
        assert_eq!(waves[0].len(), 1);
    }

    #[test]
    fn empty_task_list_zero_waves() {
        let waves = assign_map_waves(Vec::new(), &nodes(2), 1);
        assert!(waves.is_empty());
        let waves =
            assign_reduce_waves(Vec::new(), &nodes(2), 1, ReduceAssignment::Balance);
        assert!(waves.is_empty());
    }
}
