//! Regenerates the paper's figures.
//!
//! ```text
//! fig_runner [all|fig02|fig08a|fig08b|fig08c|fig09|fig10|fig11|fig12|fig13|fig14|trace|exec|shuffle|placement|resilience|obs|serve|chain]...
//!            [--quick] [--json <dir>]
//! ```
//!
//! `--quick` scales the workloads down (fast sanity runs); the default
//! runs at paper scale (40 GB STIC / 1.2 TB DCO — simulated, so still
//! seconds of wall clock). `--json <dir>` additionally writes each
//! figure's data as JSON.

use rcmp_bench::figures::*;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_dir = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let mut figs: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .filter(|a| Some(a.as_str()) != json_dir.as_deref())
        .cloned()
        .collect();
    if figs.is_empty() || figs.iter().any(|f| f == "all") {
        figs = [
            "fig02", "fig08a", "fig08b", "fig08c", "fig09", "fig10", "fig11", "fig12", "fig13",
            "fig14", "trace", "extras",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let scale = if quick { 8 } else { 1 };
    if let Some(dir) = &json_dir {
        std::fs::create_dir_all(dir).expect("create json dir");
    }
    let write_json = |name: &str, value: serde_json::Value| {
        if let Some(dir) = &json_dir {
            let path = format!("{dir}/{name}.json");
            let mut f = std::fs::File::create(&path).expect("create json file");
            f.write_all(serde_json::to_string_pretty(&value).unwrap().as_bytes())
                .expect("write json");
        }
    };

    for fig in figs {
        match fig.as_str() {
            "fig02" => {
                let r = fig02::run(42);
                println!("{}", r.render());
                write_json("fig02", serde_json::to_value(&r).unwrap());
            }
            "fig08a" | "fig08b" | "fig08c" => {
                let case = match fig.as_str() {
                    "fig08a" => fig08::FailCase::None,
                    "fig08b" => fig08::FailCase::Early,
                    _ => fig08::FailCase::Late,
                };
                let scen = if quick {
                    quick_scenarios()
                } else {
                    paper_scenarios()
                };
                let r = fig08::run_with(case, &scen);
                println!("{}", r.render());
                write_json(&fig, serde_json::to_value(&r).unwrap());
            }
            "fig09" => {
                let r = fig09::run_scaled(scale);
                println!("{}", r.render());
                write_json("fig09", serde_json::to_value(&r).unwrap());
            }
            "fig10" => {
                let r = fig10::run_scaled(scale);
                println!("{}", r.render());
                write_json("fig10", serde_json::to_value(&r).unwrap());
            }
            "fig11" => {
                let r = fig11::run_scaled(scale);
                println!("{}", r.render());
                write_json("fig11", serde_json::to_value(&r).unwrap());
            }
            "fig12" => {
                let r = fig12::run_scaled(scale);
                println!("{}", r.render());
                write_json("fig12", serde_json::to_value(&r).unwrap());
            }
            "fig13" => {
                let r = fig13::run_scaled(scale);
                println!("{}", r.render());
                write_json("fig13", serde_json::to_value(&r).unwrap());
            }
            "fig14" => {
                // Fig. 14 cannot scale down: the wave sweep needs the
                // full mapper population.
                let r = fig14::run_scaled(1);
                println!("{}", r.render());
                write_json("fig14", serde_json::to_value(&r).unwrap());
            }
            "trace" => {
                let r = tracefig::run_scaled(scale);
                println!("{}", r.render());
                write_json("trace", serde_json::to_value(&r).unwrap());
            }
            "exec" => {
                let r = execfig::run();
                println!("{}", r.render());
                write_json("BENCH_exec", serde_json::to_value(&r).unwrap());
            }
            "shuffle" => {
                let r = shufflefig::run_scaled(scale);
                println!("{}", r.render());
                write_json("BENCH_shuffle", serde_json::to_value(&r).unwrap());
            }
            "placement" => {
                let r = placementfig::run_scaled(scale);
                println!("{}", r.render());
                write_json("BENCH_placement", serde_json::to_value(&r).unwrap());
            }
            "resilience" => {
                let r = resiliencefig::run_scaled(scale);
                println!("{}", r.render());
                write_json("BENCH_resilience", serde_json::to_value(&r).unwrap());
            }
            "serve" => {
                let r = servefig::run(0x5eed);
                println!("{}", r.render());
                write_json("BENCH_serve", serde_json::to_value(&r).unwrap());
                if !r.gate_passed {
                    eprintln!(
                        "serve: balanced scenario failed the fairness gate (jain >= {:.2})",
                        servefig::JAIN_GATE
                    );
                    std::process::exit(1);
                }
            }
            "chain" => {
                let r = chainfig::run_scaled(scale);
                println!("{}", r.render());
                write_json("BENCH_chain", serde_json::to_value(&r).unwrap());
                if !r.gate_passed {
                    eprintln!(
                        "chain: cached chain not faster than uncached, or node-local hits \
                         below {:.0}%, or tiny budget failed to spill through",
                        chainfig::GATE_LOCAL_PCT
                    );
                    std::process::exit(1);
                }
            }
            "obs" => {
                let r = obsfig::run_scaled(scale);
                println!("{}", r.render());
                write_json("BENCH_obs", serde_json::to_value(&r).unwrap());
                if !r.within_budget {
                    eprintln!(
                        "obs: telemetry overhead {:.2}% exceeds the {:.1}% budget",
                        r.overhead_pct, r.budget_pct
                    );
                    std::process::exit(1);
                }
            }
            "extras" => {
                let loc = extras::locality_ablation(scale);
                println!("{}", loc.render());
                write_json("extra_locality", serde_json::to_value(&loc).unwrap());
                let spec = extras::speculation_futility(scale);
                println!("{}", extras::render_speculation(&spec));
                write_json("extra_speculation", serde_json::to_value(&spec).unwrap());
                let dynp = extras::dynamic_intervals();
                println!("{}", extras::render_dynamic(&dynp));
                write_json("extra_dynamic", serde_json::to_value(&dynp).unwrap());
            }
            other => eprintln!("unknown figure: {other}"),
        }
    }
}
