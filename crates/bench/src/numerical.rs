//! The paper's numerical analysis (Fig. 10 and OPTIMISTIC).
//!
//! "For any chain length, for RCMP, the running time is a combination
//! of jobs running with 10 nodes before the failure, with 9 nodes for
//! recomputation and with 9 nodes after the recomputation finishes"
//! (§V-B). These formulas extrapolate measured per-job averages to
//! arbitrary chain lengths.

use serde::{Deserialize, Serialize};

/// Measured per-job averages feeding the extrapolation.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MeasuredAverages {
    /// Average job time with all N nodes.
    pub job_full_nodes: f64,
    /// Average job time with N−1 nodes (after the failure).
    pub job_reduced_nodes: f64,
    /// Time of one recomputation run (regenerating the lost part of one
    /// job's output) with N−1 nodes.
    pub recompute_run: f64,
    /// Failure overhead: injection offset + detection timeout (≈45 s).
    pub failure_overhead: f64,
}

/// Total chain time for RCMP with a single failure at job `fail_at` of a
/// `len`-job chain: jobs before the failure run on N nodes, the failed
/// job's partial work is wasted, `fail_at − 1` recomputation runs
/// regenerate the lost lineage, and the rest of the chain runs on N−1
/// nodes.
pub fn rcmp_chain_time(m: &MeasuredAverages, len: u32, fail_at: u32) -> f64 {
    assert!(fail_at >= 1 && fail_at <= len);
    let before = (fail_at - 1) as f64 * m.job_full_nodes;
    let recovery = (fail_at - 1) as f64 * m.recompute_run;
    let after = (len - fail_at + 1) as f64 * m.job_reduced_nodes;
    before + m.failure_overhead + recovery + after
}

/// Total chain time for a replication strategy (REPL-2/3): no
/// recomputation, but every job pays replication (folded into the
/// measured averages) and the failed job restarts on N−1 nodes.
pub fn replication_chain_time(m: &MeasuredAverages, len: u32, fail_at: u32) -> f64 {
    assert!(fail_at >= 1 && fail_at <= len);
    let before = (fail_at - 1) as f64 * m.job_full_nodes;
    let after = (len - fail_at + 1) as f64 * m.job_reduced_nodes;
    before + m.failure_overhead + after
}

/// Total chain time for OPTIMISTIC: everything before (and including)
/// the failure is wasted; the whole chain restarts on N−1 nodes.
pub fn optimistic_chain_time(m: &MeasuredAverages, len: u32, fail_at: u32) -> f64 {
    assert!(fail_at >= 1 && fail_at <= len);
    let wasted = (fail_at - 1) as f64 * m.job_full_nodes + m.failure_overhead;
    wasted + len as f64 * m.job_reduced_nodes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m() -> MeasuredAverages {
        MeasuredAverages {
            job_full_nodes: 100.0,
            job_reduced_nodes: 110.0,
            recompute_run: 20.0,
            failure_overhead: 45.0,
        }
    }

    #[test]
    fn rcmp_early_failure() {
        // len 10, fail at 2: 1 job full + 45 + 1 recompute + 9 reduced.
        let t = rcmp_chain_time(&m(), 10, 2);
        assert!((t - (100.0 + 45.0 + 20.0 + 9.0 * 110.0)).abs() < 1e-9);
    }

    #[test]
    fn optimistic_late_failure_doubles_work() {
        // Fail at the last job: nearly the whole chain runs twice.
        let t = optimistic_chain_time(&m(), 7, 7);
        let clean = 7.0 * 100.0;
        assert!(t / clean > 1.9, "late OPTIMISTIC ≈ 2x: {}", t / clean);
    }

    #[test]
    fn slowdowns_stable_across_chain_length() {
        // The paper's Fig.-10 observation: with an early failure, the
        // REPL/RCMP ratio converges as length grows.
        let mm = m();
        let mut repl = mm;
        repl.job_full_nodes *= 1.6; // REPL-3 per-job penalty
        repl.job_reduced_nodes *= 1.6;
        let r10 = replication_chain_time(&repl, 10, 2) / rcmp_chain_time(&mm, 10, 2);
        let r100 = replication_chain_time(&repl, 100, 2) / rcmp_chain_time(&mm, 100, 2);
        assert!((r10 - r100).abs() < 0.1, "{r10} vs {r100}");
        assert!(r100 > 1.4);
    }

    #[test]
    fn longer_chains_cost_more() {
        let mm = m();
        assert!(rcmp_chain_time(&mm, 20, 2) > rcmp_chain_time(&mm, 10, 2));
    }
}
