//! Minimal ASCII table rendering for figure output.

/// Renders rows as an aligned ASCII table. The first row is the header.
pub fn render(rows: &[Vec<String>]) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    for (ri, row) in rows.iter().enumerate() {
        for (i, w) in widths.iter().enumerate() {
            let cell = row.get(i).map(String::as_str).unwrap_or("");
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(cell);
            out.push_str(&" ".repeat(w - cell.len()));
        }
        // Trim trailing padding.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
        if ri == 0 {
            let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
            out.push_str(&"-".repeat(total));
            out.push('\n');
        }
    }
    out
}

/// Formats a slowdown/speed-up factor.
pub fn factor(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats seconds.
pub fn secs(x: f64) -> String {
    format!("{x:.1}s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(&[
            vec!["name".into(), "value".into()],
            vec!["a".into(), "1.00".into()],
            vec!["longer".into(), "2".into()],
        ]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].starts_with("---"));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn empty_is_empty() {
        assert!(render(&[]).is_empty());
    }

    #[test]
    fn formatters() {
        assert_eq!(factor(1.2345), "1.23");
        assert_eq!(secs(61.23), "61.2s");
    }
}
