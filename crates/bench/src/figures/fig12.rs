//! Fig. 12: reducer splitting mitigates hot-spots and accelerates the
//! recomputed mappers (STIC, SLOTS 2-2, failure at job 7).
//!
//! Shape reproduced: without splitting, the recomputation runs' mappers
//! concentrate their reads on the single node holding each regenerated
//! partition and the mapper-time CDF shifts right ~2x; with splitting
//! the reads spread and mappers (and reducers — paper: median 103 s →
//! 53 s) speed up.

use crate::table;
use rcmp_core::Strategy;
use rcmp_model::SlotConfig;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use rcmp_traces::cdf::CdfF64;
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig12Series {
    pub label: String,
    /// Mapper durations (seconds) across all recomputation runs.
    pub mapper_durations: Vec<f64>,
    pub mapper_median: f64,
    pub mapper_p90: f64,
    pub reducer_median: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig12Result {
    pub series: Vec<Fig12Series>,
}

fn collect(strategy: Strategy, label: &str, scale_down: u64) -> Fig12Series {
    let hw = HwProfile::stic();
    let mut wl = WorkloadCfg::stic(SlotConfig::TWO_TWO);
    wl.per_node_input = wl.per_node_input / scale_down.max(1);
    let cfg = ChainSimConfig::new(hw, wl.clone(), strategy)
        .with_failures(vec![FailureAt::at_job(7, wl.nodes - 1)]);
    let rep = simulate_chain(&cfg);
    let mut mappers = Vec::new();
    let mut reducers = Vec::new();
    for run in rep.recompute_runs() {
        mappers.extend_from_slice(&run.mapper_durations);
        reducers.extend_from_slice(&run.reducer_durations);
    }
    let mcdf = CdfF64::from_observations(&mappers);
    let rcdf = CdfF64::from_observations(&reducers);
    Fig12Series {
        label: label.to_string(),
        mapper_median: mcdf.median(),
        mapper_p90: mcdf.quantile(0.9),
        reducer_median: rcdf.median(),
        mapper_durations: mappers,
    }
}

/// Runs the experiment. `scale_down` divides per-node input.
pub fn run_scaled(scale_down: u64) -> Fig12Result {
    Fig12Result {
        series: vec![
            collect(Strategy::rcmp_no_split(), "RCMP NO-SPLIT", scale_down),
            collect(Strategy::rcmp_split(8), "RCMP SPLIT IN 8", scale_down),
        ],
    }
}

/// Paper-scale run.
pub fn run() -> Fig12Result {
    run_scaled(1)
}

impl Fig12Result {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "series".to_string(),
            "mapper median".to_string(),
            "mapper p90".to_string(),
            "reducer median".to_string(),
            "mappers".to_string(),
        ]];
        for s in &self.series {
            rows.push(vec![
                s.label.clone(),
                table::secs(s.mapper_median),
                table::secs(s.mapper_p90),
                table::secs(s.reducer_median),
                s.mapper_durations.len().to_string(),
            ]);
        }
        format!(
            "Fig. 12 — recomputation mapper/reducer times (STIC SLOTS 2-2, failure at job 7)\n{}",
            table::render(&rows)
        )
    }

    pub fn series_of(&self, label: &str) -> Option<&Fig12Series> {
        self.series.iter().find(|s| s.label == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitting_shifts_cdf_left() {
        let r = run_scaled(4);
        let no = r.series_of("RCMP NO-SPLIT").unwrap();
        let sp = r.series_of("RCMP SPLIT IN 8").unwrap();
        assert!(!no.mapper_durations.is_empty());
        assert!(
            no.mapper_median > sp.mapper_median * 1.2,
            "hot-spot must slow unsplit mappers: {} vs {}",
            no.mapper_median,
            sp.mapper_median
        );
        // Paper: median reducer 103 s unsplit vs 53 s split (≈2x).
        assert!(
            no.reducer_median > sp.reducer_median * 1.4,
            "split reducers do ~1/8 of the work each: {} vs {}",
            no.reducer_median,
            sp.reducer_median
        );
        assert!(r.render().contains("SPLIT IN 8"));
    }
}
