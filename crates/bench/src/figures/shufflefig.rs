//! Pseudo-figure `shuffle`: reducer shuffle throughput of the three
//! data paths at DCO scale (60 mappers, 1200–4800 reduce tasks — the
//! paper's largest wave shapes):
//!
//! * `legacy` — collect every bucket, decode, sort-all, group (the
//!   differential-testing oracle);
//! * `streaming` — the k-way heap merge over the indexed, pre-sorted
//!   map buckets;
//! * `streaming+combiner` — the same merge over buckets a map-side
//!   combiner already collapsed (modelled by pre-combining the stored
//!   buckets, which is exactly what the map side does).
//!
//! Throughput is *logical* input records per second — the uncombined
//! record count divided by the wall time to shuffle every reduce task —
//! so the combiner rows measure "same logical work, finished sooner",
//! not "fewer bytes moved counts as less work".

use crate::table;
use rcmp_engine::mapstore::{BucketIndex, MapInputKey, MapOutputStore};
use rcmp_engine::shuffle::{shuffle_for_reduce, StreamingShuffle};
use rcmp_model::{JobId, NodeId, PartitionId, Record, RecordWriter, ReduceTaskId};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One (path, reduce-task-count) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShuffleBenchRow {
    /// `legacy`, `streaming` or `streaming+combiner`.
    pub path: String,
    /// Reduce tasks shuffled.
    pub reduce_tasks: u32,
    /// Logical (pre-combine) input records represented.
    pub records: u64,
    /// Best-of-repeats wall time to shuffle every reduce task, in
    /// milliseconds.
    pub wall_ms: f64,
    /// Logical records per second.
    pub records_per_sec: f64,
    /// This row's throughput over the legacy row's at the same
    /// reduce-task count (1.0 for legacy itself).
    pub speedup_vs_legacy: f64,
}

/// The full measurement matrix.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ShuffleBench {
    /// Mappers feeding every reducer (DCO: one map task per node).
    pub mappers: u32,
    pub rows: Vec<ShuffleBenchRow>,
}

impl ShuffleBench {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "path".to_string(),
            "reduce tasks".to_string(),
            "records".to_string(),
            "wall".to_string(),
            "Mrec/s".to_string(),
            "speedup".to_string(),
        ]];
        for r in &self.rows {
            rows.push(vec![
                r.path.clone(),
                r.reduce_tasks.to_string(),
                r.records.to_string(),
                format!("{:.1}ms", r.wall_ms),
                format!("{:.2}", r.records_per_sec / 1e6),
                format!("{:.2}x", r.speedup_vs_legacy),
            ]);
        }
        format!(
            "shuffle: reducer data-path throughput, {} mappers\n{}",
            self.mappers,
            table::render(&rows)
        )
    }
}

/// The reduce-task counts measured (the DCO wave shapes; the 4800-task
/// point is the acceptance target).
pub fn task_counts() -> [u32; 3] {
    [1200, 2400, 4800]
}

const MAPPERS: u32 = 60;
/// Records each mapper spreads over its reduce buckets. Fixed across
/// reduce-task counts, like a fixed input carved into more tasks; 16
/// records per bucket even at the 4800-task point, so the combiner's
/// 8:1 collapse stays visible at the largest shape.
const RECORDS_PER_MAPPER: u64 = 76_800;
/// Duplicate values per key within a bucket — the redundancy a
/// combiner collapses (8:1).
const DUPES_PER_KEY: u64 = 8;

/// Deterministic 16-byte value for record `i` of bucket `b`.
fn value(b: u64, i: u64) -> Vec<u8> {
    let mut v = Vec::with_capacity(16);
    v.extend_from_slice(&b.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
    v.extend_from_slice(&i.to_le_bytes());
    v
}

/// The raw records of one (mapper, bucket) pair, sorted by (key, value).
fn bucket_records(mapper: u64, bucket: u64, per_bucket: u64) -> Vec<Record> {
    let distinct = (per_bucket / DUPES_PER_KEY).max(1);
    let mut recs: Vec<Record> = (0..per_bucket)
        .map(|i| {
            let key = bucket.wrapping_mul(1 << 20) + (i % distinct);
            Record::new(key, value(mapper << 32 | bucket, i))
        })
        .collect();
    recs.sort_unstable_by(|a, b| a.key.cmp(&b.key).then_with(|| a.value.cmp(&b.value)));
    recs
}

/// Map-side combine: one record per key (the merge the real combiner
/// performs, with a fixed-size result like the agg workload's).
fn combine(recs: Vec<Record>) -> Vec<Record> {
    let mut out: Vec<Record> = Vec::new();
    for rec in recs {
        match out.last_mut() {
            Some(last) if last.key == rec.key => {}
            _ => out.push(Record::new(rec.key, value(rec.key, 0))),
        }
    }
    out
}

/// Builds a populated map-output store for `reduce_tasks` reducers.
/// When `combined` is set every bucket is pre-collapsed, modelling
/// map-side combining; the payloads are sorted and indexed either way.
fn build_store(reduce_tasks: u32, records_per_mapper: u64, combined: bool) -> MapOutputStore {
    let store = MapOutputStore::new();
    let per_bucket = (records_per_mapper / u64::from(reduce_tasks)).max(1);
    for m in 0..u64::from(MAPPERS) {
        let mut buckets = HashMap::new();
        for r in 0..u64::from(reduce_tasks) {
            let mut recs = bucket_records(m, r, per_bucket);
            if combined {
                recs = combine(recs);
            }
            let mut w = RecordWriter::with_capacity(recs.len() * 28);
            for rec in &recs {
                w.push(rec);
            }
            let index = BucketIndex {
                records: recs.len() as u64,
                bytes: w.byte_len() as u64,
                min_key: recs.first().map_or(0, |r| r.key),
                max_key: recs.last().map_or(0, |r| r.key),
                sorted: true,
            };
            buckets.insert(
                ReduceTaskId::whole(JobId(1), PartitionId(r as u32)),
                (w.finish(), index),
            );
        }
        let key = MapInputKey::new(JobId(1), PartitionId(m as u32), 0);
        store.insert_indexed(key, NodeId((m % u64::from(MAPPERS)) as u32), m, buckets);
    }
    store
}

/// Times shuffling every reduce task over `store`, returning wall time
/// and the total groups observed (kept live so nothing is optimized
/// away).
fn time_all_reduces(store: &MapOutputStore, reduce_tasks: u32, streaming: bool) -> Duration {
    let inputs: Vec<MapInputKey> = (0..MAPPERS)
        .map(|m| MapInputKey::new(JobId(1), PartitionId(m), 0))
        .collect();
    let start = Instant::now();
    let mut groups = 0u64;
    for r in 0..reduce_tasks {
        let rtid = ReduceTaskId::whole(JobId(1), PartitionId(r));
        let node = NodeId(r % MAPPERS);
        if streaming {
            let merge = StreamingShuffle::plan(store, &inputs, rtid, node, 64).expect("plan");
            for group in merge {
                group.expect("group");
                groups += 1;
            }
        } else {
            groups += shuffle_for_reduce(store, &inputs, rtid, node)
                .expect("shuffle")
                .groups
                .len() as u64;
        }
    }
    let elapsed = start.elapsed();
    assert!(groups > 0, "shuffled nothing");
    std::hint::black_box(groups);
    elapsed
}

/// Runs the full matrix at paper scale.
pub fn run() -> ShuffleBench {
    run_scaled(1)
}

/// Runs the matrix with record volume and task counts divided by
/// `scale` (`--quick` sanity runs).
pub fn run_scaled(scale: u64) -> ShuffleBench {
    const REPEATS: u32 = 3;
    let scale = scale.clamp(1, 1 << 16) as u32;
    let records_per_mapper = (RECORDS_PER_MAPPER / u64::from(scale)).max(64);
    let mut rows = Vec::new();
    for tasks in task_counts() {
        let tasks = (tasks / scale).max(MAPPERS);
        let logical = records_per_mapper * u64::from(MAPPERS);
        let mut legacy_tput = 0.0;
        // (label, store is pre-combined, timed path is streaming)
        for (path, combined, streaming) in [
            ("legacy", false, false),
            ("streaming", false, true),
            ("streaming+combiner", true, true),
        ] {
            let store = build_store(tasks, records_per_mapper, combined);
            let wall = (0..REPEATS)
                .map(|_| time_all_reduces(&store, tasks, streaming))
                .min()
                .unwrap_or(Duration::ZERO);
            let secs = wall.as_secs_f64();
            let tput = if secs > 0.0 {
                logical as f64 / secs
            } else {
                0.0
            };
            if path == "legacy" {
                legacy_tput = tput;
            }
            rows.push(ShuffleBenchRow {
                path: path.to_string(),
                reduce_tasks: tasks,
                records: logical,
                wall_ms: secs * 1e3,
                records_per_sec: tput,
                speedup_vs_legacy: if legacy_tput > 0.0 {
                    tput / legacy_tput
                } else {
                    0.0
                },
            });
        }
    }
    ShuffleBench {
        mappers: MAPPERS,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_agree_and_quick_matrix_runs() {
        // Tiny shape: both timed paths must see identical group counts,
        // and the scaled-down matrix must produce all nine rows.
        let store = build_store(MAPPERS, 600, false);
        let inputs: Vec<MapInputKey> = (0..MAPPERS)
            .map(|m| MapInputKey::new(JobId(1), PartitionId(m), 0))
            .collect();
        let rtid = ReduceTaskId::whole(JobId(1), PartitionId(3));
        let legacy = shuffle_for_reduce(&store, &inputs, rtid, NodeId(0)).unwrap();
        let merge = StreamingShuffle::plan(&store, &inputs, rtid, NodeId(0), 64).unwrap();
        let streamed: Vec<_> = merge.map(|g| g.unwrap()).collect();
        assert_eq!(legacy.groups, streamed);

        let bench = run_scaled(64);
        assert_eq!(bench.rows.len(), 9);
        assert!(bench.rows.iter().all(|r| r.records_per_sec > 0.0));
        assert!(!bench.render().is_empty());
    }
}
