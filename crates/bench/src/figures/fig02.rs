//! Fig. 2: CDF of new failures per day for the STIC and SUG@R clusters.
//!
//! Paper claims reproduced: only 17% (STIC) / 12% (SUG@R) of days show
//! new failures; the CDF starts above 80% at zero failures and has a
//! thin tail out to tens of nodes (outage days).

use crate::table;
use rcmp_traces::{synthesize, Cdf, TraceProfile, TraceStats};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClusterCdf {
    pub cluster: String,
    pub failure_day_fraction: f64,
    pub mean_days_between_failures: f64,
    /// `(failures_per_day, cumulative_fraction)` points.
    pub points: Vec<(u32, f64)>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig02Result {
    pub clusters: Vec<ClusterCdf>,
}

/// Runs the Fig.-2 analysis on synthesized traces.
pub fn run(seed: u64) -> Fig02Result {
    let clusters = [TraceProfile::stic(), TraceProfile::sugar()]
        .into_iter()
        .map(|p| {
            let trace = synthesize(&p, seed);
            let stats = TraceStats::from_trace(&trace);
            let cdf = Cdf::from_observations(&trace);
            ClusterCdf {
                cluster: p.name.clone(),
                failure_day_fraction: stats.failure_day_fraction,
                mean_days_between_failures: stats.mean_days_between_failures,
                points: cdf.points().collect(),
            }
        })
        .collect();
    Fig02Result { clusters }
}

impl Fig02Result {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "cluster".to_string(),
            "P(0/day)".to_string(),
            "P(<=1)".to_string(),
            "P(<=5)".to_string(),
            "max/day".to_string(),
            "failure-day frac".to_string(),
        ]];
        for c in &self.clusters {
            let at = |x: u32| -> f64 {
                c.points
                    .iter()
                    .take_while(|(v, _)| *v <= x)
                    .last()
                    .map(|(_, f)| *f)
                    .unwrap_or(0.0)
            };
            let max = c.points.last().map(|(v, _)| *v).unwrap_or(0);
            rows.push(vec![
                c.cluster.clone(),
                format!("{:.1}%", at(0) * 100.0),
                format!("{:.1}%", at(1) * 100.0),
                format!("{:.1}%", at(5) * 100.0),
                max.to_string(),
                format!("{:.1}%", c.failure_day_fraction * 100.0),
            ]);
        }
        format!(
            "Fig. 2 — CDF of new failures per day\n{}",
            table::render(&rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_claims() {
        let r = run(42);
        assert_eq!(r.clusters.len(), 2);
        let stic = &r.clusters[0];
        let sugar = &r.clusters[1];
        assert!((stic.failure_day_fraction - 0.17).abs() < 0.03);
        assert!((sugar.failure_day_fraction - 0.12).abs() < 0.03);
        // CDF at 0 failures is above 80% for both (paper's y-axis starts
        // at 80%).
        for c in &r.clusters {
            let p0 = c.points.first().filter(|(v, _)| *v == 0).map(|(_, f)| *f);
            assert!(
                p0.unwrap_or(0.0) > 0.8,
                "{}: {:?}",
                c.cluster,
                c.points.first()
            );
        }
        assert!(r.render().contains("STIC"));
    }
}
