//! Fig. 11: reducer splitting lets recomputation exploit added nodes.
//!
//! DCO-like clusters of 12–60 nodes, constant 20 GB of work per node.
//! After a failure, the failed node's 20 GB is recomputed; the y-axis is
//! how much faster the recomputation run is than the initial run of the
//! same job. Shape reproduced: NO-SPLIT stays flat (one node bears the
//! whole reducer), SPLIT (ratio N−1) grows steeply with node count.

use crate::table;
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{HwProfile, JobSim, SimState, WorkloadCfg};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11Point {
    pub nodes: u32,
    pub no_split: f64,
    pub split: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig11Result {
    pub points: Vec<Fig11Point>,
}

fn workload(nodes: u32, scale_down: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::dco();
    wl.nodes = nodes;
    wl.num_reducers = nodes;
    wl.per_node_input = wl.per_node_input / scale_down.max(1);
    wl
}

/// Recomputation speed-up (initial job time / recomputation time) at a
/// given cluster size and split factor.
fn speedup(nodes: u32, split: u32, scale_down: u64) -> f64 {
    let wl = workload(nodes, scale_down);
    let hw = HwProfile::dco();
    let js = JobSim::new(hw, wl.clone());
    let mut state = SimState::new(&wl);
    let initial = js.run_full(&mut state, 1, 1, true).unwrap();
    state.fail_node(nodes - 1);
    let lost = state.files[&1].lost_partitions(&state);
    assert!(!lost.is_empty(), "the dead node held reducer output");
    let rec = js
        .run_recompute(
            &mut state,
            1,
            &RecomputeSpec::new(lost.iter().copied(), split),
            true,
        )
        .unwrap();
    initial.duration / rec.duration
}

/// Runs the sweep. `scale_down` divides per-node input (1 = 20 GB).
pub fn run_scaled(scale_down: u64) -> Fig11Result {
    let points = [12u32, 24, 36, 48, 60]
        .into_iter()
        .map(|n| Fig11Point {
            nodes: n,
            no_split: speedup(n, 1, scale_down),
            split: speedup(n, n - 1, scale_down),
        })
        .collect();
    Fig11Result { points }
}

/// Paper-scale run.
pub fn run() -> Fig11Result {
    run_scaled(1)
}

impl Fig11Result {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "nodes".to_string(),
            "RCMP NO-SPLIT".to_string(),
            "RCMP SPLIT (N-1)".to_string(),
        ]];
        for p in &self.points {
            rows.push(vec![
                p.nodes.to_string(),
                table::factor(p.no_split),
                table::factor(p.split),
            ]);
        }
        format!(
            "Fig. 11 — avg job recomputation speed-up vs node count (DCO, 20GB/node)\n{}",
            table::render(&rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_scales_with_nodes_no_split_does_not() {
        let r = run_scaled(8);
        let first = &r.points[0];
        let last = r.points.last().unwrap();
        // SPLIT grows substantially with cluster size.
        assert!(
            last.split > first.split * 1.5,
            "split speed-up must grow: {} → {}",
            first.split,
            last.split
        );
        // NO-SPLIT stays comparatively flat.
        assert!(
            last.no_split < first.no_split * 1.6,
            "no-split must stay flat-ish: {} → {}",
            first.no_split,
            last.no_split
        );
        // At every size splitting wins.
        for p in &r.points {
            assert!(p.split > p.no_split, "{p:?}");
        }
        assert!(r.render().contains("60"));
    }

    #[test]
    fn speedups_are_greater_than_one() {
        let r = run_scaled(8);
        for p in &r.points {
            assert!(p.no_split > 1.0, "recomputation beats re-running: {p:?}");
        }
    }
}
