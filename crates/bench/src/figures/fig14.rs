//! Fig. 14: speed-up as a function of the number of mapper waves during
//! recomputation (§V-D).
//!
//! The reduce side is pinned to one wave in both runs; the sweep varies
//! how many mappers the recomputation re-executes (via the forced-rerun
//! knob), i.e. how many recomputation map waves run. Shape reproduced:
//! with FAST SHUFFLE, fewer recomputed map waves give near-linear
//! speed-up (the map phase dominates); with SLOW SHUFFLE the speed-up
//! stays ≈ flat near 1 (the delay-bottlenecked shuffle dwarfs the map
//! phase, §V-D: "finishing the map phase faster does not decrease the
//! time necessary to complete the network-bottlenecked shuffle").

use crate::table;
use rcmp_model::{ByteSize, SlotConfig};
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{HwProfile, JobSim, SimState, WorkloadCfg};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig14Point {
    /// Map waves executed by the recomputation run.
    pub recompute_waves: u32,
    pub fast_speedup: f64,
    pub slow_speedup: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig14Result {
    pub initial_waves: u32,
    pub points: Vec<Fig14Point>,
}

fn workload(scale_down: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    // 5 GiB per node → 20 blocks/node → 20 initial map waves, so the
    // paper's 2–18 recompute-wave sweep fits strictly inside.
    wl.per_node_input = ByteSize::gib(5) / scale_down.max(1);
    wl
}

fn speedup(hw: &HwProfile, waves: u32, scale_down: u64) -> (f64, u32) {
    let wl = workload(scale_down);
    let n = wl.nodes;
    let js = JobSim::new(hw.clone(), wl.clone());
    let mut state = SimState::new(&wl);
    let initial = js.run_full(&mut state, 1, 1, true).unwrap();
    state.fail_node(n - 1);
    let lost = state.files[&1].lost_partitions(&state);
    // One reducer wave in both runs: recompute the lost reducers whole.
    let mut spec = RecomputeSpec::new(lost.iter().copied(), 1);
    // Re-run exactly enough mappers for the requested number of waves
    // over the survivors.
    spec.force_rerun_mappers = Some((waves * (n - 1) * wl.slots.map) as usize);
    let rec = js.run_recompute(&mut state, 1, &spec, true).unwrap();
    (initial.duration / rec.duration, initial.map_waves)
}

/// Runs the sweep. `scale_down` divides per-node input.
pub fn run_scaled(scale_down: u64) -> Fig14Result {
    let fast = HwProfile::stic();
    let slow = HwProfile::stic().with_slow_shuffle();
    let mut initial_waves = 0;
    let points = [2u32, 6, 10, 14, 18]
        .into_iter()
        .map(|w| {
            let (f, iw) = speedup(&fast, w, scale_down);
            let (s, _) = speedup(&slow, w, scale_down);
            initial_waves = iw;
            Fig14Point {
                recompute_waves: w,
                fast_speedup: f,
                slow_speedup: s,
            }
        })
        .collect();
    Fig14Result {
        initial_waves,
        points,
    }
}

/// Paper-scale run.
pub fn run() -> Fig14Result {
    run_scaled(1)
}

impl Fig14Result {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "recompute map waves".to_string(),
            "FAST SHUFFLE".to_string(),
            "SLOW SHUFFLE".to_string(),
        ]];
        for p in &self.points {
            rows.push(vec![
                p.recompute_waves.to_string(),
                table::factor(p.fast_speedup),
                table::factor(p.slow_speedup),
            ]);
        }
        format!(
            "Fig. 14 — speed-up vs recomputation map waves (initial run: {} waves)\n{}",
            self.initial_waves,
            table::render(&rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_gains_from_fewer_waves_slow_does_not() {
        // Full scale: the 18-wave sweep point needs all 20 initial map
        // waves of mappers to exist (scaling down the input would
        // saturate the forced-rerun knob).
        let r = run_scaled(1);
        let fewest = &r.points[0]; // 2 waves
        let most = r.points.last().unwrap(); // 18 waves
                                             // FAST: near-linear increase as recompute waves shrink.
        assert!(
            fewest.fast_speedup > most.fast_speedup * 1.5,
            "FAST: {} (2 waves) vs {} (18 waves)",
            fewest.fast_speedup,
            most.fast_speedup
        );
        // SLOW: flat — fewer map waves barely help.
        let slow_gain = fewest.slow_speedup / most.slow_speedup;
        assert!(
            slow_gain < 1.4,
            "SLOW speed-up must stay flat: gain {slow_gain}"
        );
        assert!(r.render().contains("18"));
    }

    #[test]
    fn monotone_in_wave_count() {
        let r = run_scaled(1);
        for w in r.points.windows(2) {
            assert!(
                w[0].fast_speedup >= w[1].fast_speedup,
                "fewer waves → higher FAST speed-up: {w:?}"
            );
        }
    }
}
