//! BENCH: placement-kernel comparison (the `placement` pseudo-figure,
//! ISSUE 8).
//!
//! Runs the same failure-injected job chain under each placement
//! kernel — the historical slot-pull default, rack-aware stealing,
//! delay scheduling and capacity-weighted slot-pull — over three
//! cluster shapes: the paper's STIC profile, a heterogeneous racked
//! cluster (capacities 1–3), and a 1000-node racked cluster. The
//! 1000-node block is the acceptance gate: every kernel must drive the
//! large sim to completion, clean and under failure, and the published
//! `BENCH_placement.json` carries the comparison.
//!
//! Kernels move *tasks*, never bytes: data placement, replication and
//! recovery are identical across rows, so the columns isolate pure
//! scheduling effects (map-wave counts, input locality, end-to-end
//! seconds).

use rcmp_core::strategy::Strategy;
use rcmp_model::{ByteSize, PlacementKernel, SlotConfig};
use rcmp_policy::Membership;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use serde::{Deserialize, Serialize};

/// The four kernels the comparison sweeps, in `RCMP_PLACEMENT` syntax
/// order: `default`, `rack`, `delay:3`, `capacity`.
pub fn kernels() -> [PlacementKernel; 4] {
    [
        PlacementKernel::Default,
        PlacementKernel::RackAware,
        PlacementKernel::Delay { rounds: 3 },
        PlacementKernel::CapacityWeighted,
    ]
}

/// One (scenario, kernel) measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Cluster scenario label.
    pub scenario: String,
    /// Kernel label (`PlacementKernel::label` / `RCMP_PLACEMENT`).
    pub kernel: String,
    /// Cluster width.
    pub nodes: u32,
    /// Rack count the membership encodes.
    pub racks: u32,
    /// Failure-free chain seconds.
    pub clean_secs: f64,
    /// Chain seconds with a node kill at job 2 (recomputation path).
    pub failed_secs: f64,
    /// Map waves of the first clean run.
    pub map_waves: u32,
    /// Node-local map-input percentage of the first clean run.
    pub locality_pct: f64,
}

/// The full placement benchmark result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PlacementResult {
    pub rows: Vec<PlacementRow>,
}

/// Membership over `nodes` spread across `racks`, with per-node
/// capacity from `cap` — built through `join` so the figure exercises
/// the same elastic path the engine uses.
fn membership(nodes: u32, racks: u32, cap: impl Fn(u32) -> u32) -> Membership {
    let per_rack = nodes.div_ceil(racks.max(1));
    let mut m = Membership::uniform(0);
    for i in 0..nodes {
        m.join(cap(i), i / per_rack);
    }
    m
}

struct Scenario {
    name: &'static str,
    wl: WorkloadCfg,
    membership: Option<Membership>,
    racks: u32,
}

fn scenarios(scale: u64) -> Vec<Scenario> {
    let scale = scale.max(1);
    let mut stic = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    stic.per_node_input = stic.per_node_input / scale;
    stic.jobs = 4;

    let hetero_wl = WorkloadCfg {
        nodes: 64,
        slots: SlotConfig::ONE_ONE,
        jobs: 3,
        per_node_input: ByteSize::mib(if scale > 1 { 128 } else { 256 }),
        block_size: ByteSize::mib(128),
        num_reducers: 64,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    };

    // The ≥1000-node acceptance scenario runs at full width even in
    // quick mode — only the chain length shrinks.
    let large_wl = WorkloadCfg {
        nodes: 1000,
        slots: SlotConfig::ONE_ONE,
        jobs: if scale > 1 { 2 } else { 3 },
        per_node_input: ByteSize::mib(128),
        block_size: ByteSize::mib(128),
        num_reducers: 1000,
        map_ratio: 1.0,
        reduce_ratio: 1.0,
        input_replication: 3,
    };

    vec![
        Scenario {
            name: "stic-10-uniform",
            wl: stic,
            membership: None,
            racks: 1,
        },
        Scenario {
            name: "hetero-64x4racks",
            wl: hetero_wl,
            membership: Some(membership(64, 4, |i| 1 + i % 3)),
            racks: 4,
        },
        Scenario {
            name: "racked-1000x24",
            wl: large_wl,
            membership: Some(membership(1000, 24, |_| 1)),
            racks: 24,
        },
    ]
}

fn run_one(s: &Scenario, kernel: PlacementKernel) -> PlacementRow {
    let mut base = ChainSimConfig::new(HwProfile::stic(), s.wl.clone(), Strategy::rcmp_split(4))
        .with_placement(kernel);
    if let Some(m) = &s.membership {
        base = base.with_membership(m.clone());
    }
    let clean = simulate_chain(&base);
    let failed = simulate_chain(&base.with_failures(vec![FailureAt::at_job(2, 5)]));
    let (map_waves, locality_pct) = clean
        .runs
        .first()
        .map(|r| {
            let total = r.io.map_input_local + r.io.map_input_remote;
            let pct = if total == 0 {
                100.0
            } else {
                100.0 * r.io.map_input_local as f64 / total as f64
            };
            (r.map_waves, pct)
        })
        .unwrap_or((0, 0.0));
    PlacementRow {
        scenario: s.name.to_string(),
        kernel: kernel.label(),
        nodes: s.wl.nodes,
        racks: s.racks,
        clean_secs: clean.total_time,
        failed_secs: failed.total_time,
        map_waves,
        locality_pct,
    }
}

/// Runs the benchmark. `scale` shrinks inputs and chain lengths
/// (`--quick` passes 8) but never the 1000-node cluster width.
pub fn run_scaled(scale: u64) -> PlacementResult {
    let mut rows = Vec::new();
    for s in scenarios(scale) {
        for kernel in kernels() {
            rows.push(run_one(&s, kernel));
        }
    }
    PlacementResult { rows }
}

impl PlacementResult {
    /// ASCII table, one block per scenario.
    pub fn render(&self) -> String {
        let mut out =
            String::from("BENCH placement: kernels over cluster shapes (chain seconds)\n");
        let mut last = "";
        for r in &self.rows {
            if r.scenario != last {
                out.push_str(&format!(
                    "\n{} ({} nodes, {} racks)\n",
                    r.scenario, r.nodes, r.racks
                ));
                out.push_str("kernel    | clean s  | failed s | map waves | local %\n");
                last = &r.scenario;
            }
            out.push_str(&format!(
                "{:<9} | {:8.1} | {:8.1} | {:>9} | {:6.1}\n",
                r.kernel, r.clean_secs, r.failed_secs, r.map_waves, r.locality_pct
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_complete_every_scenario() {
        let r = run_scaled(8);
        assert_eq!(r.rows.len(), 3 * 4, "3 scenarios x 4 kernels");
        for row in &r.rows {
            assert!(
                row.clean_secs > 0.0 && row.failed_secs > 0.0,
                "{row:?} did not complete"
            );
            assert!(
                row.failed_secs > row.clean_secs,
                "{row:?}: failure must cost time"
            );
        }
    }

    #[test]
    fn thousand_node_comparison_covers_every_kernel() {
        let r = run_scaled(8);
        let large: Vec<&PlacementRow> = r.rows.iter().filter(|row| row.nodes >= 1000).collect();
        assert_eq!(large.len(), 4, "all four kernels at >=1000 nodes");
        let labels: Vec<&str> = large.iter().map(|r| r.kernel.as_str()).collect();
        assert_eq!(labels, vec!["default", "rack", "delay:3", "capacity"]);
    }

    #[test]
    fn kernels_only_move_tasks_not_bytes() {
        // Same scenario, different kernels: data volume written is a
        // placement-independent property of the workload.
        let r = run_scaled(8);
        for scenario in ["stic-10-uniform", "hetero-64x4racks"] {
            let waves: Vec<u32> = r
                .rows
                .iter()
                .filter(|row| row.scenario == scenario)
                .map(|row| row.map_waves)
                .collect();
            assert!(!waves.is_empty());
            // Capacity-weighted packs heterogeneous clusters into fewer
            // (or equal) waves than uniform slot-pull.
            if scenario == "hetero-64x4racks" {
                assert!(
                    waves[3] <= waves[0],
                    "capacity-weighted used more waves than default: {waves:?}"
                );
            }
        }
    }
}
