//! Pseudo-figure `trace`: runs the paper's FAIL 7 scenario in the
//! simulator at paper scale, lowers the result into the causal span
//! schema ([`rcmp_sim::chain_trace`]) and applies the observability
//! analyzers — the span summary, the slot-occupancy profile (Fig. 4)
//! and the recomputation critical path. Demonstrates that the same
//! trace tooling works on simulated chains, where the engine never ran.

use crate::table;
use rcmp_core::Strategy;
use rcmp_model::SlotConfig;
use rcmp_obs::{recomputation_critical_path, slot_occupancy, summary, SpanKind};
use rcmp_sim::{chain_trace, simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use serde::{Deserialize, Serialize};

/// Analyzer digest of the simulated FAIL 7 cascade's trace.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TraceFigure {
    pub spans: usize,
    pub job_runs: usize,
    pub recompute_runs: usize,
    /// Mean slot occupancy over the full (non-recompute) runs.
    pub full_avg_occupancy: f64,
    /// Mean slot occupancy over the recomputation runs — Fig. 4's
    /// under-utilization.
    pub recompute_avg_occupancy: f64,
    pub critical_path_steps: usize,
    pub critical_path_secs: f64,
    /// The per-kind span summary (counts and total duration).
    pub summary: String,
}

/// Runs FAIL 7 (RCMP NO on STIC, SLOTS 1-1) and analyzes its trace.
/// `scale_down` divides the per-node input (1 = paper scale).
pub fn run_scaled(scale_down: u64) -> TraceFigure {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / scale_down.max(1);
    let cfg = ChainSimConfig::new(HwProfile::stic(), wl.clone(), Strategy::rcmp_no_split())
        .with_failures(vec![FailureAt::at_job(7, wl.nodes - 1)]);
    let trace = chain_trace(&simulate_chain(&cfg));

    let occ = slot_occupancy(&trace);
    let mean = |recompute: bool| {
        let runs: Vec<f64> = occ
            .iter()
            .filter(|r| r.recompute == recompute && !r.waves.is_empty())
            .map(|r| r.avg_occupancy())
            .collect();
        if runs.is_empty() {
            0.0
        } else {
            runs.iter().sum::<f64>() / runs.len() as f64
        }
    };
    let path = recomputation_critical_path(&trace);
    TraceFigure {
        spans: trace.len(),
        job_runs: trace.of_kind("JobRun").count(),
        recompute_runs: trace
            .spans()
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    SpanKind::JobRun {
                        recompute: true,
                        ..
                    }
                )
            })
            .count(),
        full_avg_occupancy: mean(false),
        recompute_avg_occupancy: mean(true),
        critical_path_steps: path.as_ref().map_or(0, |p| p.steps.len()),
        critical_path_secs: path.as_ref().map_or(0.0, |p| p.total_us as f64 / 1e6),
        summary: summary(&trace),
    }
}

/// Paper-scale run.
pub fn run() -> TraceFigure {
    run_scaled(1)
}

impl TraceFigure {
    pub fn render(&self) -> String {
        let rows = vec![
            vec!["metric".to_string(), "value".to_string()],
            vec!["spans".to_string(), self.spans.to_string()],
            vec!["job runs".to_string(), self.job_runs.to_string()],
            vec![
                "recomputation runs".to_string(),
                self.recompute_runs.to_string(),
            ],
            vec![
                "avg occupancy, full runs".to_string(),
                format!("{:.2}", self.full_avg_occupancy),
            ],
            vec![
                "avg occupancy, recompute runs".to_string(),
                format!("{:.2}", self.recompute_avg_occupancy),
            ],
            vec![
                "critical path steps".to_string(),
                self.critical_path_steps.to_string(),
            ],
            vec![
                "critical path time".to_string(),
                table::secs(self.critical_path_secs),
            ],
        ];
        format!(
            "Trace — simulated FAIL 7 cascade through the span analyzers\n{}\n{}",
            table::render(&rows),
            self.summary
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulated_cascade_is_traceable() {
        let f = run_scaled(8);
        assert!(f.recompute_runs > 0, "FAIL 7 forces recomputation");
        assert_eq!(
            f.critical_path_steps, f.recompute_runs,
            "one cascade: every recompute run is on the critical path"
        );
        assert!(f.critical_path_secs > 0.0);
        assert!(
            f.recompute_avg_occupancy < f.full_avg_occupancy,
            "Fig. 4 on the simulator: recompute {} vs full {}",
            f.recompute_avg_occupancy,
            f.full_avg_occupancy
        );
        assert!(f.render().contains("critical path"));
    }
}
