//! Fig. 8: overall system comparison — RCMP vs Hadoop REPL-2/REPL-3 vs
//! OPTIMISTIC, on both clusters, under (a) no failure, (b) a single
//! failure early (job 2), (c) a single failure late (job 7).
//!
//! Shapes reproduced: failure-free REPL-2 ≈ 1.3x and REPL-3 ≈ 1.65–2x
//! slower than RCMP; under failures RCMP (split) stays fastest; the
//! SPLIT/NO-SPLIT gap grows when the failure is late (more
//! recomputation runs); OPTIMISTIC collapses on late failures (≈2.2x).

use crate::figures::{paper_scenarios, Scenario};
use crate::table;
use rcmp_core::Strategy;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt};
use serde::{Deserialize, Serialize};

/// Which Fig.-8 panel to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailCase {
    /// Fig. 8a.
    None,
    /// Fig. 8b: failure 15 s into job 2.
    Early,
    /// Fig. 8c: failure 15 s into job 7.
    Late,
}

impl FailCase {
    pub fn label(&self) -> &'static str {
        match self {
            FailCase::None => "8a (no failure)",
            FailCase::Early => "8b (failure at job 2)",
            FailCase::Late => "8c (failure at job 7)",
        }
    }

    fn failures(&self, victim: u32) -> Vec<FailureAt> {
        match self {
            FailCase::None => vec![],
            FailCase::Early => vec![FailureAt::at_job(2, victim)],
            FailCase::Late => vec![FailureAt::at_job(7, victim)],
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig08Row {
    pub strategy: String,
    /// `(scenario, total_seconds, slowdown_vs_fastest)`.
    pub cells: Vec<(String, f64, f64)>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig08Result {
    pub case: String,
    pub rows: Vec<Fig08Row>,
}

fn strategies(case: FailCase, split: u32) -> Vec<(String, Strategy)> {
    let mut v = vec![
        ("RCMP SPLIT".to_string(), Strategy::rcmp_split(split)),
        ("RCMP NO-SPLIT".to_string(), Strategy::rcmp_no_split()),
        (
            "HADOOP REPL-2".to_string(),
            Strategy::Replication { factor: 2 },
        ),
        (
            "HADOOP REPL-3".to_string(),
            Strategy::Replication { factor: 3 },
        ),
        ("OPTIMISTIC".to_string(), Strategy::Optimistic),
    ];
    if case == FailCase::Late {
        // The §V-B text: hybrid (replicate every 5th job, factor 2)
        // would appear at 0.93 for STIC SLOTS 1-1.
        v.push((
            "HYBRID k=5".to_string(),
            Strategy::Hybrid {
                split: rcmp_core::SplitPolicy::Fixed(split),
                every_k: 5,
                factor: 2,
                reclaim: false,
            },
        ));
    }
    v
}

/// Runs one Fig.-8 panel over the given scenarios. The strategy ×
/// scenario grid is embarrassingly parallel, so the simulations run on
/// the rayon pool.
pub fn run_with(case: FailCase, scenarios: &[Scenario]) -> Fig08Result {
    use rayon::prelude::*;
    let grid: Vec<(String, String, rcmp_core::Strategy, Scenario)> = scenarios
        .iter()
        .flat_map(|scenario| {
            strategies(case, scenario.split)
                .into_iter()
                .map(move |(name, strategy)| {
                    (name, scenario.name.to_string(), strategy, scenario.clone())
                })
        })
        .collect();
    let cells: Vec<(String, String, f64)> = grid
        .into_par_iter()
        .map(|(name, scen_name, strategy, scenario)| {
            let victim = scenario.wl.nodes - 1;
            let cfg = ChainSimConfig::new(scenario.hw.clone(), scenario.wl.clone(), strategy)
                .with_failures(case.failures(victim));
            let rep = simulate_chain(&cfg);
            (name, scen_name, rep.total_time)
        })
        .collect();
    let mut totals: Vec<Vec<(String, f64)>> = Vec::new();
    let mut names: Vec<String> = Vec::new();
    for (name, scen, secs) in cells {
        if !names.contains(&name) {
            names.push(name.clone());
            totals.push(Vec::new());
        }
        let idx = names.iter().position(|n| *n == name).unwrap();
        totals[idx].push((scen, secs));
    }
    // Normalize each scenario column to its fastest strategy.
    let num_scen = scenarios.len();
    let mut rows = Vec::new();
    for (name, cells) in names.iter().zip(&totals) {
        let mut out_cells = Vec::new();
        for s in 0..num_scen {
            let (scen, secs) = &cells[s];
            let fastest = totals.iter().map(|c| c[s].1).fold(f64::INFINITY, f64::min);
            out_cells.push((scen.clone(), *secs, secs / fastest));
        }
        rows.push(Fig08Row {
            strategy: name.clone(),
            cells: out_cells,
        });
    }
    Fig08Result {
        case: case.label().to_string(),
        rows,
    }
}

/// Runs a panel on the paper's full-scale scenarios.
pub fn run(case: FailCase) -> Fig08Result {
    run_with(case, &paper_scenarios())
}

impl Fig08Result {
    pub fn render(&self) -> String {
        let mut header = vec!["strategy".to_string()];
        if let Some(first) = self.rows.first() {
            for (scen, _, _) in &first.cells {
                header.push(format!("{scen} (slowdown)"));
            }
        }
        let mut rows = vec![header];
        for r in &self.rows {
            let mut row = vec![r.strategy.clone()];
            for (_, secs, slow) in &r.cells {
                row.push(format!("{} ({})", table::secs(*secs), table::factor(*slow)));
            }
            rows.push(row);
        }
        format!("Fig. {} \n{}", self.case, table::render(&rows))
    }

    /// Slowdown of `strategy` in scenario index `s`.
    pub fn slowdown(&self, strategy: &str, s: usize) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.strategy == strategy)
            .and_then(|r| r.cells.get(s))
            .map(|c| c.2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figures::quick_scenarios;

    #[test]
    fn fig8a_replication_ordering() {
        let r = run_with(FailCase::None, &quick_scenarios());
        for s in 0..3 {
            let rcmp = r.slowdown("RCMP SPLIT", s).unwrap();
            let repl2 = r.slowdown("HADOOP REPL-2", s).unwrap();
            let repl3 = r.slowdown("HADOOP REPL-3", s).unwrap();
            let opt = r.slowdown("OPTIMISTIC", s).unwrap();
            assert!(rcmp <= 1.0 + 1e-9, "RCMP is the fastest baseline");
            assert!((opt - rcmp).abs() < 0.01, "OPTIMISTIC == RCMP w/o failures");
            assert!(repl2 > 1.1, "REPL-2 noticeably slower: {repl2}");
            assert!(repl3 > repl2, "REPL-3 worse than REPL-2");
            assert!(repl3 < 3.0, "but not absurdly so: {repl3}");
        }
    }

    #[test]
    fn fig8c_optimistic_collapses_and_split_wins() {
        let r = run_with(FailCase::Late, &quick_scenarios());
        for s in 0..3 {
            let split = r.slowdown("RCMP SPLIT", s).unwrap();
            let no_split = r.slowdown("RCMP NO-SPLIT", s).unwrap();
            let opt = r.slowdown("OPTIMISTIC", s).unwrap();
            assert!(split <= no_split + 1e-9, "splitting helps late failures");
            assert!(opt > 1.5, "late OPTIMISTIC ≈ 2x: {opt}");
        }
    }

    #[test]
    fn fig8b_rcmp_beats_all_non_rcmp_strategies() {
        // With an early failure only one recomputation runs, so SPLIT
        // and NO-SPLIT are near-ties (as in the paper's Fig. 8b); the
        // robust claim is that RCMP beats every non-RCMP strategy.
        let r = run_with(FailCase::Early, &quick_scenarios());
        for s in 0..3 {
            let split = r.slowdown("RCMP SPLIT", s).unwrap();
            for other in ["HADOOP REPL-2", "HADOOP REPL-3", "OPTIMISTIC"] {
                assert!(
                    split < r.slowdown(other, s).unwrap(),
                    "scenario {s}: RCMP SPLIT {split} !< {other}"
                );
            }
            assert!(split < 1.05, "RCMP within 5% of the fastest: {split}");
        }
        assert!(r.render().contains("RCMP SPLIT"));
    }
}
