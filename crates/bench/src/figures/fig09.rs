//! Fig. 9: double failures on STIC (10 nodes, SLOTS 1-1) — RCMP with
//! split 8 (S8) and without (NO) vs Hadoop REPL-3.
//!
//! `FAIL X,Y` injects one failure at run X and one at run Y of RCMP's
//! run numbering (recomputations get fresh numbers, so FAIL 7,14 hits
//! the restarted job 7 after recovery; FAIL 4,7 is the nested case —
//! the second failure lands while recovery from the first is still in
//! progress). Hadoop always runs 7 jobs, so its injections map to jobs
//! 2 or 7 (§V-A).

use crate::table;
use rcmp_core::Strategy;
use rcmp_model::SlotConfig;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use serde::{Deserialize, Serialize};

/// The paper's five double-failure scenarios.
pub const SCENARIOS: [(u64, u64); 5] = [(2, 2), (7, 7), (7, 14), (2, 4), (4, 7)];

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig09Row {
    pub fail: (u64, u64),
    /// `(strategy, total_seconds, slowdown_vs_best_in_row)`.
    pub cells: Vec<(String, f64, f64)>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig09Result {
    pub rows: Vec<Fig09Row>,
}

fn workload(scale_down: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / scale_down.max(1);
    wl
}

/// Runs Fig. 9. `scale_down` divides the per-node input (1 = paper
/// scale) so tests and Criterion runs stay quick.
pub fn run_scaled(scale_down: u64) -> Fig09Result {
    let wl = workload(scale_down);
    let hw = HwProfile::stic();
    let n = wl.nodes;
    let strategies: Vec<(String, Strategy)> = vec![
        ("RCMP S8".into(), Strategy::rcmp_split(8)),
        ("RCMP NO".into(), Strategy::rcmp_no_split()),
        ("HADOOP REPL-3".into(), Strategy::Replication { factor: 3 }),
    ];
    let mut rows = Vec::new();
    for (x, y) in SCENARIOS {
        let mut cells = Vec::new();
        for (name, strategy) in &strategies {
            let is_repl = matches!(strategy, Strategy::Replication { .. });
            // Hadoop's run numbering never exceeds the chain length.
            let (fx, fy) = if is_repl {
                (x.min(7), y.min(7))
            } else {
                (x, y)
            };
            let failures = vec![
                FailureAt::at_job(fx, n - 1),
                FailureAt {
                    seq: fy,
                    // Same-run second failure arrives 15 s after the first.
                    offset: if fx == fy { 30.0 } else { 15.0 },
                    node: n - 2,
                },
            ];
            let cfg =
                ChainSimConfig::new(hw.clone(), wl.clone(), *strategy).with_failures(failures);
            let rep = simulate_chain(&cfg);
            cells.push((name.clone(), rep.total_time, 0.0));
        }
        let best = cells.iter().map(|c| c.1).fold(f64::INFINITY, f64::min);
        for c in &mut cells {
            c.2 = c.1 / best;
        }
        rows.push(Fig09Row {
            fail: (x, y),
            cells,
        });
    }
    Fig09Result { rows }
}

/// Paper-scale run.
pub fn run() -> Fig09Result {
    run_scaled(1)
}

impl Fig09Result {
    pub fn render(&self) -> String {
        let mut header = vec!["FAIL X,Y".to_string()];
        if let Some(first) = self.rows.first() {
            for (name, _, _) in &first.cells {
                header.push(format!("{name} (slowdown)"));
            }
        }
        let mut rows = vec![header];
        for r in &self.rows {
            let mut row = vec![format!("FAIL {},{}", r.fail.0, r.fail.1)];
            for (_, secs, slow) in &r.cells {
                row.push(format!("{} ({})", table::secs(*secs), table::factor(*slow)));
            }
            rows.push(row);
        }
        format!(
            "Fig. 9 — double failures, STIC SLOTS 1-1\n{}",
            table::render(&rows)
        )
    }

    pub fn time_of(&self, fail: (u64, u64), strategy: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.fail == fail)
            .and_then(|r| r.cells.iter().find(|c| c.0 == strategy))
            .map(|c| c.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_beats_repl3_in_every_scenario() {
        let r = run_scaled(8);
        for row in &r.rows {
            let s8 = row.cells.iter().find(|c| c.0 == "RCMP S8").unwrap().1;
            let repl3 = row.cells.iter().find(|c| c.0 == "HADOOP REPL-3").unwrap().1;
            assert!(
                s8 <= repl3 * 1.05,
                "FAIL {:?}: RCMP S8 {} vs REPL-3 {}",
                row.fail,
                s8,
                repl3
            );
        }
    }

    #[test]
    fn splitting_helps_most_when_failures_are_late() {
        let r = run_scaled(8);
        let gain = |fail| {
            let s8 = r.time_of(fail, "RCMP S8").unwrap();
            let no = r.time_of(fail, "RCMP NO").unwrap();
            no / s8
        };
        // FAIL 7,14 triggers the most recomputation → biggest benefit.
        assert!(
            gain((7, 14)) >= gain((2, 4)) * 0.95,
            "late-failure split gain {} vs early {}",
            gain((7, 14)),
            gain((2, 4))
        );
    }

    #[test]
    fn nested_case_completes() {
        let r = run_scaled(8);
        assert!(r.time_of((4, 7), "RCMP S8").unwrap() > 0.0);
        assert!(r.render().contains("FAIL 4,7"));
    }
}
