//! BENCH: closed-loop adaptive resilience (the `resilience`
//! pseudo-figure).
//!
//! Sweeps failure intensity and compares the expected chain completion
//! time of every fixed replication cadence (k ∈ {1, 2, 4, 8, ∞}) with
//! the closed-loop adaptive policy, under the cost model both the
//! engine driver and the simulator execute (`rcmp_policy::adapt`). The
//! model's per-job costs are *calibrated from the simulator* — mean
//! job time, replication-point cost, detection stall — so the sweep's
//! seconds are sim-grounded rather than invented. Because the adaptive
//! policy places its cadence at the argmin of the same model, adaptive
//! ≤ every fixed k at every rate, by construction; the sweep documents
//! the margin.
//!
//! A second block runs the closed loop end-to-end in the simulator
//! (`Strategy::AdaptiveHybrid`) against fixed cadences under scripted
//! failure schedules, as an integration spot-check.

use rcmp_core::strategy::{SplitPolicy, Strategy};
use rcmp_obs::PhaseKind;
use rcmp_policy::{expected_chain_time, optimal_interval, AdaptConfig};
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use serde::{Deserialize, Serialize};

/// Fixed cadences the sweep compares against (None = never replicate).
pub const FIXED_KS: [Option<u32>; 5] = [Some(1), Some(2), Some(4), Some(8), None];

/// Expected completion time of each cadence at one failure rate.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceRow {
    /// Per-job failure probability.
    pub rate: f64,
    /// Expected chain seconds for each entry of [`FIXED_KS`], in order
    /// (`k=1, 2, 4, 8, ∞`).
    pub fixed_secs: Vec<f64>,
    /// Expected chain seconds at the adaptive policy's argmin cadence.
    pub adaptive_secs: f64,
    /// The cadence the adaptive policy converges to at this rate.
    pub adaptive_interval: Option<u32>,
}

/// Measured recovery-time decomposition of one spot run, projected
/// through the engine's 14-phase schema (`SimChainReport::
/// phase_breakdown`) — the Fig.-7-style "where did the recovery
/// seconds go" split, from measurement rather than the cost model.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct RecoveryDecomposition {
    /// Simulated microseconds inside recomputation runs.
    pub recompute_us: u64,
    /// Simulated microseconds in seeded retry backoff.
    pub backoff_us: u64,
    /// Recovery plans drawn up.
    pub plans: u64,
}

/// One end-to-end simulator run of a strategy under a scripted
/// failure schedule.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimSpotRow {
    /// Approximate per-job failure rate the schedule encodes.
    pub rate: f64,
    /// Strategy label (`k=2`, `adaptive`, ...).
    pub strategy: String,
    /// Simulated chain completion seconds.
    pub total_secs: f64,
    /// Replication points placed.
    pub replication_points: usize,
    /// Final interval the adaptive loop settled on (adaptive rows).
    pub final_interval: Option<u32>,
    /// Measured recovery-time decomposition of this run.
    #[serde(default)]
    pub recovery: RecoveryDecomposition,
}

/// The full resilience benchmark result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ResilienceResult {
    /// Chain length the sweep models.
    pub jobs: u32,
    /// Sim-calibrated mean job seconds (the model's time unit).
    pub mean_job_secs: f64,
    /// Sim-calibrated cost of one replication point, in job units.
    pub replicate_cost: f64,
    /// Sim-calibrated failure-detection stall, in job units.
    pub detect_cost: f64,
    /// The analytic sweep: adaptive vs every fixed cadence.
    pub rows: Vec<ResilienceRow>,
    /// End-to-end simulator spot-checks.
    pub sim_spot: Vec<SimSpotRow>,
}

fn wl(scale: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(rcmp_model::SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / scale.max(1);
    wl.jobs = 12;
    wl
}

fn hybrid(every_k: u32) -> Strategy {
    Strategy::Hybrid {
        split: SplitPolicy::None,
        every_k,
        factor: 2,
        reclaim: false,
    }
}

/// Calibrates the adaptive cost model from two clean simulator runs:
/// a never-replicating baseline (mean job time) and an every-job
/// cadence (per-point replication cost).
fn calibrate(scale: u64) -> (f64, AdaptConfig) {
    let hw = HwProfile::stic();
    let wl = wl(scale);
    let clean = simulate_chain(&ChainSimConfig::new(hw.clone(), wl.clone(), hybrid(0)));
    let every = simulate_chain(&ChainSimConfig::new(hw.clone(), wl.clone(), hybrid(1)));
    let mean_job = clean.total_time / f64::from(wl.jobs);
    let replicate = (every.total_time - clean.total_time).max(0.0) / f64::from(wl.jobs);
    let mut cfg = AdaptConfig::default_for(wl.nodes);
    cfg.horizon = wl.jobs;
    cfg.replicate_cost = replicate / mean_job;
    // Failure accounting in the sim: 15 s offset wasted + detection
    // stall, then the cascade re-runs roughly half the span back to
    // the last replication point (captured by the model's (k+1)/2
    // term with a one-job recompute cost).
    cfg.detect_cost = (15.0 + hw.detect_timeout) / mean_job;
    cfg.recompute_cost = 1.0;
    (mean_job, cfg)
}

/// Deterministic failure schedule approximating per-job rate `rate`:
/// `round(rate × jobs)` node kills, evenly spaced over the chain's
/// initial runs, cycling over nodes. Kills are capped at 2 — the
/// external input is replicated 3×, so no schedule can make the chain
/// unrecoverable (the chaos-soak convention).
fn schedule_for(rate: f64, jobs: u32, nodes: u32) -> Vec<FailureAt> {
    let count = ((rate * f64::from(jobs)).round() as u32)
        .min(jobs / 2)
        .min(2);
    if count == 0 {
        return Vec::new();
    }
    let stride = (jobs / (count + 1)).max(1);
    (1..=count)
        .map(|i| FailureAt::at_job(u64::from(i * stride + 1), i % nodes))
        .collect()
}

fn spot_run(rate: f64, label: &str, strategy: Strategy, scale: u64) -> SimSpotRow {
    let wl = wl(scale);
    let failures = schedule_for(rate, wl.jobs, wl.nodes);
    let cfg = ChainSimConfig::new(HwProfile::stic(), wl, strategy).with_failures(failures);
    let rep = simulate_chain(&cfg);
    let points = rep
        .events
        .iter()
        .filter(|e| matches!(e, rcmp_sim::SimEvent::ReplicationPoint { .. }))
        .count();
    let phases = rep.phase_breakdown();
    SimSpotRow {
        rate,
        strategy: label.to_string(),
        total_secs: rep.total_time,
        replication_points: points,
        final_interval: rep.adaptation.last().and_then(|s| s.interval),
        recovery: RecoveryDecomposition {
            recompute_us: phases.total_us(PhaseKind::RecomputeWave),
            backoff_us: phases.total_us(PhaseKind::RetryBackoff),
            plans: phases.entries[PhaseKind::RecoveryPlanning.index()].count,
        },
    }
}

/// Runs the benchmark. `scale` shrinks the calibration workload
/// (`--quick` passes 8).
pub fn run_scaled(scale: u64) -> ResilienceResult {
    let (mean_job, cfg) = calibrate(scale);
    let jobs = cfg.horizon;
    let rates = [0.001, 0.005, 0.02, 0.05, 0.1, 0.2, 0.4];

    let rows = rates
        .iter()
        .map(|&rate| {
            let fixed_secs: Vec<f64> = FIXED_KS
                .iter()
                .map(|&k| expected_chain_time(k, rate, jobs, &cfg) * mean_job)
                .collect();
            let best = optimal_interval(rate, jobs, &cfg);
            ResilienceRow {
                rate,
                fixed_secs,
                adaptive_secs: expected_chain_time(best, rate, jobs, &cfg) * mean_job,
                adaptive_interval: best,
            }
        })
        .collect();

    let adaptive = Strategy::AdaptiveHybrid {
        split: SplitPolicy::None,
        factor: 2,
        adapt: cfg,
        reclaim: false,
    };
    let mut sim_spot = Vec::new();
    for &rate in &[0.08, 0.25] {
        for &k in &[2u32, 4] {
            sim_spot.push(spot_run(rate, &format!("k={k}"), hybrid(k), scale));
        }
        sim_spot.push(spot_run(rate, "k=inf", hybrid(0), scale));
        sim_spot.push(spot_run(rate, "adaptive", adaptive, scale));
    }

    ResilienceResult {
        jobs,
        mean_job_secs: mean_job,
        replicate_cost: cfg.replicate_cost,
        detect_cost: cfg.detect_cost,
        rows,
        sim_spot,
    }
}

fn fmt_k(k: Option<u32>) -> String {
    k.map_or_else(|| "inf".to_string(), |v| v.to_string())
}

impl ResilienceResult {
    /// ASCII table of the sweep and the sim spot-checks.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "BENCH resilience: adaptive cadence vs fixed k (expected chain seconds)\n",
        );
        out.push_str(&format!(
            "jobs={} mean_job={:.1}s replicate_cost={:.3} detect_cost={:.3}\n",
            self.jobs, self.mean_job_secs, self.replicate_cost, self.detect_cost
        ));
        out.push_str("rate    | k=1      k=2      k=4      k=8      k=inf    | adaptive (k)\n");
        for row in &self.rows {
            let fixed: Vec<String> = row.fixed_secs.iter().map(|s| format!("{s:8.1}")).collect();
            out.push_str(&format!(
                "{:<7} | {} | {:8.1} (k={})\n",
                row.rate,
                fixed.join(" "),
                row.adaptive_secs,
                fmt_k(row.adaptive_interval),
            ));
        }
        out.push_str("\nsim spot-checks (scripted failures, end-to-end):\n");
        out.push_str(
            "rate  | strategy  | total s  | points | final k | recompute s | backoff s | plans\n",
        );
        for s in &self.sim_spot {
            out.push_str(&format!(
                "{:<5} | {:<9} | {:8.1} | {:>6} | {:<7} | {:>11.1} | {:>9.2} | {:>5}\n",
                s.rate,
                s.strategy,
                s.total_secs,
                s.replication_points,
                s.final_interval
                    .map_or_else(|| "-".to_string(), |k| k.to_string()),
                s.recovery.recompute_us as f64 / 1e6,
                s.recovery.backoff_us as f64 / 1e6,
                s.recovery.plans,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adaptive_dominates_every_fixed_cadence() {
        let r = run_scaled(8);
        for row in &r.rows {
            for (i, &fixed) in row.fixed_secs.iter().enumerate() {
                assert!(
                    row.adaptive_secs <= fixed + 1e-9,
                    "rate {}: adaptive {} > fixed {:?} {}",
                    row.rate,
                    row.adaptive_secs,
                    FIXED_KS[i],
                    fixed
                );
            }
        }
    }

    #[test]
    fn interval_tightens_as_rate_rises() {
        let r = run_scaled(8);
        let ks: Vec<Option<u32>> = r.rows.iter().map(|row| row.adaptive_interval).collect();
        // Monotone non-increasing cadence (None = ∞ sorts loosest).
        let as_val = |k: Option<u32>| k.map_or(u64::MAX, u64::from);
        for pair in ks.windows(2) {
            assert!(
                as_val(pair[1]) <= as_val(pair[0]),
                "interval loosened as rate rose: {ks:?}"
            );
        }
    }

    #[test]
    fn spot_runs_carry_measured_recovery_decomposition() {
        let r = run_scaled(8);
        // The high-rate schedules inject failures, so at least one spot
        // run must have measured recompute time and a recovery plan.
        assert!(
            r.sim_spot
                .iter()
                .any(|s| s.recovery.recompute_us > 0 && s.recovery.plans > 0),
            "no spot run measured any recovery work: {:?}",
            r.sim_spot
        );
    }

    #[test]
    fn sim_spot_adaptive_is_competitive() {
        let r = run_scaled(8);
        for &rate in &[0.08, 0.25] {
            let group: Vec<&SimSpotRow> = r.sim_spot.iter().filter(|s| s.rate == rate).collect();
            let adaptive = group
                .iter()
                .find(|s| s.strategy == "adaptive")
                .expect("adaptive row");
            let best_fixed = group
                .iter()
                .filter(|s| s.strategy != "adaptive")
                .map(|s| s.total_secs)
                .fold(f64::INFINITY, f64::min);
            assert!(
                adaptive.total_secs <= best_fixed * 1.25,
                "rate {rate}: adaptive {} not competitive with best fixed {best_fixed}",
                adaptive.total_secs
            );
        }
    }
}
