//! BENCH: in-memory chain execution (the `chain` pseudo-figure,
//! ISSUE 10).
//!
//! The paper's 7-job STIC chain, three ways: the plain DFS read path
//! (`uncached`), the memory-budgeted inter-job cache with the `stable`
//! placement kernel (`cached`), and the cache with a budget smaller
//! than a single partition (`tiny-budget`) — the degradation floor
//! where every commit spills through and behaviour must collapse back
//! to the uncached baseline exactly.
//!
//! Columns per variant: fault-free and failure-injected chain seconds,
//! cache hits and their node-local percentage, bytes served from
//! memory, bytes read from the DFS, and bytes moved over the network.
//! The acceptance gate holds the cached fault-free chain strictly
//! faster than the uncached one with at least [`GATE_LOCAL_PCT`]%
//! node-local hits; `fig_runner chain` exits non-zero when it fails.

use rcmp_core::strategy::Strategy;
use rcmp_model::{ByteSize, PlacementKernel};
use rcmp_model::SlotConfig;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, SimChainReport, WorkloadCfg};
use serde::{Deserialize, Serialize};

/// Minimum node-local share of cache hits the gate demands on a
/// stable (failure-free) topology.
pub const GATE_LOCAL_PCT: f64 = 90.0;

/// One variant of the chain (a row block of `BENCH_chain.json`).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChainRow {
    /// `uncached`, `cached` or `tiny-budget`.
    pub variant: String,
    /// Placement kernel label the variant ran under.
    pub kernel: String,
    /// Cache budget (`-` when the cache is off).
    pub budget: String,
    /// Fault-free 7-job chain seconds.
    pub clean_secs: f64,
    /// Chain seconds with a node kill at job 4 (recomputation path).
    pub failed_secs: f64,
    /// Map-input reads served from the cache (fault-free chain).
    pub cache_hits: u64,
    /// Node-local percentage of those hits.
    pub cache_local_pct: f64,
    /// Bytes served out of memory instead of the DFS.
    pub cache_read_bytes: u64,
    /// Map-input bytes that still went to the DFS (disk).
    pub dfs_read_bytes: u64,
    /// Bytes crossing the network (remote map inputs + remote shuffle).
    pub net_bytes_moved: u64,
}

/// The full chain benchmark result.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ChainResult {
    pub rows: Vec<ChainRow>,
    /// Fault-free speedup of `cached` over `uncached`, percent.
    pub speedup_pct: f64,
    /// `cached` strictly faster than `uncached` fault-free, with at
    /// least [`GATE_LOCAL_PCT`]% node-local hits, and `tiny-budget`
    /// serving zero hits.
    pub gate_passed: bool,
}

fn workload(scale: u64) -> WorkloadCfg {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.per_node_input = wl.per_node_input / scale.max(1);
    wl
}

fn row_from(variant: &str, kernel: PlacementKernel, budget: &str, clean: &SimChainReport, failed: &SimChainReport) -> ChainRow {
    let mut hits = 0u64;
    let mut local = 0u64;
    let mut cache_bytes = 0u64;
    let mut input_bytes = 0u64;
    let mut net = 0u64;
    for r in &clean.runs {
        hits += r.cache_hits;
        local += r.cache_hits_local;
        cache_bytes += r.cache_read_bytes;
        input_bytes += r.io.map_input_local + r.io.map_input_remote;
        net += r.io.map_input_remote + r.io.shuffle_remote;
    }
    ChainRow {
        variant: variant.to_string(),
        kernel: kernel.label(),
        budget: budget.to_string(),
        clean_secs: clean.total_time,
        failed_secs: failed.total_time,
        cache_hits: hits,
        cache_local_pct: if hits == 0 {
            0.0
        } else {
            100.0 * local as f64 / hits as f64
        },
        cache_read_bytes: cache_bytes,
        dfs_read_bytes: input_bytes.saturating_sub(cache_bytes),
        net_bytes_moved: net,
    }
}

fn run_one(
    variant: &str,
    kernel: PlacementKernel,
    budget: Option<ByteSize>,
    scale: u64,
) -> ChainRow {
    let mut cfg = ChainSimConfig::new(
        HwProfile::stic(),
        workload(scale),
        Strategy::rcmp_split(8),
    )
    .with_placement(kernel);
    if let Some(b) = budget {
        cfg = cfg.with_chain_cache(b);
    }
    let clean = simulate_chain(&cfg);
    let failed = simulate_chain(&cfg.with_failures(vec![FailureAt::at_job(4, 3)]));
    let label = budget.map_or_else(|| "-".to_string(), |b| format!("{b:?}"));
    row_from(variant, kernel, &label, &clean, &failed)
}

/// Runs the benchmark. `scale` shrinks per-node input (`--quick`
/// passes 8) but keeps the 7-job chain and the 10-node width.
pub fn run_scaled(scale: u64) -> ChainResult {
    // Budget sized for two full 40 GB job outputs resident at once:
    // the pinned input file plus the committing output.
    let rows = vec![
        run_one("uncached", PlacementKernel::Default, None, scale),
        run_one(
            "cached",
            PlacementKernel::Stable,
            Some(ByteSize::gib(96)),
            scale,
        ),
        // Smaller than any single partition at every scale this runs
        // at: nothing is ever admitted, every commit spills through.
        run_one(
            "tiny-budget",
            PlacementKernel::Stable,
            Some(ByteSize::mib(64)),
            scale,
        ),
    ];
    let (uncached, cached, tiny) = (&rows[0], &rows[1], &rows[2]);
    let speedup_pct = if uncached.clean_secs > 0.0 {
        100.0 * (uncached.clean_secs - cached.clean_secs) / uncached.clean_secs
    } else {
        0.0
    };
    let gate_passed = cached.clean_secs < uncached.clean_secs
        && cached.cache_local_pct >= GATE_LOCAL_PCT
        && tiny.cache_hits == 0;
    ChainResult {
        rows,
        speedup_pct,
        gate_passed,
    }
}

impl ChainResult {
    /// ASCII table, one row per variant.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "BENCH chain: in-memory chain execution (7-job STIC chain)\n\
             variant     | kernel  | clean s  | failed s | hits  | local % | mem GB | dfs GB | net GB\n",
        );
        let gb = |b: u64| b as f64 / (1u64 << 30) as f64;
        for r in &self.rows {
            out.push_str(&format!(
                "{:<11} | {:<7} | {:8.1} | {:8.1} | {:>5} | {:7.1} | {:6.1} | {:6.1} | {:6.1}\n",
                r.variant,
                r.kernel,
                r.clean_secs,
                r.failed_secs,
                r.cache_hits,
                r.cache_local_pct,
                gb(r.cache_read_bytes),
                gb(r.dfs_read_bytes),
                gb(r.net_bytes_moved),
            ));
        }
        out.push_str(&format!(
            "\nfault-free speedup: {:.1}%  gate(cached faster, local >= {:.0}%, tiny spills through): {}\n",
            self.speedup_pct,
            GATE_LOCAL_PCT,
            if self.gate_passed { "PASS" } else { "FAIL" }
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_passes_at_quick_scale() {
        let r = run_scaled(8);
        assert!(r.gate_passed, "{}", r.render());
        assert!(r.speedup_pct > 0.0);
        let cached = &r.rows[1];
        assert!(cached.cache_hits > 0);
        assert!(
            cached.cache_local_pct >= GATE_LOCAL_PCT,
            "local {}%",
            cached.cache_local_pct
        );
        // Memory reads displace DFS reads one-for-one.
        assert!(cached.dfs_read_bytes < r.rows[0].dfs_read_bytes);
    }

    #[test]
    fn tiny_budget_is_exactly_the_uncached_baseline() {
        let r = run_scaled(8);
        let (uncached, tiny) = (&r.rows[0], &r.rows[2]);
        assert_eq!(tiny.cache_hits, 0, "sub-partition budget must never hit");
        // With an empty cache the stable kernel degrades to the default
        // claim chain, so the two variants are the *same* simulation.
        assert!(
            (tiny.clean_secs - uncached.clean_secs).abs() < 1e-9,
            "spill-through drifted from the uncached baseline: {} vs {}",
            tiny.clean_secs,
            uncached.clean_secs
        );
        assert_eq!(tiny.dfs_read_bytes, uncached.dfs_read_bytes);
    }

    #[test]
    fn failure_still_recomputes_under_cache() {
        let r = run_scaled(8);
        for row in &r.rows {
            assert!(
                row.failed_secs > row.clean_secs,
                "{}: the job-4 kill must cost time",
                row.variant
            );
        }
    }
}
