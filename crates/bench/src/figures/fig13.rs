//! Fig. 13: speed-up from recomputing with fewer reducer waves (§V-D).
//!
//! The initial run computes 10/20/40 reducers with 1 reducer slot per
//! node (1/2/4 waves); recomputation regenerates the failed node's
//! share (1/2/4 reducers — one wave). No map outputs are reused, to
//! isolate the reduce phase. Shape reproduced: SLOW SHUFFLE speed-up
//! grows linearly with the wave ratio (every wave costs the same, delay
//! dominated); FAST SHUFFLE grows sub-linearly (the first wave — which
//! includes the map phase — is the expensive one).

use crate::table;
use rcmp_model::SlotConfig;
use rcmp_sim::jobsim::RecomputeSpec;
use rcmp_sim::{HwProfile, JobSim, SimState, WorkloadCfg};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig13Point {
    /// Reducer waves in the initial run (recomputation always uses 1).
    pub initial_waves: u32,
    pub fast_speedup: f64,
    pub slow_speedup: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig13Result {
    pub points: Vec<Fig13Point>,
}

fn speedup(hw: &HwProfile, reducers: u32, scale_down: u64) -> f64 {
    let mut wl = WorkloadCfg::stic(SlotConfig::ONE_ONE);
    wl.num_reducers = reducers;
    wl.per_node_input = wl.per_node_input / scale_down.max(1);
    let n = wl.nodes;
    let js = JobSim::new(hw.clone(), wl.clone());
    let mut state = SimState::new(&wl);
    let initial = js.run_full(&mut state, 1, 1, true).unwrap();
    assert_eq!(initial.reduce_waves, reducers / n);
    // Recompute the failed node's reducers (reducers/N of them), all
    // mappers re-executed (no reuse — §V-D).
    state.fail_node(n - 1);
    let lost = state.files[&1].lost_partitions(&state);
    let mut spec = RecomputeSpec::new(lost.iter().copied(), 1);
    spec.reuse_map_outputs = false;
    let rec = js.run_recompute(&mut state, 1, &spec, true).unwrap();
    assert_eq!(rec.reduce_waves, 1, "recomputed reducers fit one wave");
    initial.duration / rec.duration
}

/// Runs the sweep. `scale_down` divides per-node input.
pub fn run_scaled(scale_down: u64) -> Fig13Result {
    let fast = HwProfile::stic();
    let slow = HwProfile::stic().with_slow_shuffle();
    let points = [10u32, 20, 40]
        .into_iter()
        .map(|r| Fig13Point {
            initial_waves: r / 10,
            fast_speedup: speedup(&fast, r, scale_down),
            slow_speedup: speedup(&slow, r, scale_down),
        })
        .collect();
    Fig13Result { points }
}

/// Paper-scale run.
pub fn run() -> Fig13Result {
    run_scaled(1)
}

impl Fig13Result {
    pub fn render(&self) -> String {
        let mut rows = vec![vec![
            "initial:recompute waves".to_string(),
            "FAST SHUFFLE".to_string(),
            "SLOW SHUFFLE".to_string(),
        ]];
        for p in &self.points {
            rows.push(vec![
                format!("{}:1", p.initial_waves),
                table::factor(p.fast_speedup),
                table::factor(p.slow_speedup),
            ]);
        }
        format!(
            "Fig. 13 — speed-up from fewer reducer waves during recomputation\n{}",
            table::render(&rows)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slow_scales_linearly_fast_sublinearly() {
        let r = run_scaled(4);
        let p1 = &r.points[0]; // 1:1
        let p2 = &r.points[1]; // 2:1
        let p4 = &r.points[2]; // 4:1
                               // Both monotone in the wave ratio.
        assert!(p4.slow_speedup > p2.slow_speedup && p2.slow_speedup > p1.slow_speedup);
        assert!(p4.fast_speedup >= p2.fast_speedup && p2.fast_speedup >= p1.fast_speedup);
        // SLOW grows ~linearly: quadrupling waves ≳ 2.5x the 1:1 speed-up.
        let slow_gain = p4.slow_speedup / p1.slow_speedup;
        assert!(slow_gain > 2.2, "SLOW gain 4:1 vs 1:1 = {slow_gain}");
        // FAST grows sub-linearly: well below 4x.
        let fast_gain = p4.fast_speedup / p1.fast_speedup;
        assert!(
            fast_gain < slow_gain,
            "fast {fast_gain} vs slow {slow_gain}"
        );
        assert!(fast_gain < 3.0, "FAST gain must be sub-linear: {fast_gain}");
        assert!(r.render().contains("4:1"));
    }
}
