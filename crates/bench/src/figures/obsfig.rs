//! BENCH: telemetry overhead budget (the `obs` pseudo-figure).
//!
//! A/B-measures the production telemetry tier on the 4800-task DCO
//! wave (Fig. 11's largest cluster, the acceptance shape): the same
//! wave runs once with telemetry *off* (a disabled [`FlightRecorder`],
//! no tracer/metrics/profiler attached to the reactor, no per-task
//! instrumentation) and once with the *full* tier on — always-on
//! flight-recorder events per task, phase-profiler attribution,
//! reactor poll/park accounting and exec metrics. The configurations
//! are interleaved and best-of-N timed, and the gate asserts the full
//! tier costs less than the 5% wall-clock budget. The recorder's own
//! sampled self-measurement (ns per record call, drop accounting,
//! bytes retained) rides along in the JSON.

use rcmp_exec::{AsyncExecutor, Executor, SlotTask, TaskCtx, WaveSpec};
use rcmp_model::ClusterConfig;
use rcmp_obs::{
    Clock, EventCode, FlightRecorder, MetricsRegistry, PhaseKind, PhaseProfiler, RecorderStats,
    Tracer,
};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wall-clock budget the full telemetry tier must stay under, percent.
pub const BUDGET_PCT: f64 = 5.0;

/// The acceptance wave shape: one full DCO map sweep's worth of slot
/// tasks (60 nodes × 80 mapper partitions).
pub const ACCEPTANCE_TASKS: u32 = 4800;

/// The telemetry-overhead measurement.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ObsBench {
    /// Cluster scale the wave shape is drawn from (DCO: 60 nodes).
    pub nodes: u32,
    /// Slot tasks per wave.
    pub tasks: u32,
    /// Async reactor worker threads.
    pub workers: u32,
    /// Interleaved repeats per configuration (best-of timing).
    pub repeats: u32,
    /// Best wave time with telemetry disabled, microseconds.
    pub baseline_micros: f64,
    /// Best wave time with the full telemetry tier, microseconds.
    pub telemetry_micros: f64,
    /// `(telemetry − baseline) / baseline`, percent (negative when the
    /// runs are within noise of each other).
    pub overhead_pct: f64,
    /// The gate's budget ([`BUDGET_PCT`]).
    pub budget_pct: f64,
    /// Whether the measured overhead stayed under the budget.
    pub within_budget: bool,
    /// Flight-recorder self-measurement after the telemetry runs:
    /// sampled ns/record, exact drop accounting, bytes retained.
    pub recorder: RecorderStats,
}

/// Engine-grain slot body: enough deterministic arithmetic that one
/// task costs single-digit microseconds, the floor of a real map task,
/// so per-task telemetry is measured against realistic work — not
/// against an empty closure it could never stay under 5% of.
fn slot_body(i: u64) -> u64 {
    let mut acc = i;
    for k in 0..4096u64 {
        acc = acc.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(17) ^ k;
    }
    acc
}

/// Times one wave where every task does the engine's per-task
/// telemetry work: self-timed body attributed to the profiler plus a
/// `TaskDone` flight-recorder event. With a disabled recorder and no
/// profiler this degenerates to the bare wave.
fn time_wave(
    exec: &AsyncExecutor,
    tasks: u32,
    recorder: &Arc<FlightRecorder>,
    profiler: Option<&Arc<PhaseProfiler>>,
) -> Duration {
    let wave: Vec<SlotTask<'_, u64>> = (0..u64::from(tasks))
        .map(|i| {
            let rec = recorder.clone();
            let prof = profiler.cloned();
            SlotTask::new(move |_: &TaskCtx| {
                let out = if let Some(p) = &prof {
                    let started = Instant::now();
                    let out = std::hint::black_box(slot_body(i));
                    p.add_ns(PhaseKind::MapCompute, started.elapsed().as_nanos() as u64);
                    out
                } else {
                    std::hint::black_box(slot_body(i))
                };
                rec.record(EventCode::TaskDone, None, i, 0);
                out
            })
        })
        .collect();
    let spec = WaveSpec::new("obs-bench-wave", 42);
    let start = Instant::now();
    let outcomes = exec.run_wave(&spec, wave);
    let elapsed = start.elapsed();
    assert_eq!(outcomes.len(), tasks as usize);
    elapsed
}

/// Runs the A/B measurement at `tasks` per wave with `repeats`
/// interleaved rounds per configuration.
pub fn run_with(tasks: u32, repeats: u32) -> ObsBench {
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get() as u32);

    // Telemetry off: disabled recorder, bare reactor.
    let off_recorder = Arc::new(FlightRecorder::disabled());
    let off_exec = AsyncExecutor::new(workers);

    // Full tier: always-on recorder, profiler, tracer + exec metrics.
    let clock = Clock::monotonic();
    let on_recorder = Arc::new(FlightRecorder::with_defaults(clock.clone()));
    let profiler = Arc::new(PhaseProfiler::new(clock.clone()));
    let tracer = Arc::new(Tracer::with_clock(clock));
    let metrics = MetricsRegistry::new();
    let on_exec = AsyncExecutor::new(workers)
        .with_obs(tracer, &metrics)
        .with_profiler(profiler.clone());

    let mut baseline = Duration::MAX;
    let mut telemetry = Duration::MAX;
    // One untimed warmup of each configuration, then interleave the
    // timed rounds so drift hits both sides equally.
    time_wave(&off_exec, tasks, &off_recorder, None);
    time_wave(&on_exec, tasks, &on_recorder, Some(&profiler));
    for _ in 0..repeats {
        baseline = baseline.min(time_wave(&off_exec, tasks, &off_recorder, None));
        telemetry = telemetry.min(time_wave(&on_exec, tasks, &on_recorder, Some(&profiler)));
    }

    let base_us = baseline.as_secs_f64() * 1e6;
    let full_us = telemetry.as_secs_f64() * 1e6;
    let overhead_pct = if base_us > 0.0 {
        (full_us - base_us) / base_us * 100.0
    } else {
        0.0
    };
    ObsBench {
        nodes: ClusterConfig::dco().nodes,
        tasks,
        workers,
        repeats,
        baseline_micros: base_us,
        telemetry_micros: full_us,
        overhead_pct,
        budget_pct: BUDGET_PCT,
        within_budget: overhead_pct < BUDGET_PCT,
        recorder: on_recorder.stats(),
    }
}

/// Runs the benchmark at the acceptance shape. `scale > 1` (`--quick`)
/// trims the repeat count, never the wave shape — the budget is only
/// meaningful at 4800 tasks.
pub fn run_scaled(scale: u64) -> ObsBench {
    let repeats = if scale > 1 { 3 } else { 5 };
    run_with(ACCEPTANCE_TASKS, repeats)
}

impl ObsBench {
    /// One-screen summary of the gate and the recorder self-stats.
    pub fn render(&self) -> String {
        format!(
            "BENCH obs: telemetry overhead on the {}-task DCO wave ({} workers, best of {})\n\
             baseline  (telemetry off): {:>10.1}us\n\
             full tier (telemetry on) : {:>10.1}us\n\
             overhead: {:.2}% (budget {:.1}%) -> {}\n\
             recorder: {} recorded, {} dropped (rate {:.4}), {} bytes retained, ~{}ns/record ({} sampled)\n",
            self.tasks,
            self.workers,
            self.repeats,
            self.baseline_micros,
            self.telemetry_micros,
            self.overhead_pct,
            self.budget_pct,
            if self.within_budget {
                "WITHIN BUDGET"
            } else {
                "OVER BUDGET"
            },
            self.recorder.recorded,
            self.recorder.dropped,
            self.recorder.drop_rate(),
            self.recorder.bytes_retained,
            self.recorder.record_ns_per_op,
            self.recorder.samples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ab_harness_measures_and_records() {
        // A small shape keeps the unit test quick; the 4800-task gate
        // itself is the bench target's and CI's job.
        let r = run_with(256, 2);
        assert!(r.baseline_micros > 0.0);
        assert!(r.telemetry_micros > 0.0);
        // The telemetry side really recorded: one TaskDone per task
        // per timed+warmup round, none lost below ring capacity.
        assert_eq!(r.recorder.recorded, 3 * 256);
        assert_eq!(r.recorder.dropped, 0);
        assert!(r.recorder.bytes_retained > 0);
    }
}
