//! Fig. 10: impact of a larger chain length (failure at job 2) —
//! numerical analysis extrapolating measured per-job averages, exactly
//! the paper's method (§V-B "Longer chains").
//!
//! Shape reproduced: slowdowns vs RCMP SPLIT are essentially flat in
//! chain length, with REPL-3 ≈ its failure-free penalty (~1.6–1.9) and
//! REPL-2 ≈ ~1.3.

use crate::numerical::{
    optimistic_chain_time, rcmp_chain_time, replication_chain_time, MeasuredAverages,
};
use crate::table;
use rcmp_core::Strategy;
use rcmp_model::SlotConfig;
use rcmp_sim::{simulate_chain, ChainSimConfig, FailureAt, HwProfile, WorkloadCfg};
use serde::{Deserialize, Serialize};

#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Chain lengths on the x-axis.
    pub lengths: Vec<u32>,
    /// `(strategy, slowdown per length)`.
    pub series: Vec<(String, Vec<f64>)>,
    /// The measured averages feeding the extrapolation (per strategy).
    pub measured: Vec<(String, MeasuredAverages)>,
}

/// Measures per-job averages for one strategy on the STIC SLOTS 2-2
/// setup: average job time with N nodes (failure-free run), with N−1
/// nodes (run after an immediate failure), and the recomputation-run
/// time (from a failure-at-job-2 run).
fn measure(strategy: Strategy, wl: &WorkloadCfg, hw: &HwProfile) -> MeasuredAverages {
    let clean = simulate_chain(&ChainSimConfig::new(hw.clone(), wl.clone(), strategy));
    let job_full = clean.mean_initial_job_time();

    // Kill a node right at the start: every job runs on N−1 nodes.
    let reduced = simulate_chain(
        &ChainSimConfig::new(hw.clone(), wl.clone(), strategy).with_failures(vec![FailureAt {
            seq: 1,
            offset: 0.0,
            node: wl.nodes - 1,
        }]),
    );
    // Skip the first run (it carries the failure overhead).
    let reduced_times: Vec<f64> = reduced
        .runs
        .iter()
        .filter(|r| !r.recompute && r.seq > 1)
        .map(|r| r.duration)
        .collect();
    let job_reduced = if reduced_times.is_empty() {
        job_full
    } else {
        reduced_times.iter().sum::<f64>() / reduced_times.len() as f64
    };

    // Recomputation-run time from a failure at job 2 (RCMP only; for
    // replication strategies there is no recomputation).
    let recompute_run = if strategy.persists_outputs() {
        let failed = simulate_chain(
            &ChainSimConfig::new(hw.clone(), wl.clone(), strategy)
                .with_failures(vec![FailureAt::at_job(2, wl.nodes - 1)]),
        );
        let recs: Vec<f64> = failed.recompute_runs().map(|r| r.duration).collect();
        if recs.is_empty() {
            0.0
        } else {
            recs.iter().sum::<f64>() / recs.len() as f64
        }
    } else {
        0.0
    };

    MeasuredAverages {
        job_full_nodes: job_full,
        job_reduced_nodes: job_reduced,
        recompute_run,
        failure_overhead: 15.0 + hw.detect_timeout,
    }
}

/// Runs the Fig.-10 extrapolation. `scale_down` divides per-node input.
pub fn run_scaled(scale_down: u64) -> Fig10Result {
    let hw = HwProfile::stic();
    let mut wl = WorkloadCfg::stic(SlotConfig::TWO_TWO);
    wl.per_node_input = wl.per_node_input / scale_down.max(1);

    let strategies = [
        ("RCMP SPLIT".to_string(), Strategy::rcmp_split(8)),
        (
            "HADOOP REPL-2".to_string(),
            Strategy::Replication { factor: 2 },
        ),
        (
            "HADOOP REPL-3".to_string(),
            Strategy::Replication { factor: 3 },
        ),
        ("OPTIMISTIC".to_string(), Strategy::Optimistic),
    ];
    let measured: Vec<(String, MeasuredAverages)> = strategies
        .iter()
        .map(|(n, s)| (n.clone(), measure(*s, &wl, &hw)))
        .collect();

    let lengths: Vec<u32> = (1..=10).map(|i| i * 10).collect();
    let rcmp = &measured[0].1;
    let mut series = Vec::new();
    for (name, m) in &measured {
        let mut slowdowns = Vec::new();
        for &len in &lengths {
            let base = rcmp_chain_time(rcmp, len, 2);
            let t = match name.as_str() {
                "RCMP SPLIT" => rcmp_chain_time(m, len, 2),
                "OPTIMISTIC" => optimistic_chain_time(m, len, 2),
                _ => replication_chain_time(m, len, 2),
            };
            slowdowns.push(t / base);
        }
        series.push((name.clone(), slowdowns));
    }
    Fig10Result {
        lengths,
        series,
        measured,
    }
}

/// Paper-scale run.
pub fn run() -> Fig10Result {
    run_scaled(1)
}

impl Fig10Result {
    pub fn render(&self) -> String {
        let mut header = vec!["chain length".to_string()];
        for (name, _) in &self.series {
            header.push(name.clone());
        }
        let mut rows = vec![header];
        for (i, len) in self.lengths.iter().enumerate() {
            let mut row = vec![len.to_string()];
            for (_, s) in &self.series {
                row.push(table::factor(s[i]));
            }
            rows.push(row);
        }
        format!(
            "Fig. 10 — chain-length extrapolation (failure at job 2), STIC SLOTS 2-2\n{}",
            table::render(&rows)
        )
    }

    pub fn series_of(&self, name: &str) -> Option<&[f64]> {
        self.series
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, s)| s.as_slice())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slowdowns_flat_and_ordered() {
        let r = run_scaled(8);
        let repl3 = r.series_of("HADOOP REPL-3").unwrap();
        let repl2 = r.series_of("HADOOP REPL-2").unwrap();
        let rcmp = r.series_of("RCMP SPLIT").unwrap();
        // RCMP is the baseline (1.0 everywhere).
        assert!(rcmp.iter().all(|&x| (x - 1.0).abs() < 1e-9));
        // Flat in chain length (paper: "RCMP's benefits are stable
        // regardless of the chain length").
        let spread = repl3.iter().fold(0.0f64, |a, &x| a.max(x))
            - repl3.iter().fold(f64::INFINITY, |a, &x| a.min(x));
        assert!(spread < 0.25, "REPL-3 slowdown not flat: {repl3:?}");
        // Ordering.
        for i in 0..r.lengths.len() {
            assert!(repl3[i] > repl2[i]);
            assert!(repl2[i] > 1.05);
        }
        assert!(r.render().contains("100"));
    }

    #[test]
    fn optimistic_early_failure_is_mild() {
        // With a failure at job 2, OPTIMISTIC only wastes one job — its
        // slowdown converges near the per-job N−1 ratio (Fig. 8b showed
        // it close to RCMP for early failures).
        let r = run_scaled(8);
        let opt = r.series_of("OPTIMISTIC").unwrap();
        assert!(opt.last().unwrap() < &1.3, "{opt:?}");
    }
}
